"""Extension (§3): the Pering-style elastic evaluation the paper avoided.

Pering et al. "assume that frames of an MPEG video can be dropped and
present results which combine energy savings vs frame rates"; the paper
deliberately keeps constraints inelastic to avoid multi-dimensional
metrics.  This benchmark runs the elastic player (frames past their
display time are dropped) across constant clock steps and policies and
reports the two-dimensional (energy, delivered frame rate) results --
making explicit the tradeoff space the paper's binary criterion collapses.
"""

from repro.core.catalog import best_policy, constant_speed, pering_avg
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload

from _util import Report, once

CFG = MpegConfig(duration_s=30.0, elastic=True)

CONFIGS = [
    ("const 206.4", lambda: constant_speed(206.4)),
    ("const 132.7", lambda: constant_speed(132.7)),
    ("const 103.2", lambda: constant_speed(103.2)),
    ("const 73.7", lambda: constant_speed(73.7)),
    ("const 59.0", lambda: constant_speed(59.0)),
    ("best (PAST peg 98/93)", best_policy),
    ("AVG_9 peg 50/70", lambda: pering_avg(9, up="peg", down="peg")),
]


def test_elastic_pering(benchmark):
    def run():
        rows = []
        for name, factory in CONFIGS:
            res = run_workload(mpeg_workload(CFG), factory, seed=1, use_daq=False)
            rendered = len(res.run.events_of_kind("frame"))
            dropped = len(res.run.events_of_kind("frame_drop"))
            fps = rendered / CFG.duration_s
            rows.append((name, res.exact_energy_j, rendered, dropped, fps))
        return rows

    rows = once(benchmark, run)

    report = Report("elastic_pering")
    report.add("Elastic MPEG 30 s: energy vs delivered frame rate")
    report.table(
        ["Config", "Energy (J)", "Rendered", "Dropped", "fps"],
        [
            (name, f"{e:.2f}", rendered, dropped, f"{fps:.1f}")
            for name, e, rendered, dropped, fps in rows
        ],
    )
    report.add()
    report.add(
        "The frontier the paper refused to trade along: below 132.7 MHz "
        "every joule saved costs frames."
    )
    report.emit()

    by_name = {r[0]: r for r in rows}
    # Full speed and 132.7 deliver all frames.
    assert by_name["const 206.4"][3] == 0
    assert by_name["const 132.7"][3] == 0
    # Below the knee, energy falls but frames drop monotonically harder.
    slow_names = ["const 103.2", "const 73.7", "const 59.0"]
    drops = [by_name[n][3] for n in slow_names]
    energies = [by_name[n][1] for n in slow_names]
    assert drops == sorted(drops)
    assert energies == sorted(energies, reverse=True)
    assert drops[0] > 0
    # The best policy still renders everything (elasticity unused).
    assert by_name["best (PAST peg 98/93)"][3] == 0
