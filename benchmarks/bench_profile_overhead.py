"""Cost of phase-level sweep profiling: PhaseProfile on vs off.

The phase profiler is a pure observer of the sweep pipeline: the engine
stamps its own stages around work it already does, workers return their
compute/reduction stamps on the result tuples they already ship home,
and the kernel's bulk-tap replay stamp is one ``perf_counter`` pair
behind a ``None``-checked sink.  That design makes three promises this
benchmark checks on the paper's Table 2 grid (five policies x N seeds
of the MPEG workload, DAQ on, cache off):

- the profiled sweep returns **bitwise-identical** results — the same
  :class:`~repro.measure.parallel.CellResult` list as the plain engine;
- profiling costs within 5 % of the plain sweep; and
- the profile actually explains the sweep: the union of recorded
  intervals covers most of the measured wall time.

Timings are best-of-N over interleaved rounds so one noisy sample
cannot flip the comparison, and the overhead is computed against the
paired floor ``min(baseline, profiled)``: an instrumented sweep cannot
truly be cheaper than the plain one it wraps, so a negative difference
is measurement noise and the reported overhead is non-negative by
construction.  Besides the usual text report this benchmark writes
``BENCH_profile_overhead.json`` at the repo root — the machine-readable
record the acceptance criterion reads.

``REPRO_BENCH_JOBS`` sets the worker count for both engines (default 2).
``REPRO_BENCH_QUICK=1`` shrinks the grid for CI trend checks: the
overhead bar still applies (with timer-noise slack), but the committed
JSON record is left alone (only full-length runs may re-emit it).
"""

import json
import os
import time
from pathlib import Path

from repro.cli import TABLE2_ROWS, workload_spec
from repro.measure.parallel import PolicySpec, SweepCell, SweepEngine
from repro.obs.profile import PhaseProfile

from _util import Report, bench_machine, once, stable_best

BENCH_JSON = (
    Path(__file__).resolve().parent.parent / "BENCH_profile_overhead.json"
)
QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
DURATION_S = 15.0 if QUICK else 60.0
RUNS_PER_POLICY = 2 if QUICK else 3
ROUNDS = 3 if QUICK else 5
JOBS = max(int(os.environ.get("REPRO_BENCH_JOBS", 2)), 1)
MAX_PROFILE_OVERHEAD_PCT = 5.0


def grid_cells(machine):
    workload = workload_spec("mpeg", duration_s=DURATION_S)
    return [
        SweepCell(
            workload=workload,
            policy=PolicySpec(name=policy),
            seed=1000 * i,
            machine=machine,
            use_daq=True,
        )
        for _, policy in TABLE2_ROWS
        for i in range(RUNS_PER_POLICY)
    ]


def test_profile_overhead(benchmark):
    machine = bench_machine()
    n_cells = len(TABLE2_ROWS) * RUNS_PER_POLICY

    def run():
        results = {}
        # Both engines keep their pools warm across rounds — the pool is
        # part of the pipeline under test, not part of the profiler —
        # so each side pays its spin-up once and stable_best keeps warm
        # rounds.  The profile accumulates intervals across rounds (a
        # profile of N identical sweeps), which only strengthens the
        # coverage check: every round's wall time must stay accounted.
        profile = PhaseProfile()
        plain_engine = SweepEngine(jobs=JOBS)
        profiled_engine = SweepEngine(jobs=JOBS, profile=profile)

        def measure_round():
            walls = {}
            start = time.perf_counter()
            results["baseline"] = plain_engine.run(grid_cells(machine))
            walls["baseline"] = time.perf_counter() - start
            start = time.perf_counter()
            results["profiled"] = profiled_engine.run(grid_cells(machine))
            walls["profiled"] = time.perf_counter() - start
            return walls

        try:
            best = stable_best(measure_round, rounds=ROUNDS)
        finally:
            plain_engine.close()
            profiled_engine.close()
        profiled_wall = profiled_engine.stats.wall_s
        return results, profile, profiled_wall, best

    results, profile, profiled_wall, best = once(benchmark, run)

    # Paired floor: profiling wraps the plain sweep, so it cannot
    # actually be cheaper; when noise makes its best run beat the
    # baseline's, the honest estimate of the overhead is zero.
    floor = min(best["baseline"], best["profiled"])
    overhead_pct = (best["profiled"] / floor - 1.0) * 100.0
    bitwise_equal = results["profiled"] == results["baseline"]
    phase_seconds = profile.phase_seconds()
    coverage_pct = profile.coverage(profiled_wall) * 100.0

    report = Report("profile_overhead")
    report.add(
        f"machine {machine.name}, table2 grid ({len(TABLE2_ROWS)} policies x "
        f"{RUNS_PER_POLICY} seeds, {DURATION_S:g} s mpeg, DAQ on), "
        f"jobs={JOBS}, cache off, best of {ROUNDS} interleaved rounds"
    )
    report.table(
        ["profiling", "wall s", "cells/s"],
        [
            ["off (plain engine)", f"{best['baseline']:.3f}",
             f"{n_cells / best['baseline']:.2f}"],
            ["on (phase stamps, engine + workers + kernel)",
             f"{best['profiled']:.3f}",
             f"{n_cells / best['profiled']:.2f}"],
        ],
    )
    report.add(f"profile overhead: {overhead_pct:+.1f}% "
               f"(bar: {MAX_PROFILE_OVERHEAD_PCT:g}%)")
    report.add(f"results bitwise equal: {bitwise_equal}; "
               f"{len(phase_seconds)} phases, union covers "
               f"{coverage_pct:.1f}% of profiled wall time")
    report.emit()

    if not QUICK:
        BENCH_JSON.write_text(
            json.dumps(
                {
                    "benchmark": "profile_overhead",
                    "machine": machine.name,
                    "workload": "mpeg",
                    "duration_s": DURATION_S,
                    "grid": "table2",
                    "cells": n_cells,
                    "runs_per_policy": RUNS_PER_POLICY,
                    "jobs": JOBS,
                    "rounds": ROUNDS,
                    "baseline_wall_s": round(best["baseline"], 4),
                    "profiled_wall_s": round(best["profiled"], 4),
                    "profile_overhead_pct": round(overhead_pct, 2),
                    "max_profile_overhead_pct": MAX_PROFILE_OVERHEAD_PCT,
                    "phases_seen": len(phase_seconds),
                    "coverage_pct": round(coverage_pct, 1),
                    "bitwise_equal": bitwise_equal,
                },
                indent=2,
            )
            + "\n"
        )

    # The committed record carries the bar; a regression past it fails
    # here whether the run is full-length or a CI quick check.
    max_overhead = MAX_PROFILE_OVERHEAD_PCT
    if BENCH_JSON.exists():
        committed = json.loads(BENCH_JSON.read_text())
        max_overhead = committed.get(
            "max_profile_overhead_pct", max_overhead
        )

    # The profiler's promises.
    assert bitwise_equal, "profiling must be a pure observer (bitwise)"
    assert phase_seconds, "a profiled sweep must attribute some time"
    # On a pooled sweep the union of intervals covers the wall time
    # during which any stage was active; the tail (pool teardown,
    # interpreter bookkeeping) is unattributed.  The >=95 % serial
    # acceptance bar lives in tests/obs/test_profile.py; here a loose
    # floor guards against the stamps silently going missing.
    assert coverage_pct >= 50.0, (
        f"phase intervals explain too little of the sweep "
        f"({coverage_pct:.1f}% of wall)"
    )
    # Quick runs shrink the cells to ~15 s simulated, where the 5 % bar
    # sits in timer-noise territory; widen it there.  A real regression
    # (say, stamping every quantum instead of every cell) costs far
    # more.
    slack = 5.0 if QUICK else 0.0
    assert overhead_pct <= max_overhead + slack, (
        f"phase profiling must stay a cheap observer "
        f"({overhead_pct:+.1f}% > {max_overhead + slack:g}%)"
    )
