"""Section 2.1: the energy/delay tradeoff, computed exactly.

The paper's background argument in three steps, evaluated against the
calibrated machine model:

1. processor in isolation, voltage scaling available: running slower
   within the deadline saves substantial energy (the SA-2-style case for
   voltage scheduling);
2. processor in isolation, frequency scaling only: busy energy per cycle
   is constant, so the saving collapses ("little or no energy will be
   saved");
3. whole system (the Itsy the DAQ measures): fixed platform power charges
   for every second awake, so crawling pays the platform longer and
   racing-to-idle closes most of the gap -- the reality behind Table 2's
   modest constant-speed savings.
"""

from repro.analysis.energymodel import (
    energy_delay_curve,
    processor_only_model,
    race_vs_crawl,
)
from repro.hw.work import Work

from _util import Report, once

#: One second of CPU-bound work at full speed, 3.6 s deadline.
WORK = Work(cpu_cycles=206.4e6)
DEADLINE_US = 3.6e6


def test_energy_delay(benchmark):
    def run():
        proc = processor_only_model()
        scenarios = {
            "processor, voltage scaling": energy_delay_curve(
                WORK, DEADLINE_US, voltage_scaling=True, power=proc
            ),
            "processor, frequency only": energy_delay_curve(
                WORK, DEADLINE_US, voltage_scaling=False, power=proc
            ),
            "whole system, voltage scaling": energy_delay_curve(
                WORK, DEADLINE_US, voltage_scaling=True
            ),
        }
        comparisons = {
            name: race_vs_crawl(
                WORK,
                DEADLINE_US,
                voltage_scaling="voltage" in name,
                power=proc if name.startswith("processor") else None,
            )
            for name in scenarios
        }
        return scenarios, comparisons

    scenarios, comparisons = once(benchmark, run)

    report = Report("energy_delay")
    for name, curve in scenarios.items():
        report.add(f"{name} (1 s of full-speed work, 3.6 s deadline):")
        report.table(
            ["MHz", "V", "busy (s)", "energy (J)"],
            [
                (
                    f"{p.step.mhz:.1f}",
                    f"{p.volts:.2f}",
                    f"{p.busy_us / 1e6:.2f}",
                    f"{p.energy_j:.3f}",
                )
                for p in curve
            ],
        )
        race, best = comparisons[name]
        saving = 100 * (1 - best.energy_j / race.energy_j)
        report.add(
            f"  race-to-idle {race.energy_j:.3f} J vs best constant "
            f"{best.energy_j:.3f} J at {best.step.mhz:.1f} MHz "
            f"({saving:+.1f} % saving)"
        )
        report.add()
    report.emit()

    proc_vs = comparisons["processor, voltage scaling"]
    proc_f = comparisons["processor, frequency only"]
    system = comparisons["whole system, voltage scaling"]

    def saving(pair):
        race, best = pair
        return 1 - best.energy_j / race.energy_j

    # 1. voltage scaling makes slower clearly cheaper (processor view)
    assert saving(proc_vs) > 0.10
    # 2. frequency-only saving is far smaller
    assert saving(proc_f) < saving(proc_vs) / 2
    # 3. platform power shrinks the whole-system benefit below the
    #    processor-only one
    assert saving(system) < saving(proc_vs)
