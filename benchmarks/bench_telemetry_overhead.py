"""Cost of sweep telemetry: spans + live progress on vs off.

The telemetry layer is a pure observer of the sweep pipeline: spans and
heartbeats are derived from timestamps the engine already takes (or from
worker-side wall clocks returned with each result), and the progress
renderer runs on a drain thread off the submission path.  That design
makes two promises this benchmark checks on the paper's Table 2 grid
(five policies x N seeds of the MPEG workload, DAQ on, cache off):

- the instrumented sweep returns **bitwise-identical** results — the
  same :class:`~repro.measure.parallel.CellResult` list as the plain
  engine; and
- the full stack (span telemetry + progress model + renderer forced on
  into an in-memory stream) costs within 5 % of the plain sweep.

Timings are best-of-N over interleaved rounds so one noisy sample cannot
flip the comparison, and the overhead is computed against the paired
floor ``min(baseline, telemetry)``: an instrumented sweep cannot truly
be cheaper than the plain one it wraps, so a negative difference is
measurement noise and the reported overhead is non-negative by
construction.  Besides the usual text report this benchmark writes
``BENCH_telemetry_overhead.json`` at the repo root — the
machine-readable record the acceptance criterion reads.

``REPRO_BENCH_JOBS`` sets the worker count for both engines (default 2).
``REPRO_BENCH_QUICK=1`` shrinks the grid for CI trend checks: the
overhead bar still applies (with timer-noise slack), but the committed
JSON record is left alone (only full-length runs may re-emit it).
"""

import io
import json
import os
import time
from pathlib import Path

from repro.cli import TABLE2_ROWS, workload_spec
from repro.measure.parallel import PolicySpec, SweepCell, SweepEngine
from repro.obs.telemetry import ProgressRenderer, SweepTelemetry
from repro.obs.trace import validate_chrome_trace

from _util import Report, bench_machine, once, stable_best

BENCH_JSON = (
    Path(__file__).resolve().parent.parent / "BENCH_telemetry_overhead.json"
)
QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
DURATION_S = 15.0 if QUICK else 60.0
RUNS_PER_POLICY = 2 if QUICK else 3
ROUNDS = 3 if QUICK else 5
JOBS = max(int(os.environ.get("REPRO_BENCH_JOBS", 2)), 1)
MAX_TELEMETRY_OVERHEAD_PCT = 5.0


def grid_cells(machine):
    workload = workload_spec("mpeg", duration_s=DURATION_S)
    return [
        SweepCell(
            workload=workload,
            policy=PolicySpec(name=policy),
            seed=1000 * i,
            machine=machine,
            use_daq=True,
        )
        for _, policy in TABLE2_ROWS
        for i in range(RUNS_PER_POLICY)
    ]


def test_telemetry_overhead(benchmark):
    machine = bench_machine()
    n_cells = len(TABLE2_ROWS) * RUNS_PER_POLICY

    def run():
        results = {}
        traces = {}
        # Both engines keep their pools warm across rounds — the pool is
        # part of the pipeline under test, not part of the telemetry —
        # so each side pays its spin-up once and stable_best keeps warm
        # rounds.  The telemetry object accumulates spans across rounds
        # (a trace of N identical sweeps), which the lane/validity
        # assertions below don't mind.
        plain_engine = SweepEngine(jobs=JOBS)
        telemetry = SweepTelemetry()
        sink = io.StringIO()
        telemetry_engine = SweepEngine(
            jobs=JOBS,
            telemetry=telemetry,
            progress=True,
            progress_stream=sink,
        )
        # Force the renderer on even though the sink is not a TTY: the
        # benchmark charges telemetry for the full rendering path, not
        # the cheap piped-output degradation.
        telemetry_engine.progress_renderer = ProgressRenderer(
            telemetry_engine.progress_model, sink, enabled=True
        )

        def measure_round():
            walls = {}
            start = time.perf_counter()
            results["baseline"] = plain_engine.run(grid_cells(machine))
            walls["baseline"] = time.perf_counter() - start
            start = time.perf_counter()
            results["telemetry"] = telemetry_engine.run(grid_cells(machine))
            walls["telemetry"] = time.perf_counter() - start
            return walls

        try:
            best = stable_best(measure_round, rounds=ROUNDS)
        finally:
            plain_engine.close()
            telemetry_engine.close()
        traces["telemetry"] = telemetry.chrome_trace()
        return results, traces["telemetry"], best

    results, trace, best = once(benchmark, run)

    # Paired floor: telemetry wraps the plain sweep, so it cannot
    # actually be cheaper; when noise makes its best run beat the
    # baseline's, the honest estimate of the overhead is zero.
    floor = min(best["baseline"], best["telemetry"])
    overhead_pct = (best["telemetry"] / floor - 1.0) * 100.0
    bitwise_equal = results["telemetry"] == results["baseline"]
    worker_lanes = trace["otherData"]["workers"]

    report = Report("telemetry_overhead")
    report.add(
        f"machine {machine.name}, table2 grid ({len(TABLE2_ROWS)} policies x "
        f"{RUNS_PER_POLICY} seeds, {DURATION_S:g} s mpeg, DAQ on), "
        f"jobs={JOBS}, cache off, best of {ROUNDS} interleaved rounds"
    )
    report.table(
        ["telemetry", "wall s", "cells/s"],
        [
            ["off (plain engine)", f"{best['baseline']:.3f}",
             f"{n_cells / best['baseline']:.2f}"],
            ["on (spans + progress, renderer forced)",
             f"{best['telemetry']:.3f}",
             f"{n_cells / best['telemetry']:.2f}"],
        ],
    )
    report.add(f"telemetry overhead: {overhead_pct:+.1f}% "
               f"(bar: {MAX_TELEMETRY_OVERHEAD_PCT:g}%)")
    report.add(f"results bitwise equal: {bitwise_equal}; "
               f"trace: {len(trace['traceEvents'])} events, "
               f"{worker_lanes} worker lanes")
    report.emit()

    if not QUICK:
        BENCH_JSON.write_text(
            json.dumps(
                {
                    "benchmark": "telemetry_overhead",
                    "machine": machine.name,
                    "workload": "mpeg",
                    "duration_s": DURATION_S,
                    "grid": "table2",
                    "cells": n_cells,
                    "runs_per_policy": RUNS_PER_POLICY,
                    "jobs": JOBS,
                    "rounds": ROUNDS,
                    "baseline_wall_s": round(best["baseline"], 4),
                    "telemetry_wall_s": round(best["telemetry"], 4),
                    "telemetry_overhead_pct": round(overhead_pct, 2),
                    "max_telemetry_overhead_pct": MAX_TELEMETRY_OVERHEAD_PCT,
                    "worker_lanes": worker_lanes,
                    "bitwise_equal": bitwise_equal,
                },
                indent=2,
            )
            + "\n"
        )

    # The committed record carries the bar; a regression past it fails
    # here whether the run is full-length or a CI quick check.
    max_overhead = MAX_TELEMETRY_OVERHEAD_PCT
    if BENCH_JSON.exists():
        committed = json.loads(BENCH_JSON.read_text())
        max_overhead = committed.get(
            "max_telemetry_overhead_pct", max_overhead
        )

    # The telemetry layer's promises.
    assert bitwise_equal, "telemetry must be a pure observer (bitwise)"
    validate_chrome_trace(trace)
    assert worker_lanes == JOBS, (
        f"sweep trace must carry one lane per pool worker "
        f"(got {worker_lanes}, expected {JOBS})"
    )
    # Quick runs shrink the cells to ~15 s simulated, where the 5 % bar
    # sits in timer-noise territory; widen it there.  A real regression
    # (say, a per-step hook on the kernel hot loop) costs far more.
    slack = 5.0 if QUICK else 0.0
    assert overhead_pct <= max_overhead + slack, (
        f"telemetry must stay a cheap observer "
        f"({overhead_pct:+.1f}% > {max_overhead + slack:g}%)"
    )
