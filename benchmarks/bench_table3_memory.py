"""Table 3: memory access time in cycles at each clock frequency.

Reproduces the paper's memory microbenchmark: a process that issues a
known number of individual-word reads (and, separately, full cache-line
reads) is timed at every clock step; cycles per reference are derived from
the measured busy time.  The derived numbers must equal Table 3 exactly
(they are the machine model's ground truth -- this benchmark validates the
whole measurement path, not just the table lookup).
"""

from repro.hw.clocksteps import SA1100_CLOCK_TABLE
from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.hw.work import Work
from repro.kernel.process import Compute, Exit
from repro.kernel.scheduler import Kernel, KernelConfig

from _util import Report, once

N_REFS = 100_000.0


def measure_cycles_per_ref(step, component):
    """Time N references of one kind through the kernel, return cycles/ref."""
    machine = ItsyMachine(ItsyConfig(initial_mhz=step.mhz))
    kernel = Kernel(machine, config=KernelConfig(sched_overhead_us=0.0))

    work = Work(mem_refs=N_REFS) if component == "mem" else Work(cache_refs=N_REFS)

    def body(ctx):
        yield Compute(work)
        ctx.emit("done")
        yield Exit()

    kernel.spawn("microbench", body)
    run = kernel.run(60_000_000.0)
    done = run.events_of_kind("done")[0]
    busy_us = done.time_us  # started at t=0, ran alone
    return busy_us * step.mhz / N_REFS


def test_table3_memory(benchmark):
    def run():
        return [
            (
                step,
                measure_cycles_per_ref(step, "mem"),
                measure_cycles_per_ref(step, "cache"),
            )
            for step in SA1100_CLOCK_TABLE
        ]

    rows = once(benchmark, run)

    from repro.hw.memory import SA1100_MEMORY_TIMINGS

    report = Report("table3_memory")
    report.add("Memory access time in cycles (measured via kernel microbenchmark)")
    report.table(
        ["Freq (MHz)", "Cycles/Mem Ref", "Cycles/Cache Ref", "Paper (mem, cache)"],
        [
            (
                f"{step.mhz:.1f}",
                f"{mem:.1f}",
                f"{cache:.1f}",
                f"({SA1100_MEMORY_TIMINGS.mem_cycles(step)}, "
                f"{SA1100_MEMORY_TIMINGS.cache_cycles(step)})",
            )
            for step, mem, cache in rows
        ],
    )
    report.emit()

    for step, mem, cache in rows:
        assert abs(mem - SA1100_MEMORY_TIMINGS.mem_cycles(step)) < 0.1
        assert abs(cache - SA1100_MEMORY_TIMINGS.cache_cycles(step)) < 0.1
