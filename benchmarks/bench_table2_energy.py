"""Table 2: energy of the best clock scaling algorithms (MPEG, 60 s).

Regenerates the paper's headline table: 95 % confidence intervals of the
DAQ-measured energy for the five configurations, plus the deadline-miss
check that defines "best".

Rows are named policies resolved by the catalog grammar, run through the
shared sweep engine (``_util.sweep_engine``): set ``REPRO_BENCH_JOBS`` /
``REPRO_BENCH_CACHE`` to parallelize and memoize the 20 underlying runs.

Paper rows (joules):
    Constant 206.4 MHz, 1.5 V                      85.59 - 86.49
    Constant 132.7 MHz, 1.5 V                      79.59 - 80.94
    Constant 132.7 MHz, 1.23 V                     73.76 - 74.41
    PAST peg-peg, >98 up / <93 down, 1.5 V         85.03 - 85.47
    PAST peg-peg, voltage scaling @ 162.2 MHz      84.60 - 85.45
"""

from repro.measure.parallel import PolicySpec, WorkloadSpec, repeat_workload

from _util import Report, once, sweep_engine

WORKLOAD = WorkloadSpec("mpeg")

ROWS = [
    ("Constant 206.4 MHz, 1.5 V", "const-206.4", "85.59 - 86.49"),
    ("Constant 132.7 MHz, 1.5 V", "const-132.7", "79.59 - 80.94"),
    ("Constant 132.7 MHz, 1.23 V", "const-132.7@1.23", "73.76 - 74.41"),
    ("PAST peg-peg 98/93, 1.5 V", "best", "85.03 - 85.47"),
    ("PAST peg-peg + Vscale @162.2", "best-voltage", "84.60 - 85.45"),
]


def test_table2_energy(benchmark):
    engine = sweep_engine()

    def run():
        return [
            (
                name,
                repeat_workload(
                    WORKLOAD, PolicySpec(policy), runs=4, engine=engine
                ),
                paper,
            )
            for name, policy, paper in ROWS
        ]

    results = once(benchmark, run)

    report = Report("table2_energy")
    report.add("MPEG 60 s playback, 4 runs each, DAQ-measured energy (J)")
    report.table(
        ["Algorithm", "Measured 95% CI", "Paper 95% CI", "Misses"],
        [
            (
                name,
                f"{agg.energy_ci.low:.2f} - {agg.energy_ci.high:.2f}",
                paper,
                agg.total_misses,
            )
            for name, agg, paper in results
        ],
    )
    by_name = {name: agg for name, agg, _ in results}
    base = by_name["Constant 206.4 MHz, 1.5 V"].mean_energy_j
    report.add()
    report.add("Relative to constant 206.4 MHz:")
    for name, agg, _ in results:
        saving = 100.0 * (1.0 - agg.mean_energy_j / base)
        report.add(f"  {name:32s} saves {saving:5.2f} %")
    report.emit()

    assert all(agg.total_misses == 0 for _, agg, _ in results)
