"""Table 2: energy of the best clock scaling algorithms (MPEG, 60 s).

Regenerates the paper's headline table: 95 % confidence intervals of the
DAQ-measured energy for the five configurations, plus the deadline-miss
check that defines "best".

Paper rows (joules):
    Constant 206.4 MHz, 1.5 V                      85.59 - 86.49
    Constant 132.7 MHz, 1.5 V                      79.59 - 80.94
    Constant 132.7 MHz, 1.23 V                     73.76 - 74.41
    PAST peg-peg, >98 up / <93 down, 1.5 V         85.03 - 85.47
    PAST peg-peg, voltage scaling @ 162.2 MHz      84.60 - 85.45
"""

from repro.core.catalog import best_policy, constant_speed
from repro.hw.rails import VOLTAGE_LOW
from repro.measure.runner import repeat_workload
from repro.workloads.mpeg import mpeg_workload

from _util import Report, once

ROWS = [
    ("Constant 206.4 MHz, 1.5 V", lambda: constant_speed(206.4), "85.59 - 86.49"),
    ("Constant 132.7 MHz, 1.5 V", lambda: constant_speed(132.7), "79.59 - 80.94"),
    (
        "Constant 132.7 MHz, 1.23 V",
        lambda: constant_speed(132.7, volts=VOLTAGE_LOW),
        "73.76 - 74.41",
    ),
    ("PAST peg-peg 98/93, 1.5 V", lambda: best_policy(False), "85.03 - 85.47"),
    ("PAST peg-peg + Vscale @162.2", lambda: best_policy(True), "84.60 - 85.45"),
]


def test_table2_energy(benchmark):
    def run():
        return [
            (name, repeat_workload(mpeg_workload(), factory, runs=4), paper)
            for name, factory, paper in ROWS
        ]

    results = once(benchmark, run)

    report = Report("table2_energy")
    report.add("MPEG 60 s playback, 4 runs each, DAQ-measured energy (J)")
    report.table(
        ["Algorithm", "Measured 95% CI", "Paper 95% CI", "Misses"],
        [
            (
                name,
                f"{agg.energy_ci.low:.2f} - {agg.energy_ci.high:.2f}",
                paper,
                agg.total_misses,
            )
            for name, agg, paper in results
        ],
    )
    by_name = {name: agg for name, agg, _ in results}
    base = by_name["Constant 206.4 MHz, 1.5 V"].mean_energy_j
    report.add()
    report.add("Relative to constant 206.4 MHz:")
    for name, agg, _ in results:
        saving = 100.0 * (1.0 - agg.mean_energy_j / base)
        report.add(f"  {name:32s} saves {saving:5.2f} %")
    report.emit()

    assert all(agg.total_misses == 0 for _, agg, _ in results)
