"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Because
pytest captures stdout, each benchmark also writes its report to
``benchmarks/results/<name>.txt`` so the regenerated rows/series survive a
quiet run; ``pytest benchmarks/ --benchmark-only -s`` shows them live.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.hw.machines import MachineSpec
from repro.measure.parallel import ResultCache, SweepEngine

RESULTS_DIR = Path(__file__).parent / "results"


def bench_machine() -> MachineSpec:
    """The machine the benchmark suite simulates.

    Configured by ``REPRO_BENCH_MACHINE`` using the CLI's ``--machine``
    grammar (``itsy``, ``itsy@1.23``, ``itsy-stock``, ``sa2``); defaults
    to the modified Itsy the paper measures.
    """
    return MachineSpec.parse(os.environ.get("REPRO_BENCH_MACHINE", "itsy"))


def sweep_engine(default_jobs: int = 1) -> SweepEngine:
    """The shared sweep engine every simulation benchmark goes through.

    Configured from the environment so one knob covers the whole suite:

    - ``REPRO_BENCH_JOBS``: worker-process count (default ``default_jobs``);
    - ``REPRO_BENCH_CACHE``: result-cache directory (unset = no cache).

    E.g. ``REPRO_BENCH_JOBS=8 REPRO_BENCH_CACHE=.sweep-cache pytest
    benchmarks/ --benchmark-only`` fans each benchmark's grid out over 8
    processes and makes re-runs of unchanged cells free.
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", default_jobs))
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    cache = ResultCache(cache_dir) if cache_dir else None
    return SweepEngine(jobs=max(jobs, 1), cache=cache)


class Report:
    """Collects lines, prints them, and persists them per benchmark."""

    def __init__(self, name: str):
        self.name = name
        self.lines: List[str] = []

    def add(self, line: str = "") -> None:
        """Append one line to the report."""
        self.lines.append(line)

    def table(self, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
        """Append an aligned text table."""
        rows = [[str(c) for c in row] for row in rows]
        widths = [len(h) for h in headers]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        fmt = "  ".join(f"{{:<{w}}}" for w in widths)
        self.add(fmt.format(*headers))
        self.add(fmt.format(*["-" * w for w in widths]))
        for row in rows:
            self.add(fmt.format(*row))

    def emit(self) -> str:
        """Print the report and write it under benchmarks/results/."""
        text = "\n".join([f"=== {self.name} ===", *self.lines, ""])
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{self.name}.txt").write_text(text)
        return text


def once(benchmark, fn):
    """Run a heavy simulation exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def stable_best(
    measure_round: Callable[[], Dict[str, float]],
    rounds: int,
    rel_tol: float = 0.02,
    patience: int = 2,
    max_rounds: Optional[int] = None,
) -> Dict[str, float]:
    """Best-of-rounds wall times, repeated until the floors stabilize.

    ``measure_round`` runs every timed variant once (interleaved, so one
    load spike hits all of them alike) and returns ``{name: wall_s}``.

    A best-of-N floor only estimates the true cost once N is large
    enough that further rounds stop lowering it — and how large that is
    depends on machine load, not on the benchmark.  So after the initial
    ``rounds`` rounds, measurement continues until no variant's best
    improved by more than ``rel_tol`` for ``patience`` consecutive
    rounds, bounded by ``max_rounds`` (default ``4 * rounds``; quick
    mode — ``REPRO_BENCH_QUICK=1`` — times ~40 ms walls where floors
    converge slowest relative to timer noise, and uses the same loop).
    """
    best: Dict[str, float] = {}
    stable_streak = 0
    if max_rounds is None:
        max_rounds = 4 * rounds
    done = 0
    while True:
        walls = measure_round()
        done += 1
        improved = False
        for name, wall in walls.items():
            prior = best.get(name)
            if prior is None or wall < prior:
                if prior is None or wall < prior * (1.0 - rel_tol):
                    improved = True
                best[name] = wall
        stable_streak = 0 if improved else stable_streak + 1
        if done >= rounds and (stable_streak >= patience or done >= max_rounds):
            break
    return best
