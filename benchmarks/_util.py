"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Because
pytest captures stdout, each benchmark also writes its report to
``benchmarks/results/<name>.txt`` so the regenerated rows/series survive a
quiet run; ``pytest benchmarks/ --benchmark-only -s`` shows them live.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


class Report:
    """Collects lines, prints them, and persists them per benchmark."""

    def __init__(self, name: str):
        self.name = name
        self.lines: List[str] = []

    def add(self, line: str = "") -> None:
        """Append one line to the report."""
        self.lines.append(line)

    def table(self, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
        """Append an aligned text table."""
        rows = [[str(c) for c in row] for row in rows]
        widths = [len(h) for h in headers]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        fmt = "  ".join(f"{{:<{w}}}" for w in widths)
        self.add(fmt.format(*headers))
        self.add(fmt.format(*["-" * w for w in widths]))
        for row in rows:
            self.add(fmt.format(*row))

    def emit(self) -> str:
        """Print the report and write it under benchmarks/results/."""
        text = "\n".join([f"=== {self.name} ===", *self.lines, ""])
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{self.name}.txt").write_text(text)
        return text


def once(benchmark, fn):
    """Run a heavy simulation exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
