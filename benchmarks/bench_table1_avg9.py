"""Table 1: scheduling actions for the AVG_9 policy.

15 fully-active quanta from idle, then 5 idle quanta; thresholds 70 %
(scale up) / 50 % (scale down) with single-step scaling.  The table shows
the paper's two lessons: a 120 ms lag before the first scale-up, and the
asymmetry at the 70 % boundary (one active quantum moves 0.70 only to
0.73 while one idle quantum drops it to 0.63).
"""

from repro.core.hysteresis import Direction, ThresholdPair
from repro.core.policy import IntervalPolicy
from repro.core.predictors import AvgN
from repro.core.speed import OneStep
from repro.hw.rails import VOLTAGE_HIGH
from repro.kernel.governor import TickInfo

from _util import Report, once

#: Table 1's AVG_9 column, as printed (x 10^4).  The 8th entry is 5965 in
#: the paper -- a typo for 5695 (the recurrence value); see tests.
PAPER_COLUMN = [
    1000, 1900, 2710, 3439, 4095, 4685, 5217, 5695, 6125, 6513,
    6861, 7175, 7458, 7712, 7941, 7146, 6432, 5789, 5210, 4689,
]


def test_table1_avg9(benchmark):
    def run():
        policy = IntervalPolicy(
            AvgN(9), ThresholdPair(low=0.50, high=0.70), OneStep()
        )
        idx = 0
        rows = []
        pattern = [1.0] * 15 + [0.0] * 5
        for t, util in enumerate(pattern, start=1):
            info = TickInfo(
                now_us=t * 10_000.0,
                utilization=util,
                busy_us=util * 10_000.0,
                quantum_us=10_000.0,
                step_index=idx,
                mhz=59.0,
                volts=VOLTAGE_HIGH,
                max_step_index=10,
            )
            req = policy.on_tick(info)
            _, weighted, direction = policy.decisions[-1]
            # Only an applied step change is a scheduling action: starting
            # at the lowest step, early scale-down decisions clamp away.
            applied = Direction.HOLD
            if req is not None and req.step_index is not None:
                applied = direction
                idx = req.step_index
            rows.append((t * 10, util, weighted, applied))
        return rows

    rows = once(benchmark, run)

    report = Report("table1_avg9")
    report.add("Scheduling actions for the AVG_9 policy (thresholds 70/50)")
    report.table(
        ["Time (ms)", "Idle/Active", "<W> x 10^4", "Paper", "Notes"],
        [
            (
                t,
                "Active" if util > 0.5 else "Idle",
                f"{weighted * 1e4:.0f}",
                PAPER_COLUMN[i],
                {Direction.UP: "Scale up", Direction.DOWN: "Scale down"}.get(
                    direction, ""
                ),
            )
            for i, (t, util, weighted, direction) in enumerate(rows)
        ],
    )
    report.emit()

    # Weighted column matches the paper (within print truncation and the
    # 5965/5695 typo).
    for i, (_, __, weighted, ___) in enumerate(rows):
        assert abs(weighted * 1e4 - PAPER_COLUMN[i]) < 2.0
    # First scale-up happens at 120 ms (12 quanta of lag).
    first_up = next(t for t, _, __, d in rows if d is Direction.UP)
    assert first_up == 120
    # Scale-ups continue while W > 70 % -- including the first idle
    # quantum at 160 ms (W = 0.7146), exactly as in the paper's table --
    # and the scale-down only arrives once W < 50 % at 200 ms.
    ups = [t for t, _, __, d in rows if d is Direction.UP]
    downs = [t for t, _, __, d in rows if d is Direction.DOWN]
    assert ups == [120, 130, 140, 150, 160]
    assert downs == [200]
