"""Ablation: hysteresis thresholds x predictor memory (§5.3, DESIGN.md #3).

The paper: "The AVG_N policy can be easily designed to ensure that very
few deadlines will be missed, but this results in minimal energy savings"
-- and the specific threshold values are "very sensitive to application
behavior".  The sweep exposes the dilemma on MPEG with peg-peg scaling:

- loose thresholds (50 %/70 %): every predictor is safe, because the
  weighted utilization rarely drops below 50 % -- the clock stays pinned
  high and nothing is saved;
- tight thresholds (93 %/98 %): PAST stays safe (it reacts in one
  quantum) and saves a little, but predictors with memory (AVG_3, AVG_9)
  scale down and then need many quanta of full-busy history before the
  weighted utilization re-crosses 98 % -- Table 1's lag -- and frames
  drop.
"""

from repro.core.catalog import constant_speed, pering_avg
from repro.core.hysteresis import ThresholdPair
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload

from _util import Report, once

CFG = MpegConfig(duration_s=30.0)
PAIRS = [(0.50, 0.70), (0.70, 0.90), (0.93, 0.98)]
N_VALUES = [0, 3, 9]


def test_ablation_thresholds(benchmark):
    def run():
        baseline = run_workload(
            mpeg_workload(CFG), lambda: constant_speed(206.4), seed=1, use_daq=False
        )
        rows = []
        for n in N_VALUES:
            for low, high in PAIRS:
                factory = lambda n=n, lo=low, hi=high: pering_avg(
                    n, up="peg", down="peg", thresholds=ThresholdPair(lo, hi)
                )
                res = run_workload(mpeg_workload(CFG), factory, seed=1, use_daq=False)
                rows.append(
                    (
                        f"AVG_{n}",
                        f"{low:.0%}/{high:.0%}",
                        len(res.misses),
                        res.exact_energy_j,
                        100.0 * (1 - res.exact_energy_j / baseline.exact_energy_j),
                    )
                )
        return baseline, rows

    baseline, rows = once(benchmark, run)

    report = Report("ablation_thresholds")
    report.add(
        f"Peg-peg on MPEG 30 s (const 206.4 MHz baseline: "
        f"{baseline.exact_energy_j:.2f} J)"
    )
    report.table(
        ["Predictor", "Thresholds", "Misses", "Energy (J)", "Saving vs 206.4"],
        [(p, t, m, f"{e:.2f}", f"{s:+.2f} %") for p, t, m, e, s in rows],
    )
    report.emit()

    def row(pred, pair):
        return next(r for r in rows if r[0] == pred and r[1] == pair)

    # The paper's best configuration: safe and saving something.
    past_tight = row("AVG_0", "93%/98%")
    assert past_tight[2] == 0
    assert past_tight[4] > 0.0
    # Memory + tight thresholds = Table 1's lag = dropped frames.
    assert row("AVG_9", "93%/98%")[2] > 0
    # Loose thresholds are safe for every predictor but save ~nothing.
    for n in N_VALUES:
        loose = row(f"AVG_{n}", "50%/70%")
        assert loose[2] == 0
        assert loose[4] < 1.0
