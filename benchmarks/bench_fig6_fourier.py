"""Figure 6: Fourier transform of a decaying exponential.

AVG_N's weighting function is a decaying exponential; its transform
``|X(w)| = 1/sqrt(w^2 + alpha^2)`` attenuates but never eliminates high
frequencies -- the analytic heart of the §5.3 instability argument.  The
benchmark regenerates the curve, validates the closed form against direct
numeric integration, and reports the per-N attenuation/lag tradeoff.
"""

import numpy as np

from repro.analysis.fourier import (
    alpha_for_avg_n,
    fourier_magnitude,
    numeric_fourier_magnitude,
)

from _util import Report, once


def test_fig6_fourier(benchmark):
    omega = np.linspace(0.0, 15.0, 31)

    def run():
        closed = fourier_magnitude(omega, alpha=1.0)
        numeric = numeric_fourier_magnitude(omega, alpha=1.0, t_max=60.0, dt=1e-3)
        return closed, numeric

    closed, numeric = once(benchmark, run)

    report = Report("fig6_fourier")
    report.add("|X(w)| = 1/sqrt(w^2 + alpha^2), alpha = 1 (Figure 6's curve)")
    report.table(
        ["omega", "closed form", "numeric integral"],
        [
            (f"{w:.1f}", f"{c:.4f}", f"{n:.4f}")
            for w, c, n in zip(omega[::3], closed[::3], numeric[::3])
        ],
    )
    report.add()
    report.add("Attenuation/lag tradeoff across N (10 ms intervals):")
    rows = []
    for n in (1, 3, 9, 30):
        alpha = alpha_for_avg_n(n, interval_s=0.010)
        # relative gain of a 10 Hz oscillation vs DC
        w = 2 * np.pi * 10.0
        gain = float(
            fourier_magnitude(np.array([w]), alpha)[0]
            / fourier_magnitude(np.array([0.0]), alpha)[0]
        )
        lag_ms = 1000.0 / alpha  # time constant
        rows.append((f"AVG_{n}", f"{alpha:.1f}", f"{gain:.3f}", f"{lag_ms:.0f}"))
    report.table(["Filter", "alpha (1/s)", "10 Hz gain vs DC", "time const (ms)"], rows)
    report.emit()

    assert np.allclose(closed, numeric, rtol=5e-3, atol=1e-4)
    assert np.all(closed > 0.0)  # never eliminates
    assert np.all(np.diff(closed) < 0.0)  # strictly attenuates
