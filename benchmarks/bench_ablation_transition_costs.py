"""Ablation: do the hardware transition costs matter? (DESIGN.md #6)

The paper measures ~200 us clock stalls and ~250 us voltage settles and
notes the best policy "causes many voltage and clock changes, which may
incur unnecessary overhead; this will be less of a problem as processors
are better designed to accommodate those changes."  We rerun the best
policy with the stall removed to quantify that overhead -- and with the
scheduler-forcing overhead (6 us/tick) removed as well (DESIGN.md #1).
"""

from repro.core.catalog import best_policy
from repro.hw.cpu import CLOCK_CHANGE_STALL_US
from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.kernel.scheduler import KernelConfig
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload

from _util import Report, once

CFG = MpegConfig(duration_s=30.0)


def machine_with_stall(stall_us):
    def factory():
        machine = ItsyMachine(ItsyConfig())
        machine.cpu.clock_change_stall_us = stall_us
        return machine

    return factory


def test_ablation_transition_costs(benchmark):
    def run():
        rows = []
        for stall, overhead in (
            (CLOCK_CHANGE_STALL_US, 6.0),
            (0.0, 6.0),
            (CLOCK_CHANGE_STALL_US, 0.0),
            (0.0, 0.0),
        ):
            res = run_workload(
                mpeg_workload(CFG),
                best_policy,
                machine_factory=machine_with_stall(stall),
                seed=1,
                use_daq=False,
                kernel_config=KernelConfig(sched_overhead_us=overhead),
            )
            rows.append(
                (
                    stall,
                    overhead,
                    res.exact_energy_j,
                    res.run.clock_changes,
                    len(res.misses),
                )
            )
        return rows

    rows = once(benchmark, run)

    report = Report("ablation_transition_costs")
    report.add("Best policy on MPEG 30 s, removing the measured overheads")
    report.table(
        ["Clock stall (us)", "Sched overhead (us)", "Energy (J)", "Changes", "Misses"],
        [(f"{s:.0f}", f"{o:.0f}", f"{e:.3f}", c, m) for s, o, e, c, m in rows],
    )
    base = rows[0][2]
    free = rows[3][2]
    report.add()
    report.add(
        f"Energy shift from removing all overheads: "
        f"{(base - free) / base * 100:+.2f} % (timing perturbations included)"
    )
    report.emit()

    # §5.4's conclusion: the costs are negligible -- well under 2 % -- and
    # removing them perturbs run timing more than it saves energy, so only
    # the magnitude is asserted, not the sign.
    assert abs(base - free) / base < 0.02
    # Raw stall time itself is a tiny fraction of the run.
    stall_fraction = rows[0][3] * CLOCK_CHANGE_STALL_US / (CFG.duration_s * 1e6)
    assert stall_fraction < 0.01
    # No configuration misses deadlines.
    assert all(m == 0 for *_, m in rows)
