"""Figure 4: the same utilization traces under a 100 ms moving average.

The paper's point: a 100 ms window makes each application's structure
visible (frame pacing, think/search phases, synthesis bursts) -- yet even
a 1 s moving average of MPEG still swings between roughly 60 % and 80 %,
so no averaging window produces a settled signal.
"""

import numpy as np

from repro.analysis.utilization import moving_average, utilization_series
from repro.core.catalog import constant_speed
from repro.measure.runner import run_workload
from repro.workloads import all_workloads

from _util import Report, once


def test_fig4_moving_average(benchmark):
    def run():
        out = []
        for workload in all_workloads():
            res = run_workload(
                workload, lambda: constant_speed(206.4), seed=1, use_daq=False
            )
            _, utils = utilization_series(res.run)
            out.append((workload.name, utils))
        return out

    results = once(benchmark, run)

    report = Report("fig4_moving_average")
    report.add("Moving-average utilization at 206.4 MHz (windows of 10 ms quanta)")
    rows = []
    for name, utils in results:
        raw_sd = float(np.std(utils))
        ma100 = moving_average(utils, 10)  # 100 ms
        ma1000 = moving_average(utils, 100)  # 1 s
        rows.append(
            (
                name,
                f"{raw_sd:.3f}",
                f"{float(np.std(ma100)):.3f}",
                f"{float(np.std(ma1000)):.3f}",
                f"{float(np.min(ma1000[100:])):.2f}-{float(np.max(ma1000[100:])):.2f}"
                if len(ma1000) > 100
                else "-",
            )
        )
    report.table(
        ["Application", "sd raw", "sd 100ms MA", "sd 1s MA", "1s-MA range (settled)"],
        rows,
    )
    report.emit()

    by_name = dict(results)
    mpeg = by_name["MPEG"]
    ma100 = moving_average(mpeg, 10)
    ma1000 = moving_average(mpeg, 100)
    # Smoothing reduces variance...
    assert float(np.std(ma100)) < float(np.std(mpeg))
    # ...but §5.1: MPEG still varies significantly even at a 1 s window.
    settled = ma1000[100:]
    assert float(np.max(settled)) - float(np.min(settled)) > 0.1
