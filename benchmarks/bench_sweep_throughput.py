"""End-to-end sweep throughput: the Table 2 grid, legacy vs fast path.

The sweep engine's throughput work — chunked cell submission, a warm
reused worker pool, compact result transport — and the fast-path
simulation core together target one number: cells per second on the
paper's own experiment grid, with the result cache off.  This benchmark
measures exactly that, on the Table 2 configuration (five policies x N
seeds of the 60 s MPEG workload, measured through the DAQ):

- **legacy**: the pre-optimization execution shape — a spawn-per-batch
  pool, one cell per task, reference kernel with full recorders;
- **new**: the engine defaults — warm reused pool, auto-sized chunks —
  with every cell on the fast-path backend (the default).

Both sides run the identical grid and must return bitwise-identical
results (the same :class:`~repro.measure.parallel.CellResult` list); the
speedup must clear the committed bar (3x).  Timings are best-of-N over
interleaved rounds so one noisy sample cannot flip the comparison.

``REPRO_BENCH_JOBS`` sets the worker count for both engines (default 2).
Besides the usual text report this benchmark writes
``BENCH_sweep_throughput.json`` at the repo root — the machine-readable
record of the sweep pipeline's throughput trajectory.

``REPRO_BENCH_QUICK=1`` shrinks the grid for CI trend checks; the
speedup bar still applies, but the committed JSON record is left alone
(only full-length runs may re-emit it).
"""

import json
import os
import time
from pathlib import Path

from repro.cli import TABLE2_ROWS, workload_spec
from repro.measure.parallel import PolicySpec, SweepCell, SweepEngine

from _util import Report, bench_machine, once, stable_best

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sweep_throughput.json"
QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
DURATION_S = 15.0 if QUICK else 60.0
RUNS_PER_POLICY = 2 if QUICK else 3
ROUNDS = 3 if QUICK else 5
JOBS = max(int(os.environ.get("REPRO_BENCH_JOBS", 2)), 1)
MIN_SPEEDUP = 3.0


def grid_cells(machine, backend: str):
    # Backends are named explicitly so REPRO_FORCE_BACKEND cannot
    # collapse the legacy-vs-new comparison onto one backend.
    workload = workload_spec("mpeg", duration_s=DURATION_S)
    return [
        SweepCell(
            workload=workload,
            policy=PolicySpec(name=policy),
            seed=1000 * i,
            machine=machine,
            use_daq=True,
            backend=backend,
        )
        for _, policy in TABLE2_ROWS
        for i in range(RUNS_PER_POLICY)
    ]


def test_sweep_throughput(benchmark):
    machine = bench_machine()
    n_cells = len(TABLE2_ROWS) * RUNS_PER_POLICY

    def run():
        results = {}
        # The new engine keeps its pool warm across batches -- that IS
        # the feature -- so it lives for all rounds; the legacy shape
        # spawns a fresh pool per batch by definition.
        new_engine = SweepEngine(jobs=JOBS)

        def measure_round():
            walls = {}
            legacy_engine = SweepEngine(
                jobs=JOBS, chunk_size=1, reuse_pool=False
            )
            try:
                start = time.perf_counter()
                results["legacy"] = legacy_engine.run(
                    grid_cells(machine, backend="reference")
                )
                walls["legacy"] = time.perf_counter() - start
            finally:
                legacy_engine.close()
            start = time.perf_counter()
            results["new"] = new_engine.run(
                grid_cells(machine, backend="fastpath")
            )
            walls["new"] = time.perf_counter() - start
            return walls

        try:
            best = stable_best(measure_round, rounds=ROUNDS)
        finally:
            new_engine.close()
        return results["legacy"], results["new"], best["legacy"], best["new"]

    legacy_results, new_results, legacy_best, new_best = once(benchmark, run)
    speedup = legacy_best / new_best
    bitwise_equal = legacy_results == new_results

    report = Report("sweep_throughput")
    report.add(
        f"machine {machine.name}, table2 grid ({len(TABLE2_ROWS)} policies x "
        f"{RUNS_PER_POLICY} seeds, {DURATION_S:g} s mpeg, DAQ on), "
        f"jobs={JOBS}, cache off, best of {ROUNDS} interleaved rounds"
    )
    report.table(
        ["pipeline", "wall s", "cells/s"],
        [
            ["legacy (spawn-per-batch, reference kernel)",
             f"{legacy_best:.3f}", f"{n_cells / legacy_best:.2f}"],
            ["new (warm pool, chunked, fastpath)",
             f"{new_best:.3f}", f"{n_cells / new_best:.2f}"],
        ],
    )
    report.add(f"throughput speedup: {speedup:.2f}x (bar: {MIN_SPEEDUP:g}x)")
    report.add(f"results bitwise equal: {bitwise_equal}")
    report.emit()

    if not QUICK:
        BENCH_JSON.write_text(
            json.dumps(
                {
                    "benchmark": "sweep_throughput",
                    "machine": machine.name,
                    "workload": "mpeg",
                    "duration_s": DURATION_S,
                    "grid": "table2",
                    "cells": n_cells,
                    "runs_per_policy": RUNS_PER_POLICY,
                    "jobs": JOBS,
                    "rounds": ROUNDS,
                    "legacy_wall_s": round(legacy_best, 4),
                    "new_wall_s": round(new_best, 4),
                    "legacy_cells_per_s": round(n_cells / legacy_best, 2),
                    "new_cells_per_s": round(n_cells / new_best, 2),
                    "speedup": round(speedup, 3),
                    "min_speedup": MIN_SPEEDUP,
                    "bitwise_equal": bitwise_equal,
                },
                indent=2,
            )
            + "\n"
        )

    # The committed record carries the bar; a regression past it fails
    # here whether the run is full-length or a CI quick check.
    min_speedup = MIN_SPEEDUP
    if BENCH_JSON.exists():
        committed = json.loads(BENCH_JSON.read_text())
        min_speedup = committed.get("min_speedup", min_speedup)

    # The quick grid's 15 s cells carry proportionally more fixed
    # per-cell cost (worker dispatch, machine setup), so its ratio sits
    # ~20 % under the full-length one; scale the bar to match.
    if QUICK:
        min_speedup *= 0.8

    assert bitwise_equal, "legacy and fast-path sweeps must agree bitwise"
    assert speedup >= min_speedup, (
        f"sweep pipeline must beat the legacy shape by >={min_speedup:g}x "
        f"on the table2 grid (got {speedup:.2f}x)"
    )
