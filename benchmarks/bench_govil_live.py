"""Extension (§3): the Govil family, live in the kernel.

Govil et al. evaluated their predictors against traces;
:mod:`repro.core.live` runs them in the real feedback loop.  This
benchmark shows the ranking *change* between the two evaluations: CYCLE
and PATTERN look strong on traces with clean periods, but live on MPEG --
where the policy's own clock choices reshape the signal -- their detected
patterns dissolve, while simple aged averages degrade more gracefully.
It also reports the failure the paper predicts for all of them: either
deadline misses or near-baseline energy.
"""

from repro.core.catalog import constant_speed
from repro.core.govil import (
    AgedAveragesPredictor,
    CyclePredictor,
    FlatPredictor,
    LongShortPredictor,
    PatternPredictor,
    PeakPredictor,
)
from repro.core.live import LivePredictorGovernor
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload

from _util import Report, once

CFG = MpegConfig(duration_s=30.0)

PREDICTORS = [
    ("FLAT(0.7)", lambda: FlatPredictor(0.7)),
    ("LONG_SHORT", LongShortPredictor),
    ("AGED_AVERAGES(0.9)", lambda: AgedAveragesPredictor(0.9)),
    ("CYCLE", CyclePredictor),
    ("PATTERN", PatternPredictor),
    ("PEAK", PeakPredictor),
]


def test_govil_live(benchmark):
    def run():
        ideal = run_workload(
            mpeg_workload(CFG), lambda: constant_speed(132.7), seed=1, use_daq=False
        )
        baseline = run_workload(
            mpeg_workload(CFG), lambda: constant_speed(206.4), seed=1, use_daq=False
        )
        rows = []
        for name, predictor_factory in PREDICTORS:
            factory = lambda p=predictor_factory: LivePredictorGovernor(
                p(), target_utilization=0.85
            )
            res = run_workload(mpeg_workload(CFG), factory, seed=1, use_daq=False)
            rows.append(
                (
                    name,
                    res.exact_energy_j,
                    len(res.misses),
                    res.run.clock_changes,
                    res.run.mean_utilization(),
                )
            )
        return ideal, baseline, rows

    ideal, baseline, rows = once(benchmark, run)

    report = Report("govil_live")
    report.add(
        f"Govil predictors live in-kernel on MPEG 30 s | ideal "
        f"{ideal.exact_energy_j:.2f} J, const 206.4 {baseline.exact_energy_j:.2f} J"
    )
    report.table(
        ["Predictor", "Energy (J)", "Misses", "Clock chg", "Mean util"],
        [
            (name, f"{e:.2f}", m, c, f"{u:.3f}")
            for name, e, m, c, u in rows
        ],
    )
    achieved = [
        name
        for name, e, m, _, __ in rows
        if m == 0 and e <= ideal.exact_energy_j * 1.02
    ]
    report.add()
    report.add(f"Predictors matching the ideal: {achieved or 'NONE'}")
    report.emit()

    # The paper's thesis extends to the whole family: nobody reaches the
    # ideal operating point.
    assert not achieved
    # Safe configurations exist (FLAT pinned high) but save ~nothing.
    by_name = {name: (e, m) for name, e, m, _, __ in rows}
    flat_e, flat_m = by_name["FLAT(0.7)"]
    assert flat_m == 0
    assert flat_e > ideal.exact_energy_j * 1.02
