"""Figure 3: per-10 ms-quantum utilization of each application at 206.4 MHz.

Regenerates the raw utilization traces behind Figure 3's four panels and
summarizes the structure the paper reads off them: quanta are mostly
all-or-nothing busy, and each application runs at its own time-scale
(MPEG's ~7-quantum frames, Chess's multi-second searches, the Java 30 ms
poll).  The per-quantum series are saved as CSV next to the report.
"""

from repro.analysis.utilization import busy_idle_runs, utilization_series
from repro.core.catalog import constant_speed
from repro.measure.runner import run_workload
from repro.traces.io import save_quanta_csv
from repro.workloads import all_workloads

from _util import RESULTS_DIR, Report, once


def test_fig3_utilization(benchmark):
    def run():
        out = []
        for workload in all_workloads():
            res = run_workload(
                workload, lambda: constant_speed(206.4), seed=1, use_daq=False
            )
            out.append((workload, res))
        return out

    results = once(benchmark, run)

    report = Report("fig3_utilization")
    report.add("Per-quantum utilization at a constant 206.4 MHz")
    rows = []
    for workload, res in results:
        _, utils = utilization_series(res.run)
        extreme = sum(1 for u in utils if u < 0.02 or u > 0.98) / len(utils)
        runs = busy_idle_runs(utils)
        busy_lengths = [n for busy, n in runs if busy]
        rows.append(
            (
                workload.name,
                f"{res.run.mean_utilization():.3f}",
                f"{extreme:.2f}",
                f"{sum(busy_lengths) / max(1, len(busy_lengths)):.1f}",
                max(busy_lengths, default=0),
                len(res.run.quanta),
            )
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        save_quanta_csv(
            RESULTS_DIR / f"fig3_{workload.name.lower()}_quanta.csv", res.run.quanta
        )
    report.table(
        [
            "Application",
            "Mean util",
            "All-or-nothing frac",
            "Mean busy run (quanta)",
            "Max busy run",
            "Quanta",
        ],
        rows,
    )
    report.add()
    report.add("Per-quantum CSV series saved as fig3_<app>_quanta.csv")
    report.emit()

    # §5.1: "the system is usually either completely idle or completely
    # busy during a given quantum."
    for workload, res in results:
        _, utils = utilization_series(res.run)
        extreme = sum(1 for u in utils if u < 0.02 or u > 0.98) / len(utils)
        assert extreme > 0.5, workload.name
