"""Section 2.1: battery behaviour.

Three results from the paper's background section:

1. the Itsy idle-battery anecdote: two AAA alkaline cells last ~2 h with
   the system clock at 206 MHz but ~18 h at 59 MHz -- battery life rises
   9x for a 3.5x clock reduction (the rate-capacity effect);
2. the StrongARM SA-2 arithmetic: a 600-million-instruction task costs
   500 mJ in 1 s at 600 MHz but only 160 mJ in 4 s at 150 MHz with voltage
   scaling -- a 4x energy saving for tolerating delay;
3. pulsed-power operation (Chiasserini & Rao): interspersing high-power
   pulses with rest delivers more charge than the same constant drain.

Plus Martin's computations-per-battery-lifetime metric over the clock
table.
"""

from repro.battery.lifetime import (
    best_step_for_computations,
    idle_lifetime_hours,
)
from repro.battery.pulsed import PulsedDischargeModel
from repro.hw.clocksteps import SA1100_CLOCK_TABLE
from repro.hw.power import IdleManagerParameters

from _util import Report, once

# StrongARM SA-2 figures quoted in the paper's introduction.
SA2_FAST = dict(mhz=600.0, watts=0.500)
SA2_SLOW = dict(mhz=150.0, watts=0.040)
SA2_INSTRUCTIONS = 600e6


def test_battery_lifetime(benchmark):
    def run():
        lifetimes = {
            step.mhz: idle_lifetime_hours(step) for step in SA1100_CLOCK_TABLE
        }
        idle = IdleManagerParameters()
        best, scored = best_step_for_computations(
            lambda step: idle.idle_power_w(step) + 0.25
        )
        pulsed = PulsedDischargeModel(capacity_c=1000.0)
        pulsed.time_to_death_s(power_w=6.0)
        delivered_const = pulsed.delivered
        pulsed2 = PulsedDischargeModel(capacity_c=1000.0)
        pulsed2.time_to_death_s(power_w=6.0, pulse_s=30.0, rest_s=30.0)
        delivered_pulsed = pulsed2.delivered
        return lifetimes, best, scored, delivered_const, delivered_pulsed

    lifetimes, best, scored, delivered_const, delivered_pulsed = once(benchmark, run)

    report = Report("battery_lifetime")
    report.add("Idle-Itsy battery lifetime vs system clock (2x AAA alkaline)")
    report.table(
        ["Clock (MHz)", "Lifetime (h)"],
        [(f"{mhz:.1f}", f"{hours:.1f}") for mhz, hours in sorted(lifetimes.items())],
    )
    ratio = lifetimes[59.0] / lifetimes[206.4]
    report.add(
        f"-> {ratio:.1f}x battery life for a "
        f"{206.4 / 59.0:.1f}x clock reduction (paper: 9x for 3.5x)"
    )
    report.add()

    e_fast = SA2_FAST["watts"] * (SA2_INSTRUCTIONS / (SA2_FAST["mhz"] * 1e6))
    e_slow = SA2_SLOW["watts"] * (SA2_INSTRUCTIONS / (SA2_SLOW["mhz"] * 1e6))
    report.add("StrongARM SA-2 example (600 M instructions):")
    report.add(
        f"  600 MHz: {SA2_INSTRUCTIONS / (SA2_FAST['mhz'] * 1e6):.1f} s, "
        f"{e_fast * 1000:.0f} mJ   |   150 MHz: "
        f"{SA2_INSTRUCTIONS / (SA2_SLOW['mhz'] * 1e6):.1f} s, {e_slow * 1000:.0f} mJ"
        f"   ({e_fast / e_slow:.2f}x saving)"
    )
    report.add()

    report.add("Martin metric: computations per battery lifetime (idle+0.25 W)")
    report.table(
        ["Clock (MHz)", "Cycles per battery (x1e12)"],
        [(f"{step.mhz:.1f}", f"{c / 1e12:.2f}") for step, c in scored],
    )
    report.add(f"-> best step: {best.mhz:.1f} MHz")
    report.add()
    report.add(
        f"Pulsed discharge (KiBaM): constant 6 W delivers "
        f"{delivered_const:.0f} C; 30 s/30 s pulsed delivers "
        f"{delivered_pulsed:.0f} C under load"
    )
    report.emit()

    assert 1.8 < lifetimes[206.4] < 2.2
    assert 16.0 < lifetimes[59.0] < 20.0
    assert 8.0 < ratio < 10.0
    assert e_fast == 0.5 and abs(e_slow - 0.160) < 1e-9
    assert delivered_pulsed > delivered_const
    assert best.index > 0  # crawling wastes fixed power (Martin's point)
