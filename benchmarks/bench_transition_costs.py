"""Section 5.4: the cost of clock and voltage changes.

Reproduces the paper's tight-loop measurement: switch the clock as fast as
possible between many different step pairs and measure the interval; drop
the core voltage and time the settle.  Expected: ~200 us per clock change,
independent of the starting and target speed (11,800 clock periods at
59 MHz, ~41,280 at 206.4 MHz); ~250 us voltage-down settle; instant
voltage-up; total well under 2 % of a scheduling quantum.
"""

import itertools

from repro.hw.cpu import CpuModel
from repro.hw.rails import VOLTAGE_HIGH, VOLTAGE_LOW

from _util import Report, once


def test_transition_costs(benchmark):
    def run():
        cpu = CpuModel()
        stalls = []
        pairs = list(itertools.permutations(range(11), 2))
        for a, b in pairs:
            cpu.set_step_index(a)
            stall = cpu.set_step_index(b)
            stalls.append(((a, b), stall))

        vcpu = CpuModel()
        vcpu.set_step_index(0)
        down = vcpu.set_voltage(VOLTAGE_LOW)
        up = vcpu.set_voltage(VOLTAGE_HIGH)
        return stalls, down, up

    stalls, down, up = once(benchmark, run)

    report = Report("transition_costs")
    values = [s for _, s in stalls]
    report.table(
        ["Metric", "Value", "Paper"],
        [
            ("clock change pairs measured", len(stalls), "many"),
            ("stall, min (us)", f"{min(values):.0f}", "~200"),
            ("stall, max (us)", f"{max(values):.0f}", "~200 (speed-independent)"),
            ("periods lost at 59 MHz", f"{200.0 * 59.0:.0f}", "11,800"),
            ("periods lost at 206.4 MHz", f"{200.0 * 206.4:.0f}", "41,280"),
            ("voltage 1.5 -> 1.23 V settle (us)", f"{down:.0f}", "~250"),
            ("voltage 1.23 -> 1.5 V settle (us)", f"{up:.0f}", "~instant"),
            (
                "worst per-quantum overhead",
                f"{(200.0 + 250.0) / 10_000.0 * 100:.1f} %",
                "< 2 % (usable every quantum)",
            ),
        ],
    )
    report.emit()

    assert all(abs(s - 200.0) < 1e-9 for s in values)
    assert down == 250.0
    assert up == 0.0
    assert (200.0 + 250.0) / 10_000.0 < 0.05
