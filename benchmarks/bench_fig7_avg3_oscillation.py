"""Figure 7: AVG_3 filtering of a periodic workload keeps oscillating.

The input is the idealized MPEG-at-optimal-speed signal: a rectangle wave
busy for 9 quanta, idle for 1.  The filtered utilization oscillates over a
wide band forever, so any hysteresis thresholds inside that band command
speed changes forever.  The benchmark regenerates the filtered series,
checks it against the closed-form steady-state band, and cross-checks with
a live kernel run of the same wave under an AVG_3 interval policy.
"""

import numpy as np

from repro.analysis.oscillation import oscillation_stats
from repro.analysis.smoothing import (
    avg_n_recursive,
    rectangle_wave,
    steady_state_range,
)
from repro.core.catalog import pering_avg
from repro.core.hysteresis import BEST_POLICY_THRESHOLDS, ThresholdPair
from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.kernel.scheduler import Kernel, KernelConfig
from repro.workloads.synthetic import rectangle_wave_body

from _util import RESULTS_DIR, Report, once


def test_fig7_avg3_oscillation(benchmark):
    def run():
        wave = rectangle_wave(9, 1, periods=80)
        filtered = avg_n_recursive(wave, 3)
        stats = oscillation_stats(filtered)

        # Live kernel: the same wave under AVG_3 with tight thresholds.
        policy = pering_avg(3, up="one", down="one",
                            thresholds=ThresholdPair(0.80, 0.95))
        machine = ItsyMachine(ItsyConfig(initial_mhz=132.7))
        kernel = Kernel(machine, policy, KernelConfig(sched_overhead_us=0.0))
        kernel.spawn("wave", rectangle_wave_body(9, 1, 8_000_000.0))
        live = kernel.run(8_000_000.0)
        return wave, filtered, stats, live

    wave, filtered, stats, live = once(benchmark, run)

    w_min, w_max = steady_state_range(9, 1, 3)
    report = Report("fig7_avg3_oscillation")
    report.add("AVG_3 applied to a 9-busy/1-idle rectangle wave")
    report.add(f"steady-state band (closed form): {w_min:.4f} .. {w_max:.4f}")
    report.add(
        f"observed (tail of numeric convolution): {stats.minimum:.4f} .. "
        f"{stats.maximum:.4f}, amplitude {stats.amplitude:.4f}"
    )
    report.add(f"mean crossings per step: {stats.crossings_per_step:.3f}")
    report.add()
    report.add("First 30 filtered samples (the Figure 7 trace):")
    report.add("  " + " ".join(f"{v:.2f}" for v in filtered[:30]))
    report.add()
    report.add(
        "Live kernel cross-check (AVG_3/one-one, thresholds 80/95 on the "
        f"same wave): {live.clock_changes} clock changes over 8 s, "
        f"{len({q.mhz for q in live.quanta})} distinct frequencies visited"
    )
    np.savetxt(RESULTS_DIR / "fig7_filtered_series.csv", filtered, delimiter=",")
    report.emit()

    assert stats.maximum == np.float64(w_max) or abs(stats.maximum - w_max) < 1e-6
    assert abs(stats.minimum - w_min) < 1e-6
    assert stats.amplitude > 0.2  # "a surprisingly wide range"
    assert stats.escapes(BEST_POLICY_THRESHOLDS)
    # The live policy never settles: it keeps changing the clock.
    assert live.clock_changes > 50
