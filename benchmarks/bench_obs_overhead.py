"""Cost of the observability layer: tracing + metrics on vs off.

The obs package rides the recorder observer protocol, which only wires a
hook into the kernel hot loop when a recorder actually overrides it.  That
design makes two promises this benchmark checks on the paper's 60 s MPEG
workload under the best policy:

- disabled observability is free: a run with ``extra_recorders`` unset
  must cost within 5 % of the plain pre-obs call form (the acceptance
  bar for the whole layer), and
- enabled observability is cheap enough to leave on: with a
  ``TraceRecorder`` and a ``KernelMetricsRecorder`` attached the results
  stay bitwise identical and the run costs within 10 % of the plain
  call form (the recorders buffer events with bound C-level appends and
  reduce once at the end).

Timings are best-of-N over interleaved runs so one noisy sample cannot
flip the comparison (rounds keep adding until the floors stop improving
— see ``stable_best``), and each mode's overhead is computed against the
paired floor ``min(baseline, mode)``: a wrapped call form cannot truly
be cheaper than the plain one it wraps, so a negative difference is
measurement noise and the reported overhead is non-negative by
construction.  Besides the usual text report this benchmark writes
``BENCH_obs_overhead.json`` at the repo root — the machine-readable
record the acceptance criterion reads.

``REPRO_BENCH_QUICK=1`` shrinks the workload for CI trend checks: the
overhead bars still apply, but the committed JSON record is left alone
(only full-length runs may re-emit it).
"""

import json
import os
import time
from pathlib import Path

from repro.core.catalog import resolve_policy
from repro.measure.runner import run_workload
from repro.obs.metrics import KernelMetricsRecorder, MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.workloads.mpeg import MpegConfig, mpeg_workload

from _util import Report, bench_machine, once, stable_best

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"
QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
DURATION_S = 15.0 if QUICK else 60.0
ROUNDS = 5
MAX_DISABLED_OVERHEAD_PCT = 5.0
MAX_ENABLED_OVERHEAD_PCT = 10.0


def timed_run(machine, mode: str):
    policy = resolve_policy("best", clock_table=machine.clock_table())
    kwargs = {}
    if mode == "disabled":
        kwargs["extra_recorders"] = None
    elif mode == "enabled":
        kwargs["extra_recorders"] = [
            TraceRecorder(),
            KernelMetricsRecorder(MetricsRegistry()),
        ]
    start = time.perf_counter()
    result = run_workload(
        mpeg_workload(MpegConfig(duration_s=DURATION_S)),
        policy,
        machine_factory=machine,
        use_daq=False,
        **kwargs,
    )
    return result, time.perf_counter() - start


def test_obs_overhead(benchmark):
    machine = bench_machine()
    modes = ("baseline", "disabled", "enabled")

    def run():
        results = {}

        def measure_round():
            walls = {}
            for mode in modes:
                results[mode], walls[mode] = timed_run(machine, mode)
            return walls

        return results, stable_best(measure_round, rounds=ROUNDS)

    results, best = once(benchmark, run)

    def overhead_pct(mode: str) -> float:
        # Paired floor: observability wraps the plain call form, so it
        # cannot actually be cheaper; when noise makes a mode's best run
        # beat the baseline's, the honest estimate of its overhead is
        # zero, not a negative percentage.
        floor = min(best["baseline"], best[mode])
        return (best[mode] / floor - 1.0) * 100.0

    disabled_pct = overhead_pct("disabled")
    enabled_pct = overhead_pct("enabled")

    report = Report("obs_overhead")
    report.add(f"machine {machine.name}, {DURATION_S:g} s mpeg under best, "
               f"best of {ROUNDS} interleaved runs")
    report.table(
        ["observability", "wall s", "vs baseline", "energy J"],
        [
            [mode, f"{best[mode]:.3f}",
             f"{(best[mode] / best['baseline'] - 1.0) * 100.0:+.1f}%",
             f"{results[mode].exact_energy_j:.6f}"]
            for mode in modes
        ],
    )
    report.add(f"disabled overhead: {disabled_pct:+.1f}% "
               f"(bar: {MAX_DISABLED_OVERHEAD_PCT:g}%)")
    report.add(f"enabled (trace+metrics) overhead: {enabled_pct:+.1f}% "
               f"(bar: {MAX_ENABLED_OVERHEAD_PCT:g}%)")
    report.emit()

    bitwise_equal = (
        results["disabled"].exact_energy_j == results["baseline"].exact_energy_j
        and results["enabled"].exact_energy_j == results["baseline"].exact_energy_j
    )
    if not QUICK:
        BENCH_JSON.write_text(
            json.dumps(
                {
                    "benchmark": "obs_overhead",
                    "machine": machine.name,
                    "workload": "mpeg",
                    "duration_s": DURATION_S,
                    "policy": "best",
                    "rounds": ROUNDS,
                    "baseline_wall_s": round(best["baseline"], 4),
                    "disabled_wall_s": round(best["disabled"], 4),
                    "enabled_wall_s": round(best["enabled"], 4),
                    "disabled_overhead_pct": round(disabled_pct, 2),
                    "enabled_overhead_pct": round(enabled_pct, 2),
                    "max_disabled_overhead_pct": MAX_DISABLED_OVERHEAD_PCT,
                    "max_enabled_overhead_pct": MAX_ENABLED_OVERHEAD_PCT,
                    "energy_j": results["baseline"].exact_energy_j,
                    "bitwise_equal": bitwise_equal,
                },
                indent=2,
            )
            + "\n"
        )

    # The committed record carries the bars; a regression past either one
    # fails here whether the run is full-length or a CI quick check.
    committed_bars = (MAX_DISABLED_OVERHEAD_PCT, MAX_ENABLED_OVERHEAD_PCT)
    if BENCH_JSON.exists():
        committed = json.loads(BENCH_JSON.read_text())
        committed_bars = (
            committed.get("max_disabled_overhead_pct", committed_bars[0]),
            committed.get("max_enabled_overhead_pct", committed_bars[1]),
        )

    # The observability layer's promises.
    assert bitwise_equal
    for mode in ("disabled", "enabled"):
        assert (results[mode].run.mean_utilization()
                == results["baseline"].run.mean_utilization())
        assert (results[mode].run.clock_changes
                == results["baseline"].run.clock_changes)
    # Quick runs shrink the walls to ~35 ms, where the 5 % bar is ~2 ms —
    # timer-noise territory; widen both bars there.  A real regression
    # (say, an unconditionally wired hot-loop hook) costs far more.
    slack = 5.0 if QUICK else 0.0
    assert disabled_pct <= committed_bars[0] + slack, (
        f"disabled observability must be free "
        f"({disabled_pct:+.1f}% > {committed_bars[0] + slack:g}%)"
    )
    assert enabled_pct <= committed_bars[1] + slack, (
        f"enabled observability must stay cheap "
        f"({enabled_pct:+.1f}% > {committed_bars[1] + slack:g}%)"
    )
