"""Ablation: scheduling-interval length (§5.2, DESIGN.md #4).

The paper: averaging over 100 ms windows made MPEG audio and video
unsynchronize and gave the speech synthesizer noticeable delays, "because
it takes longer for the system to realize it is becoming busy"; 10-50 ms
is the workable range (Weiser/Govil's recommendation).  We vary the kernel
quantum -- which is both the accounting window and the policy invocation
period -- under the best policy.
"""

from repro.core.catalog import best_policy
from repro.kernel.scheduler import KernelConfig
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload

from _util import Report, once

CFG = MpegConfig(duration_s=30.0)
QUANTA_MS = [10.0, 20.0, 50.0, 100.0]


def test_ablation_interval(benchmark):
    def run():
        rows = []
        for q_ms in QUANTA_MS:
            res = run_workload(
                mpeg_workload(CFG),
                best_policy,
                seed=1,
                use_daq=False,
                kernel_config=KernelConfig(quantum_us=q_ms * 1000.0),
            )
            worst = max(
                (e.lateness_us for e in res.run.events if e.deadline_us), default=0.0
            )
            rows.append(
                (q_ms, len(res.misses), worst / 1000.0, res.exact_energy_j)
            )
        return rows

    rows = once(benchmark, run)

    report = Report("ablation_interval")
    report.add("Best policy on MPEG 30 s, varying the scheduling interval")
    report.table(
        ["Interval (ms)", "Misses", "Worst lateness (ms)", "Energy (J)"],
        [(f"{q:.0f}", m, f"{w:.1f}", f"{e:.2f}") for q, m, w, e in rows],
    )
    report.emit()

    by_q = {q: (m, w) for q, m, w, _ in rows}
    # 10 ms is safe.
    assert by_q[10.0][0] == 0
    # 100 ms reacts too slowly: worse lateness than 10 ms, and misses.
    assert by_q[100.0][1] > by_q[10.0][1]
    assert by_q[100.0][0] > 0
