"""Figure 5: why simple busy-cycle averaging makes a poor policy.

Reproduces the worked example: a 4-quantum busy-MHz average drives the
speed choice.  Going idle, the speed collapses within a few quanta;
speeding up from 59 MHz, the policy is stuck -- a fully busy quantum at
59 MHz can only ever contribute 59 MHz to the average, so the average can
never exceed 59 MHz and the clock never rises.

Both the analytical box sequence (as drawn in the figure) and a live
kernel run of the same policy against a step workload are reported.
"""

from repro.core.cycleavg import CycleAverageGovernor
from repro.hw.clocksteps import SA1100_CLOCK_TABLE
from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.hw.rails import VOLTAGE_HIGH
from repro.kernel.governor import TickInfo
from repro.kernel.scheduler import Kernel, KernelConfig
from repro.workloads.synthetic import step_body

from _util import Report, once


def drive(gov, quanta):
    """Feed (mhz, busy) quanta to the governor; return per-tick decisions."""
    trace = []
    idx = None
    for mhz, busy in quanta:
        if idx is None:
            idx = SA1100_CLOCK_TABLE.step_for_mhz(mhz).index
        info = TickInfo(
            now_us=0.0,
            utilization=busy,
            busy_us=busy * 10_000.0,
            quantum_us=10_000.0,
            step_index=idx,
            mhz=SA1100_CLOCK_TABLE[idx].mhz,
            volts=VOLTAGE_HIGH,
            max_step_index=10,
        )
        req = gov.on_tick(info)
        if req is not None and req.step_index is not None:
            idx = req.step_index
        trace.append((busy, gov.average_mhz, SA1100_CLOCK_TABLE[idx].mhz))
    return trace


def test_fig5_simple_averaging(benchmark):
    def run():
        going_idle = drive(
            CycleAverageGovernor(window=4),
            [(206.4, 1.0)] * 4 + [(206.4, 0.0)] * 4,
        )
        speeding_up = drive(
            CycleAverageGovernor(window=4),
            [(59.0, 0.0)] * 4 + [(59.0, 1.0)] * 12,
        )

        # Live kernel cross-check: a step workload under the same policy.
        machine = ItsyMachine(ItsyConfig(initial_mhz=59.0))
        kernel = Kernel(
            machine,
            governor=CycleAverageGovernor(window=4),
            config=KernelConfig(sched_overhead_us=0.0),
        )
        kernel.spawn("step", step_body(busy_us=400_000.0, idle_us=100_000.0))
        live = kernel.run(500_000.0)
        return going_idle, speeding_up, live

    going_idle, speeding_up, live = once(benchmark, run)

    report = Report("fig5_simple_averaging")
    report.add("(a) Going to idle: average and chosen speed per quantum")
    report.table(
        ["Quantum busy", "Avg (MHz)", "Speed (MHz)"],
        [(f"{b:.0f}", f"{avg:.2f}", f"{mhz:.1f}") for b, avg, mhz in going_idle],
    )
    report.add()
    report.add("(b) Speeding up from 59 MHz: the average can never exceed 59")
    report.table(
        ["Quantum busy", "Avg (MHz)", "Speed (MHz)"],
        [(f"{b:.0f}", f"{avg:.2f}", f"{mhz:.1f}") for b, avg, mhz in speeding_up],
    )
    report.add()
    report.add(
        "Live kernel run (step workload, boot at 59 MHz): "
        f"final clock {live.quanta[-1].mhz:.1f} MHz, "
        f"{live.clock_changes} clock changes"
    )
    report.emit()

    # Going idle reaches the bottom step quickly.
    assert going_idle[-1][2] == 59.0
    # Speeding up never escapes 59 MHz.
    assert all(mhz == 59.0 for _, __, mhz in speeding_up)
    assert max(avg for _, avg, __ in speeding_up) <= 59.0 + 1e-9
    # The live kernel shows the same pathology: stuck at the bottom.
    assert live.quanta[-1].mhz == 59.0
