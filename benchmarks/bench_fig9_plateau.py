"""Figure 9: non-linear change in utilization with clock frequency.

MPEG's processor utilization at each constant clock step.  The curve is
not linear in 1/f: Table 3's memory-cycle jumps bend it, producing the
distinct plateau between 162.2 and 176.9 MHz that the paper attributes to
the processor/memory speed mismatch.
"""

from repro.core.catalog import constant_speed
from repro.hw.clocksteps import SA1100_CLOCK_TABLE
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload

from _util import Report, once


def test_fig9_plateau(benchmark):
    cfg = MpegConfig(duration_s=30.0)

    def run():
        out = {}
        for step in SA1100_CLOCK_TABLE:
            res = run_workload(
                mpeg_workload(cfg),
                lambda s=step: constant_speed(s.mhz),
                seed=1,
                use_daq=False,
            )
            out[step.mhz] = (res.run.mean_utilization(), len(res.misses))
        return out

    sweep = once(benchmark, run)

    report = Report("fig9_plateau")
    report.add("MPEG utilization vs clock frequency (30 s runs)")
    rows = []
    prev_util = None
    for mhz, (util, misses) in sorted(sweep.items()):
        delta = "" if prev_util is None else f"{util - prev_util:+.3f}"
        rows.append((f"{mhz:.1f}", f"{util * 100:.1f} %", delta, misses))
        prev_util = util
    report.table(["Freq (MHz)", "Utilization", "step delta", "Misses"], rows)
    drop_plateau = sweep[162.2][0] - sweep[176.9][0]
    report.add()
    report.add(
        f"plateau: utilization changes only {drop_plateau * 100:.1f} points "
        "from 162.2 to 176.9 MHz although the clock rises 9 %"
    )
    report.emit()

    utils = {mhz: u for mhz, (u, _) in sweep.items()}
    # saturated and missing deadlines below the feasibility knee
    assert all(utils[m] > 0.99 for m in (59.0, 73.7, 88.5, 103.2, 118.0))
    assert sweep[118.0][1] > 0 and sweep[132.7][1] == 0
    # overall decreasing above the knee, with the 162.2-176.9 plateau
    assert utils[206.4] < utils[162.2] < utils[132.7]
    assert drop_plateau < 0.03
    assert drop_plateau < utils[147.5] - utils[162.2]
    assert drop_plateau < utils[176.9] - utils[191.7]
    # paper magnitudes: ~71 % at 206.4, >90 % near the knee
    assert 0.65 < utils[206.4] < 0.80
    assert utils[132.7] > 0.90
