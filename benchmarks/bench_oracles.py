"""Related-work baselines: Weiser OPT/FUTURE/PAST and the Govil family.

The paper positions itself against the trace-driven studies of Weiser et
al. and Govil et al. (§3).  This benchmark extracts a per-interval work
trace from our own MPEG run (busy fraction at full speed per 10 ms
quantum) and feeds it to the trace-level algorithms, reporting the
Weiser-style relative energy (voltage tracks speed, energy weight
``speed^2``) and the carried backlog.  OPT bounds what any algorithm could
do; PAST -- the only implementable one -- pays for every misprediction.
"""

import numpy as np

from repro.core.catalog import constant_speed
from repro.core.govil import (
    AgedAveragesPredictor,
    CyclePredictor,
    FlatPredictor,
    LongShortPredictor,
    PatternPredictor,
    PeakPredictor,
    govil_schedule,
)
from repro.core.oracle import future_schedule, opt_schedule, past_schedule
from repro.hw.clocksteps import SA1100_CLOCK_TABLE
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload

from _util import Report, once

MIN_SPEED = 59.0 / 206.4


def test_oracles(benchmark):
    def run():
        res = run_workload(
            mpeg_workload(MpegConfig(duration_s=30.0, spin_enabled=False)),
            lambda: constant_speed(206.4),
            seed=1,
            use_daq=False,
        )
        work = np.array(res.run.utilizations())
        schedules = [
            ("OPT (oracle)", opt_schedule(work, MIN_SPEED)),
            ("FUTURE (peeks 1)", future_schedule(work, MIN_SPEED)),
            ("PAST (implementable)", past_schedule(work, MIN_SPEED)),
            (
                "PAST quantized",
                past_schedule(work, MIN_SPEED, quantize=SA1100_CLOCK_TABLE),
            ),
            ("Govil FLAT(0.7)", govil_schedule(work, FlatPredictor(0.7), MIN_SPEED)),
            (
                "Govil LONG_SHORT",
                govil_schedule(work, LongShortPredictor(), MIN_SPEED),
            ),
            (
                "Govil AGED_AVERAGES",
                govil_schedule(work, AgedAveragesPredictor(0.9), MIN_SPEED),
            ),
            ("Govil CYCLE", govil_schedule(work, CyclePredictor(), MIN_SPEED)),
            ("Govil PATTERN", govil_schedule(work, PatternPredictor(), MIN_SPEED)),
            ("Govil PEAK", govil_schedule(work, PeakPredictor(), MIN_SPEED)),
        ]
        return work, schedules

    work, schedules = once(benchmark, run)

    report = Report("oracles")
    report.add(
        f"Trace: MPEG 30 s at 206.4 MHz, {len(work)} intervals, "
        f"mean work {float(np.mean(work)):.3f}"
    )
    report.table(
        ["Algorithm", "Energy vs full speed", "Mean speed", "Peak excess", "Unfinished"],
        [
            (
                name,
                f"{res.full_speed_energy_ratio:.3f}",
                f"{float(np.mean(res.speeds)):.3f}",
                f"{float(np.max(res.excess)):.2f}",
                f"{res.missed_work:.2f}",
            )
            for name, res in schedules
        ],
    )
    report.emit()

    by_name = dict(schedules)
    opt = by_name["OPT (oracle)"]
    # OPT lower-bounds every algorithm's energy.
    for name, res in schedules:
        assert res.energy >= opt.energy - 1e-9, name
    # Everything beats running flat out.
    for name, res in schedules:
        assert res.full_speed_energy_ratio < 1.0, name
    # Quantization can only cost energy relative to continuous PAST.
    assert (
        by_name["PAST quantized"].energy >= by_name["PAST (implementable)"].energy - 1e-9
    )
