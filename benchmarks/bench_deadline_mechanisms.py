"""Extension (§6 future work): deadline mechanisms vs heuristics.

The paper's conclusion proposes kernel deadline mechanisms and asks how to
synthesize deadlines automatically.  This benchmark runs the full MPEG
workload under:

- the paper's best heuristic (PAST peg-peg 98/93),
- :class:`DeadlineGovernor` with application-declared demands (truthful
  video frame + audio chunk specs),
- :class:`SynthesizedDeadlineGovernor` (period detection, no app help),
- Martin's battery-rational floor wrapped around the best heuristic,

and compares energy, misses, and clock behaviour against the constant
206.4 MHz baseline and the constant 132.7 MHz ideal.
"""

from repro.core.catalog import best_policy, constant_speed
from repro.core.deadline import (
    DeadlineGovernor,
    DeadlineSpec,
    SynthesizedDeadlineGovernor,
)
from repro.core.martin import martin_policy
from repro.hw.power import IdleManagerParameters
from repro.measure.runner import run_workload

_IDLE = IdleManagerParameters()
from repro.workloads.base import AUDIO_CHUNK_PROFILE, MPEG_FRAME_PROFILE
from repro.workloads.mpeg import MpegConfig, mpeg_workload

from _util import Report, once

CFG = MpegConfig(duration_s=60.0)


def declared_governor():
    """Truthful MPEG demand declaration: worst-typical frame + audio."""
    return DeadlineGovernor(
        [
            DeadlineSpec(
                "video",
                period_us=CFG.frame_interval_us,
                work=MPEG_FRAME_PROFILE.work(1.0),
            ),
            DeadlineSpec(
                "audio", period_us=100_000.0, work=AUDIO_CHUNK_PROFILE.work(1.0)
            ),
        ],
        margin=1.05,
    )


def test_deadline_mechanisms(benchmark):
    configs = [
        ("const 206.4 (baseline)", lambda: constant_speed(206.4)),
        ("const 132.7 (oracle ideal)", lambda: constant_speed(132.7)),
        ("best heuristic (PAST peg 98/93)", best_policy),
        ("declared deadlines", declared_governor),
        ("synthesized deadlines", lambda: SynthesizedDeadlineGovernor()),
        # Note: with the calibrated *full-system* power model the Martin
        # metric always favours the top step (fixed power dominates, so
        # racing maximizes computations per lifetime) -- the interior
        # optimum only appears for power profiles that track the clock
        # strongly, like the idle power manager's.  We use that profile to
        # demonstrate a non-degenerate floor (162.2 MHz).
        (
            "best heuristic + Martin floor",
            lambda: martin_policy(
                best_policy,
                power_of_step=lambda step: _IDLE.idle_power_w(step) + 0.25,
            ),
        ),
    ]

    def run():
        return [
            (name, run_workload(mpeg_workload(CFG), f, seed=1, use_daq=False))
            for name, f in configs
        ]

    results = once(benchmark, run)

    report = Report("deadline_mechanisms")
    base = results[0][1].exact_energy_j
    report.add("MPEG 60 s: heuristics vs deadline mechanisms (§6)")
    report.table(
        ["Governor", "Energy (J)", "vs 206.4", "Misses", "Clk chg", "Freqs"],
        [
            (
                name,
                f"{res.exact_energy_j:.2f}",
                f"{100 * (1 - res.exact_energy_j / base):+.2f} %",
                len(res.misses),
                res.run.clock_changes,
                ",".join(f"{m:.0f}" for m in sorted({q.mhz for q in res.run.quanta})),
            )
            for name, res in results
        ],
    )
    report.emit()

    by_name = dict(results)
    ideal = by_name["const 132.7 (oracle ideal)"]
    declared = by_name["declared deadlines"]
    heuristic = by_name["best heuristic (PAST peg 98/93)"]
    synth = by_name["synthesized deadlines"]

    # Declared deadlines reach the ideal: no misses, energy within 1 % of
    # the constant-132.7 run, nearly no switching.
    assert not declared.missed
    assert declared.exact_energy_j <= ideal.exact_energy_j * 1.01
    assert declared.run.clock_changes <= 2
    # And they beat every implementable heuristic.
    assert declared.exact_energy_j < heuristic.exact_energy_j
    # Synthesized deadlines are safe and save something, but can't match
    # the declared version (the paper's "further challenge").
    assert not synth.missed
    assert synth.exact_energy_j <= by_name["const 206.4 (baseline)"].exact_energy_j
    assert synth.exact_energy_j >= declared.exact_energy_j - 0.5
    # Martin's floor never misses either (it only raises the clock).
    assert not by_name["best heuristic + Martin floor"].missed
