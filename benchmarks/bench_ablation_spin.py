"""Ablation: the MPEG player's 12 ms spin-vs-sleep heuristic (DESIGN.md #2).

The paper singles this heuristic out: "if the player is well ahead of
schedule, it will show significant idle times; once the clock is scaled
close to the optimal value, the work seemingly increases.  The kernel has
no method of determining that this is wasteful work."  We compare the
stock player against one that always sleeps, at a constant near-optimal
clock and under the best policy.
"""

from repro.core.catalog import best_policy, constant_speed
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload

from _util import Report, once


def test_ablation_spin(benchmark):
    def run():
        rows = []
        for spin in (True, False):
            cfg = MpegConfig(duration_s=30.0, spin_enabled=spin)
            for label, factory in (
                ("const 132.7", lambda: constant_speed(132.7)),
                ("const 206.4", lambda: constant_speed(206.4)),
                ("best policy", best_policy),
            ):
                res = run_workload(mpeg_workload(cfg), factory, seed=1, use_daq=False)
                rows.append(
                    (
                        "spin" if spin else "sleep-only",
                        label,
                        res.run.mean_utilization(),
                        res.exact_energy_j,
                        len(res.misses),
                    )
                )
        return rows

    rows = once(benchmark, run)

    report = Report("ablation_spin")
    report.add("MPEG 30 s with and without the 12 ms spin loop")
    report.table(
        ["Player", "Clock", "Utilization", "Energy (J)", "Misses"],
        [(p, c, f"{u:.3f}", f"{e:.2f}", m) for p, c, u, e, m in rows],
    )
    report.emit()

    def pick(player, clock):
        return next(r for r in rows if r[0] == player and r[1] == clock)

    # Near the optimum the spin loop inflates apparent utilization...
    assert pick("spin", "const 132.7")[2] > pick("sleep-only", "const 132.7")[2] + 0.02
    # ...and burns real energy.
    assert pick("spin", "const 132.7")[3] > pick("sleep-only", "const 132.7")[3]
    # At full speed (plenty of slack) the difference nearly vanishes.
    assert abs(pick("spin", "const 206.4")[3] - pick("sleep-only", "const 206.4")[3]) < 1.0
    # Neither variant misses deadlines at feasible clocks.
    assert all(m == 0 for *_, m in rows)
