"""Hot-loop cost of kernel instrumentation: full vs minimal vs fastpath.

The kernel's event loop publishes every power segment, quantum, and
transition to its recorders.  Full recording keeps the complete power
timeline and quantum log (what the plots need); minimal recording keeps
only the streaming meters (what an energy-only sweep cell needs); the
fast-path core (:mod:`repro.kernel.fastpath`) flattens the whole loop —
precomposed power sink, preallocated row buffers, cached step/rail
state — and materializes either recording mode at run end.  This
benchmark runs the paper's 60 s MPEG workload under the best policy in
all modes and checks the promises the kernel split makes:

- the numbers are bitwise identical (the sweep cache shares entries
  across recording modes and cores on that basis),
- minimal recording never costs more than full (on the reference kernel
  the saving sits within timer noise — the recorder split pays off on
  the fast-path core, which skips buffering entirely), and
- the fast-path core beats the full-recorder reference by at least the
  committed speedup bar (2x).

Timings are best-of-N over interleaved runs so one noisy sample cannot
flip the comparison (rounds keep adding until the floors stop improving
— see ``stable_best``).  Besides the usual text report this benchmark
writes ``BENCH_kernel_hotloop.json`` at the repo root — a small
machine-readable record of the hot-loop cost so successive revisions
leave a perf trajectory.

``REPRO_BENCH_QUICK=1`` shrinks the workload for CI trend checks; the
invariants still hold, but the committed JSON record is left alone
(only full-length runs may re-emit it).
"""

import json
import os
import time
from pathlib import Path

from repro.core.catalog import resolve_policy
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload

from _util import Report, bench_machine, once, stable_best

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernel_hotloop.json"
QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
DURATION_S = 15.0 if QUICK else 60.0
ROUNDS = 5
MIN_FASTPATH_SPEEDUP = 2.0

#: (label, recording mode, execution backend).  Backends are named
#: explicitly so REPRO_FORCE_BACKEND cannot collapse the comparison.
MODES = (
    ("full", "full", "reference"),
    ("minimal", "minimal", "reference"),
    ("fastpath-full", "full", "fastpath"),
    ("fastpath-minimal", "minimal", "fastpath"),
)


def timed_run(machine, recording: str, backend: str):
    policy = resolve_policy("best", clock_table=machine.clock_table())
    start = time.perf_counter()
    result = run_workload(
        mpeg_workload(MpegConfig(duration_s=DURATION_S)),
        policy,
        machine_factory=machine,
        use_daq=False,
        recording=recording,
        backend=backend,
    )
    return result, time.perf_counter() - start


def test_kernel_hotloop(benchmark):
    machine = bench_machine()

    def run():
        results = {}

        def measure_round():
            walls = {}
            for name, recording, backend in MODES:
                results[name], walls[name] = timed_run(
                    machine, recording, backend
                )
            return walls

        return results, stable_best(measure_round, rounds=ROUNDS)

    results, best = once(benchmark, run)
    full = results["full"]
    speedup = best["full"] / best["minimal"]
    fastpath_speedup = best["full"] / best["fastpath-full"]

    report = Report("kernel_hotloop")
    report.add(f"machine {machine.name}, {DURATION_S:g} s mpeg under best, "
               f"best of {ROUNDS} interleaved runs")
    report.table(
        ["backend / recording", "wall s", "vs full", "energy J"],
        [
            [name, f"{best[name]:.3f}",
             f"{best['full'] / best[name]:.2f}x",
             f"{results[name].exact_energy_j:.6f}"]
            for name, _, _ in MODES
        ],
    )
    report.add(f"minimal recording speedup: {speedup:.2f}x")
    report.add(f"fastpath speedup over full recorders: {fastpath_speedup:.2f}x "
               f"(bar: {MIN_FASTPATH_SPEEDUP:g}x)")
    report.emit()

    bitwise_equal = all(
        results[name].exact_energy_j == full.exact_energy_j
        for name, _, _ in MODES
    )
    if not QUICK:
        BENCH_JSON.write_text(
            json.dumps(
                {
                    "benchmark": "kernel_hotloop",
                    "machine": machine.name,
                    "workload": "mpeg",
                    "duration_s": DURATION_S,
                    "policy": "best",
                    "rounds": ROUNDS,
                    "full_wall_s": round(best["full"], 4),
                    "minimal_wall_s": round(best["minimal"], 4),
                    "fastpath_full_wall_s": round(best["fastpath-full"], 4),
                    "fastpath_minimal_wall_s": round(
                        best["fastpath-minimal"], 4
                    ),
                    "speedup": round(speedup, 3),
                    "fastpath_speedup": round(fastpath_speedup, 3),
                    "min_fastpath_speedup": MIN_FASTPATH_SPEEDUP,
                    "energy_j": full.exact_energy_j,
                    "bitwise_equal": bitwise_equal,
                },
                indent=2,
            )
            + "\n"
        )

    # The committed record carries the speedup bar; a regression past it
    # fails here whether the run is full-length or a CI quick check.
    min_fastpath_speedup = MIN_FASTPATH_SPEEDUP
    if BENCH_JSON.exists():
        committed = json.loads(BENCH_JSON.read_text())
        min_fastpath_speedup = committed.get(
            "min_fastpath_speedup", min_fastpath_speedup
        )
        if (committed.get("duration_s") == DURATION_S
                and committed.get("machine") == machine.name):
            # Same configuration as the committed record: the energy must
            # match it to the last bit, or a kernel change altered results.
            assert full.exact_energy_j == committed["energy_j"], (
                f"energy drifted from the committed record "
                f"({full.exact_energy_j!r} != {committed['energy_j']!r})"
            )

    # The kernel split's promises.
    assert bitwise_equal
    for name, _, _ in MODES:
        assert (results[name].run.mean_utilization()
                == full.run.mean_utilization())
    if not QUICK:
        # On the reference kernel the full-vs-minimal gap sits within a
        # few percent once the best-of-N floors converge (the recorder
        # split's real saving shows on the fast-path core, where minimal
        # recording skips buffering entirely), so this guards against
        # minimal recording *regressing* past full rather than asserting
        # a measurable win inside timer noise.
        assert best["minimal"] <= best["full"] * 1.03, (
            f"minimal recording must not cost more than full "
            f"({best['minimal']:.3f}s vs {best['full']:.3f}s)"
        )
    assert fastpath_speedup >= min_fastpath_speedup, (
        f"fast-path core must beat the full-recorder reference by "
        f">={min_fastpath_speedup:g}x (got {fastpath_speedup:.2f}x)"
    )
