"""Hot-loop cost of kernel instrumentation: full vs minimal recorders.

The kernel's event loop publishes every power segment, quantum, and
transition to its recorders.  Full recording keeps the complete power
timeline and quantum log (what the plots need); minimal recording keeps
only the streaming meters (what an energy-only sweep cell needs).  This
benchmark runs the paper's 60 s MPEG workload under the best policy in
both modes and checks the two promises the recorder split makes:

- the numbers are bitwise identical (the sweep cache shares entries
  across recording modes on that basis), and
- minimal recording is measurably faster, because the hot loop skips
  the timeline/log appends entirely.

Timings are best-of-N over interleaved runs so one noisy sample cannot
flip the comparison.  Besides the usual text report this benchmark
writes ``BENCH_kernel_hotloop.json`` at the repo root — a small
machine-readable record of the hot-loop cost so successive revisions
leave a perf trajectory.

``REPRO_BENCH_QUICK=1`` shrinks the workload for CI trend checks; the
invariants still hold, but the committed JSON record is left alone
(only full-length runs may re-emit it).
"""

import json
import os
import time
from pathlib import Path

from repro.core.catalog import resolve_policy
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload

from _util import Report, bench_machine, once

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernel_hotloop.json"
QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
DURATION_S = 15.0 if QUICK else 60.0
ROUNDS = 3 if QUICK else 5


def timed_run(machine, recording: str):
    policy = resolve_policy("best", clock_table=machine.clock_table())
    start = time.perf_counter()
    result = run_workload(
        mpeg_workload(MpegConfig(duration_s=DURATION_S)),
        policy,
        machine_factory=machine,
        use_daq=False,
        recording=recording,
    )
    return result, time.perf_counter() - start


def test_kernel_hotloop(benchmark):
    machine = bench_machine()

    def run():
        full_s, minimal_s = [], []
        for _ in range(ROUNDS):
            full, dt = timed_run(machine, "full")
            full_s.append(dt)
            minimal, dt = timed_run(machine, "minimal")
            minimal_s.append(dt)
        return full, minimal, min(full_s), min(minimal_s)

    full, minimal, full_best, minimal_best = once(benchmark, run)

    report = Report("kernel_hotloop")
    report.add(f"machine {machine.name}, {DURATION_S:g} s mpeg under best, "
               f"best of {ROUNDS} interleaved runs")
    report.table(
        ["recording", "wall s", "energy J", "quanta"],
        [
            ["full", f"{full_best:.3f}", f"{full.exact_energy_j:.6f}",
             len(full.run.quanta)],
            ["minimal", f"{minimal_best:.3f}", f"{minimal.exact_energy_j:.6f}",
             full.run.quantum_stats.count if full.run.quantum_stats
             else minimal.run.quantum_stats.count],
        ],
    )
    speedup = full_best / minimal_best
    report.add(f"minimal recording speedup: {speedup:.2f}x")
    report.emit()

    if not QUICK:
        BENCH_JSON.write_text(
            json.dumps(
                {
                    "benchmark": "kernel_hotloop",
                    "machine": machine.name,
                    "workload": "mpeg",
                    "duration_s": DURATION_S,
                    "policy": "best",
                    "rounds": ROUNDS,
                    "full_wall_s": round(full_best, 4),
                    "minimal_wall_s": round(minimal_best, 4),
                    "speedup": round(speedup, 3),
                    "energy_j": full.exact_energy_j,
                    "bitwise_equal": minimal.exact_energy_j == full.exact_energy_j,
                },
                indent=2,
            )
            + "\n"
        )

    # The recorder split's two promises.
    assert minimal.exact_energy_j == full.exact_energy_j
    assert minimal.run.mean_utilization() == full.run.mean_utilization()
    assert minimal_best < full_best, (
        f"minimal recording must beat full ({minimal_best:.3f}s vs "
        f"{full_best:.3f}s)"
    )
