"""Extension (§3): quantifying the trace-driven methodology gap.

The paper's case against its predecessors: "all previous work from
different groups has relied on simulators" driven by recorded traces,
which cannot capture the feedback a live system has.  This benchmark
records a live MPEG run at full speed, then evaluates policies against
the recording in both replay modes:

- TIME replay (the trace-study assumption): recorded busy time is
  busy-waited; slowing the clock has no visible cost;
- WORK replay (the live truth): recorded cycles must actually complete,
  so slowing the clock stretches execution into the next deadline.

The same policy looks strictly better on the TIME trace -- the measured
gap is the bias of trace-driven evaluation.
"""

from repro.core.catalog import best_policy, constant_speed, pering_avg
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload
from repro.workloads.replay import ReplayMode, record_from_run, replay_workload

from _util import Report, once

POLICIES = [
    ("const 206.4", lambda: constant_speed(206.4)),
    ("best (PAST peg 98/93)", best_policy),
    ("AVG_3 peg-peg 50/70", lambda: pering_avg(3, up="peg", down="peg")),
]


def test_trace_replay(benchmark):
    def run():
        source = run_workload(
            mpeg_workload(MpegConfig(duration_s=30.0)),
            lambda: constant_speed(206.4),
            seed=2,
            use_daq=False,
        )
        trace = record_from_run(source.run)
        rows = []
        for name, factory in POLICIES:
            time_res = run_workload(
                replay_workload(trace, ReplayMode.TIME),
                factory,
                seed=0,
                use_daq=False,
            )
            work_res = run_workload(
                replay_workload(trace, ReplayMode.WORK),
                factory,
                seed=0,
                use_daq=False,
            )
            rows.append((name, time_res, work_res))
        return source, rows

    source, rows = once(benchmark, run)

    report = Report("trace_replay")
    report.add(
        f"Source recording: MPEG 30 s at 206.4 MHz "
        f"(mean util {source.run.mean_utilization():.3f})"
    )
    report.table(
        [
            "Policy",
            "TIME energy (J)",
            "TIME misses",
            "WORK energy (J)",
            "WORK misses",
            "bias",
        ],
        [
            (
                name,
                f"{t.exact_energy_j:.2f}",
                len(t.misses),
                f"{w.exact_energy_j:.2f}",
                len(w.misses),
                f"{100 * (w.exact_energy_j - t.exact_energy_j) / w.exact_energy_j:+.2f} %",
            )
            for name, t, w in rows
        ],
    )
    report.add()
    report.add(
        "bias = how much cheaper the policy looks on the TIME trace than "
        "under the honest WORK replay"
    )
    report.emit()

    by_name = {name: (t, w) for name, t, w in rows}
    # The baseline is mode-invariant (full speed does the same thing).
    t206, w206 = by_name["const 206.4"]
    assert abs(t206.exact_energy_j - w206.exact_energy_j) < 1.0
    # Scaling policies look at least as good on TIME replay, with no
    # deadline cost, for every policy evaluated.
    for name, (t, w) in by_name.items():
        assert t.exact_energy_j <= w.exact_energy_j + 0.5, name
        assert not t.missed, name
    # And for at least one policy the bias is material (>0.5 %).
    biases = [
        (w.exact_energy_j - t.exact_energy_j) / w.exact_energy_j
        for name, (t, w) in by_name.items()
        if name != "const 206.4"
    ]
    assert max(biases) > 0.005
