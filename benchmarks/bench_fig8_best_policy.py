"""Figure 8: clock frequency over time for MPEG under the best policy.

PAST prediction, pegging both directions, thresholds 98 %/93 %: the clock
only ever sits at 59 or 206.4 MHz and switches frequently -- suboptimal
energy, but no missed deadlines and no visible slowdown.  The benchmark
regenerates the frequency trace (saved as CSV), its residency histogram,
and the switching statistics.
"""

import numpy as np

from repro.core.catalog import best_policy
from repro.measure.runner import run_workload
from repro.workloads.mpeg import mpeg_workload

from _util import RESULTS_DIR, Report, once


def test_fig8_best_policy(benchmark):
    def run():
        return run_workload(mpeg_workload(), best_policy, seed=1, use_daq=False)

    res = once(benchmark, run)

    quanta = res.run.quanta
    freqs = np.array([q.mhz for q in quanta])
    times = np.array([q.end_us for q in quanta]) / 1e6
    residency = {
        mhz: float(np.mean(freqs == mhz)) for mhz in sorted(set(freqs.tolist()))
    }

    report = Report("fig8_best_policy")
    report.add("MPEG 60 s under PAST peg-peg, thresholds >98 up / <93 down")
    report.table(
        ["Metric", "Value"],
        [
            ("clock changes", res.run.clock_changes),
            ("changes per second", f"{res.run.clock_changes / 60.0:.1f}"),
            ("stall time (ms)", f"{res.run.clock_stall_us / 1000:.1f}"),
            ("deadline misses", len(res.misses)),
            ("mean utilization", f"{res.run.mean_utilization():.3f}"),
            ("energy (J)", f"{res.exact_energy_j:.2f}"),
        ],
    )
    report.add()
    report.add("Frequency residency (fraction of quanta):")
    report.table(
        ["MHz", "Residency"],
        [(f"{mhz:.1f}", f"{frac:.3f}") for mhz, frac in residency.items()],
    )
    np.savetxt(
        RESULTS_DIR / "fig8_frequency_trace.csv",
        np.column_stack([times, freqs]),
        delimiter=",",
        header="time_s,mhz",
        comments="",
    )
    report.add()
    report.add("Frequency trace saved as fig8_frequency_trace.csv")
    report.emit()

    # Figure 8's visual content: only 59 and 206.4 MHz, frequent changes,
    # no misses.
    assert set(residency) == {59.0, 206.4}
    assert res.run.clock_changes > 300
    assert not res.missed
