"""Section 5.4 across all applications: the best policy never misses.

The paper's "best" criterion is defined across the whole workload suite:
"it never misses any deadline (across all the applications) and it also
saves a small but significant amount of energy."  This benchmark runs the
best policy and the constant baselines against all four full-length
workloads and reports energy, savings and deadline outcomes per
application -- including the observation that the idle-heavy interactive
workloads are where the heuristic actually earns its keep.
"""

from repro.core.catalog import best_policy, constant_speed
from repro.measure.runner import run_workload
from repro.workloads import all_workloads

from _util import Report, once

POLICIES = [
    ("const 206.4", lambda: constant_speed(206.4)),
    ("const 132.7", lambda: constant_speed(132.7)),
    ("best policy", best_policy),
    ("best + voltage", lambda: best_policy(True)),
]


def test_all_workloads(benchmark):
    def run():
        table = {}
        for workload in all_workloads():
            rows = []
            for name, factory in POLICIES:
                res = run_workload(workload, factory, seed=2, use_daq=False)
                rows.append((name, res))
            table[workload.name] = rows
        return table

    table = once(benchmark, run)

    report = Report("all_workloads")
    for workload_name, rows in table.items():
        base = rows[0][1].exact_energy_j
        report.add(f"{workload_name}:")
        report.table(
            ["Policy", "Energy (J)", "vs 206.4", "Misses", "Clk chg"],
            [
                (
                    name,
                    f"{res.exact_energy_j:.2f}",
                    f"{100 * (1 - res.exact_energy_j / base):+.2f} %",
                    len(res.misses),
                    res.run.clock_changes,
                )
                for name, res in rows
            ],
        )
        report.add()
    report.emit()

    for workload_name, rows in table.items():
        by_name = dict(rows)
        # the best policy never misses, on any application
        assert not by_name["best policy"].missed, workload_name
        assert not by_name["best + voltage"].missed, workload_name
        # and saves energy everywhere
        assert (
            by_name["best policy"].exact_energy_j
            < by_name["const 206.4"].exact_energy_j
        ), workload_name
    # the interactive (idle-heavy) workloads save much more than MPEG
    def saving(name):
        rows = dict(table[name])
        return 1 - rows["best policy"].exact_energy_j / rows["const 206.4"].exact_energy_j

    assert saving("Web") > 3 * saving("MPEG")
    assert saving("TalkingEditor") > 2 * saving("MPEG")
