"""Section 5.3: the comprehensive AVG_N x speed-setter study.

The paper varied N from 0 (PAST) to 10 with each speed-setting policy and
concluded that "the weighted average has undesirable behavior": no
configuration settles at the 132.7 MHz optimum -- each one either misses
deadlines (scaled down too eagerly / reacts too slowly) or burns nearly as
much energy as constant full speed.  The benchmark regenerates the sweep
on the MPEG workload and reports, per configuration: deadline misses,
energy vs the 132.7 MHz ideal, clock changes, and 132.7 MHz residency.
"""

from repro.core.catalog import constant_speed, sweep_avg_policies
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload

from _util import Report, once

CFG = MpegConfig(duration_s=30.0)
N_VALUES = tuple(range(0, 11, 2))  # 0, 2, 4, 6, 8, 10


def test_policy_sweep(benchmark):
    def run():
        ideal = run_workload(
            mpeg_workload(CFG), lambda: constant_speed(132.7), seed=1, use_daq=False
        )
        full = run_workload(
            mpeg_workload(CFG), lambda: constant_speed(206.4), seed=1, use_daq=False
        )
        rows = []
        for label, governor in sweep_avg_policies(n_values=N_VALUES):
            res = run_workload(
                mpeg_workload(CFG), lambda g=governor: g, seed=1, use_daq=False
            )
            at_132 = sum(1 for q in res.run.quanta if q.mhz == 132.7)
            rows.append(
                (
                    label,
                    len(res.misses),
                    res.exact_energy_j,
                    res.run.clock_changes,
                    at_132 / len(res.run.quanta),
                )
            )
        return ideal, full, rows

    ideal, full, rows = once(benchmark, run)

    report = Report("policy_sweep")
    report.add(
        f"MPEG 30 s | ideal (const 132.7): {ideal.exact_energy_j:.2f} J | "
        f"const 206.4: {full.exact_energy_j:.2f} J"
    )
    report.table(
        ["Policy", "Misses", "Energy (J)", "Clock chg", "132.7 residency"],
        [
            (label, misses, f"{energy:.2f}", changes, f"{res132:.2f}")
            for label, misses, energy, changes, res132 in rows
        ],
    )
    achieved = [
        label
        for label, misses, energy, _, __ in rows
        if misses == 0 and energy <= ideal.exact_energy_j * 1.02
    ]
    report.add()
    report.add(
        "Configurations matching the ideal (no misses, within 2 % of the "
        f"132.7 MHz energy): {achieved or 'NONE'}"
    )
    report.emit()

    # The paper's conclusion: no heuristic achieves the ideal.
    assert not achieved
    # And none parks at the optimum step.
    assert all(res132 < 0.9 for _, __, ___, ____, res132 in rows)
