"""Section 5.3: the comprehensive AVG_N x speed-setter study.

The paper varied N from 0 (PAST) to 10 with each speed-setting policy and
concluded that "the weighted average has undesirable behavior": no
configuration settles at the 132.7 MHz optimum -- each one either misses
deadlines (scaled down too eagerly / reacts too slowly) or burns nearly as
much energy as constant full speed.  The benchmark regenerates the sweep
on the MPEG workload and reports, per configuration: deadline misses,
energy vs the 132.7 MHz ideal, clock changes, and 132.7 MHz residency.

The whole grid is submitted as one batch through the shared sweep engine
(``_util.sweep_engine``), so ``REPRO_BENCH_JOBS``/``REPRO_BENCH_CACHE``
parallelize and memoize it.
"""

from repro.measure.parallel import PolicySpec, SweepCell, WorkloadSpec
from repro.workloads.mpeg import MpegConfig

from _util import Report, once, sweep_engine

CFG = MpegConfig(duration_s=30.0)
WORKLOAD = WorkloadSpec("mpeg", CFG)
N_VALUES = tuple(range(0, 11, 2))  # 0, 2, 4, 6, 8, 10
SETTERS = ("one", "double", "peg")


def _cell(policy: str) -> SweepCell:
    return SweepCell(
        workload=WORKLOAD, policy=PolicySpec(policy), seed=1, use_daq=False
    )


def test_policy_sweep(benchmark):
    engine = sweep_engine()
    labels = [f"AVG_{n}/{s}-{s}" for n in N_VALUES for s in SETTERS]
    cells = [_cell("const-132.7"), _cell("const-206.4")]
    cells += [_cell(f"avg{n}-{s}") for n in N_VALUES for s in SETTERS]

    results = once(benchmark, lambda: engine.run(cells))

    ideal, full = results[0], results[1]
    rows = [
        (
            label,
            res.miss_count,
            res.exact_energy_j,
            res.clock_changes,
            res.residency_at(132.7),
        )
        for label, res in zip(labels, results[2:])
    ]

    report = Report("policy_sweep")
    report.add(
        f"MPEG 30 s | ideal (const 132.7): {ideal.exact_energy_j:.2f} J | "
        f"const 206.4: {full.exact_energy_j:.2f} J"
    )
    report.table(
        ["Policy", "Misses", "Energy (J)", "Clock chg", "132.7 residency"],
        [
            (label, misses, f"{energy:.2f}", changes, f"{res132:.2f}")
            for label, misses, energy, changes, res132 in rows
        ],
    )
    achieved = [
        label
        for label, misses, energy, _, __ in rows
        if misses == 0 and energy <= ideal.exact_energy_j * 1.02
    ]
    report.add()
    report.add(
        "Configurations matching the ideal (no misses, within 2 % of the "
        f"132.7 MHz energy): {achieved or 'NONE'}"
    )
    report.emit()

    # The paper's conclusion: no heuristic achieves the ideal.
    assert not achieved
    # And none parks at the optimum step.
    assert all(res132 < 0.9 for _, __, ___, ____, res132 in rows)
