"""Tests for the kernel scheduler simulator."""

import pytest

from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.hw.work import Work
from repro.kernel.governor import ConstantGovernor, Governor
from repro.kernel.process import (
    Compute,
    Exit,
    Sleep,
    SleepUntil,
    SpinUntil,
    Yield,
)
from repro.kernel.scheduler import Kernel, KernelConfig

Q = 10_000.0
NO_OVERHEAD = KernelConfig(sched_overhead_us=0.0)


def make_kernel(governor=None, config=NO_OVERHEAD, mhz=206.4):
    return Kernel(ItsyMachine(ItsyConfig(initial_mhz=mhz)), governor, config)


def cpu_work_us(us, mhz=206.4):
    """Pure-CPU work lasting `us` microseconds at the given frequency."""
    return Work(cpu_cycles=us * mhz)


class TestIdleSystem:
    def test_empty_system_is_fully_idle(self):
        kernel = make_kernel()
        run = kernel.run(10 * Q)
        assert len(run.quanta) == 10
        assert run.mean_utilization() == 0.0
        assert run.duration_us == 10 * Q

    def test_duration_rounds_up_to_whole_quanta(self):
        kernel = make_kernel()
        run = kernel.run(25_000.0)
        assert run.duration_us == 30_000.0
        assert len(run.quanta) == 3

    def test_idle_power_is_nap_power(self):
        kernel = make_kernel()
        machine = kernel.machine
        from repro.hw.power import CoreState

        expected = machine.power_w(CoreState.NAP)
        run = kernel.run(5 * Q)
        assert run.mean_power_w() == pytest.approx(expected)

    def test_single_use(self):
        kernel = make_kernel()
        kernel.run(Q)
        with pytest.raises(RuntimeError):
            kernel.run(Q)
        with pytest.raises(RuntimeError):
            kernel.spawn("late", lambda ctx: iter(()))

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            make_kernel().run(0.0)


class TestUtilizationAccounting:
    def test_fully_busy_process(self):
        kernel = make_kernel()

        def body(ctx):
            yield SpinUntil(5 * Q)

        kernel.spawn("busy", body)
        run = kernel.run(5 * Q)
        assert run.mean_utilization() == pytest.approx(1.0)

    def test_half_busy_quantum(self):
        kernel = make_kernel()

        def body(ctx):
            yield Compute(cpu_work_us(5_000.0))
            yield Exit()

        kernel.spawn("half", body)
        run = kernel.run(Q)
        assert run.quanta[0].utilization == pytest.approx(0.5)

    def test_compute_spans_quanta(self):
        kernel = make_kernel()

        def body(ctx):
            yield Compute(cpu_work_us(25_000.0))

        kernel.spawn("long", body)
        run = kernel.run(3 * Q)
        utils = run.utilizations()
        assert utils[0] == pytest.approx(1.0)
        assert utils[1] == pytest.approx(1.0)
        assert utils[2] == pytest.approx(0.5)

    def test_spin_counts_as_busy(self):
        kernel = make_kernel()

        def body(ctx):
            yield SpinUntil(7_000.0)
            yield Exit()

        kernel.spawn("spinner", body)
        run = kernel.run(Q)
        assert run.quanta[0].utilization == pytest.approx(0.7)

    def test_scheduler_overhead_charged(self):
        kernel = make_kernel(config=KernelConfig(sched_overhead_us=6.0))
        run = kernel.run(2 * Q)
        # quantum 1 has no overhead (it is charged at each closing tick,
        # into the following quantum); quantum 2 carries 6 us.
        assert run.quanta[0].busy_us == pytest.approx(0.0)
        assert run.quanta[1].busy_us == pytest.approx(6.0)

    def test_overhead_matches_paper_fraction(self):
        # ~6 us per 10 ms is the paper's 0.06 %.
        cfg = KernelConfig()
        assert cfg.sched_overhead_us / cfg.quantum_us == pytest.approx(0.0006)


class TestSleepSemantics:
    def test_sleep_wakes_on_tick_boundary(self):
        wakes = []

        def body(ctx):
            yield Compute(cpu_work_us(1_000.0))
            yield Sleep(12_000.0)  # from ~1000us: wake at tick 20000
            wakes.append(ctx.now_us)
            yield Exit()

        kernel = make_kernel()
        kernel.spawn("sleeper", body)
        kernel.run(4 * Q)
        assert wakes == [20_000.0]

    def test_sleep_until_exact_tick(self):
        wakes = []

        def body(ctx):
            yield SleepUntil(30_000.0)
            wakes.append(ctx.now_us)
            yield Exit()

        kernel = make_kernel()
        kernel.spawn("sleeper", body)
        kernel.run(5 * Q)
        assert wakes == [30_000.0]

    def test_sleep_until_past_time_waits_one_tick(self):
        wakes = []

        def body(ctx):
            yield Compute(cpu_work_us(5_000.0))
            yield SleepUntil(1_000.0)  # already passed
            wakes.append(ctx.now_us)
            yield Exit()

        kernel = make_kernel()
        kernel.spawn("sleeper", body)
        kernel.run(3 * Q)
        assert wakes == [10_000.0]

    def test_zero_sleep_is_yield(self):
        order = []

        def a(ctx):
            order.append("a")
            yield Sleep(0.0)
            order.append("a2")
            yield Exit()

        def b(ctx):
            order.append("b")
            yield Exit()

        kernel = make_kernel()
        kernel.spawn("a", a)
        kernel.spawn("b", b)
        kernel.run(Q)
        assert order == ["a", "b", "a2"]


class TestSpinSemantics:
    def test_spin_has_microsecond_precision(self):
        times = []

        def body(ctx):
            yield SpinUntil(12_345.0)
            times.append(ctx.now_us)
            yield Exit()

        kernel = make_kernel()
        kernel.spawn("spinner", body)
        kernel.run(2 * Q)
        assert times == [12_345.0]

    def test_spin_survives_preemption(self):
        times = []

        def spinner(ctx):
            yield SpinUntil(25_000.0)
            times.append(ctx.now_us)
            yield Exit()

        def competitor(ctx):
            yield SpinUntil(25_000.0)
            yield Exit()

        kernel = make_kernel()
        kernel.spawn("s", spinner)
        kernel.spawn("c", competitor)
        kernel.run(4 * Q)
        assert times == [25_000.0]

    def test_spin_in_the_past_is_noop(self):
        def body(ctx):
            yield Compute(cpu_work_us(3_000.0))
            yield SpinUntil(1_000.0)
            ctx.emit("after")
            yield Exit()

        kernel = make_kernel()
        kernel.spawn("p", body)
        run = kernel.run(Q)
        assert run.events_of_kind("after")[0].time_us == pytest.approx(3_000.0)


class TestRoundRobin:
    def test_two_busy_processes_share_alternating_quanta(self):
        log_cfg = KernelConfig(sched_overhead_us=0.0, record_sched_log=True)
        kernel = make_kernel(config=log_cfg)

        def busy(ctx):
            yield SpinUntil(6 * Q)

        kernel.spawn("p1", busy)
        kernel.spawn("p2", busy)
        run = kernel.run(6 * Q)
        picked = [d.name for d in run.sched_log]
        assert picked == ["p1", "p2", "p1", "p2", "p1", "p2"]

    def test_blocked_process_frees_quantum_remainder(self):
        kernel = make_kernel()

        def short(ctx):
            yield Compute(cpu_work_us(2_000.0))
            yield Exit()

        def longer(ctx):
            yield Compute(cpu_work_us(4_000.0))
            yield Exit()

        kernel.spawn("short", short)
        kernel.spawn("longer", longer)
        run = kernel.run(Q)
        assert run.quanta[0].utilization == pytest.approx(0.6)

    def test_exit_removes_process(self):
        kernel = make_kernel()

        def body(ctx):
            yield Compute(cpu_work_us(1_000.0))
            yield Exit()

        kernel.spawn("p", body)
        run = kernel.run(3 * Q)
        assert run.utilizations() == pytest.approx([0.1, 0.0, 0.0])

    def test_generator_return_acts_as_exit(self):
        kernel = make_kernel()

        def body(ctx):
            yield Compute(cpu_work_us(1_000.0))

        kernel.spawn("p", body)
        run = kernel.run(2 * Q)
        assert run.utilizations() == pytest.approx([0.1, 0.0])


class TestGovernorIntegration:
    def test_constant_governor_applies_once(self):
        kernel = make_kernel(governor=ConstantGovernor(step_index=0))
        run = kernel.run(5 * Q)
        assert run.clock_changes == 1
        assert run.freq_changes[0].from_mhz == pytest.approx(206.4)
        assert run.freq_changes[0].to_mhz == pytest.approx(59.0)
        # change happens at the first tick, so quantum 1 is still 206.4
        assert run.quanta[0].mhz == pytest.approx(206.4)
        assert run.quanta[1].mhz == pytest.approx(59.0)

    def test_frequency_stall_charged(self):
        kernel = make_kernel(governor=ConstantGovernor(step_index=0))
        run = kernel.run(2 * Q)
        assert run.clock_stall_us == pytest.approx(200.0)
        # The stall is accounted as busy time of the following quantum.
        assert run.quanta[1].busy_us == pytest.approx(200.0)

    def test_governor_sees_previous_quantum_utilization(self):
        seen = []

        class Spy(Governor):
            def on_tick(self, info):
                seen.append(info.utilization)
                return None

        kernel = make_kernel(governor=Spy())

        def body(ctx):
            yield Compute(cpu_work_us(4_000.0))
            yield Exit()

        kernel.spawn("p", body)
        # The terminal tick only closes the last quantum (no governor
        # call), so run three quanta to observe two decisions.
        kernel.run(3 * Q)
        assert seen[0] == pytest.approx(0.4)
        assert seen[1] == pytest.approx(0.0)

    def test_work_stretches_after_downclock(self):
        kernel = make_kernel(governor=ConstantGovernor(step_index=0))

        def body(ctx):
            # 30 ms of CPU at 206.4; the governor drops to 59 MHz at the
            # first tick, so the tail runs 206.4/59 = 3.5x slower.
            yield Compute(cpu_work_us(30_000.0))
            ctx.emit("done")
            yield Exit()

        kernel.spawn("p", body)
        run = kernel.run(100 * Q)
        done = run.events_of_kind("done")[0]
        # 10 ms at 206.4, stall 200 us, then 20 ms * 3.4983 at 59.
        expected = 10_000.0 + 200.0 + 20_000.0 * (206.4 / 59.0)
        assert done.time_us == pytest.approx(expected, rel=1e-6)


class TestLivelockGuards:
    def test_yield_ping_pong_detected(self):
        kernel = make_kernel()

        def body(ctx):
            while True:
                yield Yield()

        kernel.spawn("a", body)
        kernel.spawn("b", body)
        with pytest.raises(RuntimeError):
            kernel.run(Q)

    def test_zero_compute_loop_detected(self):
        kernel = make_kernel()

        def body(ctx):
            while True:
                yield Compute(Work())

        kernel.spawn("spin0", body)
        with pytest.raises(RuntimeError):
            kernel.run(Q)


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        def build():
            kernel = make_kernel()

            def body(ctx):
                for n in range(20):
                    yield Compute(cpu_work_us(3_000.0))
                    yield Sleep(7_000.0)

            kernel.spawn("p", body)
            return kernel.run(50 * Q)

        r1, r2 = build(), build()
        assert r1.utilizations() == r2.utilizations()
        assert r1.energy_joules() == pytest.approx(r2.energy_joules())
