"""Tests for the pluggable run-recorder layer.

The contract that matters is bitwise equivalence: minimal recording must
report exactly the numbers full recording reports (energy, mean power,
mean utilization, final step), because the sweep cache deliberately keys
results without the recording mode.
"""

import pytest

from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.kernel.governor import Governor, GovernorRequest
from repro.kernel.process import Sleep, SpinUntil
from repro.kernel.recorders import (
    EnergyMeterRecorder,
    QuantumStatsRecorder,
    RunRecorder,
    SchedLogRecorder,
    default_recorders,
    minimal_recorders,
    recorders_for,
)
from repro.kernel.scheduler import Kernel, KernelConfig

Q = 10_000.0


class Zigzag(Governor):
    """Bounces across the clock table to exercise freq/volt machinery."""

    def __init__(self):
        self.tick = 0

    def on_tick(self, info):
        self.tick += 1
        return GovernorRequest(step_index=0 if self.tick % 2 else 10)


def busy_body(ctx):
    yield SpinUntil(2 * Q)
    yield Sleep(Q)
    yield SpinUntil(6 * Q)


def run_with(recorders=None, config=None):
    config = config if config is not None else KernelConfig()
    kernel = Kernel(
        ItsyMachine(ItsyConfig()), Zigzag(), config, recorders=recorders
    )
    kernel.spawn("busy", busy_body)
    return kernel.run(8 * Q)


class TestRecorderSets:
    def test_default_set_populates_everything(self):
        run = run_with()
        assert len(run.quanta) == 8
        assert len(run.timeline) > 0
        assert run.freq_changes, "zigzag governor must log clock changes"
        assert run.volt_changes == []  # 1.5 V is safe at every step

    def test_minimal_set_skips_logs(self):
        run = run_with(minimal_recorders(KernelConfig()))
        assert run.quanta == []
        assert len(run.timeline) == 0
        assert run.freq_changes == []
        assert run.energy is not None
        assert run.quantum_stats is not None

    def test_sched_log_only_when_configured(self):
        config = KernelConfig(record_sched_log=True)
        assert any(
            isinstance(r, SchedLogRecorder) for r in default_recorders(config)
        )
        assert any(
            isinstance(r, SchedLogRecorder) for r in minimal_recorders(config)
        )
        run = run_with(minimal_recorders(config), config=config)
        assert run.sched_log

    def test_recorders_for_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown recording mode"):
            recorders_for("verbose", KernelConfig())


class TestBitwiseEquivalence:
    def test_energy_and_means_bitwise_equal(self):
        full = run_with()
        minimal = run_with(minimal_recorders(KernelConfig()))
        assert minimal.energy_joules() == full.energy_joules()
        assert minimal.mean_power_w() == full.mean_power_w()
        assert minimal.mean_utilization() == full.mean_utilization()
        assert minimal.duration_us == full.duration_us

    def test_quantum_stats_match_full_log(self):
        full = run_with()
        stats = run_with(minimal_recorders(KernelConfig())).quantum_stats
        assert stats.count == len(full.quanta)
        assert stats.final_step_index == full.quanta[-1].step_index
        assert stats.final_mhz == full.quanta[-1].mhz
        by_step = {}
        for q in full.quanta:
            by_step[q.step_index] = by_step.get(q.step_index, 0) + 1
        assert stats.quanta_by_step == by_step
        assert stats.mhz_by_step == {
            q.step_index: q.mhz for q in full.quanta
        }

    def test_counters_identical_across_modes(self):
        full = run_with()
        minimal = run_with(minimal_recorders(KernelConfig()))
        assert minimal.clock_changes == full.clock_changes
        assert minimal.clock_stall_us == full.clock_stall_us
        assert minimal.voltage_changes == full.voltage_changes
        assert minimal.busy_us_by_pid == full.busy_us_by_pid


class TestStreamingMeters:
    def test_energy_meter_replicates_timeline_merge(self):
        full = run_with()
        meter = EnergyMeterRecorder()
        for start, end, watts in full.timeline:
            meter.on_power(start, end, watts)
        totals = meter.totals()
        assert totals.energy_j == full.timeline.energy_joules()
        assert totals.start_us == full.timeline.start_us
        assert totals.end_us == full.timeline.end_us

    def test_energy_meter_rejects_negative_power(self):
        with pytest.raises(ValueError):
            EnergyMeterRecorder().on_power(0.0, 1.0, -0.1)

    def test_empty_meters_are_benign(self):
        totals = EnergyMeterRecorder().totals()
        assert totals.energy_j == 0.0
        assert totals.mean_power_w() == 0.0
        assert QuantumStatsRecorder().stats().mean_utilization() == 0.0


class TestCustomRecorder:
    def test_only_overridden_hooks_are_wired(self):
        seen = []

        class QuantumCounter(RunRecorder):
            def on_quantum(self, record):
                seen.append(record.end_us)

        run = run_with([QuantumCounter()])
        assert len(seen) == 8
        # Nothing contributed: the run keeps its empty defaults.
        assert run.quanta == []
        assert run.energy is None
