"""Tests for the pluggable execution-backend registry."""

import pytest

from repro.core.catalog import resolve_policy
from repro.kernel.backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    FORCE_BACKEND_ENV,
    ExecutionBackend,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.kernel.fastpath import FastKernel
from repro.kernel.scheduler import Kernel
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert backend_names() == ["fastpath", "reference"]

    def test_default_is_fastpath(self, monkeypatch):
        # Clear any forced backend: CI runs the whole suite once under
        # REPRO_FORCE_BACKEND=reference, and this test is about the
        # *unforced* default.
        monkeypatch.delenv(FORCE_BACKEND_ENV, raising=False)
        assert DEFAULT_BACKEND == "fastpath"
        assert resolve_backend(None) is BACKENDS["fastpath"]

    def test_resolve_by_name(self):
        assert resolve_backend("reference") is BACKENDS["reference"]
        assert resolve_backend("fastpath") is BACKENDS["fastpath"]

    def test_resolve_instance_passthrough(self):
        backend = BACKENDS["reference"]
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected_with_known_names(self):
        with pytest.raises(ValueError, match="unknown backend 'batch'"):
            resolve_backend("batch")
        with pytest.raises(ValueError, match="fastpath, reference"):
            resolve_backend("batch")

    def test_register_seam_for_future_backends(self):
        class BatchBackend(ExecutionBackend):
            name = "test-batch"

        backend = BatchBackend()
        try:
            assert register_backend(backend) is backend
            assert resolve_backend("test-batch") is backend
            assert "test-batch" in backend_names()
        finally:
            del BACKENDS["test-batch"]

    def test_base_build_kernel_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ExecutionBackend().build_kernel(machine=None)


class TestBuildKernel:
    def test_reference_builds_reference_kernel(self):
        from repro.hw.machines import MachineSpec

        kernel = resolve_backend("reference").build_kernel(
            MachineSpec("itsy").build()
        )
        assert type(kernel) is Kernel

    def test_fastpath_builds_fast_kernel(self):
        from repro.hw.machines import MachineSpec

        kernel = resolve_backend("fastpath").build_kernel(
            MachineSpec("itsy").build()
        )
        assert isinstance(kernel, FastKernel)


class TestForceEnv:
    """``REPRO_FORCE_BACKEND`` overrides only the *default* resolution."""

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(FORCE_BACKEND_ENV, "reference")
        assert resolve_backend(None) is BACKENDS["reference"]

    def test_env_does_not_override_explicit_choice(self, monkeypatch):
        # Differential harnesses name both backends explicitly; a forced
        # CI leg must not collapse them onto one backend.
        monkeypatch.setenv(FORCE_BACKEND_ENV, "reference")
        assert resolve_backend("fastpath") is BACKENDS["fastpath"]

    def test_env_unknown_name_rejected(self, monkeypatch):
        monkeypatch.setenv(FORCE_BACKEND_ENV, "warp")
        with pytest.raises(ValueError, match="unknown backend 'warp'"):
            resolve_backend(None)

    def test_empty_env_means_default(self, monkeypatch):
        monkeypatch.setenv(FORCE_BACKEND_ENV, "")
        assert resolve_backend(None) is BACKENDS[DEFAULT_BACKEND]

    def test_forced_run_matches_explicit_reference(self, monkeypatch):
        workload = mpeg_workload(MpegConfig(duration_s=0.3))
        gov = resolve_policy("best")
        explicit = run_workload(
            workload, gov, use_daq=False, backend="reference"
        )
        monkeypatch.setenv(FORCE_BACKEND_ENV, "reference")
        forced = run_workload(workload, gov, use_daq=False)
        assert forced.exact_energy_j == explicit.exact_energy_j
        assert forced.run.quanta == explicit.run.quanta
