"""Scheduler edge cases: wake ordering, run-end boundaries, spawn order,
and the zero-progress guards (on both kernel cores)."""

import pytest

from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.hw.work import Work
from repro.kernel.fastpath import FastKernel
from repro.kernel.process import Compute, Exit, Sleep, SleepUntil, SpinUntil, Yield
from repro.kernel.scheduler import Kernel, KernelConfig

Q = 10_000.0
CFG = KernelConfig(sched_overhead_us=0.0)


def make_kernel(fastpath: bool = False):
    machine = ItsyMachine(ItsyConfig())
    if fastpath:
        return FastKernel(machine, config=CFG)
    return Kernel(machine, config=CFG)


class TestWakeOrdering:
    def test_simultaneous_wakes_run_in_pid_order(self):
        order = []

        def sleeper(name):
            def body(ctx):
                yield SleepUntil(30_000.0)
                order.append(name)
                yield Exit()

            return body

        kernel = make_kernel()
        kernel.spawn("a", sleeper("a"))  # pid 1
        kernel.spawn("b", sleeper("b"))  # pid 2
        kernel.spawn("c", sleeper("c"))  # pid 3
        kernel.run(5 * Q)
        assert order == ["a", "b", "c"]

    def test_earlier_wake_runs_first(self):
        order = []

        def sleeper(name, wake):
            def body(ctx):
                yield SleepUntil(wake)
                order.append(name)
                yield Exit()

            return body

        kernel = make_kernel()
        kernel.spawn("late", sleeper("late", 40_000.0))
        kernel.spawn("early", sleeper("early", 20_000.0))
        kernel.run(6 * Q)
        assert order == ["early", "late"]


class TestRunEndBoundaries:
    def test_sleep_beyond_run_end_is_harmless(self):
        kernel = make_kernel()

        def body(ctx):
            yield Sleep(10 * Q)  # wake far past the 2-quantum run
            ctx.emit("woke")
            yield Exit()

        kernel.spawn("p", body)
        run = kernel.run(2 * Q)
        assert run.events_of_kind("woke") == []
        assert len(run.quanta) == 2

    def test_compute_truncated_at_run_end(self):
        kernel = make_kernel()

        def body(ctx):
            yield Compute(Work(cpu_cycles=206.4 * 100_000.0))  # 100 ms
            ctx.emit("done")
            yield Exit()

        kernel.spawn("p", body)
        run = kernel.run(3 * Q)
        assert run.events_of_kind("done") == []
        assert run.mean_utilization() == pytest.approx(1.0)

    def test_event_exactly_at_run_end_is_recorded(self):
        kernel = make_kernel()

        def body(ctx):
            yield Compute(Work(cpu_cycles=206.4 * 2 * Q))  # exactly 2 quanta
            ctx.emit("done")
            yield Exit()

        kernel.spawn("p", body)
        run = kernel.run(2 * Q)
        # The compute fills the run exactly; the emit would land at the
        # boundary -- whether it fires depends on float rounding, but the
        # accounting must be exact either way.
        assert run.mean_utilization() == pytest.approx(1.0)


@pytest.mark.parametrize("fastpath", [False, True], ids=["reference", "fastpath"])
class TestZeroProgressGuards:
    """`_MAX_ZERO_PROGRESS_ACTIONS` turns runaway bodies into clear errors.

    A buggy process body that never advances simulated time (empty compute
    requests, already-expired spins, or endless zero-duration yields) must
    not hang the simulator: the guard raises a RuntimeError naming the
    culprit and the simulated time.  Both kernel cores behave identically.
    """

    def test_empty_compute_storm_names_the_process(self, fastpath):
        kernel = make_kernel(fastpath)

        def body(ctx):
            while True:
                yield Compute(Work())  # zero cycles: no time can pass

        kernel.spawn("looper", body)
        with pytest.raises(
            RuntimeError,
            match=r"process looper \(pid 1\) makes no progress at t=0\.0 us",
        ):
            kernel.run(2 * Q)

    def test_expired_spin_storm_names_the_process(self, fastpath):
        kernel = make_kernel(fastpath)

        def body(ctx):
            while True:
                yield SpinUntil(0.0)  # already in the past: zero duration

        kernel.spawn("spinner", body)
        with pytest.raises(
            RuntimeError,
            match=r"process spinner \(pid 1\) makes no progress at t=0\.0 us",
        ):
            kernel.run(2 * Q)

    def test_yield_storm_trips_the_simulation_guard(self, fastpath):
        # A pure Yield loop bounces through the run queue without entering
        # the per-process action loop, so the outer simulation-level guard
        # catches it instead.
        kernel = make_kernel(fastpath)

        def body(ctx):
            while True:
                yield Yield()

        kernel.spawn("yielder", body)
        with pytest.raises(
            RuntimeError, match=r"simulation makes no progress at t=0\.0 us"
        ):
            kernel.run(2 * Q)

    def test_zero_duration_sleep_storm_trips_the_simulation_guard(self, fastpath):
        kernel = make_kernel(fastpath)

        def body(ctx):
            while True:
                yield Sleep(0.0)  # degenerates to a yield

        kernel.spawn("napper", body)
        with pytest.raises(
            RuntimeError, match=r"simulation makes no progress at t=0\.0 us"
        ):
            kernel.run(2 * Q)

    def test_guard_reports_the_simulated_time(self, fastpath):
        kernel = make_kernel(fastpath)

        def body(ctx):
            yield SleepUntil(3 * Q)
            while True:
                yield Compute(Work())

        kernel.spawn("late-looper", body)
        with pytest.raises(
            RuntimeError,
            match=r"process late-looper \(pid 1\) makes no progress "
                  r"at t=30000\.0 us",
        ):
            kernel.run(6 * Q)

    def test_bounded_zero_progress_is_tolerated(self, fastpath):
        # Fewer than the guard limit of empty actions is legal; the body
        # then proceeds and the run completes normally.
        kernel = make_kernel(fastpath)

        def body(ctx):
            for _ in range(100):
                yield Compute(Work())
            yield Compute(Work(cpu_cycles=206.4 * 100.0))
            ctx.emit("done")
            yield Exit()

        kernel.spawn("bursty", body)
        run = kernel.run(2 * Q)
        assert len(run.events_of_kind("done")) == 1


class TestSpawnSemantics:
    def test_spawn_order_sets_pid_order(self):
        kernel = make_kernel()
        p1 = kernel.spawn("first", lambda ctx: iter(()))
        p2 = kernel.spawn("second", lambda ctx: iter(()))
        assert p1.pid == 1
        assert p2.pid == 2

    def test_empty_process_body_exits_cleanly(self):
        kernel = make_kernel()
        kernel.spawn("noop", lambda ctx: iter(()))
        run = kernel.run(2 * Q)
        assert run.mean_utilization() == 0.0

    def test_many_short_lived_processes(self):
        kernel = make_kernel()
        for i in range(50):
            def body(ctx, i=i):
                yield Compute(Work(cpu_cycles=206.4 * 100.0))
                ctx.emit("done", payload=float(i))
                yield Exit()

            kernel.spawn(f"p{i}", body)
        run = kernel.run(10 * Q)
        assert len(run.events_of_kind("done")) == 50
