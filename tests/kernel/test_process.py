"""Tests for the process model."""

import pytest

from repro.hw.work import Work
from repro.kernel.process import (
    Compute,
    Exit,
    Process,
    ProcessContext,
    ProcessState,
    Sleep,
    SleepUntil,
    SpinUntil,
    Yield,
)


class TestActions:
    def test_sleep_rejects_negative(self):
        with pytest.raises(ValueError):
            Sleep(-1.0)

    def test_actions_are_value_objects(self):
        assert Sleep(5.0) == Sleep(5.0)
        assert SleepUntil(7.0) == SleepUntil(7.0)
        assert SpinUntil(3.0) == SpinUntil(3.0)
        assert Yield() == Yield()
        assert Exit() == Exit()
        assert Compute(Work(1.0)) == Compute(Work(1.0))


class TestProcessContext:
    def test_emit_records_event_at_now(self):
        ctx = ProcessContext(pid=3, name="p")
        ctx.now_us = 1234.0
        event = ctx.emit("frame", deadline_us=2000.0, payload=7.0)
        assert event.time_us == 1234.0
        assert event.pid == 3
        assert event.kind == "frame"
        assert event.deadline_us == 2000.0
        assert event.payload == 7.0
        assert ctx.events == [event]

    def test_emit_without_deadline(self):
        ctx = ProcessContext(pid=1, name="p")
        event = ctx.emit("tick")
        assert event.deadline_us is None
        assert event.on_time


class TestProcess:
    def test_pid_zero_reserved(self):
        with pytest.raises(ValueError):
            Process(0, "idle", lambda ctx: iter(()))

    def test_advance_yields_actions_then_none(self):
        def body(ctx):
            yield Sleep(10.0)
            yield Exit()

        proc = Process(1, "p", body)
        assert proc.advance(0.0) == Sleep(10.0)
        assert proc.advance(5.0) == Exit()
        assert proc.advance(6.0) is None

    def test_advance_updates_context_time(self):
        seen = []

        def body(ctx):
            seen.append(ctx.now_us)
            yield Yield()
            seen.append(ctx.now_us)

        proc = Process(1, "p", body)
        proc.advance(100.0)
        proc.advance(250.0)
        assert seen == [100.0, 250.0]

    def test_initial_state_runnable(self):
        proc = Process(2, "p", lambda ctx: iter(()))
        assert proc.state is ProcessState.RUNNABLE
        assert proc.pending_work is None
        assert proc.spin_until_us is None
        assert proc.wake_us is None
