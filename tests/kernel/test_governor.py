"""Tests for the governor interface and voltage/frequency sequencing."""

import pytest

from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.hw.rails import VOLTAGE_HIGH, VOLTAGE_LOW
from repro.kernel.governor import ConstantGovernor, Governor, GovernorRequest, TickInfo
from repro.kernel.scheduler import Kernel, KernelConfig

Q = 10_000.0
CFG = KernelConfig(sched_overhead_us=0.0)


def tick_info(**overrides):
    base = dict(
        now_us=Q,
        utilization=0.5,
        busy_us=5_000.0,
        quantum_us=Q,
        step_index=10,
        mhz=206.4,
        volts=VOLTAGE_HIGH,
        max_step_index=10,
    )
    base.update(overrides)
    return TickInfo(**base)


class ScriptedGovernor(Governor):
    """Issues a fixed list of requests, one per tick."""

    def __init__(self, requests):
        self.requests = list(requests)
        self._i = 0

    def on_tick(self, info):
        if self._i < len(self.requests):
            req = self.requests[self._i]
            self._i += 1
            return req
        return None

    def reset(self):
        self._i = 0


class TestGovernorRequest:
    def test_noop_detection(self):
        assert GovernorRequest().is_noop
        assert not GovernorRequest(step_index=3).is_noop
        assert not GovernorRequest(volts=VOLTAGE_LOW).is_noop


class TestConstantGovernor:
    def test_requests_once_then_silent(self):
        gov = ConstantGovernor(step_index=5)
        first = gov.on_tick(tick_info())
        assert first == GovernorRequest(step_index=5, volts=None)
        assert gov.on_tick(tick_info()) is None

    def test_reset_rearms(self):
        gov = ConstantGovernor(step_index=5)
        gov.on_tick(tick_info())
        gov.reset()
        assert gov.on_tick(tick_info()) is not None


class TestVoltageSequencing:
    def test_scale_down_then_voltage_drop(self):
        gov = ScriptedGovernor([GovernorRequest(step_index=0, volts=VOLTAGE_LOW)])
        kernel = Kernel(ItsyMachine(ItsyConfig()), gov, CFG)
        run = kernel.run(3 * Q)
        assert run.clock_changes == 1
        assert run.voltage_changes == 1
        assert run.volt_changes[0].to_volts == VOLTAGE_LOW
        assert run.volt_changes[0].settle_us == pytest.approx(250.0)
        assert kernel.machine.volts == VOLTAGE_LOW

    def test_scale_up_raises_voltage_first(self):
        # Start low and slow; a single request for fast+high must succeed
        # because the kernel raises the voltage before the frequency.
        gov = ScriptedGovernor(
            [
                GovernorRequest(step_index=0, volts=VOLTAGE_LOW),
                GovernorRequest(step_index=10, volts=VOLTAGE_HIGH),
            ]
        )
        kernel = Kernel(ItsyMachine(ItsyConfig()), gov, CFG)
        run = kernel.run(4 * Q)
        assert kernel.machine.step.mhz == pytest.approx(206.4)
        assert kernel.machine.volts == VOLTAGE_HIGH
        assert run.voltage_changes == 2
        # the upward transition is instantaneous
        assert run.volt_changes[1].settle_us == 0.0

    def test_rail_sag_keeps_old_voltage_power_briefly(self):
        # After a voltage drop the power stays at the 1.5 V level for the
        # 250 us sag window.
        gov = ScriptedGovernor([GovernorRequest(step_index=0, volts=VOLTAGE_LOW)])
        kernel = Kernel(ItsyMachine(ItsyConfig()), gov, CFG)
        run = kernel.run(3 * Q)
        from repro.hw.power import CoreState, PowerModel

        model = PowerModel()
        step_59 = kernel.machine.clock_table.min_step
        nap_hi = model.total_w(step_59, VOLTAGE_HIGH, CoreState.NAP)
        nap_lo = model.total_w(step_59, VOLTAGE_LOW, CoreState.NAP)
        # Power right after the change (during sag): still the 1.5 V level.
        t_change = run.volt_changes[0].time_us
        assert run.timeline.power_at(t_change + 100.0) == pytest.approx(nap_hi)
        # After the sag window: the 1.23 V level.
        assert run.timeline.power_at(t_change + 300.0) == pytest.approx(nap_lo)


class TestTickInfo:
    def test_fields_reflect_machine_and_quantum(self):
        captured = []

        class Spy(Governor):
            def on_tick(self, info):
                captured.append(info)
                return None

        kernel = Kernel(ItsyMachine(ItsyConfig(initial_mhz=132.7)), Spy(), CFG)
        kernel.run(2 * Q)
        assert captured[0].mhz == pytest.approx(132.7)
        assert captured[0].step_index == 5
        assert captured[0].max_step_index == 10
        assert captured[0].quantum_us == Q
        assert captured[0].now_us == Q
