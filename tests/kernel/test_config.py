"""Tests for kernel configuration and run-record conveniences."""

import pytest

from repro.kernel.scheduler import KernelConfig


class TestKernelConfigValidation:
    def test_defaults(self):
        cfg = KernelConfig()
        assert cfg.quantum_us == 10_000.0
        assert cfg.sched_overhead_us == 6.0
        assert cfg.record_sched_log is False

    def test_quantum_must_be_positive(self):
        with pytest.raises(ValueError):
            KernelConfig(quantum_us=0.0)
        with pytest.raises(ValueError):
            KernelConfig(quantum_us=-10.0)

    def test_overhead_must_be_non_negative(self):
        with pytest.raises(ValueError):
            KernelConfig(sched_overhead_us=-1.0)

    def test_overhead_below_quantum(self):
        with pytest.raises(ValueError):
            KernelConfig(quantum_us=100.0, sched_overhead_us=100.0)
        KernelConfig(quantum_us=100.0, sched_overhead_us=99.0)

    def test_frozen(self):
        cfg = KernelConfig()
        with pytest.raises(Exception):
            cfg.quantum_us = 5_000.0  # type: ignore[misc]


class TestRunRecordViews:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.core.catalog import best_policy
        from repro.measure.runner import run_workload
        from repro.workloads.mpeg import MpegConfig, mpeg_workload

        return run_workload(
            mpeg_workload(MpegConfig(duration_s=5.0)),
            best_policy,
            seed=0,
            use_daq=False,
        ).run

    def test_series_views_consistent(self, run):
        assert len(run.utilizations()) == len(run.quanta)
        assert len(run.mhz_series()) == len(run.quanta)
        assert run.mean_utilization() == pytest.approx(
            sum(run.utilizations()) / len(run.quanta)
        )

    def test_events_of_kind_partitions(self, run):
        kinds = {e.kind for e in run.events}
        total = sum(len(run.events_of_kind(k)) for k in kinds)
        assert total == len(run.events)

    def test_deadline_misses_tolerance_monotone(self, run):
        strict = len(run.deadline_misses(tolerance_us=0.0))
        loose = len(run.deadline_misses(tolerance_us=100_000.0))
        assert loose <= strict

    def test_energy_equals_timeline_integral(self, run):
        assert run.energy_joules() == pytest.approx(run.timeline.energy_joules())

    def test_version_exposed(self):
        import repro

        assert repro.__version__ == "1.0.0"
