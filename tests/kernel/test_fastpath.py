"""Execution-backend equivalence: fastpath ≡ reference, bitwise.

The fast-path backend (:mod:`repro.kernel.fastpath`) is only allowed to
be faster — never different.  These tests drive every catalog policy ×
workload × machine through both backends and assert bitwise equality of
everything a run records: energies (exact and DAQ-sampled), deadline
misses, the quantum log, the power timeline, clock/voltage transition
logs and counters, per-pid busy accounting, and application events.
Exception behaviour must match too (e.g. the stock Itsy rejecting the
1.23 V request of ``best-voltage``) — same type, same message.  The
observed grid re-runs the whole grid with trace, metrics and diagnosis
observers attached to both backends and demands identical observer
output, not just identical runs.
"""

import pytest

from repro.core.catalog import resolve_policy
from repro.hw.machines import MachineSpec
from repro.kernel.fastpath import FastKernel
from repro.kernel.recorders import RECORDING_MINIMAL
from repro.measure.parallel import (
    PolicySpec,
    ResultCache,
    SweepCell,
    SweepEngine,
    WorkloadSpec,
)
from repro.measure.runner import run_workload
from repro.obs.diagnose import diagnose
from repro.obs.metrics import KernelMetricsRecorder, MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.workloads.chess import ChessConfig, chess_workload
from repro.workloads.editor import EditorConfig, editor_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload
from repro.workloads.web import WebConfig, web_workload

DURATION_S = 2.0

MACHINES = ["itsy", "itsy-stock", "sa2", "itsy@1.23", "itsy-reconf"]

#: Every policy family in the catalog grammar.  ``const-min``/``const-max``
#: are placeholders resolved against each machine's own clock table.
POLICY_KEYS = [
    "best",
    "best-voltage",
    "past-one",
    "past-double",
    "past-peg",
    "past-peg-98-93",
    "avg3-double",
    "avg9-peg",
    "cycleavg",
    "synth",
    "const-min",
    "const-max",
]

WORKLOAD_BUILDERS = {
    "mpeg": lambda s: mpeg_workload(MpegConfig(duration_s=s)),
    "web": lambda s: web_workload(WebConfig(duration_s=s)),
    "chess": lambda s: chess_workload(ChessConfig(duration_s=s)),
    "editor": lambda s: editor_workload(EditorConfig(duration_s=s)),
}


def policy_name(key: str, spec: MachineSpec) -> str:
    table = spec.clock_table()
    if key == "const-min":
        return f"const-{table.min_step.mhz:.1f}"
    if key == "const-max":
        return f"const-{table.max_step.mhz:.1f}"
    return key


def run_one(
    workload_name,
    policy,
    spec,
    backend,
    recording="full",
    use_daq=False,
    seed=0,
    duration_s=DURATION_S,
    extra_recorders=None,
):
    workload = WORKLOAD_BUILDERS[workload_name](duration_s)
    factory = resolve_policy(policy, clock_table=spec.clock_table())
    return run_workload(
        workload,
        factory,
        machine_factory=spec,
        seed=seed,
        use_daq=use_daq,
        recording=recording,
        extra_recorders=extra_recorders,
        backend=backend,
    )


def assert_bitwise_equal(ref, fast):
    """Every recorded number must match exactly — no tolerances."""
    assert fast.energy_j == ref.energy_j
    assert fast.exact_energy_j == ref.exact_energy_j
    assert fast.mean_power_w == ref.mean_power_w
    assert fast.misses == ref.misses
    rr, fr = ref.run, fast.run
    assert fr.duration_us == rr.duration_us
    assert fr.quanta == rr.quanta
    assert fr.timeline._segments == rr.timeline._segments
    assert fr.freq_changes == rr.freq_changes
    assert fr.volt_changes == rr.volt_changes
    assert fr.events == rr.events
    assert fr.busy_us_by_pid == rr.busy_us_by_pid
    assert fr.process_names == rr.process_names
    assert fr.clock_changes == rr.clock_changes
    assert fr.clock_stall_us == rr.clock_stall_us
    assert fr.voltage_changes == rr.voltage_changes
    assert fr.voltage_settle_us == rr.voltage_settle_us


class TestCatalogGrid:
    """The acceptance grid: every policy × workload × machine, both backends."""

    @pytest.mark.parametrize("machine", MACHINES)
    @pytest.mark.parametrize("workload", sorted(WORKLOAD_BUILDERS))
    @pytest.mark.parametrize("key", POLICY_KEYS)
    def test_backends_bitwise_equal(self, key, workload, machine):
        spec = MachineSpec.parse(machine)
        policy = policy_name(key, spec)
        ref = fast = ref_exc = fast_exc = None
        try:
            ref = run_one(workload, policy, spec, backend="reference")
        except Exception as exc:  # noqa: BLE001 - parity check below
            ref_exc = exc
        try:
            fast = run_one(workload, policy, spec, backend="fastpath")
        except Exception as exc:  # noqa: BLE001 - parity check below
            fast_exc = exc
        if ref_exc is not None or fast_exc is not None:
            # Both backends must fail identically (e.g. best-voltage on
            # the stock Itsy: "this Itsy unit does not support 1.23 V").
            assert type(fast_exc) is type(ref_exc)
            assert str(fast_exc) == str(ref_exc)
            return
        assert_bitwise_equal(ref, fast)


def observed_run(workload, policy, spec, backend, duration_s):
    """One observed run: trace + metrics + diagnosis on ``backend``."""
    tracer = TraceRecorder()
    registry = MetricsRegistry()
    result = run_one(
        workload, policy, spec, backend=backend, duration_s=duration_s,
        extra_recorders=[tracer, KernelMetricsRecorder(registry)],
    )
    diagnosis = diagnose(
        result,
        policy=policy,
        workload=workload,
        machine=spec,
        machine_label=spec.label,
        baseline_j=None,
    )
    return result, tracer, registry.snapshot(), diagnosis


class TestObservedGrid:
    """The same grid, observed: trace + metrics + diagnosis recorders
    attached on both backends must leave runs bitwise-identical and
    produce identical observer output (no fallback path remains)."""

    OBSERVED_DURATION_S = 1.0

    @pytest.mark.parametrize("machine", MACHINES)
    @pytest.mark.parametrize("workload", sorted(WORKLOAD_BUILDERS))
    @pytest.mark.parametrize("key", POLICY_KEYS)
    def test_observers_identical_across_backends(self, key, workload, machine):
        spec = MachineSpec.parse(machine)
        policy = policy_name(key, spec)
        outcomes = {}
        errors = {}
        for backend in ("reference", "fastpath"):
            try:
                outcomes[backend] = observed_run(
                    workload, policy, spec, backend, self.OBSERVED_DURATION_S
                )
            except Exception as exc:  # noqa: BLE001 - parity check below
                errors[backend] = exc
        if errors:
            ref_exc = errors.get("reference")
            fast_exc = errors.get("fastpath")
            assert type(fast_exc) is type(ref_exc)
            assert str(fast_exc) == str(ref_exc)
            return
        ref, ref_trace, ref_snap, ref_diag = outcomes["reference"]
        fast, fast_trace, fast_snap, fast_diag = outcomes["fastpath"]
        assert_bitwise_equal(ref, fast)
        # Trace buffers: every stream, element for element.
        assert fast_trace.quanta == ref_trace.quanta
        assert fast_trace.freq_changes == ref_trace.freq_changes
        assert fast_trace.volt_changes == ref_trace.volt_changes
        assert fast_trace.power == ref_trace.power
        assert fast_trace.decisions == ref_trace.decisions
        # Metrics: identical counters, gauges and histograms.
        assert fast_snap == ref_snap
        # Diagnosis: the full report, field for field.
        assert fast_diag.to_json() == ref_diag.to_json()


class TestRecordingModes:
    @pytest.mark.parametrize("key", POLICY_KEYS)
    def test_minimal_recording_matches_reference(self, key):
        spec = MachineSpec.parse("itsy")
        policy = policy_name(key, spec)
        ref = run_one(
            "mpeg", policy, spec, "reference", recording=RECORDING_MINIMAL
        )
        fast = run_one(
            "mpeg", policy, spec, "fastpath", recording=RECORDING_MINIMAL
        )
        assert fast.exact_energy_j == ref.exact_energy_j
        assert fast.run.energy == ref.run.energy
        assert fast.run.quantum_stats == ref.run.quantum_stats
        assert fast.run.busy_us_by_pid == ref.run.busy_us_by_pid

    def test_minimal_equals_full_on_fastpath(self):
        spec = MachineSpec.parse("itsy")
        full = run_one("mpeg", "best", spec, "fastpath")
        minimal = run_one(
            "mpeg", "best", spec, "fastpath", recording=RECORDING_MINIMAL
        )
        assert minimal.exact_energy_j == full.exact_energy_j
        assert minimal.run.quantum_stats.count == len(full.run.quanta)

    def test_unknown_recording_mode_rejected(self):
        spec = MachineSpec.parse("itsy")
        with pytest.raises(ValueError, match="unknown recording mode"):
            FastKernel(spec(), recording="verbose")


class TestDaqPath:
    @pytest.mark.parametrize("workload", sorted(WORKLOAD_BUILDERS))
    def test_daq_energy_bitwise_equal(self, workload):
        spec = MachineSpec.parse("itsy")
        ref = run_one(workload, "best", spec, "reference", use_daq=True)
        fast = run_one(workload, "best", spec, "fastpath", use_daq=True)
        assert fast.energy_j == ref.energy_j
        assert fast.mean_power_w == ref.mean_power_w


class TestLongRuns:
    """Longer runs exercise DVFS settling, sag windows and preemption."""

    @pytest.mark.parametrize("policy", ["best", "best-voltage"])
    def test_30s_mpeg_bitwise_equal(self, policy):
        spec = MachineSpec.parse("itsy")
        ref = run_one("mpeg", policy, spec, "reference", duration_s=30.0)
        fast = run_one("mpeg", policy, spec, "fastpath", duration_s=30.0)
        assert_bitwise_equal(ref, fast)

    def test_sched_log_matches(self):
        from repro.kernel.scheduler import KernelConfig

        spec = MachineSpec.parse("itsy")
        cfg = KernelConfig(record_sched_log=True)
        workload = WORKLOAD_BUILDERS["mpeg"](DURATION_S)
        factory = resolve_policy("best", clock_table=spec.clock_table())
        ref = run_workload(
            workload, factory, machine_factory=spec, use_daq=False,
            kernel_config=cfg, backend="reference",
        )
        fast = run_workload(
            workload, factory, machine_factory=spec, use_daq=False,
            kernel_config=cfg, backend="fastpath",
        )
        assert fast.run.sched_log == ref.run.sched_log


class TestSweepIntegration:
    def test_fastpath_cell_result_bitwise_equal(self):
        base = dict(
            workload=WorkloadSpec("mpeg", MpegConfig(duration_s=0.4)),
            policy=PolicySpec("best"),
        )
        fast = SweepCell(backend="fastpath", **base).run()
        ref = SweepCell(backend="reference", **base).run()
        assert fast == ref

    def test_backends_share_cache(self, tmp_path):
        base = dict(
            workload=WorkloadSpec("mpeg", MpegConfig(duration_s=0.4)),
            policy=PolicySpec("best"),
        )
        cache = ResultCache(tmp_path)
        cold = SweepEngine(cache=cache)
        cold.run([SweepCell(backend="fastpath", **base)])
        assert cold.stats.executed == 1
        warm = SweepEngine(cache=cache)
        warm.run([SweepCell(backend="reference", **base)])
        assert warm.stats.cache_hits == 1
        assert warm.stats.executed == 0
