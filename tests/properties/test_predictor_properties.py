"""Property-based tests for predictors and the AVG_N filter algebra."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.smoothing import avg_n_convolve, avg_n_recursive
from repro.core.predictors import AvgN, WindowAverage

utilization_lists = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=200
)


class TestAvgNProperties:
    @given(series=utilization_lists, n=st.integers(0, 20))
    def test_output_bounded_by_input_range(self, series, n):
        predictor = AvgN(n)
        for w in predictor.feed(series):
            assert 0.0 <= w <= 1.0

    @given(series=utilization_lists, n=st.integers(0, 20))
    def test_convolution_form_always_matches(self, series, n):
        assert np.allclose(
            avg_n_convolve(series, n), avg_n_recursive(series, n), atol=1e-9
        )

    @given(
        level=st.floats(min_value=0.0, max_value=1.0),
        n=st.integers(0, 10),
    )
    def test_fixed_point_on_constant_input(self, level, n):
        predictor = AvgN(n, initial=level)
        assert predictor.observe(level) == np.float64(level) or abs(
            predictor.observe(level) - level
        ) < 1e-12

    @given(series=utilization_lists, n=st.integers(1, 20))
    def test_smoothing_never_overshoots_extremes(self, series, n):
        filtered = AvgN(n).feed(series)
        assert max(filtered) <= max(series) + 1e-12
        # starting from 0, the filtered series may dip below min(series)
        assert min(filtered) >= 0.0

    @given(series=utilization_lists, n=st.integers(0, 20))
    def test_monotone_in_observations(self, series, n):
        """Raising any single utilization never lowers any output."""
        base = AvgN(n).feed(series)
        bumped_series = list(series)
        bumped_series[0] = 1.0
        bumped = AvgN(n).feed(bumped_series)
        for a, b in zip(base, bumped):
            assert b >= a - 1e-12


class TestWindowAverageProperties:
    @given(series=utilization_lists, window=st.integers(1, 30))
    def test_output_bounded(self, series, window):
        predictor = WindowAverage(window)
        for w in predictor.feed(series):
            assert 0.0 <= w <= 1.0

    @given(series=utilization_lists, window=st.integers(1, 30))
    def test_matches_numpy_rolling_mean(self, series, window):
        predictor = WindowAverage(window)
        out = predictor.feed(series)
        for i, w in enumerate(out):
            lo = max(0, i - window + 1)
            assert abs(w - np.mean(series[lo : i + 1])) < 1e-9
