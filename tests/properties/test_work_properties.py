"""Property-based tests for the Work model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.hw.clocksteps import SA1100_CLOCK_TABLE
from repro.hw.memory import SA1100_MEMORY_TIMINGS
from repro.hw.work import Work

T = SA1100_MEMORY_TIMINGS

work_strategy = st.builds(
    Work,
    cpu_cycles=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    mem_refs=st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
    cache_refs=st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
)

step_strategy = st.sampled_from(list(SA1100_CLOCK_TABLE))


class TestDurationProperties:
    @given(work=work_strategy, step=step_strategy)
    def test_duration_non_negative(self, work, step):
        assert work.duration_us(step, T) >= 0.0

    @given(work=work_strategy)
    def test_full_speed_beats_min_speed(self, work):
        # Not monotone step-to-step!  Table 3's cycle jumps make purely
        # memory-bound work *slower* in wall clock at some adjacent higher
        # steps (the Figure 9 plateau); but the extremes always order.
        d59 = work.duration_us(SA1100_CLOCK_TABLE.min_step, T)
        d206 = work.duration_us(SA1100_CLOCK_TABLE.max_step, T)
        assert d206 <= d59 + 1e-9

    @given(work=work_strategy)
    def test_adjacent_step_regression_is_bounded(self, work):
        # The worst Table 3 wall-clock regression is a cache line at
        # 162.2 -> 176.9 MHz: (60/176.9) / (50/162.2) = +10.03 %.
        durations = [work.duration_us(step, T) for step in SA1100_CLOCK_TABLE]
        for slow, fast in zip(durations, durations[1:]):
            assert fast <= slow * 1.1004 + 1e-9

    @given(work=work_strategy, step=step_strategy)
    def test_cycles_never_shrink_with_frequency(self, work, step):
        # Table 3 costs are monotone, so total cycles rise with the step.
        cycles = [work.total_cycles(s, T) for s in SA1100_CLOCK_TABLE]
        for a, b in zip(cycles, cycles[1:]):
            assert b >= a - 1e-9

    @given(work=work_strategy, factor=st.floats(min_value=0.0, max_value=10.0))
    def test_scaling_scales_duration(self, work, factor):
        step = SA1100_CLOCK_TABLE.max_step
        scaled = work.scaled(factor)
        expected = work.duration_us(step, T) * factor
        assert abs(scaled.duration_us(step, T) - expected) <= 1e-6 * max(1.0, expected)


class TestSplitProperties:
    @given(
        work=work_strategy,
        step=step_strategy,
        fraction=st.floats(min_value=0.0, max_value=1.5),
    )
    def test_split_conserves_mass(self, work, step, fraction):
        elapsed = work.duration_us(step, T) * fraction
        done, remaining = work.split_at_us(elapsed, step, T)
        total = done + remaining
        assert abs(total.cpu_cycles - work.cpu_cycles) <= 1e-6 * max(1.0, work.cpu_cycles)
        assert abs(total.mem_refs - work.mem_refs) <= 1e-6 * max(1.0, work.mem_refs)
        assert abs(total.cache_refs - work.cache_refs) <= 1e-6 * max(1.0, work.cache_refs)

    @given(work=work_strategy, step=step_strategy)
    def test_full_split_leaves_nothing(self, work, step):
        duration = work.duration_us(step, T)
        _, remaining = work.split_at_us(duration, step, T)
        assert remaining.is_empty

    @given(
        work=work_strategy,
        step=step_strategy,
        fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_remaining_duration_is_complement(self, work, step, fraction):
        duration = work.duration_us(step, T)
        elapsed = duration * fraction
        _, remaining = work.split_at_us(elapsed, step, T)
        expected = max(0.0, duration - elapsed)
        # the sub-nanosecond completion tolerance makes tiny tails vanish
        assert abs(remaining.duration_us(step, T) - expected) <= 2e-3 + 1e-6 * duration

    @given(work=work_strategy, step=step_strategy, n=st.integers(2, 8))
    def test_repeated_slicing_terminates(self, work, step, n):
        """Slicing work into n pieces at quantum boundaries always finishes."""
        remaining = work
        slice_us = work.duration_us(step, T) / n
        for _ in range(n + 2):
            if remaining.is_empty:
                break
            _, remaining = remaining.split_at_us(slice_us, step, T)
        assert remaining.is_empty
