"""Property-based tests for the observability layer.

Two invariants the diagnostics and trace exporters promise:

- a Chrome trace is time-ordered after ``_sort_key`` sorting, with
  metadata records leading and every timestamp non-negative;
- an energy decomposition reconstructs the measured total to within
  :data:`~repro.obs.diagnose.ENERGY_SUM_TOLERANCE_J`, whatever policy,
  workload, or seed produced the run.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import workload_spec
from repro.core.catalog import resolve_policy
from repro.measure.runner import default_machine, run_workload
from repro.obs.diagnose import (
    ENERGY_SUM_TOLERANCE_J,
    energy_decomposition,
    prediction_errors,
)
from repro.obs.trace import TraceRecorder, _sort_key

POLICIES = ["best", "best-voltage", "avg3-one", "past-double", "cycleavg"]
WORKLOADS = ["mpeg", "web", "editor"]

utilization_lists = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=200,
)


def traced_run(policy: str, workload: str, seed: int):
    tracer = TraceRecorder()
    result = run_workload(
        workload_spec(workload, 2.0).build(),
        resolve_policy(policy),
        seed=seed,
        use_daq=False,
        extra_recorders=[tracer],
    )
    return result, tracer


class TestChromeTraceOrdering:
    @given(
        policy=st.sampled_from(POLICIES),
        workload=st.sampled_from(WORKLOADS),
        seed=st.integers(0, 3),
    )
    @settings(max_examples=12, deadline=None)
    def test_events_time_ordered_and_non_negative(self, policy, workload, seed):
        result, tracer = traced_run(policy, workload, seed)
        events = tracer.chrome_trace(run=result.run)["traceEvents"]
        keys = [_sort_key(e) for e in events]
        assert keys == sorted(keys)
        for event in events:
            assert event.get("ts", 0.0) >= 0.0
        # Metadata records (process/thread names) lead the timeline.
        phases = [e["ph"] for e in events]
        first_real = next(i for i, ph in enumerate(phases) if ph != "M")
        assert all(ph == "M" for ph in phases[:first_real])


class TestEnergyDecompositionProperties:
    @given(
        policy=st.sampled_from(POLICIES),
        workload=st.sampled_from(WORKLOADS),
        seed=st.integers(0, 3),
        baseline_j=st.one_of(
            st.none(), st.floats(min_value=0.0, max_value=100.0)
        ),
    )
    @settings(max_examples=12, deadline=None)
    def test_components_always_sum_to_measured(
        self, policy, workload, seed, baseline_j
    ):
        result = run_workload(
            workload_spec(workload, 2.0).build(),
            resolve_policy(policy),
            seed=seed,
            use_daq=False,
        )
        decomposition = energy_decomposition(
            result.run, default_machine(), baseline_j
        )
        assert (
            abs(decomposition.components_sum_j() - decomposition.measured_j)
            <= ENERGY_SUM_TOLERANCE_J
        )
        assert decomposition.stall_j >= 0.0
        assert decomposition.measured_j == result.run.energy_joules()


class TestPredictionReplayProperties:
    @given(series=utilization_lists, n=st.integers(0, 20))
    def test_predictions_bounded_by_unit_interval(self, series, n):
        for predicted, realized in prediction_errors(series, n):
            assert 0.0 <= predicted <= 1.0
            assert 0.0 <= realized <= 1.0

    @given(series=utilization_lists, n=st.integers(0, 20))
    def test_one_prediction_per_successor_interval(self, series, n):
        assert len(prediction_errors(series, n)) == len(series) - 1

    @given(series=utilization_lists)
    def test_past_predicts_the_previous_interval(self, series):
        for i, (predicted, realized) in enumerate(
            prediction_errors(series, decay_n=0)
        ):
            assert predicted == series[i]
            assert realized == series[i + 1]
