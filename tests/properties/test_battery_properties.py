"""Property-based tests for the battery models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.model import RateCapacityCurve
from repro.battery.pulsed import PulsedDischargeModel

curves = st.builds(
    RateCapacityCurve,
    e_ref_wh=st.floats(min_value=0.5, max_value=3.0),
    p_ref_w=st.floats(min_value=0.05, max_value=1.0),
    peukert_k=st.floats(min_value=1.0, max_value=3.0),
    e_max_wh=st.just(10.0),
)

powers = st.floats(min_value=0.01, max_value=5.0)


class TestRateCapacityProperties:
    @settings(max_examples=80, deadline=None)
    @given(curve=curves, p1=powers, p2=powers)
    def test_capacity_monotone_nonincreasing_in_power(self, curve, p1, p2):
        lo, hi = sorted((p1, p2))
        assert curve.effective_energy_wh(lo) >= curve.effective_energy_wh(hi) - 1e-12

    @settings(max_examples=80, deadline=None)
    @given(curve=curves, p1=powers, p2=powers)
    def test_lifetime_monotone_decreasing_in_power(self, curve, p1, p2):
        lo, hi = sorted((p1, p2))
        if hi > lo:
            assert curve.lifetime_hours(lo) >= curve.lifetime_hours(hi) - 1e-12

    @settings(max_examples=80, deadline=None)
    @given(curve=curves, p=powers)
    def test_capacity_never_exceeds_nominal(self, curve, p):
        assert curve.effective_energy_wh(p) <= curve.e_max_wh + 1e-12

    @settings(max_examples=80, deadline=None)
    @given(p=powers)
    def test_ideal_battery_lifetime_is_inverse_power(self, p):
        curve = RateCapacityCurve(
            e_ref_wh=2.0, p_ref_w=0.5, peukert_k=1.0, e_max_wh=2.0
        )
        assert curve.lifetime_hours(p) * p == 2.0 or abs(
            curve.lifetime_hours(p) * p - 2.0
        ) < 1e-9


class TestKiBaMProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        power=st.floats(min_value=0.5, max_value=10.0),
        dt=st.floats(min_value=1.0, max_value=500.0),
    )
    def test_charge_conservation(self, power, dt):
        battery = PulsedDischargeModel(capacity_c=1000.0)
        before = battery.remaining
        delivered = battery.step(power, dt)
        assert battery.remaining + delivered == before or abs(
            battery.remaining + delivered - before
        ) < 1e-6

    @settings(max_examples=40, deadline=None)
    @given(power=st.floats(min_value=0.5, max_value=10.0))
    def test_wells_never_negative(self, power):
        battery = PulsedDischargeModel(capacity_c=200.0)
        for _ in range(50):
            battery.step(power, 60.0)
        assert battery.available >= -1e-9
        assert battery.bound >= -1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        pulse=st.floats(min_value=5.0, max_value=60.0),
        rest=st.floats(min_value=5.0, max_value=120.0),
    )
    def test_rest_only_helps(self, pulse, rest):
        """Delivered charge under pulsed drain is at least the constant-
        drain delivery (recovery can only help)."""
        const = PulsedDischargeModel(capacity_c=500.0)
        const.time_to_death_s(power_w=6.0)
        pulsed = PulsedDischargeModel(capacity_c=500.0)
        pulsed.time_to_death_s(power_w=6.0, pulse_s=pulse, rest_s=rest)
        assert pulsed.delivered >= const.delivered - 1e-6
