"""Property-based tests for kernel invariants.

These drive the scheduler with randomized scripted workloads and check the
bookkeeping invariants that every run must satisfy: gap-free power
recording, utilization bounds, conservation of quanta, and the equality of
busy time and active power segments.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.hw.work import Work
from repro.kernel.process import Compute, Exit, Sleep, SpinUntil
from repro.kernel.scheduler import Kernel, KernelConfig

Q = 10_000.0

phases = st.lists(
    st.tuples(
        st.sampled_from(["compute", "sleep", "spin"]),
        st.floats(min_value=100.0, max_value=40_000.0),
    ),
    min_size=1,
    max_size=15,
)


def scripted(phase_list, mhz):
    def body(ctx):
        for kind, amount in phase_list:
            if kind == "compute":
                yield Compute(Work(cpu_cycles=amount * mhz))
            elif kind == "sleep":
                yield Sleep(amount)
            else:
                yield SpinUntil(ctx.now_us + amount)
        yield Exit()

    return body


def run_phases(phase_lists, quanta=60, mhz=206.4):
    kernel = Kernel(
        ItsyMachine(ItsyConfig(initial_mhz=mhz)),
        config=KernelConfig(sched_overhead_us=0.0),
    )
    for i, phase_list in enumerate(phase_lists):
        kernel.spawn(f"p{i}", scripted(phase_list, mhz))
    return kernel.run(quanta * Q)


class TestKernelInvariants:
    @settings(max_examples=25, deadline=None)
    @given(phase_lists=st.lists(phases, min_size=1, max_size=3))
    def test_power_timeline_has_no_gaps(self, phase_lists):
        run = run_phases(phase_lists)
        segments = list(run.timeline)
        assert segments[0][0] == 0.0
        for (s1, e1, _), (s2, _, _) in zip(segments, segments[1:]):
            assert abs(e1 - s2) < 1e-6
        assert abs(segments[-1][1] - run.duration_us) < 1e-6

    @settings(max_examples=25, deadline=None)
    @given(phase_lists=st.lists(phases, min_size=1, max_size=3))
    def test_utilizations_bounded(self, phase_lists):
        run = run_phases(phase_lists)
        for u in run.utilizations():
            assert 0.0 <= u <= 1.0

    @settings(max_examples=25, deadline=None)
    @given(phase_lists=st.lists(phases, min_size=1, max_size=3))
    def test_quanta_cover_duration(self, phase_lists):
        run = run_phases(phase_lists)
        assert len(run.quanta) * Q == run.duration_us
        ends = [q.end_us for q in run.quanta]
        assert ends == sorted(ends)

    @settings(max_examples=25, deadline=None)
    @given(phase_lists=st.lists(phases, min_size=1, max_size=2))
    def test_busy_time_never_exceeds_demand(self, phase_lists):
        """Total busy time is bounded by the scripted compute+spin time."""
        run = run_phases(phase_lists)
        demanded = sum(
            amount
            for phase_list in phase_lists
            for kind, amount in phase_list
            if kind in ("compute", "spin")
        )
        busy = sum(q.busy_us for q in run.quanta)
        assert busy <= demanded + 1.0

    @settings(max_examples=25, deadline=None)
    @given(phase_lists=st.lists(phases, min_size=1, max_size=2))
    def test_energy_bounded_by_extreme_powers(self, phase_lists):
        from repro.hw.power import CoreState

        run = run_phases(phase_lists)
        machine = ItsyMachine(ItsyConfig())
        lo = machine.power_w(CoreState.NAP)
        hi = machine.power_w(CoreState.ACTIVE)
        duration_s = run.duration_us * 1e-6
        assert lo * duration_s - 1e-9 <= run.energy_joules() <= hi * duration_s + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(phase_lists=st.lists(phases, min_size=1, max_size=2), seed=st.integers(0, 3))
    def test_determinism(self, phase_lists, seed):
        r1 = run_phases(phase_lists)
        r2 = run_phases(phase_lists)
        assert r1.utilizations() == r2.utilizations()
        assert r1.energy_joules() == r2.energy_joules()
