"""Fuzzing: arbitrary governors must never corrupt kernel invariants.

A governor is third-party policy code; whatever (clamped-range) requests
it makes, the kernel must keep its accounting sound: rail safety holds,
power recording stays gap-free, utilization stays bounded, and transitions
are all accounted for.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.hw.rails import VOLTAGE_HIGH, VOLTAGE_LOW
from repro.kernel.governor import Governor, GovernorRequest
from repro.kernel.scheduler import Kernel, KernelConfig
from repro.workloads.mpeg import MpegConfig, setup_mpeg

Q = 10_000.0

request_strategy = st.one_of(
    st.none(),
    st.builds(
        GovernorRequest,
        step_index=st.one_of(st.none(), st.integers(-3, 14)),
        volts=st.one_of(st.none(), st.sampled_from([VOLTAGE_HIGH, VOLTAGE_LOW])),
    ),
)


class ScriptedFuzzGovernor(Governor):
    """Replays a fixed list of requests, sanitized for rail safety.

    The sanitizing mirrors what any real governor must do: never ask for
    the low rail at a frequency above the safety bound.  Everything else
    -- random jumps, redundant requests, None -- is fair game.
    """

    def __init__(self, requests):
        self.requests = list(requests)
        self._i = 0

    def on_tick(self, info):
        if self._i >= len(self.requests):
            return None
        req = self.requests[self._i]
        self._i += 1
        if req is None:
            return None
        step_index = req.step_index
        effective = step_index if step_index is not None else info.step_index
        effective = max(0, min(10, effective))
        volts = req.volts
        from repro.hw.clocksteps import SA1100_CLOCK_TABLE

        if volts == VOLTAGE_LOW and SA1100_CLOCK_TABLE[effective].mhz > 162.2:
            volts = VOLTAGE_HIGH
        return GovernorRequest(step_index=step_index, volts=volts)

    def reset(self):
        self._i = 0


@settings(max_examples=20, deadline=None)
@given(requests=st.lists(request_strategy, min_size=1, max_size=60))
def test_fuzzed_governor_preserves_invariants(requests):
    machine = ItsyMachine(ItsyConfig())
    kernel = Kernel(
        machine,
        governor=ScriptedFuzzGovernor(requests),
        config=KernelConfig(sched_overhead_us=6.0),
    )
    setup_mpeg(kernel, seed=0, cfg=MpegConfig(duration_s=1.0))
    run = kernel.run(100 * Q)

    # rail safety: the final machine state is a legal combination
    assert machine.cpu.rail.allows(machine.volts, machine.step)

    # power recording is gap-free and covers the whole run
    segments = list(run.timeline)
    assert segments[0][0] == 0.0
    for (s1, e1, _), (s2, _, __) in zip(segments, segments[1:]):
        assert abs(e1 - s2) < 1e-6
    assert abs(segments[-1][1] - run.duration_us) < 1e-6

    # utilization bounded; quanta contiguous
    for q in run.quanta:
        assert 0.0 <= q.utilization <= 1.0
    assert len(run.quanta) == 100

    # every recorded frequency change cost exactly one stall
    assert run.clock_changes == len(run.freq_changes)
    assert run.clock_stall_us == sum(f.stall_us for f in run.freq_changes)

    # voltage changes all between the two rail settings
    for change in run.volt_changes:
        assert {change.from_volts, change.to_volts} <= {VOLTAGE_HIGH, VOLTAGE_LOW}

    # quantum frequencies only ever take table values
    from repro.hw.clocksteps import SA1100_FREQUENCIES_MHZ

    assert {q.mhz for q in run.quanta} <= set(SA1100_FREQUENCIES_MHZ)
