"""Fuzzing: arbitrary governors must never corrupt kernel invariants.

A governor is third-party policy code; whatever (clamped-range) requests
it makes, the kernel must keep its accounting sound on *every* machine
model: rail safety holds, power recording stays gap-free, utilization
stays bounded, and transitions are all accounted for.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.machines import MachineSpec
from repro.hw.rails import CoreRail, VOLTAGE_HIGH, VOLTAGE_LOW
from repro.kernel.governor import Governor, GovernorRequest
from repro.kernel.scheduler import Kernel, KernelConfig
from repro.workloads.mpeg import MpegConfig, setup_mpeg

Q = 10_000.0

MACHINES = ["itsy", "itsy-stock", "sa2"]

request_strategy = st.one_of(
    st.none(),
    st.builds(
        GovernorRequest,
        step_index=st.one_of(st.none(), st.integers(-3, 14)),
        volts=st.one_of(st.none(), st.sampled_from([VOLTAGE_HIGH, VOLTAGE_LOW])),
    ),
)


class ScriptedFuzzGovernor(Governor):
    """Replays a fixed list of requests, sanitized for rail safety.

    The sanitizing mirrors what any real governor must do on the machine
    it actually runs on: never ask for a voltage outside the rail's safe
    envelope at the requested clock.  Everything else -- random jumps,
    redundant requests, None -- is fair game.
    """

    def __init__(self, requests, machine):
        self.requests = list(requests)
        self.machine = machine
        self._i = 0

    def _safe_volts(self, volts, effective_step_index):
        rail = self.machine.cpu.rail
        if not isinstance(rail, CoreRail):
            # scheduled rails (sa2) pick their own per-step voltage
            return None
        if volts != VOLTAGE_LOW:
            return volts
        config = getattr(self.machine, "config", None)
        if config is not None and not config.low_voltage_available:
            # stock Itsy: the reduced rail setting does not exist
            return VOLTAGE_HIGH
        step = self.machine.clock_table[effective_step_index]
        if not rail.allows(VOLTAGE_LOW, step):
            return VOLTAGE_HIGH
        return VOLTAGE_LOW

    def on_tick(self, info):
        if self._i >= len(self.requests):
            return None
        req = self.requests[self._i]
        self._i += 1
        if req is None:
            return None
        step_index = req.step_index
        table = self.machine.clock_table
        effective = step_index if step_index is not None else info.step_index
        effective = table.clamp_index(effective)
        return GovernorRequest(
            step_index=step_index,
            volts=self._safe_volts(req.volts, effective),
        )

    def reset(self):
        self._i = 0


def supported_voltages(machine):
    rail = machine.cpu.rail
    if isinstance(rail, CoreRail):
        return {rail.high_volts, rail.low_volts}
    return set(rail.volts_by_index)


@pytest.mark.parametrize("preset", MACHINES)
@settings(max_examples=20, deadline=None)
@given(requests=st.lists(request_strategy, min_size=1, max_size=60))
def test_fuzzed_governor_preserves_invariants(preset, requests):
    machine = MachineSpec.parse(preset).build()
    table = machine.clock_table
    kernel = Kernel(
        machine,
        governor=ScriptedFuzzGovernor(requests, machine),
        config=KernelConfig(sched_overhead_us=6.0),
    )
    setup_mpeg(kernel, seed=0, cfg=MpegConfig(duration_s=1.0))
    run = kernel.run(100 * Q)

    # rail safety: the final machine state is a legal combination
    assert machine.cpu.rail.allows(machine.volts, machine.step)

    # power recording is gap-free and covers the whole run
    segments = list(run.timeline)
    assert segments[0][0] == 0.0
    for (s1, e1, _), (s2, _, __) in zip(segments, segments[1:]):
        assert abs(e1 - s2) < 1e-6
    assert abs(segments[-1][1] - run.duration_us) < 1e-6

    # utilization bounded; quanta contiguous
    for q in run.quanta:
        assert 0.0 <= q.utilization <= 1.0
    assert len(run.quanta) == 100

    # every recorded frequency change cost exactly one stall
    assert run.clock_changes == len(run.freq_changes)
    assert run.clock_stall_us == sum(f.stall_us for f in run.freq_changes)

    # voltage changes stay within the machine's own supported settings
    allowed_volts = supported_voltages(machine)
    for change in run.volt_changes:
        assert {change.from_volts, change.to_volts} <= allowed_volts

    # quantum frequencies only ever take this machine's table values
    assert {q.mhz for q in run.quanta} <= set(table.frequencies_mhz())
