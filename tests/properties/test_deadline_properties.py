"""Property-based tests for the deadline-solver (§6 extension)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deadline import DeadlineSpec, slowest_feasible_step
from repro.hw.clocksteps import SA1100_CLOCK_TABLE
from repro.hw.memory import SA1100_MEMORY_TIMINGS
from repro.hw.work import Work

specs_strategy = st.lists(
    st.builds(
        DeadlineSpec,
        name=st.sampled_from(["a", "b", "c", "d"]),
        period_us=st.floats(min_value=1_000.0, max_value=1e6),
        work=st.builds(
            Work,
            cpu_cycles=st.floats(min_value=0.0, max_value=5e7),
            mem_refs=st.floats(min_value=0.0, max_value=5e5),
            cache_refs=st.floats(min_value=0.0, max_value=5e5),
        ),
    ),
    min_size=1,
    max_size=4,
)


def load_at(specs, step, margin):
    return margin * sum(
        spec.busy_fraction(step, SA1100_MEMORY_TIMINGS) for spec in specs
    )


class TestSlowestFeasibleStep:
    @settings(max_examples=80, deadline=None)
    @given(specs=specs_strategy, margin=st.floats(min_value=1.0, max_value=1.5))
    def test_chosen_step_is_feasible_or_pegged(self, specs, margin):
        step = slowest_feasible_step(specs, margin)
        if step.index < SA1100_CLOCK_TABLE.max_index:
            assert load_at(specs, step, margin) <= 1.0 + 1e-9

    @settings(max_examples=80, deadline=None)
    @given(specs=specs_strategy, margin=st.floats(min_value=1.0, max_value=1.5))
    def test_no_slower_step_is_feasible(self, specs, margin):
        step = slowest_feasible_step(specs, margin)
        for slower in SA1100_CLOCK_TABLE:
            if slower.index >= step.index:
                break
            assert load_at(specs, slower, margin) > 1.0 - 1e-9

    @settings(max_examples=80, deadline=None)
    @given(specs=specs_strategy)
    def test_higher_margin_never_slows_the_choice(self, specs):
        low = slowest_feasible_step(specs, margin=1.0)
        high = slowest_feasible_step(specs, margin=1.4)
        assert high.index >= low.index

    @settings(max_examples=80, deadline=None)
    @given(specs=specs_strategy, extra=specs_strategy)
    def test_more_demand_never_slows_the_choice(self, specs, extra):
        base = slowest_feasible_step(specs)
        # rename extras so they never *replace* a base spec's demand
        renamed = [
            DeadlineSpec(f"x{i}", s.period_us, s.work) for i, s in enumerate(extra)
        ]
        combined = slowest_feasible_step(list(specs) + renamed)
        assert combined.index >= base.index
