"""Property-based tests for the power timeline."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.traces.schema import PowerTimeline

segment_lists = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=10_000.0),  # duration
        st.floats(min_value=0.0, max_value=5.0),  # watts
    ),
    min_size=1,
    max_size=60,
)


def build_timeline(segments):
    tl = PowerTimeline()
    t = 0.0
    for duration, watts in segments:
        tl.record(t, t + duration, watts)
        t += duration
    return tl, t


class TestTimelineProperties:
    @given(segments=segment_lists)
    def test_energy_additivity(self, segments):
        tl, end = build_timeline(segments)
        mid = end / 3.0
        total = tl.energy_joules()
        split = tl.energy_joules(0.0, mid) + tl.energy_joules(mid, end)
        assert abs(total - split) < 1e-9 * max(1.0, total)

    @given(segments=segment_lists)
    def test_energy_matches_manual_sum(self, segments):
        tl, _ = build_timeline(segments)
        manual = sum(d * w for d, w in segments) * 1e-6
        assert abs(tl.energy_joules() - manual) < 1e-9 * max(1.0, manual)

    @given(segments=segment_lists)
    def test_mean_power_between_extremes(self, segments):
        tl, _ = build_timeline(segments)
        watts = [w for _, w in segments]
        mean = tl.mean_power_w()
        assert min(watts) - 1e-9 <= mean <= max(watts) + 1e-9

    @given(segments=segment_lists, data=st.data())
    def test_sample_agrees_with_power_at(self, segments, data):
        tl, end = build_timeline(segments)
        times = data.draw(
            st.lists(
                st.floats(min_value=-10.0, max_value=end + 10.0),
                min_size=1,
                max_size=20,
            )
        )
        times = np.array(sorted(times))
        sampled = tl.sample(times)
        for t, s in zip(times, sampled):
            assert s == tl.power_at(t)

    @given(segments=segment_lists)
    def test_segments_never_shrink_recorded_span(self, segments):
        tl, end = build_timeline(segments)
        assert tl.start_us == 0.0
        assert abs(tl.end_us - end) < 1e-6
