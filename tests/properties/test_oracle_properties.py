"""Property-based tests for the trace-level schedulers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.govil import (
    AgedAveragesPredictor,
    FlatPredictor,
    PeakPredictor,
    govil_schedule,
)
from repro.core.oracle import future_schedule, opt_schedule, past_schedule
from repro.hw.clocksteps import SA1100_CLOCK_TABLE

work_traces = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=120,
)


class TestScheduleInvariants:
    @settings(max_examples=60, deadline=None)
    @given(work=work_traces)
    def test_opt_lower_bounds_completed_schedules_when_unconstrained(self, work):
        """OPT minimizes energy among completing schedules -- in the regime
        where it is actually optimal.

        Two caveats make the naive "OPT <= everything" false: a lazy
        schedule can spend less by not doing the work (so only no-backlog
        alternatives count), and when a late burst forces OPT's constant
        speed above the trace mean, demand-tracking variable schedules can
        undercut the constant.  When arrivals do not bind (constant speed
        == trace mean), convexity of speed^2 energy makes OPT a true lower
        bound.
        """
        opt = opt_schedule(work)
        mean = float(np.mean(work))
        if abs(float(opt.speeds[0]) - min(1.0, mean)) > 1e-12:
            return  # arrival-constrained regime: no bound claimed
        candidates = [
            future_schedule(work),
            past_schedule(work),
            govil_schedule(work, FlatPredictor(0.8)),
            govil_schedule(work, AgedAveragesPredictor()),
            govil_schedule(work, PeakPredictor()),
        ]
        for res in candidates:
            if res.missed_work < 1e-9:
                assert res.energy >= opt.energy - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(work=work_traces, bump=st.floats(min_value=0.01, max_value=0.5))
    def test_opt_is_optimal_among_constants(self, work, bump):
        """Any faster feasible constant speed costs at least as much."""
        from repro.core.oracle import _simulate

        opt = opt_schedule(work)
        faster = min(1.0, float(opt.speeds[0]) + bump)
        alt = _simulate(work, np.full(len(work), faster))
        if alt.missed_work < 1e-9 and opt.missed_work < 1e-9:
            assert alt.energy >= opt.energy - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(work=work_traces)
    def test_backlog_never_exceeds_remaining_work(self, work):
        for schedule in (opt_schedule, future_schedule, past_schedule):
            res = schedule(work)
            total = float(np.sum(work))
            assert np.all(res.excess >= -1e-12)
            assert np.all(res.excess <= total + 1e-9)
            assert res.missed_work <= total + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(work=work_traces)
    def test_opt_clears_feasible_traces(self, work):
        res = opt_schedule(work)
        if np.max(res.speeds) < 1.0 - 1e-9:  # never capped: feasible
            assert res.missed_work < 1e-9

    @settings(max_examples=60, deadline=None)
    @given(work=work_traces)
    def test_energy_bounded_by_full_speed(self, work):
        for schedule in (opt_schedule, future_schedule, past_schedule):
            res = schedule(work)
            # full-speed energy = total work done * 1^2 <= total work
            assert res.energy <= float(np.sum(work)) + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(work=work_traces, min_speed=st.floats(0.0, 1.0))
    def test_min_speed_respected(self, work, min_speed):
        res = past_schedule(work, min_speed=min_speed)
        assert np.all(res.speeds >= min(min_speed, 1.0) - 1e-12)

    @settings(max_examples=40, deadline=None)
    @given(work=work_traces)
    def test_quantized_speeds_on_table(self, work):
        res = future_schedule(work, quantize=SA1100_CLOCK_TABLE)
        fractions = {s.mhz / 206.4 for s in SA1100_CLOCK_TABLE}
        for speed in res.speeds:
            assert min(abs(speed - f) for f in fractions) < 1e-9

    @settings(max_examples=40, deadline=None)
    @given(work=work_traces)
    def test_work_conservation(self, work):
        """Done work (energy / speed^2-weighted accounting aside) plus the
        final backlog equals the arriving work."""
        res = past_schedule(work)
        done = float(np.sum(work)) - res.missed_work
        # reconstruct done work from per-interval capacity usage
        capacity_used = 0.0
        backlog = 0.0
        for w, s in zip(work, res.speeds):
            demand = backlog + w
            used = min(demand, s)
            capacity_used += used
            backlog = demand - used
        assert done == np.float64(capacity_used) or abs(done - capacity_used) < 1e-9
