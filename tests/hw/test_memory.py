"""Tests for the Table 3 memory timing model."""

import pytest

from repro.hw.clocksteps import SA1100_CLOCK_TABLE, SA1100_FREQUENCIES_MHZ
from repro.hw.memory import (
    SA1100_CYCLES_PER_CACHE_REF,
    SA1100_CYCLES_PER_MEM_REF,
    SA1100_MEMORY_TIMINGS,
    MemoryTimings,
)


class TestTable3Values:
    """The model must reproduce Table 3 exactly -- it is the model input."""

    def test_mem_cycles_match_table3(self):
        expected = (11, 11, 11, 11, 13, 14, 14, 15, 18, 19, 20)
        assert SA1100_CYCLES_PER_MEM_REF == expected

    def test_cache_cycles_match_table3(self):
        expected = (39, 39, 39, 39, 41, 42, 49, 50, 60, 61, 69)
        assert SA1100_CYCLES_PER_CACHE_REF == expected

    def test_lookup_by_step(self):
        step_132 = SA1100_CLOCK_TABLE.step_for_mhz(132.7)
        assert SA1100_MEMORY_TIMINGS.mem_cycles(step_132) == 14
        assert SA1100_MEMORY_TIMINGS.cache_cycles(step_132) == 42

    def test_as_table_round_trip(self):
        table = SA1100_MEMORY_TIMINGS.as_table()
        assert table[59.0] == (11, 39)
        assert table[206.4] == (20, 69)
        assert len(table) == 11

    def test_as_table_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            SA1100_MEMORY_TIMINGS.as_table([59.0, 206.4])


class TestNonLinearity:
    """The properties behind the paper's Figure 9 plateau."""

    def test_plateau_jump_between_162_and_177(self):
        # Table 3 has a clear jump between 162.2 and 176.9 MHz.
        i_162 = SA1100_FREQUENCIES_MHZ.index(162.2)
        i_177 = SA1100_FREQUENCIES_MHZ.index(176.9)
        mem_jump = SA1100_CYCLES_PER_MEM_REF[i_177] - SA1100_CYCLES_PER_MEM_REF[i_162]
        cache_jump = (
            SA1100_CYCLES_PER_CACHE_REF[i_177] - SA1100_CYCLES_PER_CACHE_REF[i_162]
        )
        assert mem_jump == 3  # 15 -> 18
        assert cache_jump == 10  # 50 -> 60

    def test_cycle_costs_monotone_with_frequency(self):
        assert list(SA1100_CYCLES_PER_MEM_REF) == sorted(SA1100_CYCLES_PER_MEM_REF)
        assert list(SA1100_CYCLES_PER_CACHE_REF) == sorted(SA1100_CYCLES_PER_CACHE_REF)

    def test_wall_clock_latency_roughly_constant(self):
        # The DRAM is fixed-latency: wall-clock cost per access should vary
        # far less than the 3.5x frequency span.
        latencies = [
            SA1100_MEMORY_TIMINGS.mem_latency_us(step) for step in SA1100_CLOCK_TABLE
        ]
        assert max(latencies) / min(latencies) < 2.2

    def test_cache_line_slower_than_word(self):
        for step in SA1100_CLOCK_TABLE:
            assert SA1100_MEMORY_TIMINGS.cache_cycles(
                step
            ) > SA1100_MEMORY_TIMINGS.mem_cycles(step)


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            MemoryTimings(cycles_per_mem_ref=(11,), cycles_per_cache_ref=(39, 40))

    def test_empty(self):
        with pytest.raises(ValueError):
            MemoryTimings(cycles_per_mem_ref=(), cycles_per_cache_ref=())

    def test_nonpositive(self):
        with pytest.raises(ValueError):
            MemoryTimings(cycles_per_mem_ref=(0,), cycles_per_cache_ref=(39,))
        with pytest.raises(ValueError):
            MemoryTimings(cycles_per_mem_ref=(11,), cycles_per_cache_ref=(0,))

    def test_cache_cheaper_than_word_rejected(self):
        with pytest.raises(ValueError):
            MemoryTimings(cycles_per_mem_ref=(11,), cycles_per_cache_ref=(10,))
