"""Tests for the CPU execution/transition model."""

import pytest

from repro.hw.cpu import CLOCK_CHANGE_STALL_US, CpuModel
from repro.hw.rails import VOLTAGE_HIGH, VOLTAGE_LOW, VoltageError
from repro.hw.work import Work


@pytest.fixture
def cpu():
    return CpuModel()


class TestDefaults:
    def test_boots_at_max_step(self, cpu):
        assert cpu.step.mhz == 206.4
        assert cpu.volts == VOLTAGE_HIGH

    def test_stall_constant_is_200us(self):
        assert CLOCK_CHANGE_STALL_US == 200.0


class TestClockChanges:
    def test_change_costs_200us(self, cpu):
        stall = cpu.set_step_index(0)
        assert stall == pytest.approx(200.0)
        assert cpu.step.mhz == 59.0

    def test_no_change_costs_nothing(self, cpu):
        assert cpu.set_step_index(cpu.step.index) == 0.0
        assert cpu.counters.clock_changes == 0

    def test_stall_independent_of_distance(self, cpu):
        stall_small = cpu.set_step_index(9)  # 206.4 -> 191.7
        cpu2 = CpuModel()
        stall_large = cpu2.set_step_index(0)  # 206.4 -> 59.0
        assert stall_small == stall_large == pytest.approx(200.0)

    def test_out_of_range_index_clamps(self, cpu):
        cpu.set_step_index(99)
        assert cpu.step.index == 10
        cpu.set_step_index(-5)
        assert cpu.step.index == 0

    def test_counters_accumulate(self, cpu):
        cpu.set_step_index(0)
        cpu.set_step_index(10)
        assert cpu.counters.clock_changes == 2
        assert cpu.counters.clock_stall_us == pytest.approx(400.0)

    def test_stall_cycles_lost_matches_paper(self, cpu):
        cpu.set_step_index(0)
        assert cpu.stall_cycles_lost() == pytest.approx(11800)
        cpu.set_step_index(10)
        assert cpu.stall_cycles_lost() == pytest.approx(41280)

    def test_stall_under_2_percent_of_quantum(self, cpu):
        # §5.4: clock and voltage change costs are <2 % of a 10 ms quantum.
        assert CLOCK_CHANGE_STALL_US / 10_000.0 <= 0.02


class TestVoltageInteraction:
    def test_cannot_speed_past_bound_at_low_voltage(self, cpu):
        cpu.set_step_index(5)
        cpu.set_voltage(VOLTAGE_LOW)
        with pytest.raises(VoltageError):
            cpu.set_step_index(10)
        # frequency at/below the bound is fine
        cpu.set_step_index(7)  # 162.2 MHz
        assert cpu.step.mhz == pytest.approx(162.2)

    def test_cannot_lower_voltage_at_high_frequency(self, cpu):
        with pytest.raises(VoltageError):
            cpu.set_voltage(VOLTAGE_LOW)

    def test_voltage_counters(self, cpu):
        cpu.set_step_index(0)
        settle = cpu.set_voltage(VOLTAGE_LOW)
        assert settle == pytest.approx(250.0)
        assert cpu.set_voltage(VOLTAGE_LOW) == 0.0
        assert cpu.counters.voltage_changes == 1
        assert cpu.counters.voltage_settle_us == pytest.approx(250.0)


class TestWorkArithmetic:
    def test_duration_tracks_current_step(self, cpu):
        w = Work(cpu_cycles=206.4e3)
        assert cpu.duration_us(w) == pytest.approx(1000.0)
        cpu.set_step_index(0)
        assert cpu.duration_us(w) == pytest.approx(1000.0 * 206.4 / 59.0)

    def test_split_work_delegates(self, cpu):
        w = Work(cpu_cycles=206.4e3)
        done, remaining = cpu.split_work(w, 500.0)
        assert done.cpu_cycles == pytest.approx(103.2e3)
        assert remaining.cpu_cycles == pytest.approx(103.2e3)

    def test_mismatched_tables_rejected(self):
        from repro.hw.clocksteps import ClockTable
        from repro.hw.memory import SA1100_MEMORY_TIMINGS

        with pytest.raises(ValueError):
            CpuModel(clock_table=ClockTable([59.0, 206.4]), timings=SA1100_MEMORY_TIMINGS)
