"""Tests for the hypothetical SA-2 machine (the paper's intro example)."""

import pytest

from repro.hw.power import CoreState
from repro.hw.rails import VoltageError
from repro.hw.sa2 import (
    SA2_CLOCK_TABLE,
    SA2_FREQUENCIES_MHZ,
    Sa2Machine,
    sa2_cpu,
    sa2_energy_for_instructions,
    sa2_power_w,
    sa2_volts_for_step,
)


class TestClockTable:
    def test_range(self):
        assert SA2_CLOCK_TABLE.min_step.mhz == 150.0
        assert SA2_CLOCK_TABLE.max_step.mhz == 600.0
        assert len(SA2_CLOCK_TABLE) == 11

    def test_uniform_increments(self):
        freqs = SA2_FREQUENCIES_MHZ
        assert all(b - a == pytest.approx(45.0) for a, b in zip(freqs, freqs[1:]))


class TestVoltageSchedule:
    def test_endpoints(self):
        assert sa2_volts_for_step(SA2_CLOCK_TABLE.max_step) == pytest.approx(1.8)
        assert sa2_volts_for_step(SA2_CLOCK_TABLE.min_step) == pytest.approx(
            1.018, abs=0.01
        )

    def test_monotone(self):
        volts = [sa2_volts_for_step(s) for s in SA2_CLOCK_TABLE]
        assert volts == sorted(volts)


class TestPaperNumbers:
    def test_500mw_at_600mhz(self):
        assert sa2_power_w(SA2_CLOCK_TABLE.max_step) == pytest.approx(0.500, rel=1e-6)

    def test_40mw_at_150mhz(self):
        assert sa2_power_w(SA2_CLOCK_TABLE.min_step) == pytest.approx(0.040, rel=0.01)

    def test_12x_power_for_4x_speed(self):
        ratio = sa2_power_w(SA2_CLOCK_TABLE.max_step) / sa2_power_w(
            SA2_CLOCK_TABLE.min_step
        )
        assert ratio == pytest.approx(12.5, rel=0.01)

    def test_worked_example_600m_instructions(self):
        """1 s / 500 mJ at 600 MHz; 4 s / 160 mJ at 150 MHz (paper §2.1)."""
        t_fast, e_fast = sa2_energy_for_instructions(600e6, SA2_CLOCK_TABLE.max_step)
        t_slow, e_slow = sa2_energy_for_instructions(600e6, SA2_CLOCK_TABLE.min_step)
        assert t_fast == pytest.approx(1.0)
        assert e_fast == pytest.approx(0.500, rel=1e-6)
        assert t_slow == pytest.approx(4.0)
        assert e_slow == pytest.approx(0.160, rel=0.01)
        # "a four-fold savings assuming that an idle computer consumes no
        # energy"
        assert e_fast / e_slow == pytest.approx(3.125, rel=0.01)

    def test_idle_is_free(self):
        assert sa2_power_w(SA2_CLOCK_TABLE.max_step, CoreState.NAP) == 0.0


class TestSa2Machine:
    def test_boots_at_top_step_and_voltage(self):
        machine = Sa2Machine()
        assert machine.step.mhz == 600.0
        assert machine.volts == pytest.approx(1.8)

    def test_auto_volts_follows_schedule_both_directions(self):
        machine = Sa2Machine()
        low = machine.clock_table.min_step
        assert machine.auto_volts_for(low) == pytest.approx(
            sa2_volts_for_step(low)
        )
        # Drop after decrease: frequency first, then the scheduled voltage.
        machine.set_step_index(0)
        machine.set_voltage(machine.auto_volts_for(low))
        high = machine.clock_table.max_step
        assert machine.auto_volts_for(high) == pytest.approx(1.8)

    def test_auto_volts_none_when_already_scheduled(self):
        machine = Sa2Machine()
        assert machine.auto_volts_for(machine.step) is None

    def test_rail_rejects_undervolted_step(self):
        machine = Sa2Machine()
        low_volts = sa2_volts_for_step(machine.clock_table.min_step)
        with pytest.raises(VoltageError):
            machine.set_voltage(low_volts)  # still at 600 MHz

    def test_power_tracks_schedule(self):
        machine = Sa2Machine()
        full = machine.power_w(CoreState.ACTIVE)
        assert full == pytest.approx(0.500, rel=1e-6)
        machine.set_step_index(0)
        machine.set_voltage(machine.auto_volts_for(machine.step))
        assert machine.power_w(CoreState.ACTIVE) == pytest.approx(0.040, rel=0.01)

    def test_custom_initial_mhz(self):
        machine = Sa2Machine(initial_mhz=150.0)
        assert machine.step.mhz == 150.0
        # The rail boots at the scheduled voltage for the boot step.
        assert machine.volts == pytest.approx(
            sa2_volts_for_step(machine.clock_table.min_step)
        )


class TestCpuModel:
    def test_cpu_uses_sa2_table(self):
        cpu = sa2_cpu()
        assert cpu.step.mhz == 600.0
        cpu.set_step_index(0)
        assert cpu.step.mhz == 150.0

    def test_work_timing_on_sa2(self):
        from repro.hw.work import Work

        cpu = sa2_cpu()
        work = Work(cpu_cycles=600e6)
        assert cpu.duration_us(work) == pytest.approx(1e6)
        cpu.set_step_index(0)
        assert cpu.duration_us(work) == pytest.approx(4e6)
