"""Tests for the calibrated power model."""

import pytest

from repro.hw.clocksteps import SA1100_CLOCK_TABLE
from repro.hw.power import (
    CoreState,
    IdleManagerParameters,
    PowerModel,
    PowerParameters,
)
from repro.hw.rails import VOLTAGE_HIGH, VOLTAGE_LOW

STEP_59 = SA1100_CLOCK_TABLE.min_step
STEP_132 = SA1100_CLOCK_TABLE.step_for_mhz(132.7)
STEP_206 = SA1100_CLOCK_TABLE.max_step


@pytest.fixture
def model():
    return PowerModel()


class TestStructure:
    def test_active_exceeds_nap_exceeds_off(self, model):
        for step in SA1100_CLOCK_TABLE:
            active = model.total_w(step, VOLTAGE_HIGH, CoreState.ACTIVE)
            nap = model.total_w(step, VOLTAGE_HIGH, CoreState.NAP)
            off = model.total_w(step, VOLTAGE_HIGH, CoreState.OFF)
            assert active > nap > off > 0

    def test_power_monotone_in_frequency(self, model):
        for state in (CoreState.ACTIVE, CoreState.NAP):
            powers = [
                model.total_w(step, VOLTAGE_HIGH, state)
                for step in SA1100_CLOCK_TABLE
            ]
            assert powers == sorted(powers)

    def test_lower_voltage_reduces_power(self, model):
        hi = model.total_w(STEP_132, VOLTAGE_HIGH, CoreState.ACTIVE)
        lo = model.total_w(STEP_132, VOLTAGE_LOW, CoreState.ACTIVE)
        assert lo < hi

    def test_voltage_does_not_change_off_power(self, model):
        hi = model.total_w(STEP_132, VOLTAGE_HIGH, CoreState.OFF)
        lo = model.total_w(STEP_132, VOLTAGE_LOW, CoreState.OFF)
        assert hi == lo

    def test_core_dynamic_scales_with_v_squared(self, model):
        # Core dynamic component isolated: active - nap contains pad too,
        # so test processor_w minus pad explicitly.
        p = model.params
        core_hi = p.core_w_per_mhz_v2 * VOLTAGE_HIGH**2
        core_lo = p.core_w_per_mhz_v2 * VOLTAGE_LOW**2
        assert core_lo / core_hi == pytest.approx((VOLTAGE_LOW / VOLTAGE_HIGH) ** 2)

    def test_unknown_state_rejected(self, model):
        with pytest.raises(ValueError):
            model.total_w(STEP_132, VOLTAGE_HIGH, "busy")  # type: ignore[arg-type]


class TestMagnitudes:
    """Plausibility: busy Itsy ~1.4 W, per the paper's 86 J / 60 s MPEG."""

    def test_busy_at_full_speed_near_1_4_watts(self, model):
        p = model.total_w(STEP_206, VOLTAGE_HIGH, CoreState.ACTIVE)
        assert 1.3 < p < 1.6

    def test_idle_floor_positive(self, model):
        p = model.total_w(STEP_59, VOLTAGE_HIGH, CoreState.NAP)
        assert 0.9 < p < 1.2

    def test_processor_w_components(self, model):
        proc = model.processor_w(STEP_206, VOLTAGE_HIGH, CoreState.ACTIVE)
        total = model.total_w(STEP_206, VOLTAGE_HIGH, CoreState.ACTIVE)
        assert 0 < proc < total
        assert model.processor_w(STEP_206, VOLTAGE_HIGH, CoreState.OFF) == 0.0


class TestValidation:
    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError):
            PowerParameters(fixed_w=-0.1)
        with pytest.raises(ValueError):
            PowerParameters(core_w_per_mhz_v2=-1e-3)

    def test_nap_above_active_rejected(self):
        with pytest.raises(ValueError):
            PowerParameters(core_w_per_mhz_v2=1e-4, nap_w_per_mhz_v2=2e-4)


class TestIdleManager:
    def test_idle_power_tracks_clock(self):
        params = IdleManagerParameters()
        p206 = params.idle_power_w(STEP_206)
        p59 = params.idle_power_w(STEP_59)
        assert p206 > p59 > 0
        # The §2.1 anecdote needs a substantial power ratio.
        assert p206 / p59 > 2.0
