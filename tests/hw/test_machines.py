"""Tests for the machine-spec layer (named presets plus overrides)."""

import pickle

import pytest

from repro.hw.itsy import ItsyMachine
from repro.hw.machines import (
    MACHINE_PRESETS,
    MachinePreset,
    MachineSpec,
    register_machine,
)
from repro.hw.sa2 import Sa2Machine


class TestParse:
    def test_bare_preset(self):
        assert MachineSpec.parse("itsy") == MachineSpec()
        assert MachineSpec.parse("sa2") == MachineSpec(name="sa2")

    def test_boot_voltage(self):
        spec = MachineSpec.parse("itsy@1.23")
        assert spec.name == "itsy"
        assert spec.initial_volts == 1.23

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown machine"):
            MachineSpec.parse("sa3")

    def test_malformed_voltage_rejected(self):
        with pytest.raises(ValueError, match="bad machine spec"):
            MachineSpec.parse("itsy@fast")


class TestPresets:
    def test_registry_names(self):
        assert {"itsy", "itsy-stock", "sa2"} <= set(MACHINE_PRESETS)

    def test_default_is_modified_itsy(self):
        machine = MachineSpec().build()
        assert isinstance(machine, ItsyMachine)
        assert machine.step.mhz == 206.4
        assert machine.volts == 1.5

    def test_itsy_low_voltage_boots_fastest_safe_step(self):
        machine = MachineSpec.parse("itsy@1.23").build()
        assert machine.volts == 1.23
        assert machine.step.mhz == pytest.approx(162.2)

    def test_stock_itsy_rejects_low_voltage(self):
        with pytest.raises(ValueError):
            MachineSpec(name="itsy-stock", initial_volts=1.23).build()

    def test_sa2_builds_with_schedule(self):
        machine = MachineSpec(name="sa2").build()
        assert isinstance(machine, Sa2Machine)
        assert machine.step.mhz == 600.0
        assert machine.volts == pytest.approx(1.8)

    def test_sa2_rejects_boot_voltage(self):
        with pytest.raises(ValueError, match="voltage schedule"):
            MachineSpec(name="sa2", initial_volts=1.5).build()

    def test_spec_is_a_machine_factory(self):
        spec = MachineSpec()
        assert isinstance(spec(), ItsyMachine)
        assert spec() is not spec()


class TestOverrides:
    def test_initial_mhz(self):
        machine = MachineSpec(initial_mhz=132.7).build()
        assert machine.step.mhz == pytest.approx(132.7)

    def test_initial_mhz_off_table_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(initial_mhz=100.0).build()

    def test_custom_clock_table(self):
        spec = MachineSpec(frequencies_mhz=(100.0, 200.0))
        machine = spec.build()
        assert [s.mhz for s in machine.clock_table] == [100.0, 200.0]
        assert machine.step.mhz == 200.0

    def test_power_override_changes_model(self):
        base = MachineSpec().build()
        hot = MachineSpec(power=(("fixed_w", 0.5),)).build()
        assert hot.power.params.fixed_w == 0.5
        assert hot.power.params.fixed_w != base.power.params.fixed_w

    def test_unknown_power_field_rejected(self):
        with pytest.raises(ValueError, match="unknown power parameter"):
            MachineSpec(power=(("warp_w", 1.0),)).build()

    def test_power_dict_normalized_for_hashing(self):
        by_dict = MachineSpec(power={"fixed_w": 0.5})
        by_tuple = MachineSpec(power=(("fixed_w", 0.5),))
        assert by_dict == by_tuple
        assert hash(by_dict) == hash(by_tuple)


class TestSpecProperties:
    def test_pickles(self):
        spec = MachineSpec.parse("sa2")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert isinstance(clone.build(), Sa2Machine)

    def test_clock_table_matches_built_machine(self):
        for name in ("itsy", "itsy-stock", "sa2"):
            spec = MachineSpec(name=name)
            assert [s.mhz for s in spec.clock_table()] == [
                s.mhz for s in spec.build().clock_table
            ]

    def test_register_machine_round_trip(self):
        preset = MachinePreset(
            name="test-only",
            builder=lambda spec: MachineSpec().build(),
            clock_table=MACHINE_PRESETS["itsy"].clock_table,
            description="scratch",
        )
        register_machine(preset)
        try:
            assert MachineSpec(name="test-only").build().step.mhz == 206.4
        finally:
            del MACHINE_PRESETS["test-only"]


class TestReconfPresets:
    """The *-reconf family: frequency/voltage changes that cost something."""

    def test_registered(self):
        assert {"itsy-reconf", "sa2-reconf"} <= set(MACHINE_PRESETS)

    @pytest.mark.parametrize("name,base_type", [
        ("itsy-reconf", ItsyMachine), ("sa2-reconf", Sa2Machine),
    ])
    def test_build_sets_costs(self, name, base_type):
        from repro.hw.machines import (
            RECONF_CLOCK_STALL_US,
            RECONF_POWER_W,
            RECONF_VOLT_SETTLE_US,
        )

        machine = MachineSpec(name=name).build()
        assert isinstance(machine, base_type)
        assert machine.cpu.clock_change_stall_us == RECONF_CLOCK_STALL_US
        assert machine.cpu.rail.down_settle_us == RECONF_VOLT_SETTLE_US
        assert machine.reconf_extra_w == RECONF_POWER_W

    def test_measured_machines_have_zero_extra_power(self):
        for name in ("itsy", "itsy-stock", "sa2"):
            assert MachineSpec(name=name).build().reconf_extra_w == 0.0

    def test_explicit_fields_override_preset_defaults(self):
        spec = MachineSpec(
            name="itsy-reconf", clock_stall_us=2500.0, reconf_power_w=0.5
        )
        machine = spec.build()
        assert machine.cpu.clock_change_stall_us == 2500.0
        assert machine.reconf_extra_w == 0.5
        # untouched field keeps the family default
        assert machine.cpu.rail.down_settle_us == 500.0

    def test_costs_apply_to_any_preset(self):
        machine = MachineSpec(name="itsy", reconf_power_w=0.2).build()
        assert machine.reconf_extra_w == 0.2

    @pytest.mark.parametrize(
        "field", ["clock_stall_us", "volt_settle_us", "reconf_power_w"]
    )
    def test_negative_costs_rejected(self, field):
        with pytest.raises(ValueError, match="non-negative"):
            MachineSpec(**{field: -1.0})

    def test_override_marks_label(self):
        assert MachineSpec(name="itsy-reconf").label == "itsy-reconf"
        assert MachineSpec(name="itsy", reconf_power_w=0.2).label == "itsy*"

    def test_reconf_cells_get_distinct_cache_keys(self):
        from repro.measure.parallel import PolicySpec, SweepCell, cache_key
        from repro.measure.parallel import WorkloadSpec as SweepWorkloadSpec

        def key(machine):
            return cache_key(SweepCell(
                workload=SweepWorkloadSpec("mpeg"),
                policy=PolicySpec("best"),
                machine=MachineSpec(name=machine),
            ))

        assert key("itsy") != key("itsy-reconf")
        assert key("sa2") != key("sa2-reconf")

    def test_reconf_run_costs_more_energy(self):
        from repro.core.catalog import resolve_policy
        from repro.measure.runner import run_workload
        from repro.workloads.mpeg import MpegConfig, mpeg_workload

        def energy(machine):
            return run_workload(
                mpeg_workload(MpegConfig(duration_s=2.0)),
                resolve_policy("best"),
                machine_factory=MachineSpec(name=machine),
                use_daq=False,
            ).exact_energy_j

        assert energy("itsy-reconf") > energy("itsy")
