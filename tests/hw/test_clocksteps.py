"""Tests for the SA-1100 clock-step table."""

import pytest

from repro.hw.clocksteps import (
    SA1100_CLOCK_TABLE,
    SA1100_FREQUENCIES_MHZ,
    ClockStep,
    ClockTable,
)


class TestSa1100Table:
    def test_eleven_steps(self):
        assert len(SA1100_CLOCK_TABLE) == 11

    def test_table_matches_paper_frequencies(self):
        assert SA1100_CLOCK_TABLE.frequencies_mhz() == SA1100_FREQUENCIES_MHZ

    def test_extremes(self):
        assert SA1100_CLOCK_TABLE.min_step.mhz == 59.0
        assert SA1100_CLOCK_TABLE.max_step.mhz == 206.4
        assert SA1100_CLOCK_TABLE.max_index == 10

    def test_indices_are_positional(self):
        for i, step in enumerate(SA1100_CLOCK_TABLE):
            assert step.index == i
            assert SA1100_CLOCK_TABLE[i] is step

    def test_steps_nominally_equal_increments(self):
        freqs = SA1100_CLOCK_TABLE.frequencies_mhz()
        increments = [b - a for a, b in zip(freqs, freqs[1:])]
        assert all(14.6 <= inc <= 14.9 for inc in increments)


class TestClockStep:
    def test_hz(self):
        step = ClockStep(0, 59.0)
        assert step.hz == 59.0e6

    def test_cycles_in_us(self):
        step = ClockStep(10, 206.4)
        assert step.cycles_in_us(1.0) == pytest.approx(206.4)
        assert step.cycles_in_us(200.0) == pytest.approx(41280.0)

    def test_us_for_cycles_inverts_cycles_in_us(self):
        step = ClockStep(5, 132.7)
        assert step.us_for_cycles(step.cycles_in_us(123.4)) == pytest.approx(123.4)

    def test_paper_stall_cycle_counts(self):
        # §5.4: a 200 us stall is ~11,800 periods at 59 MHz and ~41,280 at
        # 206.4 MHz.
        assert ClockStep(0, 59.0).cycles_in_us(200.0) == pytest.approx(11800)
        assert ClockStep(10, 206.4).cycles_in_us(200.0) == pytest.approx(41280)


class TestClockTableValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ClockTable([])

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            ClockTable([100.0, 59.0])

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            ClockTable([59.0, 59.0])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            ClockTable([0.0, 59.0])
        with pytest.raises(ValueError):
            ClockTable([-1.0, 59.0])


class TestLookups:
    def test_step_for_mhz_exact(self):
        step = SA1100_CLOCK_TABLE.step_for_mhz(132.7)
        assert step.index == 5

    def test_step_for_mhz_tolerates_rounding(self):
        assert SA1100_CLOCK_TABLE.step_for_mhz(132.71).index == 5

    def test_step_for_mhz_unknown_raises(self):
        with pytest.raises(KeyError):
            SA1100_CLOCK_TABLE.step_for_mhz(100.0)

    def test_clamp_index(self):
        assert SA1100_CLOCK_TABLE.clamp_index(-3) == 0
        assert SA1100_CLOCK_TABLE.clamp_index(4) == 4
        assert SA1100_CLOCK_TABLE.clamp_index(99) == 10

    def test_lowest_step_at_least(self):
        assert SA1100_CLOCK_TABLE.lowest_step_at_least(0.0).mhz == 59.0
        assert SA1100_CLOCK_TABLE.lowest_step_at_least(59.0).mhz == 59.0
        assert SA1100_CLOCK_TABLE.lowest_step_at_least(59.1).mhz == 73.7
        assert SA1100_CLOCK_TABLE.lowest_step_at_least(154.5).mhz == 162.2

    def test_lowest_step_at_least_saturates_at_max(self):
        assert SA1100_CLOCK_TABLE.lowest_step_at_least(500.0).mhz == 206.4
