"""Tests for the Work demand model."""

import pytest

from repro.hw.clocksteps import SA1100_CLOCK_TABLE
from repro.hw.memory import SA1100_MEMORY_TIMINGS
from repro.hw.work import Work

STEP_59 = SA1100_CLOCK_TABLE.min_step
STEP_132 = SA1100_CLOCK_TABLE.step_for_mhz(132.7)
STEP_206 = SA1100_CLOCK_TABLE.max_step
T = SA1100_MEMORY_TIMINGS


class TestBasics:
    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            Work(cpu_cycles=-1.0)
        with pytest.raises(ValueError):
            Work(mem_refs=-1.0)
        with pytest.raises(ValueError):
            Work(cache_refs=-1.0)

    def test_empty(self):
        assert Work().is_empty
        assert not Work(cpu_cycles=1.0).is_empty

    def test_add(self):
        w = Work(1.0, 2.0, 3.0) + Work(10.0, 20.0, 30.0)
        assert w == Work(11.0, 22.0, 33.0)

    def test_scaled(self):
        w = Work(2.0, 4.0, 6.0).scaled(0.5)
        assert w == Work(1.0, 2.0, 3.0)

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            Work(1.0).scaled(-0.1)


class TestTiming:
    def test_pure_cpu_scales_linearly_with_frequency(self):
        w = Work(cpu_cycles=206.4e6)  # one second at full speed
        assert w.duration_us(STEP_206, T) == pytest.approx(1e6)
        assert w.duration_us(STEP_59, T) == pytest.approx(1e6 * 206.4 / 59.0)

    def test_memory_work_scales_sublinearly(self):
        w = Work(mem_refs=1e5)
        d206 = w.duration_us(STEP_206, T)
        d59 = w.duration_us(STEP_59, T)
        # Frequency ratio is 3.5x but memory speedup is only (20/11)x less.
        assert d59 / d206 == pytest.approx((11 / 59.0) / (20 / 206.4))
        assert d59 / d206 < 2.0

    def test_total_cycles_uses_table3(self):
        w = Work(cpu_cycles=1000.0, mem_refs=10.0, cache_refs=5.0)
        assert w.total_cycles(STEP_132, T) == pytest.approx(1000 + 10 * 14 + 5 * 42)
        assert w.total_cycles(STEP_206, T) == pytest.approx(1000 + 10 * 20 + 5 * 69)

    def test_duration_is_cycles_over_mhz(self):
        w = Work(cpu_cycles=1327.0)
        assert w.duration_us(STEP_132, T) == pytest.approx(10.0)


class TestSplit:
    def test_split_zero_elapsed(self):
        w = Work(1000.0, 10.0, 5.0)
        done, remaining = w.split_at_us(0.0, STEP_206, T)
        assert done.is_empty
        assert remaining == w

    def test_split_full_elapsed(self):
        w = Work(1000.0, 10.0, 5.0)
        d = w.duration_us(STEP_206, T)
        done, remaining = w.split_at_us(d, STEP_206, T)
        assert done == w
        assert remaining.is_empty

    def test_split_preserves_mass(self):
        w = Work(1000.0, 10.0, 5.0)
        d = w.duration_us(STEP_132, T)
        done, remaining = w.split_at_us(d * 0.37, STEP_132, T)
        total = done + remaining
        assert total.cpu_cycles == pytest.approx(w.cpu_cycles)
        assert total.mem_refs == pytest.approx(w.mem_refs)
        assert total.cache_refs == pytest.approx(w.cache_refs)

    def test_split_preserves_mix(self):
        w = Work(1000.0, 10.0, 5.0)
        d = w.duration_us(STEP_132, T)
        done, _ = w.split_at_us(d * 0.5, STEP_132, T)
        assert done.cpu_cycles / w.cpu_cycles == pytest.approx(0.5)
        assert done.mem_refs / w.mem_refs == pytest.approx(0.5)
        assert done.cache_refs / w.cache_refs == pytest.approx(0.5)

    def test_split_negative_elapsed_rejected(self):
        with pytest.raises(ValueError):
            Work(1.0).split_at_us(-1.0, STEP_206, T)

    def test_remaining_runs_to_completion_across_steps(self):
        # Work split at one frequency completes correctly at another.
        w = Work(1e6, 1e4, 1e3)
        _, remaining = w.split_at_us(1000.0, STEP_206, T)
        d_rem = remaining.duration_us(STEP_59, T)
        done2, rem2 = remaining.split_at_us(d_rem, STEP_59, T)
        assert rem2.is_empty
        assert done2.cpu_cycles == pytest.approx(remaining.cpu_cycles)

    def test_sub_nanosecond_tail_counts_as_complete(self):
        w = Work(cpu_cycles=1e6)
        d = w.duration_us(STEP_206, T)
        _, remaining = w.split_at_us(d - 1e-4, STEP_206, T)
        assert remaining.is_empty
