"""Tests for whole-machine composition."""

import pytest

from repro.hw.itsy import ItsyConfig, ItsyMachine, modified_itsy, stock_itsy
from repro.hw.power import CoreState
from repro.hw.rails import VOLTAGE_HIGH, VOLTAGE_LOW


class TestPresets:
    def test_default_boots_fast_and_high(self):
        machine = ItsyMachine()
        assert machine.step.mhz == 206.4
        assert machine.volts == VOLTAGE_HIGH

    def test_boot_at_other_frequency(self):
        machine = ItsyMachine(ItsyConfig(initial_mhz=132.7))
        assert machine.step.mhz == pytest.approx(132.7)

    def test_boot_at_low_voltage(self):
        machine = modified_itsy(initial_mhz=132.7, initial_volts=VOLTAGE_LOW)
        assert machine.volts == VOLTAGE_LOW

    def test_unknown_boot_frequency_rejected(self):
        with pytest.raises(KeyError):
            ItsyMachine(ItsyConfig(initial_mhz=100.0))

    def test_stock_unit_has_no_low_rail(self):
        machine = stock_itsy(initial_mhz=59.0)
        with pytest.raises(ValueError):
            machine.set_voltage(VOLTAGE_LOW)

    def test_stock_unit_cannot_boot_low(self):
        with pytest.raises(ValueError):
            ItsyMachine(
                ItsyConfig(initial_volts=VOLTAGE_LOW, low_voltage_available=False)
            )


class TestBehaviour:
    def test_power_states_ordered(self):
        machine = ItsyMachine()
        assert machine.power_w(CoreState.ACTIVE) > machine.power_w(CoreState.NAP)

    def test_step_change_passthrough(self):
        machine = ItsyMachine()
        stall = machine.set_step_index(0)
        assert stall == pytest.approx(200.0)
        assert machine.step.mhz == 59.0

    def test_voltage_change_passthrough(self):
        machine = modified_itsy(initial_mhz=132.7)
        settle = machine.set_voltage(VOLTAGE_LOW)
        assert settle == pytest.approx(250.0)
        assert machine.volts == VOLTAGE_LOW

    def test_power_drops_after_voltage_scale(self):
        machine = modified_itsy(initial_mhz=132.7)
        before = machine.power_w(CoreState.ACTIVE)
        machine.set_voltage(VOLTAGE_LOW)
        after = machine.power_w(CoreState.ACTIVE)
        assert after < before

    def test_clock_table_exposed(self):
        machine = ItsyMachine()
        assert len(machine.clock_table) == 11
