"""Tests for the voltage rail model."""

import pytest

from repro.hw.clocksteps import SA1100_CLOCK_TABLE
from repro.hw.rails import (
    CoreRail,
    VOLTAGE_DOWN_SETTLE_US,
    VOLTAGE_HIGH,
    VOLTAGE_LOW,
    VoltageError,
)

STEP_59 = SA1100_CLOCK_TABLE.min_step
STEP_162 = SA1100_CLOCK_TABLE.step_for_mhz(162.2)
STEP_177 = SA1100_CLOCK_TABLE.step_for_mhz(176.9)
STEP_206 = SA1100_CLOCK_TABLE.max_step


class TestTransitions:
    def test_lowering_takes_250us(self):
        rail = CoreRail()
        settle = rail.set_voltage(VOLTAGE_LOW, STEP_59)
        assert settle == pytest.approx(250.0)
        assert rail.volts == VOLTAGE_LOW
        assert rail.is_low

    def test_raising_is_instantaneous(self):
        rail = CoreRail()
        rail.set_voltage(VOLTAGE_LOW, STEP_59)
        settle = rail.set_voltage(VOLTAGE_HIGH, STEP_59)
        assert settle == 0.0
        assert not rail.is_low

    def test_no_change_no_settle(self):
        rail = CoreRail()
        assert rail.set_voltage(VOLTAGE_HIGH, STEP_206) == 0.0

    def test_paper_settle_constant(self):
        assert VOLTAGE_DOWN_SETTLE_US == 250.0


class TestSafetyEnvelope:
    def test_low_voltage_allowed_at_or_below_bound(self):
        rail = CoreRail()
        assert rail.allows(VOLTAGE_LOW, STEP_162)
        assert rail.allows(VOLTAGE_LOW, STEP_59)

    def test_low_voltage_rejected_above_bound(self):
        rail = CoreRail()
        assert not rail.allows(VOLTAGE_LOW, STEP_177)
        with pytest.raises(VoltageError):
            rail.set_voltage(VOLTAGE_LOW, STEP_177)

    def test_high_voltage_always_allowed(self):
        rail = CoreRail()
        for step in SA1100_CLOCK_TABLE:
            assert rail.allows(VOLTAGE_HIGH, step)

    def test_unsupported_voltage_rejected(self):
        rail = CoreRail()
        with pytest.raises(VoltageError):
            rail.set_voltage(1.1, STEP_59)
        assert not rail.allows(2.0, STEP_59)


class TestValidation:
    def test_low_must_be_below_high(self):
        with pytest.raises(ValueError):
            CoreRail(high_volts=1.2, low_volts=1.5)

    def test_initial_voltage_must_be_a_rail_setting(self):
        with pytest.raises(VoltageError):
            CoreRail(volts=1.35)

    def test_settle_us_for_matches_direction(self):
        rail = CoreRail()
        assert rail.settle_us_for(VOLTAGE_LOW) == 250.0
        assert rail.settle_us_for(VOLTAGE_HIGH) == 0.0
        rail.set_voltage(VOLTAGE_LOW, STEP_59)
        assert rail.settle_us_for(VOLTAGE_HIGH) == 0.0
