"""Tests for the fixed-latency memory-table constructor."""

import pytest

from repro.hw.clocksteps import SA1100_FREQUENCIES_MHZ
from repro.hw.memory import (
    SA1100_CYCLES_PER_CACHE_REF,
    SA1100_CYCLES_PER_MEM_REF,
    fixed_latency_timings,
)


class TestConstruction:
    def test_cycles_grow_with_frequency(self):
        t = fixed_latency_timings(SA1100_FREQUENCIES_MHZ, 90.0, 300.0)
        assert list(t.cycles_per_mem_ref) == sorted(t.cycles_per_mem_ref)
        assert list(t.cycles_per_cache_ref) == sorted(t.cycles_per_cache_ref)

    def test_ceil_semantics(self):
        # 100 ns at 59 MHz = 5.9 cycles -> 6; at 206.4 = 20.64 -> 21.
        t = fixed_latency_timings((59.0, 206.4), 100.0, 400.0)
        assert t.cycles_per_mem_ref == (6, 21)

    def test_overhead_added(self):
        base = fixed_latency_timings((100.0,), 50.0, 200.0)
        with_overhead = fixed_latency_timings(
            (100.0,), 50.0, 200.0, mem_overhead_cycles=3, cache_overhead_cycles=5
        )
        assert (
            with_overhead.cycles_per_mem_ref[0] == base.cycles_per_mem_ref[0] + 3
        )
        assert (
            with_overhead.cycles_per_cache_ref[0] == base.cycles_per_cache_ref[0] + 5
        )

    def test_minimum_one_cycle(self):
        t = fixed_latency_timings((59.0,), 0.1, 0.2)
        assert t.cycles_per_mem_ref[0] >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            fixed_latency_timings((59.0,), 0.0, 100.0)
        with pytest.raises(ValueError):
            fixed_latency_timings((59.0,), 100.0, -1.0)


class TestTable3Approximation:
    """How close first principles get to the measured Table 3.

    The measured table has page-mode plateaus (11 cycles flat from 59 to
    103.2 MHz) that a single-latency model cannot produce; the best fit
    still lands within a couple of cycles for single words and within a
    handful for cache lines -- close enough to build *other* machines,
    while the Itsy keeps the measured values.
    """

    def test_word_fit_within_two_cycles(self):
        t = fixed_latency_timings(
            SA1100_FREQUENCIES_MHZ, 44.0, 194.0,
            mem_overhead_cycles=8, cache_overhead_cycles=22,
        )
        for fitted, measured in zip(t.cycles_per_mem_ref, SA1100_CYCLES_PER_MEM_REF):
            assert abs(fitted - measured) <= 2

    def test_cache_fit_within_six_cycles(self):
        t = fixed_latency_timings(
            SA1100_FREQUENCIES_MHZ, 44.0, 194.0,
            mem_overhead_cycles=8, cache_overhead_cycles=22,
        )
        for fitted, measured in zip(
            t.cycles_per_cache_ref, SA1100_CYCLES_PER_CACHE_REF
        ):
            assert abs(fitted - measured) <= 6

    def test_fitted_table_also_produces_a_plateau_shaped_curve(self):
        # The fitted table still yields sub-linear speedup for memory work.
        from repro.hw.clocksteps import SA1100_CLOCK_TABLE
        from repro.hw.work import Work

        t = fixed_latency_timings(
            SA1100_FREQUENCIES_MHZ, 44.0, 194.0,
            mem_overhead_cycles=8, cache_overhead_cycles=22,
        )
        w = Work(cpu_cycles=1e6, mem_refs=5e4, cache_refs=2e4)
        d59 = w.duration_us(SA1100_CLOCK_TABLE.min_step, t)
        d206 = w.duration_us(SA1100_CLOCK_TABLE.max_step, t)
        assert d59 / d206 < 206.4 / 59.0  # sub-linear speedup
