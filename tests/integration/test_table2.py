"""Integration: reproduce Table 2 (the paper's headline energy table).

Five configurations of the 60 s MPEG workload, measured through the DAQ
over repeated runs with 95 % confidence intervals.  The calibrated power
model must land each mean inside (a small widening of) the paper's
reported interval, and the significance structure must match:

- constant 132.7 MHz saves significantly over constant 206.4 MHz;
- 1.23 V at 132.7 MHz saves significantly more;
- the best heuristic policy saves a *small but significant* amount;
- adding voltage scaling to the best policy gives *no* significant change.
"""

import pytest

from repro.core.catalog import best_policy, constant_speed
from repro.hw.rails import VOLTAGE_LOW
from repro.measure.runner import repeat_workload
from repro.workloads.mpeg import mpeg_workload

RUNS = 4

# Paper Table 2: 95 % CI bounds in joules.
PAPER_ROWS = {
    "const_206": (85.59, 86.49),
    "const_132": (79.59, 80.94),
    "const_132_low": (73.76, 74.41),
    "best": (85.03, 85.47),
    "best_vscale": (84.60, 85.45),
}


@pytest.fixture(scope="module")
def table2():
    factories = {
        "const_206": lambda: constant_speed(206.4),
        "const_132": lambda: constant_speed(132.7),
        "const_132_low": lambda: constant_speed(132.7, volts=VOLTAGE_LOW),
        "best": lambda: best_policy(False),
        "best_vscale": lambda: best_policy(True),
    }
    return {
        name: repeat_workload(mpeg_workload(), factory, runs=RUNS)
        for name, factory in factories.items()
    }


class TestAbsoluteEnergies:
    @pytest.mark.parametrize("row", list(PAPER_ROWS))
    def test_mean_energy_matches_paper(self, table2, row):
        low, high = PAPER_ROWS[row]
        mean = table2[row].mean_energy_j
        # within the paper's interval widened by 1 J of calibration slack
        assert low - 1.0 <= mean <= high + 1.0

    def test_confidence_intervals_tight(self, table2):
        """§4.1: the 95 % CI is below 0.7 % of the mean."""
        for agg in table2.values():
            assert agg.energy_ci.relative_half_width < 0.007


class TestSignificanceStructure:
    def test_constant_132_saves_significantly(self, table2):
        assert not table2["const_132"].energy_ci.overlaps(
            table2["const_206"].energy_ci
        )

    def test_low_voltage_saves_significantly_more(self, table2):
        assert not table2["const_132_low"].energy_ci.overlaps(
            table2["const_132"].energy_ci
        )

    def test_best_policy_saves_small_but_significant(self, table2):
        best = table2["best"].energy_ci
        const = table2["const_206"].energy_ci
        assert not best.overlaps(const)
        assert best.mean < const.mean
        # ... but the saving is small: under 3 %.
        assert (const.mean - best.mean) / const.mean < 0.03

    def test_voltage_scaling_adds_no_significant_change(self, table2):
        assert table2["best_vscale"].energy_ci.overlaps(table2["best"].energy_ci)

    def test_ordering_matches_paper(self, table2):
        means = {k: agg.mean_energy_j for k, agg in table2.items()}
        assert means["const_132_low"] < means["const_132"] < means["best"]
        assert means["best"] < means["const_206"]


class TestNoDeadlineMisses:
    def test_every_table2_row_meets_deadlines(self, table2):
        for name, agg in table2.items():
            assert not agg.any_missed, f"{name} missed deadlines"
