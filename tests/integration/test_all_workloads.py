"""Integration: the §5.1 claims across all four workloads."""

import pytest

from repro.core.catalog import best_policy, constant_speed
from repro.measure.runner import run_workload
from repro.workloads import (
    chess_workload,
    editor_workload,
    mpeg_workload,
    web_workload,
)
from repro.workloads.chess import ChessConfig
from repro.workloads.editor import EditorConfig
from repro.workloads.mpeg import MpegConfig
from repro.workloads.web import WebConfig

# Shortened traces keep the integration suite quick while preserving the
# structure; the benchmarks run the full-length versions.
WORKLOADS = [
    mpeg_workload(MpegConfig(duration_s=20.0)),
    web_workload(WebConfig(duration_s=60.0)),
    chess_workload(ChessConfig(duration_s=60.0)),
    editor_workload(EditorConfig()),
]


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
class TestFeasibilityAt132:
    """§5.1: every application runs at 132 MHz with no visible change."""

    def test_meets_constraints_at_132(self, workload):
        res = run_workload(
            workload, lambda: constant_speed(132.7), seed=4, use_daq=False
        )
        assert not res.missed

    def test_meets_constraints_at_full_speed(self, workload):
        res = run_workload(
            workload, lambda: constant_speed(206.4), seed=4, use_daq=False
        )
        assert not res.missed


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
class TestBestPolicyAcrossApplications:
    """§5.4: the best policy never misses a deadline across all apps."""

    def test_no_misses(self, workload):
        res = run_workload(workload, best_policy, seed=4, use_daq=False)
        assert not res.missed

    def test_saves_energy_on_idle_heavy_workloads(self, workload):
        policy = run_workload(workload, best_policy, seed=4, use_daq=False)
        const = run_workload(
            workload, lambda: constant_speed(206.4), seed=4, use_daq=False
        )
        assert policy.exact_energy_j < const.exact_energy_j * 1.01


class TestDistinctTimeScales:
    """§5.1: 'each application appears to run at a different time-scale'."""

    def test_utilization_signatures_differ(self):
        from repro.analysis.utilization import busy_idle_runs

        signatures = {}
        for workload in WORKLOADS:
            res = run_workload(
                workload, lambda: constant_speed(206.4), seed=4, use_daq=False
            )
            runs = busy_idle_runs(res.run.utilizations())
            busy_runs = [length for busy, length in runs if busy]
            signatures[workload.name] = (
                res.run.mean_utilization(),
                max(busy_runs) if busy_runs else 0,
            )
        # Chess has the longest busy stretches (multi-second searches).
        assert signatures["Chess"][1] > signatures["MPEG"][1]
        # Web is the idlest workload.
        assert signatures["Web"][0] == min(s[0] for s in signatures.values())
