"""Seed robustness: the headline claims hold across many seeds.

The paper's acceptance claims are universal ("never misses any deadline
across all the applications"); a reproduction that only holds for a lucky
seed would be hollow.  These tests sweep seeds on shortened traces.
"""

from repro.core.catalog import best_policy, constant_speed
from repro.measure.runner import run_workload
from repro.workloads.chess import ChessConfig, chess_workload
from repro.workloads.editor import EditorConfig, editor_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload
from repro.workloads.web import WebConfig, web_workload

SEEDS = range(12)


class TestBestPolicyNeverMisses:
    def test_mpeg(self):
        wl = mpeg_workload(MpegConfig(duration_s=20.0))
        for seed in SEEDS:
            res = run_workload(wl, best_policy, seed=seed, use_daq=False)
            assert not res.missed, f"seed {seed}"

    def test_web(self):
        wl = web_workload(WebConfig(duration_s=45.0))
        for seed in SEEDS:
            res = run_workload(wl, best_policy, seed=seed, use_daq=False)
            assert not res.missed, f"seed {seed}"

    def test_chess(self):
        wl = chess_workload(ChessConfig(duration_s=45.0))
        for seed in SEEDS:
            res = run_workload(wl, best_policy, seed=seed, use_daq=False)
            assert not res.missed, f"seed {seed}"

    def test_editor(self):
        wl = editor_workload(EditorConfig())
        for seed in SEEDS:
            res = run_workload(wl, best_policy, seed=seed, use_daq=False)
            assert not res.missed, f"seed {seed}"


class TestFeasibilityBoundaryIsStable:
    def test_132_feasible_118_not_for_mpeg(self):
        wl = mpeg_workload(MpegConfig(duration_s=20.0))
        for seed in SEEDS:
            ok = run_workload(
                wl, lambda: constant_speed(132.7), seed=seed, use_daq=False
            )
            bad = run_workload(
                wl, lambda: constant_speed(118.0), seed=seed, use_daq=False
            )
            assert not ok.missed, f"132.7 missed at seed {seed}"
            assert bad.missed, f"118.0 unexpectedly fine at seed {seed}"

    def test_best_policy_saving_sign_is_stable(self):
        wl = mpeg_workload(MpegConfig(duration_s=30.0))
        for seed in SEEDS:
            policy = run_workload(wl, best_policy, seed=seed, use_daq=False)
            const = run_workload(
                wl, lambda: constant_speed(206.4), seed=seed, use_daq=False
            )
            assert policy.exact_energy_j < const.exact_energy_j, f"seed {seed}"
