"""Cross-validation of the measurement path on real experiments.

The DAQ estimator (5 kHz sampling + 16-bit quantization + noise) must
agree with the analytic power integral on every workload and policy, and
the scheduler activity log must account for the run consistently.
"""

import pytest

from repro.core.catalog import best_policy, constant_speed
from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.kernel.scheduler import Kernel, KernelConfig
from repro.measure.runner import run_workload
from repro.workloads.chess import ChessConfig, chess_workload
from repro.workloads.editor import EditorConfig, editor_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload
from repro.workloads.web import WebConfig, web_workload

WORKLOADS = [
    mpeg_workload(MpegConfig(duration_s=10.0)),
    web_workload(WebConfig(duration_s=20.0)),
    chess_workload(ChessConfig(duration_s=20.0)),
    editor_workload(EditorConfig(duration_s=20.0)),
]


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
@pytest.mark.parametrize(
    "factory_name,factory",
    [
        ("const206", lambda: constant_speed(206.4)),
        ("best", best_policy),
    ],
)
class TestDaqAgreesWithExactIntegral:
    def test_within_one_percent(self, workload, factory_name, factory):
        # 5 kHz sampling genuinely aliases millisecond-scale bursts (the
        # Java poll is ~1 ms, 5 samples wide), so sub-percent bias is
        # physical, not a bug; 1 % bounds it across all workloads.
        res = run_workload(workload, factory, seed=5)
        assert res.energy_j == pytest.approx(res.exact_energy_j, rel=0.01)


class TestSchedulerLog:
    def test_log_accounts_for_all_decisions(self):
        kernel = Kernel(
            ItsyMachine(ItsyConfig()),
            governor=best_policy(),
            config=KernelConfig(record_sched_log=True),
        )
        from repro.workloads.mpeg import setup_mpeg

        setup_mpeg(kernel, seed=0, cfg=MpegConfig(duration_s=5.0))
        run = kernel.run(5_000_000.0)
        assert run.sched_log
        # idle decisions carry pid 0, as in the paper's kernel
        idle_picks = [d for d in run.sched_log if d.pid == 0]
        busy_picks = [d for d in run.sched_log if d.pid > 0]
        assert idle_picks and busy_picks
        names = {d.name for d in busy_picks}
        assert names == {"mpeg_play", "wav_play"}
        # decision times are nondecreasing with microsecond stamps
        times = [d.time_us for d in run.sched_log]
        assert times == sorted(times)
        # the recorded clock rate always matches a table step
        from repro.hw.clocksteps import SA1100_FREQUENCIES_MHZ

        assert {d.mhz for d in run.sched_log} <= set(SA1100_FREQUENCIES_MHZ)

    def test_log_off_by_default(self):
        kernel = Kernel(ItsyMachine(ItsyConfig()))
        from repro.workloads.mpeg import setup_mpeg

        setup_mpeg(kernel, seed=0, cfg=MpegConfig(duration_s=1.0))
        run = kernel.run(1_000_000.0)
        assert run.sched_log == []
