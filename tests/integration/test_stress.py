"""Stress and scale tests: fairness, long runs, crowded systems."""

import pytest

from repro.core.catalog import best_policy, constant_speed
from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.hw.work import Work
from repro.kernel.process import Compute, Exit, SpinUntil
from repro.kernel.scheduler import Kernel, KernelConfig
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload

Q = 10_000.0


class TestFairness:
    def test_round_robin_shares_evenly_among_many(self):
        """Eight CPU-bound processes each get ~1/8 of the machine."""
        kernel = Kernel(
            ItsyMachine(ItsyConfig()), config=KernelConfig(sched_overhead_us=0.0)
        )
        finished = {}

        def make_body(name):
            def body(ctx):
                yield Compute(Work(cpu_cycles=206.4 * 100_000.0))  # 100 ms
                finished[name] = ctx.now_us
                yield Exit()

            return body

        for i in range(8):
            kernel.spawn(f"p{i}", make_body(f"p{i}"))
        kernel.run(1000 * Q)
        assert len(finished) == 8
        # All finish within one quantum of each other around 800 ms.
        times = sorted(finished.values())
        assert times[-1] - times[0] <= 8 * Q
        assert times[-1] == pytest.approx(800_000.0, abs=2 * Q)

    def test_spinners_cannot_starve_computers(self):
        kernel = Kernel(
            ItsyMachine(ItsyConfig()), config=KernelConfig(sched_overhead_us=0.0)
        )
        done = []

        def spinner(ctx):
            yield SpinUntil(100 * Q)
            yield Exit()

        def computer(ctx):
            yield Compute(Work(cpu_cycles=206.4 * 50_000.0))  # 50 ms
            done.append(ctx.now_us)
            yield Exit()

        kernel.spawn("spinner", spinner)
        kernel.spawn("computer", computer)
        kernel.run(100 * Q)
        # The computer gets every other quantum: 50 ms of demand completes
        # in ~100 ms of wall clock despite the spinner.
        assert done and done[0] == pytest.approx(10 * Q, abs=3 * Q)


class TestLongRuns:
    def test_five_minute_mpeg_under_best_policy(self):
        """Long-run stability: no drift, no misses, bounded accounting."""
        cfg = MpegConfig(duration_s=300.0)
        res = run_workload(mpeg_workload(cfg), best_policy, seed=0, use_daq=False)
        assert not res.missed
        assert len(res.run.quanta) == 30_000
        frames = res.run.events_of_kind("frame")
        assert len(frames) == cfg.n_frames
        # lateness stays bounded throughout (no slow drift)
        last_quarter = [e.lateness_us for e in frames[-1000:]]
        assert max(last_quarter) < cfg.sync_tolerance_us

    def test_energy_scales_linearly_with_duration(self):
        short = run_workload(
            mpeg_workload(MpegConfig(duration_s=15.0, run_scale_sigma=0.0)),
            lambda: constant_speed(206.4),
            seed=0,
            use_daq=False,
        )
        long = run_workload(
            mpeg_workload(MpegConfig(duration_s=60.0, run_scale_sigma=0.0)),
            lambda: constant_speed(206.4),
            seed=0,
            use_daq=False,
        )
        assert long.exact_energy_j == pytest.approx(4 * short.exact_energy_j, rel=0.02)


class TestCrowdedSystem:
    def test_all_four_workloads_share_one_machine(self):
        """Everything at once: the kernel stays sound under the union of
        all paper workloads on a single Itsy."""
        from repro.workloads.chess import ChessConfig, setup_chess
        from repro.workloads.editor import EditorConfig, setup_editor
        from repro.workloads.mpeg import setup_mpeg
        from repro.workloads.web import WebConfig, setup_web

        kernel = Kernel(ItsyMachine(ItsyConfig()), governor=best_policy())
        setup_mpeg(kernel, 0, MpegConfig(duration_s=30.0))
        setup_web(kernel, 0, WebConfig(duration_s=30.0))
        setup_chess(kernel, 0, ChessConfig(duration_s=30.0))
        setup_editor(kernel, 0, EditorConfig(duration_s=30.0))
        run = kernel.run(30_000_000.0)

        # accounting invariants hold under heavy contention
        assert all(0.0 <= q.utilization <= 1.0 for q in run.quanta)
        segments = list(run.timeline)
        for (s1, e1, _), (s2, _, __) in zip(segments, segments[1:]):
            assert abs(e1 - s2) < 1e-6
        # the machine is saturated: this much load cannot fit
        assert run.mean_utilization() > 0.9
