"""Integration: the behavioural figures (8 and 9) and §5 observations."""

import pytest

from repro.core.catalog import best_policy, constant_speed, pering_avg
from repro.hw.clocksteps import SA1100_FREQUENCIES_MHZ
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload


@pytest.fixture(scope="module")
def best_run():
    return run_workload(mpeg_workload(), best_policy, seed=1, use_daq=False)


class TestFigure8:
    """The best policy's clock trace: only 59/206 MHz, frequent changes."""

    def test_only_min_and_max_steps_used(self, best_run):
        used = {q.mhz for q in best_run.run.quanta}
        assert used <= {59.0, 206.4}
        assert used == {59.0, 206.4}

    def test_changes_clock_settings_frequently(self, best_run):
        # Figure 8 shows near-per-frame toggling over the 60 s run.
        assert best_run.run.clock_changes > 300

    def test_never_misses_deadlines(self, best_run):
        assert not best_run.missed

    def test_substantial_residency_at_both_extremes(self, best_run):
        quanta = best_run.run.quanta
        at_59 = sum(1 for q in quanta if q.mhz == 59.0)
        at_206 = sum(1 for q in quanta if q.mhz == 206.4)
        assert at_59 > 0.05 * len(quanta)
        assert at_206 > 0.4 * len(quanta)


class TestFigure9:
    """Utilization vs frequency is non-linear with a 162.2-176.9 plateau."""

    @pytest.fixture(scope="class")
    def sweep(self):
        cfg = MpegConfig(duration_s=20.0)
        out = {}
        for mhz in SA1100_FREQUENCIES_MHZ:
            res = run_workload(
                mpeg_workload(cfg),
                lambda m=mhz: constant_speed(m),
                seed=1,
                use_daq=False,
            )
            out[mhz] = res.run.mean_utilization()
        return out

    def test_utilization_falls_with_frequency_overall(self, sweep):
        assert sweep[206.4] < sweep[162.2] < sweep[132.7]

    def test_saturated_below_feasibility(self, sweep):
        for mhz in (59.0, 73.7, 88.5, 103.2, 118.0):
            assert sweep[mhz] > 0.99

    def test_plateau_between_162_and_177(self, sweep):
        """The distinct plateau of Figure 9: utilization barely moves from
        162.2 to 176.9 MHz although frequency rises 9 %."""
        drop_plateau = sweep[162.2] - sweep[176.9]
        drop_before = sweep[147.5] - sweep[162.2]
        drop_after = sweep[176.9] - sweep[191.7]
        assert drop_plateau < 0.03
        assert drop_plateau < drop_before
        assert drop_plateau < drop_after

    def test_paper_magnitudes(self, sweep):
        # Paper Figure 9: ~71 % at 206.4 MHz, >90 % near 132.7 MHz.
        assert 0.65 < sweep[206.4] < 0.80
        assert sweep[132.7] > 0.90


class TestSection53Observations:
    def test_avg_policies_cannot_settle_at_132(self):
        """§5.3: no AVG_N setting parks the clock at the 132.7 MHz optimum."""
        cfg = MpegConfig(duration_s=20.0)
        for n in (0, 3, 9):
            res = run_workload(
                mpeg_workload(cfg),
                lambda n=n: pering_avg(n, up="one", down="one"),
                seed=1,
                use_daq=False,
            )
            quanta = res.run.quanta[400:]  # after any transient
            at_132 = sum(1 for q in quanta if q.mhz == 132.7)
            assert at_132 < 0.9 * len(quanta)
            # and the clock keeps moving
            assert res.run.clock_changes > 10

    def test_transition_overhead_under_2_percent(self):
        res = run_workload(mpeg_workload(), best_policy, seed=1, use_daq=False)
        total_cost = res.run.clock_stall_us + res.run.voltage_settle_us
        assert total_cost / res.run.duration_us < 0.02

    def test_best_policy_with_voltage_also_meets_deadlines(self):
        res = run_workload(
            mpeg_workload(), lambda: best_policy(True), seed=1, use_daq=False
        )
        assert not res.missed
        assert res.run.voltage_changes > 0
