"""Per-process accounting and the ideal-constant-step oracle."""

import pytest

from repro.core.catalog import constant_speed
from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.kernel.scheduler import Kernel, KernelConfig
from repro.measure.runner import find_ideal_constant, run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload, setup_mpeg
from repro.workloads.web import WebConfig, web_workload


class TestPerProcessAccounting:
    @pytest.fixture(scope="class")
    def run(self):
        kernel = Kernel(
            ItsyMachine(ItsyConfig()), config=KernelConfig(sched_overhead_us=0.0)
        )
        setup_mpeg(kernel, seed=0, cfg=MpegConfig(duration_s=5.0))
        return kernel.run(5_000_000.0)

    def test_video_dominates_audio(self, run):
        shares = run.busy_share_by_name()
        assert set(shares) == {"mpeg_play", "wav_play"}
        assert shares["mpeg_play"] > 0.9
        assert shares["wav_play"] > 0.0

    def test_shares_sum_to_one(self, run):
        assert sum(run.busy_share_by_name().values()) == pytest.approx(1.0)

    def test_per_pid_busy_matches_quantum_accounting(self, run):
        # per-pid busy excludes only the scheduler overhead and stalls,
        # which this run has none of.
        total_by_pid = sum(run.busy_us_by_pid.values())
        total_by_quanta = sum(q.busy_us for q in run.quanta)
        assert total_by_pid == pytest.approx(total_by_quanta, rel=1e-9)

    def test_idle_never_appears(self, run):
        assert 0 not in run.busy_us_by_pid

    def test_empty_system_has_no_shares(self):
        kernel = Kernel(
            ItsyMachine(ItsyConfig()), config=KernelConfig(sched_overhead_us=0.0)
        )
        run = kernel.run(100_000.0)
        assert run.busy_share_by_name() == {}


class TestIdealConstant:
    def test_mpeg_ideal_is_132(self):
        result = find_ideal_constant(
            mpeg_workload(MpegConfig(duration_s=15.0)), seed=1
        )
        assert result.run.quanta[-1].mhz == pytest.approx(132.7)
        assert not result.missed

    def test_web_ideal_is_above_the_bottom(self):
        # Web needs responsiveness: the bottom steps miss page-load
        # budgets, so the cheapest feasible step is an interior one.
        result = find_ideal_constant(web_workload(WebConfig(duration_s=40.0)), seed=1)
        assert 59.0 < result.run.quanta[-1].mhz < 206.4

    def test_ideal_cheaper_than_full_speed(self):
        wl = mpeg_workload(MpegConfig(duration_s=15.0))
        ideal = find_ideal_constant(wl, seed=1)
        full = run_workload(wl, lambda: constant_speed(206.4), seed=1, use_daq=False)
        assert ideal.exact_energy_j < full.exact_energy_j

    def test_impossible_workload_raises(self):
        # 30 fps at full per-frame work is infeasible at every step.
        wl = mpeg_workload(MpegConfig(duration_s=10.0, fps=30.0))
        with pytest.raises(ValueError):
            find_ideal_constant(wl, seed=1)
