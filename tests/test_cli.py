"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    build_parser,
    main,
    resolve_policy,
    resolve_workload,
    sweep_engine,
    workload_spec,
)
from repro.measure.parallel import WorkloadSpec
from repro.core.cycleavg import CycleAverageGovernor
from repro.core.deadline import SynthesizedDeadlineGovernor
from repro.core.policy import IntervalPolicy
from repro.kernel.governor import ConstantGovernor


class TestPolicyResolution:
    def test_best(self):
        gov = resolve_policy("best")()
        assert isinstance(gov, IntervalPolicy)
        assert gov.voltage_rule is None

    def test_best_voltage(self):
        gov = resolve_policy("best-voltage")()
        assert gov.voltage_rule is not None

    def test_const(self):
        gov = resolve_policy("const-132.7")()
        assert isinstance(gov, ConstantGovernor)
        assert gov.step_index == 5

    def test_avg(self):
        gov = resolve_policy("avg9-peg")()
        assert isinstance(gov, IntervalPolicy)
        assert gov.predictor.n == 9

    def test_const_with_voltage(self):
        gov = resolve_policy("const-132.7@1.23")()
        assert gov.step_index == 5
        assert gov.volts == 1.23

    def test_cycleavg_and_synth(self):
        assert isinstance(resolve_policy("cycleavg")(), CycleAverageGovernor)
        assert isinstance(resolve_policy("synth")(), SynthesizedDeadlineGovernor)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            resolve_policy("ondemand")

    def test_factories_fresh(self):
        factory = resolve_policy("avg3-one")
        assert factory() is not factory()


class TestWorkloadResolution:
    @pytest.mark.parametrize(
        "name,expected", [("mpeg", "MPEG"), ("web", "Web"), ("chess", "Chess"),
                          ("editor", "TalkingEditor")]
    )
    def test_names(self, name, expected):
        assert resolve_workload(name, None).name == expected

    def test_duration_override(self):
        wl = resolve_workload("mpeg", 12.0)
        assert wl.duration_s == 12.0

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            resolve_workload("doom", None)

    def test_spec_round_trip(self):
        spec = workload_spec("web", 9.0)
        assert isinstance(spec, WorkloadSpec)
        assert spec.build().duration_s == 9.0


#: Golden snapshot of ``python -m repro list-policies``.  Update it
#: deliberately whenever the policy grammar changes — downstream scripts
#: parse this output.
LIST_POLICIES_SNAPSHOT = """\
constant speeds : const-59.0, const-73.7, const-88.5, const-103.2, const-118.0, const-132.7, const-147.5, const-162.2, const-176.9, const-191.7, const-206.4
  (append @<volts> for an explicit voltage, e.g. const-132.7@1.23)
  (other machines take their own table, e.g. const-600.0 on sa2)
paper policies  : best, best-voltage
interval sweep  : <past|avg<N>>-<one|double|peg>  (N = 0..10, 50/70 thresholds)
  (append -<hi>-<lo> percent thresholds; past-peg-98-93 = best)
other           : cycleavg (Figure 5), synth (synthesized deadlines)
"""

#: Golden snapshot of ``python -m repro list-machines`` — same contract.
LIST_MACHINES_SNAPSHOT = """\
itsy        : WRL-modified Itsy (SA-1100): 59.0-206.4 MHz, 1.5 V core switchable to 1.23 V
              steps: 59.0, 73.7, 88.5, 103.2, 118.0, 132.7, 147.5, 162.2, 176.9, 191.7, 206.4
itsy-reconf : modified Itsy with costly reconfiguration: 1 ms clock-change stall at +0.12 W, 500 us voltage sag
              steps: 59.0, 73.7, 88.5, 103.2, 118.0, 132.7, 147.5, 162.2, 176.9, 191.7, 206.4
itsy-stock  : unmodified Itsy (SA-1100): 59.0-206.4 MHz, 1.5 V core only
              steps: 59.0, 73.7, 88.5, 103.2, 118.0, 132.7, 147.5, 162.2, 176.9, 191.7, 206.4
sa2         : hypothetical StrongARM SA-2: 150-600 MHz, per-step voltage schedule 1.018-1.8 V
              steps: 150.0, 195.0, 240.0, 285.0, 330.0, 375.0, 420.0, 465.0, 510.0, 555.0, 600.0
sa2-reconf  : SA-2 with costly reconfiguration: 1 ms clock-change stall at +0.12 W, 500 us voltage sag
              steps: 150.0, 195.0, 240.0, 285.0, 330.0, 375.0, 420.0, 465.0, 510.0, 555.0, 600.0
  (append @<volts> for a boot voltage, e.g. itsy@1.23)
"""


class TestCommands:
    def test_list_policies(self, capsys):
        assert main(["list-policies"]) == 0
        out = capsys.readouterr().out
        assert "best" in out and "avg<N>" in out

    def test_list_policies_snapshot(self, capsys):
        assert main(["list-policies"]) == 0
        assert capsys.readouterr().out == LIST_POLICIES_SNAPSHOT

    def test_list_machines_snapshot(self, capsys):
        assert main(["list-machines"]) == 0
        assert capsys.readouterr().out == LIST_MACHINES_SNAPSHOT

    def test_run_success_exit_zero(self, capsys):
        code = main(
            ["run", "mpeg", "--policy", "best", "--duration", "5", "--no-daq"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "deadline misses : 0" in out
        assert "energy" in out

    def test_run_misses_exit_one(self, capsys):
        code = main(
            ["run", "mpeg", "--policy", "const-59.0", "--duration", "5", "--no-daq"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "worst:" in out

    def test_run_unknown_policy_exit_two(self, capsys):
        code = main(["run", "mpeg", "--policy", "nope"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_fig9(self, capsys):
        code = main(["fig9", "--duration", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("\n") >= 12  # header + 11 steps

    def test_compare(self, capsys):
        code = main(
            ["compare", "mpeg", "const-132.7", "const-206.4",
             "--runs", "2", "--duration", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Welch p-value" in out
        assert "verdict" in out

    def test_ideal(self, capsys):
        code = main(["ideal", "mpeg", "--duration", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ideal constant  : 132.7 MHz" in out

    def test_battery(self, capsys):
        code = main(["battery"])
        out = capsys.readouterr().out
        assert code == 0
        assert "59.0" in out and "206.4" in out


class TestMachineOptions:
    """The --machine surface of the simulation commands."""

    def test_run_on_sa2(self, capsys):
        code = main(
            ["run", "mpeg", "--policy", "past-peg-98-93", "--machine", "sa2",
             "--duration", "2", "--no-daq"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "machine         : sa2" in out
        assert "deadline misses : 0" in out

    def test_run_sa2_parallel_matches_serial(self, capsys):
        argv = ["run", "mpeg", "--policy", "past-peg-98-93", "--machine", "sa2",
                "--duration", "1", "--no-daq"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_run_on_low_voltage_itsy(self, capsys):
        code = main(
            ["run", "mpeg", "--policy", "const-132.7", "--machine", "itsy@1.23",
             "--duration", "1", "--no-daq"]
        )
        assert code in (0, 1)  # feasibility is the workload's business
        assert "machine         : itsy@1.23" in capsys.readouterr().out

    def test_unknown_machine_exit_two(self, capsys):
        code = main(["run", "mpeg", "--machine", "sa3"])
        assert code == 2
        assert "unknown machine" in capsys.readouterr().err

    def test_ideal_on_sa2(self, capsys):
        code = main(["ideal", "mpeg", "--duration", "2", "--machine", "sa2",
                     "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ideal constant  : 150.0 MHz" in out

    def test_fig9_on_sa2_lists_sa2_steps(self, capsys):
        code = main(["fig9", "--duration", "1", "--machine", "sa2",
                     "--jobs", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert " 600.0" in out and " 150.0" in out


class TestSweepOptions:
    """The --jobs/--cache/--no-cache surface of the simulation commands."""

    def test_engine_default_is_serial_uncached(self):
        args = build_parser().parse_args(["run", "mpeg"])
        assert sweep_engine(args) is None

    def test_run_with_jobs_smoke(self, capsys):
        code = main(
            ["run", "mpeg", "--policy", "best", "--duration", "1", "--jobs", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "energy          :" in out
        assert "deadline misses : 0" in out

    def test_run_parallel_output_matches_serial(self, capsys):
        argv = ["run", "mpeg", "--policy", "best", "--duration", "1"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_run_warm_cache_matches(self, capsys, tmp_path):
        argv = [
            "run", "mpeg", "--policy", "best", "--duration", "1",
            "--cache", str(tmp_path),
        ]
        assert main(argv) == 0
        cold_out = capsys.readouterr().out
        assert list(tmp_path.glob("*.json")), "cache must be populated"
        assert main(argv) == 0
        assert capsys.readouterr().out == cold_out

    def test_no_cache_disables_cache_dir(self, capsys, tmp_path):
        argv = [
            "run", "mpeg", "--policy", "best", "--duration", "1",
            "--cache", str(tmp_path), "--no-cache",
        ]
        assert main(argv) == 0
        assert not list(tmp_path.glob("*.json"))

    def test_fig9_parallel_matches_serial(self, capsys):
        assert main(["fig9", "--duration", "2"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["fig9", "--duration", "2", "--jobs", "4"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_ideal_parallel_matches_serial(self, capsys):
        assert main(["ideal", "mpeg", "--duration", "10"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["ideal", "mpeg", "--duration", "10", "--jobs", "4"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_battery_accepts_flags(self, capsys):
        assert main(["battery", "--jobs", "2"]) == 0
        assert "206.4" in capsys.readouterr().out


class TestObservabilityOptions:
    """The trace command, --run-log, and the stderr sweep summary."""

    def test_trace_writes_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.obs.trace import validate_chrome_trace

        out = tmp_path / "trace.json"
        code = main(
            ["trace", "mpeg", "--policy", "best", "--duration", "2",
             "-o", str(out)]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert out.exists()
        payload = json.loads(out.read_text())
        validate_chrome_trace(payload)
        assert "trace           :" in captured
        assert "deadline misses : 0" in captured

    def test_trace_misses_exit_one(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        code = main(
            ["trace", "mpeg", "--policy", "const-59.0", "--duration", "2",
             "-o", str(out)]
        )
        assert code == 1
        assert out.exists()

    def test_trace_on_sa2(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        code = main(
            ["trace", "mpeg", "--machine", "sa2", "--duration", "2",
             "-o", str(out)]
        )
        assert code == 0
        assert "machine         : sa2" in capsys.readouterr().out

    def test_run_log_flag_writes_jsonl(self, capsys, tmp_path):
        from repro.obs.runlog import read_run_log

        log = tmp_path / "runs.jsonl"
        code = main(
            ["run", "mpeg", "--policy", "best", "--duration", "1",
             "--run-log", str(log)]
        )
        assert code == 0
        records = read_run_log(log)
        assert len(records) == 1
        assert records[0]["policy"] == "best"
        assert records[0]["workload"] == "mpeg"
        assert records[0]["cache"] == "executed"

    def test_sweep_summary_on_stderr(self, capsys):
        assert main(
            ["run", "mpeg", "--policy", "best", "--duration", "1",
             "--jobs", "2"]
        ) == 0
        err = capsys.readouterr().err
        assert "sweep: 1 simulated, 0 cached" in err


class TestTelemetryOptions:
    """--progress, --sweep-trace, and the fleet ledger flags."""

    def test_sweep_trace_writes_valid_trace(self, capsys, tmp_path):
        import json

        from repro.obs.trace import validate_chrome_trace

        trace = tmp_path / "sweep.json"
        code = main(
            ["table2", "--runs", "2", "--jobs", "2",
             "--sweep-trace", str(trace),
             "--fleet", str(tmp_path / "fleet.jsonl")]
        )
        assert code == 0
        payload = json.loads(trace.read_text())
        validate_chrome_trace(payload)
        assert payload["otherData"]["workers"] == 2
        err = capsys.readouterr().err
        assert "sweep trace:" in err
        assert "worker lanes" in err

    def test_progress_piped_output_unchanged(self, capsys, tmp_path):
        argv = ["run", "mpeg", "--policy", "best", "--duration", "1",
                "--jobs", "2", "--no-fleet"]
        assert main(argv) == 0
        plain = capsys.readouterr()
        assert main(argv + ["--progress"]) == 0
        with_progress = capsys.readouterr()
        # Piped (non-TTY) progress degrades to silence: stdout is
        # byte-identical to the plain run and no progress-bar control
        # characters leak to stderr (the summary line still prints, but
        # its cells/s figure is timing-dependent either way).
        assert with_progress.out == plain.out
        assert "\r" not in with_progress.err
        assert with_progress.err.startswith("sweep: 1 simulated, 0 cached")

    def test_fleet_record_appended(self, tmp_path, capsys):
        from repro.obs.fleet import read_fleet

        ledger = tmp_path / "fleet.jsonl"
        argv = ["run", "mpeg", "--policy", "best", "--duration", "1",
                "--jobs", "2", "--fleet", str(ledger)]
        assert main(argv) == 0
        assert main(argv) == 0
        capsys.readouterr()
        history = read_fleet(ledger)
        assert history.warnings == ()
        assert len(history.records) == 2
        rec = history.records[0]
        assert rec.command == "run"
        assert rec.workloads == ("mpeg",)
        assert rec.cells_total == 1
        assert rec.jobs == 2

    def test_no_fleet_opts_out(self, tmp_path, capsys):
        ledger = tmp_path / "fleet.jsonl"
        assert main(
            ["run", "mpeg", "--policy", "best", "--duration", "1",
             "--jobs", "2", "--fleet", str(ledger), "--no-fleet"]
        ) == 0
        capsys.readouterr()
        assert not ledger.exists()


class TestFleetCommand:
    """The `repro fleet` ledger listing/rendering command."""

    def populate(self, ledger, capsys):
        for workload in ("mpeg", "web"):
            assert main(
                ["run", workload, "--policy", "best", "--duration", "1",
                 "--jobs", "2", "--fleet", str(ledger)]
            ) == 0
        capsys.readouterr()

    def test_missing_ledger_exit_one(self, tmp_path, capsys):
        code = main(["fleet", "--ledger", str(tmp_path / "none.jsonl")])
        assert code == 1
        assert "no fleet ledger" in capsys.readouterr().err

    def test_lists_sweeps_with_trend(self, tmp_path, capsys):
        ledger = tmp_path / "fleet.jsonl"
        self.populate(ledger, capsys)
        assert main(["fleet", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "sweep id" in out  # header
        rows = [ln for ln in out.splitlines() if ln.startswith("20")]
        assert len(rows) == 2  # one per recorded sweep
        assert "throughput trend" in out

    def test_workload_filter(self, tmp_path, capsys):
        ledger = tmp_path / "fleet.jsonl"
        self.populate(ledger, capsys)
        assert main(
            ["fleet", "--ledger", str(ledger), "--workload", "web"]
        ) == 0
        out = capsys.readouterr().out
        body = [ln for ln in out.splitlines()
                if ln and "sweep id" not in ln and "trend" not in ln]
        assert len(body) == 1

    def test_filter_with_no_matches_exit_one(self, tmp_path, capsys):
        ledger = tmp_path / "fleet.jsonl"
        self.populate(ledger, capsys)
        code = main(
            ["fleet", "--ledger", str(ledger), "--workload", "nope"]
        )
        assert code == 1
        assert "no recorded sweeps match" in capsys.readouterr().err

    def test_markdown_render_with_bench_history(self, tmp_path, capsys):
        ledger = tmp_path / "fleet.jsonl"
        self.populate(ledger, capsys)
        assert main(
            ["fleet", "--ledger", str(ledger), "--format", "md",
             "--bench", "."]
        ) == 0
        out = capsys.readouterr().out
        assert "## Fleet history" in out
        assert "throughput trend" in out
        assert "## Perf history" in out
        assert "telemetry_overhead" in out

    def test_html_render_to_file(self, tmp_path, capsys):
        ledger = tmp_path / "fleet.jsonl"
        self.populate(ledger, capsys)
        out_file = tmp_path / "fleet.html"
        assert main(
            ["fleet", "--ledger", str(ledger), "--format", "html",
             "-o", str(out_file)]
        ) == 0
        text = out_file.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "<h2>Fleet history</h2>" in text
        assert "wrote" in capsys.readouterr().err


class TestFleetSentinel:
    """`repro fleet --check` / `--plot` and tolerant-reader warnings."""

    def populate(self, ledger, capsys, runs=2):
        # No cache: every sweep executes, so the records are comparable.
        for _ in range(runs):
            assert main(
                ["run", "mpeg", "--policy", "best", "--duration", "1",
                 "--jobs", "2", "--fleet", str(ledger)]
            ) == 0
        capsys.readouterr()

    def degrade(self, ledger):
        """Append a clone of the last sweep running 10x slower, with the
        slowdown concentrated in the result-IPC phase."""
        import dataclasses

        from repro.obs.fleet import FleetLedger, read_fleet

        last = read_fleet(ledger).records[-1]
        phases = dict(last.phases)
        phases["result IPC"] = phases.get("result IPC", 0.0) + 9 * last.wall_s
        with FleetLedger(ledger) as out:
            out.append(dataclasses.replace(
                last,
                sweep_id="degraded",
                unix_time=last.unix_time + 60.0,
                wall_s=last.wall_s * 10.0,
                cells_per_s=last.cells_per_s / 10.0,
                phases=tuple(sorted(phases.items())),
            ))

    def test_check_passes_on_healthy_ledger(self, tmp_path, capsys):
        ledger = tmp_path / "fleet.jsonl"
        self.populate(ledger, capsys)
        assert main(["fleet", "--ledger", str(ledger), "--check"]) == 0
        out = capsys.readouterr().out
        assert "fleet sentinel: ok" in out

    def test_check_fails_on_degraded_ledger(self, tmp_path, capsys):
        # The acceptance criterion: a synthetically-degraded ledger must
        # turn the sentinel red and name the regressed phase.
        ledger = tmp_path / "fleet.jsonl"
        self.populate(ledger, capsys)
        self.degrade(ledger)
        code = main(["fleet", "--ledger", str(ledger), "--check"])
        out = capsys.readouterr().out
        assert code == 1
        assert "fleet sentinel: REGRESSION" in out
        assert "throughput dropped" in out
        assert "result IPC" in out

    def test_check_on_fresh_ledger_is_unchecked_ok(self, tmp_path, capsys):
        ledger = tmp_path / "fleet.jsonl"
        self.populate(ledger, capsys, runs=1)
        assert main(["fleet", "--ledger", str(ledger), "--check"]) == 0
        assert "unchecked" in capsys.readouterr().out

    def test_plot_writes_standalone_svg(self, tmp_path, capsys):
        import xml.etree.ElementTree as ET

        ledger = tmp_path / "fleet.jsonl"
        self.populate(ledger, capsys)
        plot = tmp_path / "fleet.svg"
        assert main(
            ["fleet", "--ledger", str(ledger), "--plot", str(plot)]
        ) == 0
        captured = capsys.readouterr()
        assert "fleet plot:" in captured.err
        root = ET.fromstring(plot.read_text())
        assert root.tag.endswith("svg")

    def test_phases_flag_prints_profile_table(self, capsys):
        assert main(
            ["run", "mpeg", "--policy", "best", "--duration", "1",
             "--jobs", "2", "--no-fleet", "--phases"]
        ) == 0
        err = capsys.readouterr().err
        assert "phase profile:" in err
        assert "kernel compute" in err
        assert "of wall" in err

    def test_ledger_phases_recorded_by_default(self, tmp_path, capsys):
        # The profiler always rides the engine, so ledger records carry
        # phase attributions even without --phases.
        from repro.obs.fleet import read_fleet

        ledger = tmp_path / "fleet.jsonl"
        self.populate(ledger, capsys, runs=1)
        [rec] = read_fleet(ledger).records
        assert "kernel compute" in rec.phase_seconds

    def test_damaged_ledger_line_warns_on_stderr(self, tmp_path, capsys):
        ledger = tmp_path / "fleet.jsonl"
        self.populate(ledger, capsys)
        with ledger.open("a") as handle:
            handle.write("{not json\n")
        assert main(["fleet", "--ledger", str(ledger)]) == 0
        captured = capsys.readouterr()
        assert "warning:" in captured.err
        assert "sweep id" in captured.out


class TestCalibrateCommand:
    """`repro calibrate` host-score measurement and caching."""

    def test_calibrate_writes_score(self, tmp_path, capsys, monkeypatch):
        from repro.obs.calibrate import load_calibration

        path = tmp_path / "host.json"
        monkeypatch.setenv("REPRO_HOST_CALIBRATION", str(path))
        assert main(["calibrate", "--budget", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "host score" in out
        cal = load_calibration(path)
        assert cal is not None and cal.score > 0

    def test_cached_calibration_respected(self, tmp_path, capsys,
                                          monkeypatch):
        path = tmp_path / "host.json"
        monkeypatch.setenv("REPRO_HOST_CALIBRATION", str(path))
        assert main(["calibrate", "--budget", "0.05"]) == 0
        capsys.readouterr()
        assert main(["calibrate", "--budget", "0.05"]) == 0
        assert "already calibrated" in capsys.readouterr().out

    def test_force_remeasures(self, tmp_path, capsys, monkeypatch):
        path = tmp_path / "host.json"
        monkeypatch.setenv("REPRO_HOST_CALIBRATION", str(path))
        assert main(["calibrate", "--budget", "0.05"]) == 0
        capsys.readouterr()
        assert main(["calibrate", "--budget", "0.05", "--force"]) == 0
        assert "host score" in capsys.readouterr().out

    def test_sweep_stamps_host_score(self, tmp_path, capsys, monkeypatch):
        from repro.obs.fleet import read_fleet

        monkeypatch.setenv(
            "REPRO_HOST_CALIBRATION", str(tmp_path / "host.json")
        )
        assert main(["calibrate", "--budget", "0.05"]) == 0
        ledger = tmp_path / "fleet.jsonl"
        assert main(
            ["run", "mpeg", "--policy", "best", "--duration", "1",
             "--jobs", "2", "--fleet", str(ledger)]
        ) == 0
        capsys.readouterr()
        [rec] = read_fleet(ledger).records
        assert rec.host_score > 0
        assert rec.normalized_cells_per_s is not None


class TestReportBenchSpecs:
    """`repro report --bench` accepts files, directories, and globs."""

    def run_log(self, tmp_path, capsys):
        log = tmp_path / "runs.jsonl"
        assert main(
            ["run", "mpeg", "--policy", "best", "--duration", "1",
             "--run-log", str(log), "--no-fleet"]
        ) == 0
        capsys.readouterr()
        return log

    def test_bench_directory(self, tmp_path, capsys):
        log = self.run_log(tmp_path, capsys)
        assert main(
            ["report", str(log), "--bench", "."]
        ) == 0
        out = capsys.readouterr().out
        assert "## Perf history" in out
        assert "sweep_throughput" in out

    def test_bench_glob(self, tmp_path, capsys):
        log = self.run_log(tmp_path, capsys)
        assert main(
            ["report", str(log), "--bench", "BENCH_obs_*.json"]
        ) == 0
        out = capsys.readouterr().out
        assert "obs_overhead" in out
        assert "sweep_throughput" not in out

    def test_bench_no_match_exit_two(self, tmp_path, capsys):
        log = self.run_log(tmp_path, capsys)
        code = main(
            ["report", str(log), "--bench",
             str(tmp_path / "BENCH_none.json")]
        )
        assert code == 2
        assert "no benchmark records match" in capsys.readouterr().err

    def test_damaged_run_log_line_warns_on_stderr(self, tmp_path, capsys):
        log = self.run_log(tmp_path, capsys)
        with log.open("a") as handle:
            handle.write('{"torn')
        assert main(["report", str(log)]) == 0
        captured = capsys.readouterr()
        assert "warning:" in captured.err
        assert "skipped unreadable run-log line" in captured.err
        assert "# Sweep report" in captured.out

    def test_summary_counts_cache_hits(self, capsys, tmp_path):
        argv = [
            "ideal", "mpeg", "--duration", "10", "--cache", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "simulated, 0 cached" in cold.err
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert " 0 simulated," in warm.err

    def test_serial_path_has_no_summary(self, capsys):
        assert main(["run", "mpeg", "--policy", "best", "--duration", "1"]) == 0
        assert "sweep:" not in capsys.readouterr().err


#: Golden snapshot of ``python -m repro report`` over a hand-written
#: run-log.  The report renderer is pure, so this pins the whole output
#: format — update it deliberately when the report layout changes.
REPORT_SNAPSHOT = """\
# Sweep report

3 runs (1 cached), 1.5 s simulated wall time.

| policy | workload | machine | runs | cached | mean J | spread J | misses | settling | excess J |
|---|---|---|---|---|---|---|---|---|---|
| avg3-one | mpeg | itsy | 1 | 0 | 12.00 | 12.00..12.00 | 3 | - | - |
| best | mpeg | itsy | 2 | 1 | 11.00 | 10.00..12.00 | 0 | - | - |
"""


def write_report_log(path):
    import json

    from repro.obs.runlog import RUN_LOG_VERSION

    def record(**overrides):
        base = dict(
            v=RUN_LOG_VERSION, run_id="x", policy="best", workload="mpeg",
            machine="itsy", seed=0, duration_us=1e6, energy_j=10.0,
            exact_energy_j=10.0, miss_count=0, cache="executed", wall_s=0.5,
            unix_time=1_700_000_000.0, repro_version="1.0.0",
        )
        base.update(overrides)
        return base

    records = [
        record(),
        record(seed=1, energy_j=12.0, cache="hit", wall_s=0.0),
        record(policy="avg3-one", energy_j=12.0, miss_count=3, wall_s=1.0),
    ]
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


class TestDiagnoseCommand:
    def test_oscillation_verdict_on_avg3_mpeg(self, capsys):
        code = main(["diagnose", "avg3-one", "mpeg", "--duration", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "settling        : never settles" in out
        assert "dominant oscillation period" in out
        assert "predictor attenuation" in out
        assert "prediction error" in out
        assert "ideal-constant oracle" in out
        assert "deadline misses : 0" in out

    def test_settled_verdict_on_best_policy_editor(self, capsys):
        code = main(
            ["diagnose", "past-peg-98-93", "editor", "--duration", "20"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "settling        : settles" in out

    def test_misses_attributed_and_exit_one(self, capsys):
        code = main(["diagnose", "const-59.0", "mpeg", "--duration", "5"])
        out = capsys.readouterr().out
        assert code == 1
        assert "cause: policy" in out

    def test_json_output_round_trips(self, capsys, tmp_path):
        import json

        from repro.obs.diagnose import PolicyDiagnosis

        out_path = tmp_path / "diag.json"
        code = main(
            ["diagnose", "avg3-one", "mpeg", "--duration", "5",
             "-o", str(out_path)]
        )
        assert code == 0
        diagnosis = PolicyDiagnosis.from_json(json.loads(out_path.read_text()))
        assert diagnosis.policy == "avg3-one"
        assert diagnosis.workload == "mpeg"

    def test_unknown_policy_exit_two(self, capsys):
        assert main(["diagnose", "nope", "mpeg"]) == 2
        assert "error:" in capsys.readouterr().err


class TestReportCommand:
    def test_markdown_snapshot(self, capsys, tmp_path):
        log = tmp_path / "runs.jsonl"
        write_report_log(log)
        assert main(["report", str(log)]) == 0
        assert capsys.readouterr().out == REPORT_SNAPSHOT + "\n"

    def test_html_to_file(self, capsys, tmp_path):
        log = tmp_path / "runs.jsonl"
        write_report_log(log)
        out = tmp_path / "report.html"
        code = main(
            ["report", str(log), "--format", "html", "-o", str(out)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == ""
        assert "wrote" in captured.err
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "avg3-one" in text

    def test_joins_diagnosis_log(self, capsys, tmp_path):
        log = tmp_path / "runs.jsonl"
        diag = tmp_path / "diag.jsonl"
        assert main(
            ["run", "mpeg", "--policy", "avg3-one", "--duration", "2",
             "--no-daq", "--run-log", str(log), "--diagnoses", str(diag)]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(log), "--diagnoses", str(diag)]) == 0
        out = capsys.readouterr().out
        assert "## Diagnoses" in out
        assert "oscillates" in out

    def test_missing_log_exit_two(self, capsys, tmp_path):
        code = main(["report", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestDiagnosesSweepFlag:
    def test_flag_writes_jsonl_and_keeps_results(self, capsys, tmp_path):
        from repro.obs.diagnose import read_diagnoses

        diag = tmp_path / "diag.jsonl"
        argv = ["run", "mpeg", "--policy", "best", "--duration", "2",
                "--no-daq"]
        assert main(argv) == 0
        plain_out = capsys.readouterr().out
        assert main(argv + ["--diagnoses", str(diag)]) == 0
        diagnosed = capsys.readouterr()
        assert diagnosed.out == plain_out  # observing never changes results
        [diagnosis] = read_diagnoses(diag)
        assert diagnosis.policy == "best"
        assert diagnosis.energy.baseline_feasible


class TestFuzzCommand:
    """The differential fuzz driver: ``repro fuzz``."""

    def test_batch_passes_and_reports_shape(self, capsys):
        code = main(["fuzz", "--count", "2", "--duration", "0.4",
                     "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 generated runs" in out  # 2 specs x 1 policy x 2 machines
        assert "itsy, itsy-reconf" in out
        assert "bitwise-identical" in out

    def test_machine_and_policy_repeatable(self, capsys):
        code = main(["fuzz", "--count", "1", "--duration", "0.4",
                     "--machine", "sa2", "--machine", "sa2-reconf",
                     "--policy", "best", "--policy", "past-peg"])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 generated runs" in out  # 1 spec x 2 policies x 2 machines
        assert "sa2, sa2-reconf" in out

    def test_corpus_replay(self, capsys, tmp_path):
        from repro.hw.machines import MachineSpec
        from repro.measure.differential import (
            check_fuzz_spec, counterexample_entry,
        )
        from repro.traces.corpus import save_entry
        from repro.workloads.fuzz import FuzzSpec

        outcome = check_fuzz_spec(
            FuzzSpec(seed=9, duration_s=0.4), "best", MachineSpec("itsy")
        )
        save_entry(tmp_path, counterexample_entry(outcome))
        code = main(["fuzz", "--count", "1", "--duration", "0.4",
                     "--machine", "itsy", "--corpus", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 corpus replays" in out

    def test_deterministic_output(self, capsys):
        argv = ["fuzz", "--count", "2", "--duration", "0.4", "--seed", "5",
                "--machine", "itsy"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_fuzz_workload_in_run_command(self, capsys):
        code = main(["run", "fuzz", "--policy", "best", "--duration", "0.5",
                     "--no-daq", "--machine", "itsy-reconf"])
        out = capsys.readouterr().out
        assert code in (0, 1)  # fuzzed deadlines may genuinely miss
        assert "machine         : itsy-reconf" in out
        assert "energy          :" in out
