"""Tests for the command-line interface."""

import pytest

from repro.cli import main, resolve_policy, resolve_workload
from repro.core.cycleavg import CycleAverageGovernor
from repro.core.deadline import SynthesizedDeadlineGovernor
from repro.core.policy import IntervalPolicy
from repro.kernel.governor import ConstantGovernor


class TestPolicyResolution:
    def test_best(self):
        gov = resolve_policy("best")()
        assert isinstance(gov, IntervalPolicy)
        assert gov.voltage_rule is None

    def test_best_voltage(self):
        gov = resolve_policy("best-voltage")()
        assert gov.voltage_rule is not None

    def test_const(self):
        gov = resolve_policy("const-132.7")()
        assert isinstance(gov, ConstantGovernor)
        assert gov.step_index == 5

    def test_avg(self):
        gov = resolve_policy("avg9-peg")()
        assert isinstance(gov, IntervalPolicy)
        assert gov.predictor.n == 9

    def test_cycleavg_and_synth(self):
        assert isinstance(resolve_policy("cycleavg")(), CycleAverageGovernor)
        assert isinstance(resolve_policy("synth")(), SynthesizedDeadlineGovernor)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            resolve_policy("ondemand")

    def test_factories_fresh(self):
        factory = resolve_policy("avg3-one")
        assert factory() is not factory()


class TestWorkloadResolution:
    @pytest.mark.parametrize(
        "name,expected", [("mpeg", "MPEG"), ("web", "Web"), ("chess", "Chess"),
                          ("editor", "TalkingEditor")]
    )
    def test_names(self, name, expected):
        assert resolve_workload(name, None).name == expected

    def test_duration_override(self):
        wl = resolve_workload("mpeg", 12.0)
        assert wl.duration_s == 12.0

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            resolve_workload("doom", None)


class TestCommands:
    def test_list_policies(self, capsys):
        assert main(["list-policies"]) == 0
        out = capsys.readouterr().out
        assert "best" in out and "avg<N>" in out

    def test_run_success_exit_zero(self, capsys):
        code = main(
            ["run", "mpeg", "--policy", "best", "--duration", "5", "--no-daq"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "deadline misses : 0" in out
        assert "energy" in out

    def test_run_misses_exit_one(self, capsys):
        code = main(
            ["run", "mpeg", "--policy", "const-59.0", "--duration", "5", "--no-daq"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "worst:" in out

    def test_run_unknown_policy_exit_two(self, capsys):
        code = main(["run", "mpeg", "--policy", "nope"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_fig9(self, capsys):
        code = main(["fig9", "--duration", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("\n") >= 12  # header + 11 steps

    def test_compare(self, capsys):
        code = main(
            ["compare", "mpeg", "const-132.7", "const-206.4",
             "--runs", "2", "--duration", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Welch p-value" in out
        assert "verdict" in out

    def test_ideal(self, capsys):
        code = main(["ideal", "mpeg", "--duration", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ideal constant  : 132.7 MHz" in out

    def test_battery(self, capsys):
        code = main(["battery"])
        out = capsys.readouterr().out
        assert code == 0
        assert "59.0" in out and "206.4" in out
