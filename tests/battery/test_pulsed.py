"""Tests for the KiBaM pulsed-discharge model."""

import pytest

from repro.battery.pulsed import PulsedDischargeModel


def make_battery(**kwargs):
    defaults = dict(capacity_c=1000.0, c_fraction=0.5, k_rate=1e-3, volts=3.0)
    defaults.update(kwargs)
    return PulsedDischargeModel(**defaults)


class TestBasics:
    def test_initial_state(self):
        b = make_battery()
        assert b.available == 500.0
        assert b.bound == 500.0
        assert b.remaining == 1000.0
        assert not b.dead

    def test_drain_conserves_charge(self):
        b = make_battery()
        delivered = b.step(power_w=3.0, dt_s=100.0)
        assert delivered == pytest.approx(100.0)  # 1 A for 100 s
        assert b.remaining == pytest.approx(1000.0 - delivered)

    def test_death_when_available_exhausted(self):
        b = make_battery(k_rate=1e-9)  # effectively no recovery
        b.step(power_w=3.0, dt_s=600.0)
        assert b.dead
        assert b.delivered < 520.0  # only the available well (plus dribble)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_battery(capacity_c=0.0)
        with pytest.raises(ValueError):
            make_battery(c_fraction=1.0)
        with pytest.raises(ValueError):
            make_battery(k_rate=0.0)
        with pytest.raises(ValueError):
            make_battery().step(power_w=-1.0, dt_s=1.0)

    def test_reset(self):
        b = make_battery()
        b.step(3.0, 100.0)
        b.reset()
        assert b.remaining == 1000.0
        assert b.delivered == 0.0
        assert not b.dead


class TestRecoveryEffect:
    def test_rest_recovers_available_charge(self):
        b = make_battery()
        b.step(3.0, 150.0)
        before = b.available
        b.step(0.0, 500.0)  # rest
        assert b.available > before

    def test_pulsed_discharge_outlives_constant(self):
        """§2.1: interspersing high demand with rest increases capacity."""
        const = make_battery()
        const.time_to_death_s(power_w=6.0)
        pulsed = make_battery()
        pulsed.time_to_death_s(
            power_w=6.0, rest_power_w=0.0, pulse_s=30.0, rest_s=30.0
        )
        # Compare time spent *under load*: the pulsed battery delivers more.
        assert pulsed.delivered > const.delivered

    def test_dead_battery_delivers_nothing(self):
        b = make_battery(k_rate=1e-9)
        b.step(6.0, 1000.0)
        assert b.dead
        assert b.step(1.0, 10.0) == 0.0

    def test_run_profile_stops_at_death(self):
        b = make_battery(k_rate=1e-9)
        delivered = b.run_profile([(6.0, 1000.0), (6.0, 1000.0)])
        assert b.dead
        assert delivered == b.delivered
