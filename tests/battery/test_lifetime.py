"""Tests for battery-lifetime figures of merit."""

from repro.battery.lifetime import (
    best_step_for_computations,
    computations_per_lifetime,
    idle_lifetime_hours,
    lifetime_hours,
)
from repro.hw.clocksteps import SA1100_CLOCK_TABLE
from repro.hw.power import IdleManagerParameters


class TestLifetime:
    def test_lifetime_monotone_in_power(self):
        assert lifetime_hours(0.1) > lifetime_hours(0.2) > lifetime_hours(0.4)

    def test_idle_lifetime_anecdote(self):
        t206 = idle_lifetime_hours(SA1100_CLOCK_TABLE.max_step)
        t59 = idle_lifetime_hours(SA1100_CLOCK_TABLE.min_step)
        assert 1.8 < t206 < 2.2
        assert 16.0 < t59 < 20.0


class TestMartinMetric:
    def test_computations_balance_speed_and_lifetime(self):
        idle = IdleManagerParameters()

        def power(step):
            return idle.idle_power_w(step) + 0.25  # busy adds constant power

        best, scored = best_step_for_computations(power)
        # With a large fixed power component, crawling at 59 MHz wastes
        # battery on the fixed draw: the best step is above the minimum.
        assert best.index > 0
        assert len(scored) == len(SA1100_CLOCK_TABLE)

    def test_pure_frequency_power_favours_slow(self):
        # With power exactly proportional to frequency and a steep
        # rate-capacity curve, slower clocks win computations/lifetime.
        def power(step):
            return 1.6e-3 * step.mhz

        best, _ = best_step_for_computations(power)
        assert best.index == 0

    def test_computations_positive_and_finite(self):
        idle = IdleManagerParameters()
        for step in SA1100_CLOCK_TABLE:
            c = computations_per_lifetime(step, idle.idle_power_w)
            assert 0 < c < 1e16
