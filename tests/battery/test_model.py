"""Tests for the rate-capacity battery model."""

import pytest

from repro.battery.model import AAA_ALKALINE_PAIR, RateCapacityCurve


class TestRateCapacityCurve:
    def test_capacity_falls_with_drain(self):
        curve = AAA_ALKALINE_PAIR.curve
        assert curve.effective_energy_wh(0.3) < curve.effective_energy_wh(0.15)

    def test_ideal_battery_constant_capacity(self):
        curve = RateCapacityCurve(e_ref_wh=3.0, p_ref_w=0.2, peukert_k=1.0, e_max_wh=3.0)
        assert curve.effective_energy_wh(0.1) == curve.effective_energy_wh(1.0) == 3.0

    def test_capacity_clamped_at_nominal(self):
        curve = AAA_ALKALINE_PAIR.curve
        assert curve.effective_energy_wh(1e-6) == curve.e_max_wh

    def test_lifetime_decreases_superlinearly(self):
        curve = AAA_ALKALINE_PAIR.curve
        t1 = curve.lifetime_hours(0.15)
        t2 = curve.lifetime_hours(0.30)
        # doubling the power more than halves the lifetime
        assert t2 < t1 / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RateCapacityCurve(e_ref_wh=0.0, p_ref_w=0.1, peukert_k=1.5, e_max_wh=3.0)
        with pytest.raises(ValueError):
            RateCapacityCurve(e_ref_wh=1.0, p_ref_w=0.1, peukert_k=0.5, e_max_wh=3.0)
        with pytest.raises(ValueError):
            RateCapacityCurve(e_ref_wh=5.0, p_ref_w=0.1, peukert_k=1.5, e_max_wh=3.0)
        with pytest.raises(ValueError):
            AAA_ALKALINE_PAIR.curve.effective_energy_wh(0.0)


class TestBattery:
    def test_drain_amps(self):
        assert AAA_ALKALINE_PAIR.drain_amps(0.3) == pytest.approx(0.1)

    def test_effective_capacity_ah(self):
        b = AAA_ALKALINE_PAIR
        assert b.effective_capacity_ah(0.3) == pytest.approx(
            b.curve.effective_energy_wh(0.3) / 3.0
        )

    def test_anecdote_calibration(self):
        """§2.1: ~2 h at the idle 206 MHz drain, ~18 h at 59 MHz."""
        from repro.hw.power import IdleManagerParameters
        from repro.hw.clocksteps import SA1100_CLOCK_TABLE

        idle = IdleManagerParameters()
        t206 = AAA_ALKALINE_PAIR.lifetime_hours(
            idle.idle_power_w(SA1100_CLOCK_TABLE.max_step)
        )
        t59 = AAA_ALKALINE_PAIR.lifetime_hours(
            idle.idle_power_w(SA1100_CLOCK_TABLE.min_step)
        )
        assert t206 == pytest.approx(2.0, rel=0.10)
        assert t59 == pytest.approx(18.0, rel=0.10)
        # 9x battery life for a 3.5x clock reduction.
        assert t59 / t206 == pytest.approx(9.0, rel=0.10)
