"""Documentation consistency: the docs must match the repository.

DESIGN.md's experiment index and EXPERIMENTS.md reference benchmark
targets by filename; the module map names source files.  These tests keep
the documentation honest as the code evolves.
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def referenced_benchmarks(text: str) -> set:
    return set(re.findall(r"bench_[a-z0-9_]+\.py", text))


class TestDesignMd:
    def test_every_referenced_bench_exists(self):
        text = (REPO / "DESIGN.md").read_text()
        existing = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        for name in referenced_benchmarks(text):
            if "*" in name:
                continue
            assert name in existing, f"DESIGN.md references missing {name}"

    def test_every_bench_is_documented_somewhere(self):
        docs = (REPO / "DESIGN.md").read_text() + (REPO / "EXPERIMENTS.md").read_text()
        for path in (REPO / "benchmarks").glob("bench_*.py"):
            stem = path.stem.replace("bench_", "")
            assert (
                path.name in docs or "bench_ablation" in path.name and "bench_ablation_*" in docs
                or stem in docs
            ), f"{path.name} is not mentioned in DESIGN.md or EXPERIMENTS.md"

    def test_module_map_files_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        # every "name.py" mentioned in the inventory block must exist
        inventory = text.split("## 3. System inventory")[1].split("## 4.")[0]
        for name in re.findall(r"([a-z_0-9]+\.py)", inventory):
            hits = list((REPO / "src").rglob(name))
            assert hits, f"DESIGN.md inventory names missing module {name}"


class TestExperimentsMd:
    def test_every_referenced_bench_exists(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        existing = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        for name in referenced_benchmarks(text):
            if "*" in name:
                continue
            assert name in existing, f"EXPERIMENTS.md references missing {name}"

    def test_tables_and_figures_all_covered(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for anchor in (
            "Table 1",
            "Table 2",
            "Table 3",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Figure 9",
        ):
            assert anchor in text, f"EXPERIMENTS.md lost its {anchor} section"


class TestReadme:
    def test_quickstart_snippet_runs(self):
        """The README's quick-start code must actually execute."""
        from repro.core.catalog import best_policy, constant_speed
        from repro.measure.runner import run_workload
        from repro.workloads import mpeg_workload
        from repro.workloads.mpeg import MpegConfig

        # shortened for test speed; same API calls as the README
        wl = mpeg_workload(MpegConfig(duration_s=4.0))
        result = run_workload(wl, best_policy)
        assert result.energy_j > 0
        assert result.missed is False
        base = run_workload(wl, lambda: constant_speed(206.4))
        assert 0 < result.energy_j < base.energy_j * 1.05

    def test_examples_listed_in_readme_exist(self):
        text = (REPO / "README.md").read_text()
        for name in re.findall(r"examples/([a-z_]+\.py)", text):
            assert (REPO / "examples" / name).exists(), name

    def test_docs_listed_exist(self):
        for doc in ("docs/architecture.md", "docs/paper_notes.md"):
            assert (REPO / doc).exists()
