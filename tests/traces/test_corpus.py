"""Tests for the content-addressed trace corpus."""

import json

import pytest

from repro.core.catalog import resolve_policy
from repro.hw.machines import MachineSpec
from repro.measure.parallel import (
    PolicySpec,
    SweepCell,
    WorkloadSpec,
    cache_key,
)
from repro.measure.runner import run_workload
from repro.traces.corpus import (
    CorpusEntry,
    entry_digest,
    entry_from_run,
    load_corpus,
    load_entry,
    save_entry,
)
from repro.workloads.fuzz import FuzzSpec, fuzz_workload
from repro.workloads.replay import ReplayMode

QUANTA = ((5000.0, 206.4, 10000.0), (2500.0, 132.7, 10000.0))


@pytest.fixture(scope="module")
def fuzz_entry():
    """A corpus entry captured from a real fuzzed run."""
    res = run_workload(
        fuzz_workload(FuzzSpec(seed=6, duration_s=0.5)),
        resolve_policy("best"),
        use_daq=False,
    )
    return entry_from_run(
        "fuzz-6-best", res.run,
        provenance=(("policy", "best"), ("machine", "itsy")),
    )


class TestEntryValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no quanta"):
            CorpusEntry(name="empty")

    def test_nonpositive_quantum_rejected(self):
        with pytest.raises(ValueError, match="non-positive length"):
            CorpusEntry(name="bad", quanta=((100.0, 206.4, 0.0),))

    def test_busy_beyond_quantum_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            CorpusEntry(name="bad", quanta=((20000.0, 206.4, 10000.0),))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            CorpusEntry(name="bad", mode="speed", quanta=QUANTA)


class TestDigest:
    def test_stable_for_equal_content(self):
        a = CorpusEntry(name="a", quanta=QUANTA)
        b = CorpusEntry(name="a", quanta=QUANTA)
        assert entry_digest(a) == entry_digest(b)

    def test_name_and_provenance_are_metadata(self):
        a = CorpusEntry(name="a", quanta=QUANTA)
        b = CorpusEntry(name="b", quanta=QUANTA,
                        provenance=(("policy", "best"),))
        assert entry_digest(a) == entry_digest(b)

    def test_content_moves_the_address(self):
        base = CorpusEntry(name="a", quanta=QUANTA)
        tweaked = CorpusEntry(
            name="a", quanta=((5000.0, 206.4, 10000.0), (2500.1, 132.7, 10000.0))
        )
        assert entry_digest(base) != entry_digest(tweaked)
        assert entry_digest(base) != entry_digest(
            CorpusEntry(name="a", mode="time", quanta=QUANTA)
        )


class TestRoundTrip:
    def test_save_load_identical(self, tmp_path, fuzz_entry):
        path = save_entry(tmp_path, fuzz_entry)
        assert path.name == f"{entry_digest(fuzz_entry)}.json"
        assert load_entry(path) == fuzz_entry

    def test_floats_survive_exactly(self, tmp_path, fuzz_entry):
        path = save_entry(tmp_path, fuzz_entry)
        assert load_entry(path).quanta == fuzz_entry.quanta

    def test_rewrite_is_idempotent(self, tmp_path, fuzz_entry):
        assert save_entry(tmp_path, fuzz_entry) == save_entry(tmp_path, fuzz_entry)
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_load_corpus_sorted_and_complete(self, tmp_path):
        entries = [
            CorpusEntry(name=f"t{i}", quanta=((float(i * 100), 206.4, 10000.0),))
            for i in range(1, 4)
        ]
        for entry in entries:
            save_entry(tmp_path, entry)
        loaded = load_corpus(tmp_path)
        assert len(loaded) == 3
        assert [p.name for p, _ in loaded] == sorted(p.name for p, _ in loaded)
        assert {e.name for _, e in loaded} == {"t1", "t2", "t3"}

    def test_missing_directory_is_empty_corpus(self, tmp_path):
        assert load_corpus(tmp_path / "absent") == []


class TestLoadValidation:
    def test_tampered_content_detected(self, tmp_path, fuzz_entry):
        path = save_entry(tmp_path, fuzz_entry)
        payload = json.loads(path.read_text())
        payload["quanta"][0][0] -= 1.0  # still in range: digest must catch it
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="digest mismatch"):
            load_entry(path)

    def test_invalid_tampered_quanta_also_rejected(self, tmp_path, fuzz_entry):
        path = save_entry(tmp_path, fuzz_entry)
        payload = json.loads(path.read_text())
        payload["quanta"][0][0] = payload["quanta"][0][2] + 1.0
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="outside"):
            load_entry(path)

    def test_unknown_schema_rejected(self, tmp_path, fuzz_entry):
        path = save_entry(tmp_path, fuzz_entry)
        payload = json.loads(path.read_text())
        payload["schema"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema"):
            load_entry(path)

    def test_unreadable_file_named_in_error(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="junk.json"):
            load_entry(path)

    def test_missing_field_rejected(self, tmp_path, fuzz_entry):
        path = save_entry(tmp_path, fuzz_entry)
        payload = json.loads(path.read_text())
        del payload["quanta"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="malformed"):
            load_entry(path)


class TestReplayIntegration:
    def test_entry_replays_bitwise_stable(self, tmp_path, fuzz_entry):
        path = save_entry(tmp_path, fuzz_entry)
        loaded = load_entry(path)
        gov = resolve_policy("best")
        ref = run_workload(
            loaded.workload(), gov, use_daq=False, backend="reference"
        )
        fast = run_workload(
            loaded.workload(), gov, use_daq=False, backend="fastpath"
        )
        again = run_workload(
            load_entry(path).workload(), gov, use_daq=False,
            backend="reference",
        )
        assert fast.exact_energy_j == ref.exact_energy_j
        assert fast.run.quanta == ref.run.quanta
        assert again.exact_energy_j == ref.exact_energy_j

    def test_entry_is_cache_key_stable_via_replay_config(self, fuzz_entry):
        def key(entry):
            return cache_key(SweepCell(
                workload=WorkloadSpec("replay", entry.replay_config()),
                policy=PolicySpec("best"),
                machine=MachineSpec("itsy"),
                use_daq=False,
            ))

        # provenance is metadata: annotating an entry keeps its sweep key
        clone = CorpusEntry(
            name=fuzz_entry.name,
            mode=fuzz_entry.mode,
            tolerance_us=fuzz_entry.tolerance_us,
            quanta=fuzz_entry.quanta,
            provenance=(("extra", "annotation"),),
        )
        assert key(clone) == key(fuzz_entry)

    def test_round_trip_preserves_digest_through_run(self, tmp_path, fuzz_entry):
        # save -> load -> replay -> re-capture: the replayed trace on the
        # same machine is itself a valid corpus entry.
        path = save_entry(tmp_path, fuzz_entry)
        loaded = load_entry(path)
        res = run_workload(loaded.workload(), resolve_policy("best"), use_daq=False)
        recaptured = entry_from_run(
            "recaptured", res.run, mode=ReplayMode(loaded.mode)
        )
        save_entry(tmp_path, recaptured)
        assert load_entry(
            tmp_path / f"{entry_digest(recaptured)}.json"
        ) == recaptured


class TestLazyReExports:
    """The PEP 562 layer in ``repro.traces.__init__`` (cycle guard)."""

    def test_kernel_first_import_order(self):
        # The order that forces the lazy re-export: importing the kernel
        # first initializes repro.traces (via traces.schema) while
        # repro.kernel.scheduler is still partially initialized; the
        # corpus names must still resolve afterwards.  Run in a fresh
        # interpreter so this process's import state cannot mask it.
        import subprocess
        import sys

        code = (
            "import repro.kernel.scheduler\n"
            "import repro.traces\n"
            "assert repro.traces.CorpusEntry is not None\n"
            "assert repro.traces.entry_digest is not None\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr

    def test_lazy_names_match_corpus_module(self):
        import repro.traces
        from repro.traces import corpus

        assert repro.traces.CorpusEntry is corpus.CorpusEntry
        assert repro.traces.save_entry is corpus.save_entry

    def test_dir_lists_lazy_exports(self):
        import repro.traces

        listed = dir(repro.traces)
        assert "CorpusEntry" in listed
        assert "load_corpus" in listed

    def test_unknown_attribute_still_raises(self):
        import repro.traces

        with pytest.raises(AttributeError, match="no attribute 'nope'"):
            repro.traces.nope
