"""Tests for trace record types."""

import numpy as np
import pytest

from repro.traces.schema import AppEvent, PowerTimeline, QuantumRecord


class TestQuantumRecord:
    def test_utilization(self):
        q = QuantumRecord(10_000.0, 2_500.0, 10_000.0, 5, 132.7, 1.5)
        assert q.utilization == pytest.approx(0.25)
        assert q.start_us == 0.0

    def test_utilization_clamped(self):
        q = QuantumRecord(10_000.0, 12_000.0, 10_000.0, 5, 132.7, 1.5)
        assert q.utilization == 1.0

    def test_zero_quantum(self):
        q = QuantumRecord(0.0, 0.0, 0.0, 0, 59.0, 1.5)
        assert q.utilization == 0.0


class TestAppEvent:
    def test_on_time(self):
        e = AppEvent(time_us=900.0, pid=1, kind="frame", deadline_us=1000.0)
        assert e.on_time
        assert e.lateness_us == 0.0

    def test_late(self):
        e = AppEvent(time_us=1500.0, pid=1, kind="frame", deadline_us=1000.0)
        assert not e.on_time
        assert e.lateness_us == 500.0

    def test_no_deadline(self):
        e = AppEvent(time_us=1.0, pid=1, kind="tick")
        assert e.on_time


class TestPowerTimeline:
    def test_record_and_query(self):
        tl = PowerTimeline()
        tl.record(0.0, 100.0, 1.0)
        tl.record(100.0, 200.0, 2.0)
        assert tl.power_at(50.0) == 1.0
        assert tl.power_at(150.0) == 2.0
        assert tl.power_at(250.0) == 0.0
        assert tl.power_at(-10.0) == 0.0

    def test_adjacent_equal_segments_merge(self):
        tl = PowerTimeline()
        tl.record(0.0, 100.0, 1.0)
        tl.record(100.0, 200.0, 1.0)
        assert len(tl) == 1

    def test_zero_length_ignored(self):
        tl = PowerTimeline()
        tl.record(5.0, 5.0, 1.0)
        assert len(tl) == 0

    def test_overlap_rejected(self):
        tl = PowerTimeline()
        tl.record(0.0, 100.0, 1.0)
        with pytest.raises(ValueError):
            tl.record(50.0, 150.0, 2.0)

    def test_negative_power_rejected(self):
        tl = PowerTimeline()
        with pytest.raises(ValueError):
            tl.record(0.0, 1.0, -1.0)

    def test_energy_integral(self):
        tl = PowerTimeline()
        tl.record(0.0, 1e6, 2.0)  # 2 W for 1 s
        tl.record(1e6, 2e6, 1.0)  # 1 W for 1 s
        assert tl.energy_joules() == pytest.approx(3.0)
        assert tl.energy_joules(5e5, 1.5e6) == pytest.approx(1.5)
        assert tl.mean_power_w() == pytest.approx(1.5)

    def test_energy_empty_window(self):
        tl = PowerTimeline()
        tl.record(0.0, 1e6, 2.0)
        assert tl.mean_power_w(1e6, 1e6) == 0.0

    def test_bounds(self):
        tl = PowerTimeline()
        assert tl.start_us == 0.0 and tl.end_us == 0.0
        tl.record(10.0, 20.0, 1.0)
        assert tl.start_us == 10.0
        assert tl.end_us == 20.0

    def test_sample_matches_power_at(self):
        tl = PowerTimeline()
        tl.record(0.0, 100.0, 1.0)
        tl.record(100.0, 200.0, 3.0)
        times = np.array([-5.0, 0.0, 99.9, 100.0, 199.9, 200.0, 300.0])
        sampled = tl.sample(times)
        expected = [tl.power_at(t) for t in times]
        assert list(sampled) == pytest.approx(expected)

    def test_sample_empty_timeline(self):
        tl = PowerTimeline()
        assert list(tl.sample(np.array([1.0, 2.0]))) == [0.0, 0.0]

    def test_boundary_belongs_to_next_segment(self):
        tl = PowerTimeline()
        tl.record(0.0, 100.0, 1.0)
        tl.record(100.0, 200.0, 2.0)
        assert tl.power_at(100.0) == 2.0
