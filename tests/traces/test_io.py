"""Tests for trace persistence."""

import pytest

from repro.core.catalog import constant_speed
from repro.measure.runner import run_workload
from repro.traces.io import (
    load_events_csv,
    load_quanta_csv,
    load_run_summary,
    run_summary,
    save_events_csv,
    save_quanta_csv,
    save_run_summary,
)
from repro.traces.schema import AppEvent
from repro.workloads.mpeg import MpegConfig, mpeg_workload


@pytest.fixture(scope="module")
def short_run():
    res = run_workload(
        mpeg_workload(MpegConfig(duration_s=2.0)),
        lambda: constant_speed(206.4),
        seed=0,
        use_daq=False,
    )
    return res.run


class TestQuantaCsv:
    def test_round_trip(self, short_run, tmp_path):
        path = tmp_path / "quanta.csv"
        save_quanta_csv(path, short_run.quanta)
        loaded = load_quanta_csv(path)
        assert loaded == short_run.quanta

    def test_empty_round_trip(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_quanta_csv(path, [])
        assert load_quanta_csv(path) == []

    def test_scrambled_timestamps_rejected(self, short_run, tmp_path):
        path = tmp_path / "scrambled.csv"
        save_quanta_csv(path, list(reversed(short_run.quanta)))
        with pytest.raises(ValueError, match="monotonically"):
            load_quanta_csv(path)

    def test_duplicate_timestamps_rejected(self, short_run, tmp_path):
        path = tmp_path / "dup.csv"
        save_quanta_csv(path, [short_run.quanta[0], short_run.quanta[0]])
        with pytest.raises(ValueError, match="row 1"):
            load_quanta_csv(path)


class TestEventsCsv:
    def test_round_trip(self, short_run, tmp_path):
        path = tmp_path / "events.csv"
        save_events_csv(path, short_run.events)
        loaded = load_events_csv(path)
        assert loaded == short_run.events

    def test_none_fields_round_trip(self, tmp_path):
        events = [AppEvent(time_us=1.0, pid=2, kind="x")]
        path = tmp_path / "events.csv"
        save_events_csv(path, events)
        loaded = load_events_csv(path)
        assert loaded[0].deadline_us is None
        assert loaded[0].payload is None


class TestSummary:
    def test_summary_fields(self, short_run):
        s = run_summary(short_run)
        assert s["duration_us"] == short_run.duration_us
        assert s["energy_j"] == pytest.approx(short_run.energy_joules())
        assert s["quanta"] == len(short_run.quanta)

    def test_json_round_trip(self, short_run, tmp_path):
        path = tmp_path / "summary.json"
        save_run_summary(path, short_run)
        loaded = load_run_summary(path)
        assert loaded == run_summary(short_run)
