"""Replay every committed corpus entry as a permanent regression test.

Each ``*.json`` file in this directory is a content-addressed trace
captured from a fuzzed run (see ``repro.traces.corpus``).  Counterexample
traces shrunk by ``repro fuzz --save-failures`` land here too: dropping a
file into this directory is all it takes to pin a bug forever.  Every
entry must load (digest intact), replay bitwise-identically on the
reference and fast-path kernels, and keep a closed energy decomposition.
"""

from pathlib import Path

import pytest

from repro.core.catalog import resolve_policy
from repro.measure.differential import (
    RESIDUAL_TOLERANCE_J,
    compare_results,
)
from repro.measure.runner import default_machine, run_workload
from repro.obs.diagnose import energy_decomposition
from repro.traces.corpus import load_corpus, load_entry

CORPUS_DIR = Path(__file__).parent
ENTRY_PATHS = sorted(CORPUS_DIR.glob("*.json"))


def entry_ids():
    return [load_entry(p).name for p in ENTRY_PATHS]


def test_corpus_is_not_empty():
    assert ENTRY_PATHS, "the committed regression corpus lost its entries"


def test_load_corpus_collects_every_file():
    loaded = load_corpus(CORPUS_DIR)
    assert [p for p, _ in loaded] == ENTRY_PATHS


@pytest.mark.parametrize("path", ENTRY_PATHS, ids=entry_ids())
def test_entry_replays_bitwise_identically(path):
    entry = load_entry(path)
    gov = resolve_policy("best")
    ref = run_workload(entry.workload(), gov, use_daq=False,
                       backend="reference")
    fast = run_workload(entry.workload(), gov, use_daq=False,
                        backend="fastpath")
    assert compare_results(ref, fast) == [], entry.name


@pytest.mark.parametrize("path", ENTRY_PATHS, ids=entry_ids())
def test_entry_energy_decomposition_closes(path):
    entry = load_entry(path)
    res = run_workload(entry.workload(), resolve_policy("best"), use_daq=False)
    decomp = energy_decomposition(res.run, default_machine(), baseline_j=None)
    residual = abs(decomp.measured_j - decomp.components_sum_j())
    assert residual <= RESIDUAL_TOLERANCE_J, entry.name
