"""Tests for the per-run policy diagnostics engine."""

import math
import subprocess
import sys

import pytest

from repro.cli import workload_spec
from repro.core.catalog import predictor_decay_n, resolve_policy
from repro.measure.parallel import (
    PolicySpec,
    ResultCache,
    SweepCell,
    SweepEngine,
    WorkloadSpec,
)
from repro.measure.runner import (
    default_machine,
    find_ideal_constant,
    run_workload,
)
from repro.obs.diagnose import (
    ATTRIBUTION_WINDOW_US,
    CAUSE_CAPACITY,
    CAUSE_POLICY,
    DIAGNOSIS_VERSION,
    ENERGY_SUM_TOLERANCE_J,
    SETTLE_CHURN_PER_QUANTUM,
    DiagnosisWriter,
    PolicyDiagnosis,
    attribute_misses,
    diagnose,
    energy_decomposition,
    prediction_errors,
    prediction_ledger,
    read_diagnoses,
    settling_report,
)
from repro.workloads.mpeg import MpegConfig


def run(policy: str, workload: str, duration_s: float, seed: int = 0):
    return run_workload(
        workload_spec(workload, duration_s).build(),
        resolve_policy(policy),
        seed=seed,
        use_daq=False,
    )


def diagnosis_for(policy: str, workload: str, duration_s: float, seed: int = 0):
    result = run(policy, workload, duration_s, seed)
    try:
        baseline = find_ideal_constant(
            workload_spec(workload, duration_s).build(), seed=seed
        ).exact_energy_j
    except ValueError:
        baseline = None
    return diagnose(
        result, policy=policy, workload=workload, seed=seed, baseline_j=baseline
    )


class TestImportOrder:
    def test_obs_imports_standalone(self):
        """repro.obs must import cleanly before repro.measure.

        repro.measure.parallel imports repro.obs.diagnose for worker-side
        diagnosis; diagnose must not import repro.measure back at module
        level or a first `import repro.obs` dies on the half-initialised
        cycle.  Run in a fresh interpreter so this test's own imports
        cannot mask the ordering.
        """
        proc = subprocess.run(
            [sys.executable, "-c", "import repro.obs"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr


class TestSettling:
    """The paper's headline diagnostic: AVG_N never settles; PAST/peg does."""

    def test_avg3_on_mpeg_never_settles(self):
        result = run("avg3-one", "mpeg", 20.0)
        report = settling_report(result.run, predictor_decay_n("avg3-one"))
        assert not report.settled
        assert report.churn_per_quantum > SETTLE_CHURN_PER_QUANTUM
        # Figure 7: AVG_3 re-decides about every eighth quantum, forever.
        assert report.dominant_period_quanta is not None
        assert 4.0 < report.dominant_period_quanta < 10.0
        assert report.dominant_power_fraction > 0.0

    def test_best_policy_settles_on_interactive_workloads(self):
        for workload in ("editor", "web"):
            result = run("past-peg-98-93", workload, 20.0)
            report = settling_report(
                result.run, predictor_decay_n("past-peg-98-93")
            )
            assert report.settled, workload
            assert report.churn_per_quantum <= SETTLE_CHURN_PER_QUANTUM

    def test_constant_policy_is_perfectly_settled(self):
        result = run("const-132.7", "mpeg", 5.0)
        report = settling_report(result.run, None)
        assert report.settled
        assert report.changes_in_tail == 0
        assert report.amplitude_steps == 0
        assert report.dominant_period_quanta is None
        assert report.dominant_power_fraction == 0.0

    def test_predictor_attenuation_positive_but_below_unity(self):
        # The low-pass filter attenuates the oscillation, never kills it.
        result = run("avg3-one", "mpeg", 20.0)
        report = settling_report(result.run, predictor_decay_n("avg3-one"))
        assert report.predictor_alpha is not None
        assert report.attenuation_at_dominant is not None
        assert 0.0 < report.attenuation_at_dominant < 1.0

    def test_rejects_minimal_recording(self):
        result = run_workload(
            workload_spec("mpeg", 2.0).build(),
            resolve_policy("best"),
            use_daq=False,
            recording="minimal",
        )
        with pytest.raises(ValueError, match="full-recording"):
            settling_report(result.run)


class TestPredictionLedger:
    def test_replays_the_avg_recurrence(self):
        # W' = (N*W + u)/(N+1) with W starting at 0; entry t predicts t+1.
        pairs = prediction_errors([1.0, 0.0, 1.0], decay_n=1)
        assert pairs[0] == (0.5, 0.0)
        assert pairs[1] == (0.25, 1.0)

    def test_past_is_decay_zero(self):
        pairs = prediction_errors([0.2, 0.8, 0.4], decay_n=0)
        assert pairs == [(0.2, 0.8), (0.8, 0.4)]

    def test_rejects_negative_decay(self):
        with pytest.raises(ValueError):
            prediction_errors([0.5], decay_n=-1)

    def test_ledger_none_without_predictor(self):
        result = run("const-132.7", "mpeg", 2.0)
        assert prediction_ledger(result.run, None) is None

    def test_ledger_summarizes_run(self):
        result = run("avg3-one", "mpeg", 10.0)
        ledger = prediction_ledger(result.run, 3)
        assert ledger is not None
        assert ledger.decay_n == 3
        assert ledger.count == len(result.run.quanta) - 1
        assert ledger.max_abs_error >= ledger.mean_abs_error
        assert ledger.rms_error >= ledger.mean_abs_error - 1e-12
        assert 1 <= len(ledger.worst) <= 5
        worst_errors = [abs(r - p) for _, p, r in ledger.worst]
        assert math.isclose(worst_errors[0], ledger.max_abs_error)


class TestMissAttribution:
    def test_no_misses_no_attributions(self):
        result = run("best", "mpeg", 5.0)
        assert result.misses == []
        assert attribute_misses(result.run, tolerance_us=result.tolerance_us) == []

    def test_slow_constant_misses_are_policy_misses(self):
        # const-59.0 misses while faster steps exist: the policy's fault.
        result = run("const-59.0", "mpeg", 5.0)
        assert result.misses
        attributions = attribute_misses(
            result.run, tolerance_us=result.tolerance_us, max_step_index=10
        )
        assert len(attributions) == len(result.misses)
        for attribution in attributions:
            assert attribution.cause == CAUSE_POLICY
            assert attribution.lateness_us > 0
            assert attribution.window_start_us <= attribution.deadline_us
            assert (
                attribution.deadline_us - attribution.window_start_us
                <= ATTRIBUTION_WINDOW_US
            )
            assert attribution.min_mhz <= attribution.mean_mhz <= attribution.max_mhz

    def test_top_step_misses_are_capacity_misses(self):
        # Same run, but told the machine tops out at the step it ran:
        # flat-out was still too slow, so the policy is blameless.
        result = run("const-59.0", "mpeg", 5.0)
        attributions = attribute_misses(
            result.run, tolerance_us=result.tolerance_us, max_step_index=0
        )
        assert attributions
        assert all(a.cause == CAUSE_CAPACITY for a in attributions)


class TestEnergyDecomposition:
    def test_components_sum_to_measured(self):
        for policy in ("avg3-one", "past-peg-98-93", "best-voltage"):
            result = run(policy, "mpeg", 10.0)
            baseline = find_ideal_constant(
                workload_spec("mpeg", 10.0).build(), seed=0
            ).exact_energy_j
            decomposition = energy_decomposition(
                result.run, default_machine(), baseline
            )
            assert (
                abs(decomposition.components_sum_j() - decomposition.measured_j)
                <= ENERGY_SUM_TOLERANCE_J
            )
            assert decomposition.baseline_feasible
            assert decomposition.measured_j == result.run.energy_joules()

    def test_sag_component_only_with_voltage_scaling(self):
        baseline = find_ideal_constant(
            workload_spec("mpeg", 10.0).build(), seed=0
        ).exact_energy_j
        flat = energy_decomposition(
            run("best", "mpeg", 10.0).run, default_machine(), baseline
        )
        scaled = energy_decomposition(
            run("best-voltage", "mpeg", 10.0).run, default_machine(), baseline
        )
        assert flat.sag_j == 0.0
        assert scaled.sag_j > 0.0

    def test_stall_component_positive_when_clock_changes(self):
        result = run("avg3-one", "mpeg", 10.0)
        assert result.run.clock_changes > 0
        decomposition = energy_decomposition(
            result.run, default_machine(), None
        )
        assert decomposition.stall_j > 0.0
        assert not decomposition.baseline_feasible
        assert decomposition.baseline_j == 0.0

    def test_rejects_runs_without_timeline(self):
        result = run_workload(
            workload_spec("mpeg", 2.0).build(),
            resolve_policy("best"),
            use_daq=False,
            recording="minimal",
        )
        with pytest.raises(ValueError, match="full-recording"):
            energy_decomposition(result.run, default_machine(), None)


class TestDiagnose:
    def test_acceptance_verdicts(self):
        # The acceptance pair: AVG_3 on mpeg oscillates; the paper's best
        # policy settles (on the interactive workloads) without missing.
        oscillating = diagnosis_for("avg3-one", "mpeg", 20.0)
        assert not oscillating.settling.settled
        settled = diagnosis_for("past-peg-98-93", "editor", 20.0)
        assert settled.settling.settled or settled.misses > 0
        assert settled.settling.settled  # it actually settles, too

    def test_labels_and_counts(self):
        diagnosis = diagnosis_for("avg3-one", "mpeg", 10.0, seed=3)
        assert diagnosis.policy == "avg3-one"
        assert diagnosis.workload == "mpeg"
        assert diagnosis.machine == "itsy"
        assert diagnosis.seed == 3
        assert diagnosis.quanta == 1000
        assert diagnosis.misses == len(diagnosis.miss_attributions)
        assert diagnosis.ledger is not None
        assert diagnosis.energy.baseline_feasible

    def test_diagnosing_is_pure(self):
        # Diagnosis is a function of a finished run: running it must not
        # perturb the result it explains.
        first = run("best-voltage", "mpeg", 5.0)
        diagnose(first, policy="best-voltage", workload="mpeg")
        second = run("best-voltage", "mpeg", 5.0)
        assert first.run.quanta == second.run.quanta
        assert first.run.freq_changes == second.run.freq_changes
        assert first.run.volt_changes == second.run.volt_changes
        assert list(first.run.timeline) == list(second.run.timeline)
        assert first.exact_energy_j == second.exact_energy_j

    def test_json_round_trip_exact(self):
        diagnosis = diagnosis_for("avg3-one", "mpeg", 10.0)
        rebuilt = PolicyDiagnosis.from_json(diagnosis.to_json())
        assert rebuilt == diagnosis

    def test_json_version_guard(self):
        payload = diagnosis_for("const-132.7", "mpeg", 2.0).to_json()
        payload["v"] = DIAGNOSIS_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            PolicyDiagnosis.from_json(payload)


class TestDiagnosisLog:
    def test_writer_round_trip(self, tmp_path):
        diagnosis = diagnosis_for("const-132.7", "mpeg", 2.0)
        path = tmp_path / "diag.jsonl"
        with DiagnosisWriter(path) as log:
            log.write(diagnosis)
            log.write(diagnosis)
        assert log.written == 2
        assert read_diagnoses(path) == [diagnosis, diagnosis]

    def test_writer_is_lazy(self, tmp_path):
        path = tmp_path / "never.jsonl"
        DiagnosisWriter(path).close()
        assert not path.exists()

    def test_reader_rejects_garbage(self, tmp_path):
        path = tmp_path / "diag.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="bad diagnosis line"):
            read_diagnoses(path)
        path.write_text("[1]\n")
        with pytest.raises(ValueError, match="not an object"):
            read_diagnoses(path)


MPEG = WorkloadSpec("mpeg", MpegConfig(duration_s=2.0))


class TestEngineIntegration:
    def cells(self):
        return [
            SweepCell(workload=MPEG, policy=PolicySpec(name), use_daq=False)
            for name in ("avg3-one", "past-peg-98-93")
        ]

    def test_diagnosed_results_bitwise_equal_plain(self):
        plain = SweepEngine(jobs=1).run(self.cells())
        diagnosed = SweepEngine(jobs=1, diagnose=True).run(self.cells())
        assert diagnosed == plain

    def test_engine_collects_one_diagnosis_per_cell(self):
        engine = SweepEngine(jobs=1, diagnose=True)
        engine.run(self.cells())
        assert len(engine.diagnoses) == 2
        policies = {d.policy for d in engine.diagnoses.values()}
        assert policies == {"avg3-one", "past-peg-98-93"}
        for diagnosis in engine.diagnoses.values():
            assert diagnosis.energy.baseline_feasible
            assert (
                abs(
                    diagnosis.energy.components_sum_j()
                    - diagnosis.energy.measured_j
                )
                <= ENERGY_SUM_TOLERANCE_J
            )

    def test_parallel_diagnoses_match_serial(self, tmp_path):
        serial = SweepEngine(jobs=1, diagnose=True)
        serial.run(self.cells())
        pooled = SweepEngine(jobs=2, diagnose=True)
        pooled.run(self.cells())
        assert pooled.diagnoses == serial.diagnoses

    def test_diagnosis_log_written_per_executed_cell(self, tmp_path):
        log = DiagnosisWriter(tmp_path / "diag.jsonl")
        engine = SweepEngine(jobs=1, diagnosis_log=log)
        assert engine.diagnosing
        engine.run(self.cells())
        log.close()
        assert [d.policy for d in read_diagnoses(tmp_path / "diag.jsonl")] == [
            "avg3-one",
            "past-peg-98-93",
        ]

    def test_cache_hits_are_not_rediagnosed(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepEngine(jobs=1, cache=cache).run(self.cells())
        engine = SweepEngine(jobs=1, cache=cache, diagnose=True)
        results = engine.run(self.cells())
        assert all(r is not None for r in results)
        assert engine.diagnoses == {}
        assert engine.stats.cache_hits == 2
