"""Tests for the host calibration fingerprint."""

import dataclasses
import json

import pytest

from repro.obs.calibrate import (
    CALIBRATION_VERSION,
    NOMINAL_PROBE_WALL_S,
    HostCalibration,
    calibrate,
    host_score,
    load_calibration,
    save_calibration,
)


def make_calibration(**overrides) -> HostCalibration:
    defaults = dict(
        score=1.25,
        probe_wall_s=NOMINAL_PROBE_WALL_S / 1.25,
        passes=8,
        unix_time=1_786_000_000.0,
        hostname="unit-test",
        machine="Linux x86_64",
        python="3.11.0",
    )
    defaults.update(overrides)
    return HostCalibration(**defaults)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "host.json"
        save_calibration(make_calibration(), path)
        loaded = load_calibration(path)
        assert loaded == make_calibration()
        assert loaded.version == CALIBRATION_VERSION

    def test_creates_parent_directory(self, tmp_path):
        path = tmp_path / "nested" / "host.json"
        save_calibration(make_calibration(), path)
        assert load_calibration(path) is not None

    def test_missing_reads_as_uncalibrated(self, tmp_path):
        assert load_calibration(tmp_path / "absent.json") is None

    def test_damaged_reads_as_uncalibrated(self, tmp_path):
        path = tmp_path / "host.json"
        path.write_text("{not json")
        assert load_calibration(path) is None
        path.write_text("[1, 2, 3]\n")
        assert load_calibration(path) is None

    def test_version_mismatch_reads_as_uncalibrated(self, tmp_path):
        # A changed probe means old scores are not comparable.
        path = tmp_path / "host.json"
        save_calibration(
            dataclasses.replace(
                make_calibration(), version=CALIBRATION_VERSION + 1
            ),
            path,
        )
        assert load_calibration(path) is None

    def test_nonpositive_score_reads_as_uncalibrated(self, tmp_path):
        path = tmp_path / "host.json"
        save_calibration(make_calibration(score=0.0), path)
        assert load_calibration(path) is None

    def test_unknown_fields_ignored(self, tmp_path):
        path = tmp_path / "host.json"
        raw = make_calibration().to_json()
        raw["future_field"] = True
        path.write_text(json.dumps(raw))
        assert load_calibration(path) == make_calibration()


class TestHostScore:
    def test_uncalibrated_scores_zero(self, tmp_path):
        assert host_score(tmp_path / "absent.json") == 0.0

    def test_reads_cached_calibration(self, tmp_path):
        path = tmp_path / "host.json"
        save_calibration(make_calibration(score=2.5), path)
        assert host_score(path) == 2.5

    def test_save_invalidates_memo(self, tmp_path):
        path = tmp_path / "host.json"
        save_calibration(make_calibration(score=1.0), path)
        assert host_score(path) == 1.0
        save_calibration(make_calibration(score=3.0), path)
        assert host_score(path) == 3.0

    def test_env_override(self, tmp_path, monkeypatch):
        path = tmp_path / "ci-host.json"
        save_calibration(make_calibration(score=1.75), path)
        monkeypatch.setenv("REPRO_HOST_CALIBRATION", str(path))
        assert host_score() == 1.75


class TestCalibrate:
    def test_calibrate_measures_this_host(self):
        cal = calibrate(budget_s=0.05)
        assert cal.score > 0
        assert cal.probe_wall_s > 0
        assert cal.passes >= 2
        assert cal.score == pytest.approx(
            NOMINAL_PROBE_WALL_S / cal.probe_wall_s
        )
        assert cal.version == CALIBRATION_VERSION

    def test_calibrate_is_roughly_plausible(self):
        # The probe must land within two orders of magnitude of nominal
        # on any host able to run the test suite — this guards against
        # the probe workload drifting (e.g. duration changes) without
        # the version being bumped.
        cal = calibrate(budget_s=0.05)
        assert 0.01 < cal.score < 100.0
