"""Tests for the persistent fleet ledger."""

import json

from repro.kernel.backend import resolve_backend
from repro.measure.parallel import PolicySpec, SweepCell, SweepEngine, WorkloadSpec
from repro.obs.fleet import (
    FLEET_SCHEMA_VERSION,
    FleetLedger,
    FleetRecord,
    git_sha,
    new_sweep_id,
    read_fleet,
    sparkline,
    throughput_trend,
)
from repro.workloads.mpeg import MpegConfig


def record(**overrides) -> FleetRecord:
    defaults = dict(
        sweep_id="20260809T120000-abcd",
        unix_time=1_786_000_000.0,
        command="table2",
        policies=("best", "past-peg"),
        workloads=("mpeg",),
        machines=("itsy",),
        seeds=3,
        cells_total=6,
        cells_executed=6,
        cells_cached=0,
        wall_s=0.5,
        cells_per_s=12.0,
        backend="fastpath",
        jobs=2,
    )
    defaults.update(overrides)
    return FleetRecord(**defaults)


class TestLedger:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        with FleetLedger(path) as ledger:
            ledger.append(record())
            ledger.append(record(sweep_id="x", cells_cached=2))
        history = read_fleet(path)
        assert history.warnings == ()
        assert len(history.records) == 2
        first = history.records[0]
        assert first == record()
        assert first.policies == ("best", "past-peg")

    def test_schema_version_stamped(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        with FleetLedger(path) as ledger:
            ledger.append(record())
        raw = json.loads(path.read_text())
        assert raw["v"] == FLEET_SCHEMA_VERSION
        assert isinstance(raw["policies"], list)

    def test_lazy_open(self, tmp_path):
        path = tmp_path / "never.jsonl"
        ledger = FleetLedger(path)
        ledger.close()
        assert not path.exists()

    def test_tolerates_truncated_trailing_line(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        with FleetLedger(path) as ledger:
            ledger.append(record())
        with path.open("a") as handle:
            handle.write('{"v": 1, "sweep_id": "torn')
        history = read_fleet(path)
        assert len(history.records) == 1
        assert len(history.warnings) == 1
        assert "fleet.jsonl:2" in history.warnings[0]
        assert "truncated write?" in history.warnings[0]

    def test_tolerates_non_object_lines(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        path.write_text("[1, 2]\n")
        history = read_fleet(path)
        assert history.records == ()
        assert len(history.warnings) == 1

    def test_unknown_fields_ignored(self, tmp_path):
        # A newer writer may add fields; old readers must not choke.
        path = tmp_path / "fleet.jsonl"
        raw = record().to_json()
        raw["future_field"] = {"nested": True}
        path.write_text(json.dumps(raw) + "\n")
        history = read_fleet(path)
        assert history.records[0].sweep_id == record().sweep_id

    def test_cache_hit_rate(self):
        assert record(cells_cached=3).cache_hit_rate == 0.5
        assert record(cells_total=0, cells_executed=0).cache_hit_rate == 0.0


class TestHelpers:
    def test_sweep_id_shape(self):
        sweep_id = new_sweep_id(1_786_000_000.0)
        stamp, _, suffix = sweep_id.partition("-")
        assert stamp.startswith("2026")
        assert "T" in stamp
        assert len(suffix) == 4

    def test_git_sha_in_repo(self):
        sha = git_sha()
        assert len(sha) == 40

    def test_git_sha_outside_repo(self, tmp_path):
        assert git_sha(cwd=tmp_path) == ""

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        line = sparkline([1.0, 2.0, 3.0])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_trend_excludes_all_cached_sweeps(self):
        records = [
            record(unix_time=1.0, cells_per_s=5.7),
            record(unix_time=2.0, cells_executed=0, cells_cached=6,
                   cells_per_s=900.0),
            record(unix_time=3.0, cells_per_s=19.3),
        ]
        trend = throughput_trend(records)
        assert "5.7 → 19.3" in trend
        assert "3.39x" in trend
        assert "900" not in trend

    def test_trend_sorts_by_time(self):
        records = [
            record(unix_time=3.0, cells_per_s=19.3),
            record(unix_time=1.0, cells_per_s=5.7),
        ]
        assert "5.7 → 19.3" in throughput_trend(records)

    def test_trend_with_no_executed_sweeps(self):
        trend = throughput_trend(
            [record(cells_executed=0, cells_cached=6)]
        )
        assert "no executed sweeps" in trend


class TestEngineFleetRecord:
    def cells(self):
        workload = WorkloadSpec("mpeg", MpegConfig(duration_s=0.3))
        return [
            SweepCell(workload=workload, policy=PolicySpec("best"), seed=s,
                      use_daq=False)
            for s in (0, 1)
        ]

    def test_engine_emits_accurate_record(self):
        engine = SweepEngine(jobs=1)
        engine.run(self.cells())
        rec = engine.fleet_record(command="unit-test")
        assert rec.command == "unit-test"
        assert rec.policies == ("best",)
        assert rec.workloads == ("mpeg",)
        assert rec.seeds == 2
        assert rec.cells_total == 2
        assert rec.cells_executed == 2
        assert rec.cells_cached == 0
        # The record stamps whatever backend the engine resolved, so the
        # assertion must survive the CI leg that forces the reference
        # kernel via REPRO_FORCE_BACKEND.
        assert rec.backend == resolve_backend().name
        assert rec.jobs == 1
        assert rec.wall_s > 0
        assert rec.cells_per_s > 0
        assert len(rec.git_sha) == 40
