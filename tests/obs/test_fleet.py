"""Tests for the persistent fleet ledger."""

import json

import pytest

from repro.kernel.backend import resolve_backend
from repro.measure.parallel import PolicySpec, SweepCell, SweepEngine, WorkloadSpec
from repro.obs.fleet import (
    FLEET_SCHEMA_VERSION,
    FleetLedger,
    FleetRecord,
    check_fleet,
    git_sha,
    new_sweep_id,
    read_fleet,
    sparkline,
    throughput_trend,
)
from repro.workloads.mpeg import MpegConfig


def record(**overrides) -> FleetRecord:
    defaults = dict(
        sweep_id="20260809T120000-abcd",
        unix_time=1_786_000_000.0,
        command="table2",
        policies=("best", "past-peg"),
        workloads=("mpeg",),
        machines=("itsy",),
        seeds=3,
        cells_total=6,
        cells_executed=6,
        cells_cached=0,
        wall_s=0.5,
        cells_per_s=12.0,
        backend="fastpath",
        jobs=2,
    )
    defaults.update(overrides)
    return FleetRecord(**defaults)


class TestLedger:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        with FleetLedger(path) as ledger:
            ledger.append(record())
            ledger.append(record(sweep_id="x", cells_cached=2))
        history = read_fleet(path)
        assert history.warnings == ()
        assert len(history.records) == 2
        first = history.records[0]
        assert first == record()
        assert first.policies == ("best", "past-peg")

    def test_schema_version_stamped(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        with FleetLedger(path) as ledger:
            ledger.append(record())
        raw = json.loads(path.read_text())
        assert raw["v"] == FLEET_SCHEMA_VERSION
        assert isinstance(raw["policies"], list)

    def test_lazy_open(self, tmp_path):
        path = tmp_path / "never.jsonl"
        ledger = FleetLedger(path)
        ledger.close()
        assert not path.exists()

    def test_tolerates_truncated_trailing_line(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        with FleetLedger(path) as ledger:
            ledger.append(record())
        with path.open("a") as handle:
            handle.write('{"v": 1, "sweep_id": "torn')
        history = read_fleet(path)
        assert len(history.records) == 1
        assert len(history.warnings) == 1
        assert "fleet.jsonl:2" in history.warnings[0]
        assert "truncated write?" in history.warnings[0]

    def test_tolerates_non_object_lines(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        path.write_text("[1, 2]\n")
        history = read_fleet(path)
        assert history.records == ()
        assert len(history.warnings) == 1

    def test_unknown_fields_ignored(self, tmp_path):
        # A newer writer may add fields; old readers must not choke.
        path = tmp_path / "fleet.jsonl"
        raw = record().to_json()
        raw["future_field"] = {"nested": True}
        path.write_text(json.dumps(raw) + "\n")
        history = read_fleet(path)
        assert history.records[0].sweep_id == record().sweep_id

    def test_cache_hit_rate(self):
        assert record(cells_cached=3).cache_hit_rate == 0.5
        assert record(cells_total=0, cells_executed=0).cache_hit_rate == 0.0

    def test_v2_round_trip_with_phases_and_host_score(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        rec = record(
            host_score=1.5,
            phases=(("kernel compute", 0.4), ("result IPC", 0.05)),
        )
        with FleetLedger(path) as ledger:
            ledger.append(rec)
        loaded = read_fleet(path).records[0]
        assert loaded == rec
        assert loaded.phase_seconds == {
            "kernel compute": 0.4, "result IPC": 0.05,
        }
        # On disk the phases are a JSON object, not nested arrays.
        raw = json.loads(path.read_text())
        assert raw["phases"] == {"kernel compute": 0.4, "result IPC": 0.05}
        assert raw["host_score"] == 1.5

    def test_v1_records_read_tolerantly(self, tmp_path):
        # A pre-calibration ledger line has neither host_score nor
        # phases; both must default rather than fail the read.
        path = tmp_path / "fleet.jsonl"
        raw = record().to_json()
        del raw["host_score"]
        del raw["phases"]
        raw["v"] = 1
        path.write_text(json.dumps(raw) + "\n")
        history = read_fleet(path)
        assert history.warnings == ()
        loaded = history.records[0]
        assert loaded.host_score == 0.0
        assert loaded.phases == ()
        assert loaded.normalized_cells_per_s is None

    def test_phases_as_pair_list_round_trips(self, tmp_path):
        # Hand-edited ledgers may store phases as pairs instead of an
        # object; the reader accepts both.
        path = tmp_path / "fleet.jsonl"
        raw = record().to_json()
        raw["phases"] = [["kernel compute", 0.25]]
        path.write_text(json.dumps(raw) + "\n")
        loaded = read_fleet(path).records[0]
        assert loaded.phases == (("kernel compute", 0.25),)

    def test_normalized_throughput(self):
        assert record(host_score=2.0).normalized_cells_per_s == 6.0
        assert record(host_score=0.0).normalized_cells_per_s is None


class TestHelpers:
    def test_sweep_id_shape(self):
        sweep_id = new_sweep_id(1_786_000_000.0)
        stamp, _, suffix = sweep_id.partition("-")
        assert stamp.startswith("2026")
        assert "T" in stamp
        assert len(suffix) == 4

    def test_git_sha_in_repo(self):
        sha = git_sha()
        assert len(sha) == 40

    def test_git_sha_outside_repo(self, tmp_path):
        assert git_sha(cwd=tmp_path) == ""

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        line = sparkline([1.0, 2.0, 3.0])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_trend_excludes_all_cached_sweeps(self):
        records = [
            record(unix_time=1.0, cells_per_s=5.7),
            record(unix_time=2.0, cells_executed=0, cells_cached=6,
                   cells_per_s=900.0),
            record(unix_time=3.0, cells_per_s=19.3),
        ]
        trend = throughput_trend(records)
        assert "5.7 → 19.3" in trend
        assert "3.39x" in trend
        assert "900" not in trend

    def test_trend_sorts_by_time(self):
        records = [
            record(unix_time=3.0, cells_per_s=19.3),
            record(unix_time=1.0, cells_per_s=5.7),
        ]
        assert "5.7 → 19.3" in throughput_trend(records)

    def test_trend_with_no_executed_sweeps(self):
        trend = throughput_trend(
            [record(cells_executed=0, cells_cached=6)]
        )
        assert "no executed sweeps" in trend

    def test_trend_with_empty_ledger(self):
        assert "no executed sweeps" in throughput_trend([])

    def test_trend_with_single_record_omits_sparkline(self):
        trend = throughput_trend([record(cells_per_s=12.0)])
        assert "12.0 → 12.0" in trend
        assert "▁" not in trend and "█" not in trend

    def test_trend_with_all_cached_ledger(self):
        # Every sweep answered from the cache: nothing measured the
        # engine, so the trend must say so instead of charting noise.
        records = [
            record(unix_time=float(i), cells_executed=0, cells_cached=6)
            for i in range(3)
        ]
        assert "no executed sweeps" in throughput_trend(records)


class TestSentinel:
    def history(self, n=5, **last_overrides):
        """n healthy comparable sweeps plus one configurable latest."""
        records = [
            record(
                sweep_id=f"sweep-{i}", unix_time=float(i),
                cells_per_s=10.0 + 0.1 * i,
                phases=(("kernel compute", 0.55), ("result IPC", 0.05)),
            )
            for i in range(n)
        ]
        last = dict(
            sweep_id="sweep-latest", unix_time=float(n),
            cells_per_s=10.0,
            phases=(("kernel compute", 0.55), ("result IPC", 0.05)),
        )
        last.update(last_overrides)
        records.append(record(**last))
        return records

    def test_healthy_ledger_passes(self):
        report = check_fleet(self.history())
        assert report.checked and report.ok
        assert report.window == 5
        assert "sweep-latest" in report.reason
        assert report.culprit_phase is None

    def test_empty_ledger_is_unchecked_ok(self):
        report = check_fleet([])
        assert report.ok and not report.checked
        assert "no executed sweeps" in report.reason

    def test_first_sweep_has_no_baseline(self):
        report = check_fleet([record()])
        assert report.ok and not report.checked
        assert "no comparable baseline" in report.reason

    def test_all_cached_latest_not_misread_as_regression(self):
        # A warm-cache re-run executes nothing; the sentinel must judge
        # the newest *executed* sweep, not the cache's throughput.
        records = self.history()
        records.append(record(
            sweep_id="warm", unix_time=99.0,
            cells_executed=0, cells_cached=6, cells_per_s=900.0,
        ))
        report = check_fleet(records)
        assert report.ok
        assert report.latest.sweep_id == "sweep-latest"

    def test_throughput_drop_fails_naming_culprit_phase(self):
        report = check_fleet(self.history(
            cells_per_s=1.0,
            wall_s=5.0,
            phases=(("kernel compute", 0.55), ("result IPC", 4.2)),
        ))
        assert report.checked and not report.ok
        assert "throughput dropped" in report.reason
        assert report.culprit_phase == "result IPC"
        assert "result IPC" in report.reason
        assert report.drop_pct == pytest.approx(90.0, abs=2.0)

    def test_drop_within_bar_passes(self):
        report = check_fleet(self.history(cells_per_s=9.0))
        assert report.ok

    def test_configurable_drop_bar(self):
        report = check_fleet(self.history(cells_per_s=9.0), max_drop_pct=5.0)
        assert not report.ok

    def test_cache_hit_collapse_fails(self):
        records = [
            record(
                sweep_id=f"sweep-{i}", unix_time=float(i),
                cells_executed=2, cells_cached=4,
            )
            for i in range(5)
        ]
        records.append(record(
            sweep_id="cold", unix_time=9.0,
            cells_executed=6, cells_cached=0,
        ))
        report = check_fleet(records)
        assert not report.ok
        assert "cache-hit rate collapsed" in report.reason

    def test_normalization_cancels_host_speed(self):
        # The same sweep on a half-speed host: raw throughput halves,
        # but so does the host score, so the sentinel stays green.
        records = self.history()
        records.append(record(
            sweep_id="slow-host", unix_time=50.0,
            cells_per_s=5.0, host_score=0.5,
        ))
        baseline_scored = [
            record(
                sweep_id=f"scored-{i}", unix_time=float(i),
                cells_per_s=10.0, host_score=1.0,
            )
            for i in range(5)
        ]
        report = check_fleet(baseline_scored + [records[-1]])
        assert report.ok, report.reason

    def test_different_backend_not_compared(self):
        records = self.history()
        records.append(record(
            sweep_id="ref", unix_time=60.0, backend="reference",
            cells_per_s=0.5,
        ))
        report = check_fleet(records)
        assert report.ok and not report.checked
        assert "no comparable baseline" in report.reason

    def test_window_limits_baseline(self):
        report = check_fleet(self.history(n=10), window=3)
        assert report.window == 3


class TestEngineFleetRecord:
    def cells(self):
        workload = WorkloadSpec("mpeg", MpegConfig(duration_s=0.3))
        return [
            SweepCell(workload=workload, policy=PolicySpec("best"), seed=s,
                      use_daq=False)
            for s in (0, 1)
        ]

    def test_engine_emits_accurate_record(self):
        engine = SweepEngine(jobs=1)
        engine.run(self.cells())
        rec = engine.fleet_record(command="unit-test")
        assert rec.command == "unit-test"
        assert rec.policies == ("best",)
        assert rec.workloads == ("mpeg",)
        assert rec.seeds == 2
        assert rec.cells_total == 2
        assert rec.cells_executed == 2
        assert rec.cells_cached == 0
        # The record stamps whatever backend the engine resolved, so the
        # assertion must survive the CI leg that forces the reference
        # kernel via REPRO_FORCE_BACKEND.
        assert rec.backend == resolve_backend().name
        assert rec.jobs == 1
        assert rec.wall_s > 0
        assert rec.cells_per_s > 0
        assert len(rec.git_sha) == 40
