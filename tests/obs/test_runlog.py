"""Tests for the structured JSONL sweep run-log."""

import json
import os

from repro.measure.parallel import (
    PolicySpec,
    ResultCache,
    SweepCell,
    SweepEngine,
    WorkloadSpec,
)
from repro.obs.runlog import (
    RUN_LOG_VERSION,
    RunLogRecord,
    RunLogWriter,
    read_run_log,
)
from repro.workloads.mpeg import MpegConfig

MPEG = WorkloadSpec("mpeg", MpegConfig(duration_s=0.3))


def record(**overrides) -> RunLogRecord:
    defaults = dict(
        run_id="abc123",
        policy="best",
        workload="mpeg",
        machine="itsy",
        seed=0,
        duration_us=300000.0,
        energy_j=0.5,
        exact_energy_j=0.5,
        miss_count=0,
        cache="executed",
        wall_s=0.01,
        unix_time=1_700_000_000.0,
    )
    defaults.update(overrides)
    return RunLogRecord(**defaults)


class TestWriter:
    def test_appends_jsonl(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with RunLogWriter(path) as log:
            log.write(record())
            log.write(record(seed=1, cache="hit", wall_s=0.0))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["v"] == RUN_LOG_VERSION
        assert first["policy"] == "best"
        assert json.loads(lines[1])["cache"] == "hit"

    def test_lazy_open(self, tmp_path):
        path = tmp_path / "never.jsonl"
        log = RunLogWriter(path)
        log.close()
        assert not path.exists()

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "log.jsonl"
        with RunLogWriter(path) as log:
            log.write(record())
        assert path.exists()

    def test_written_counter(self, tmp_path):
        log = RunLogWriter(tmp_path / "log.jsonl")
        assert log.written == 0
        log.write(record())
        assert log.written == 1
        log.close()


class TestReader:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with RunLogWriter(path) as log:
            log.write(record())
        records = read_run_log(path)
        assert len(records) == 1
        assert records[0]["run_id"] == "abc123"

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert len(read_run_log(path)) == 2

    def test_skips_garbage_with_warning(self, tmp_path):
        # A torn trailing line (crash mid-write) must not void the rest
        # of the log: the bad line is skipped and reported, not raised.
        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\nnot json\n{"b": 2}\n')
        records = read_run_log(path)
        assert [r for r in records] == [{"a": 1}, {"b": 2}]
        assert len(records.warnings) == 1
        assert "log.jsonl:2" in records.warnings[0]
        assert "skipped unreadable run-log line" in records.warnings[0]

    def test_skips_non_objects_with_warning(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("[1, 2]\n")
        records = read_run_log(path)
        assert list(records) == []
        assert len(records.warnings) == 1
        assert "not a JSON object" in records.warnings[0]

    def test_truncated_trailing_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\n{"b": 2, "cache": "exec')
        records = read_run_log(path)
        assert list(records) == [{"a": 1}]
        assert len(records.warnings) == 1

    def test_clean_log_has_no_warnings(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with RunLogWriter(path) as log:
            log.write(record())
        assert read_run_log(path).warnings == ()


class TestEngineIntegration:
    def cells(self):
        return [
            SweepCell(workload=MPEG, policy=PolicySpec("best"), seed=s,
                      use_daq=False)
            for s in (0, 1)
        ]

    def test_one_record_per_unique_cell(self, tmp_path):
        log = RunLogWriter(tmp_path / "log.jsonl")
        engine = SweepEngine(jobs=1, run_log=log)
        results = engine.run(self.cells())
        log.close()
        records = read_run_log(tmp_path / "log.jsonl")
        assert len(records) == 2
        assert all(r["cache"] == "executed" for r in records)
        assert {r["seed"] for r in records} == {0, 1}
        assert records[0]["energy_j"] == results[0].exact_energy_j
        assert all(r["wall_s"] > 0 for r in records)

    def test_warm_cache_logs_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepEngine(jobs=1, cache=cache).run(self.cells())
        log = RunLogWriter(tmp_path / "log.jsonl")
        SweepEngine(jobs=1, cache=cache, run_log=log).run(self.cells())
        log.close()
        records = read_run_log(tmp_path / "log.jsonl")
        assert len(records) == 2
        assert all(r["cache"] == "hit" for r in records)
        assert all(r["wall_s"] == 0.0 for r in records)

    def test_run_id_is_the_cache_key(self, tmp_path):
        from repro.measure.parallel import cache_key

        log = RunLogWriter(tmp_path / "log.jsonl")
        SweepEngine(jobs=1, run_log=log).run(self.cells()[:1])
        log.close()
        [rec] = read_run_log(tmp_path / "log.jsonl")
        assert rec["run_id"] == cache_key(self.cells()[0])

    def test_logging_does_not_change_results(self, tmp_path):
        log = RunLogWriter(tmp_path / "log.jsonl")
        logged = SweepEngine(jobs=1, run_log=log).run(self.cells())
        log.close()
        plain = SweepEngine(jobs=1).run(self.cells())
        assert logged == plain

    def test_worker_attribution_in_process(self, tmp_path):
        # jobs=1 executes in the parent, which is still "a worker" for
        # attribution purposes: its own pid, ordinal 0.
        log = RunLogWriter(tmp_path / "log.jsonl")
        SweepEngine(jobs=1, run_log=log).run(self.cells())
        log.close()
        records = read_run_log(tmp_path / "log.jsonl")
        assert all(r["worker_pid"] == os.getpid() for r in records)
        assert all(r["worker_ordinal"] == 0 for r in records)
        assert all(r["v"] == RUN_LOG_VERSION for r in records)

    def test_worker_attribution_pool(self, tmp_path):
        log = RunLogWriter(tmp_path / "log.jsonl")
        with SweepEngine(jobs=2, run_log=log) as engine:
            engine.run(self.cells())
        log.close()
        records = read_run_log(tmp_path / "log.jsonl")
        assert all(isinstance(r["worker_pid"], int) for r in records)
        assert all(r["worker_pid"] != os.getpid() for r in records)
        pids = {r["worker_pid"] for r in records}
        ordinals = {r["worker_ordinal"] for r in records}
        # Ordinals are a stable zero-based relabeling of the pids seen.
        assert len(ordinals) == len(pids)
        assert ordinals <= {0, 1}

    def test_cache_hits_have_no_worker(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepEngine(jobs=1, cache=cache).run(self.cells())
        log = RunLogWriter(tmp_path / "log.jsonl")
        SweepEngine(jobs=1, cache=cache, run_log=log).run(self.cells())
        log.close()
        records = read_run_log(tmp_path / "log.jsonl")
        assert all(r["worker_pid"] is None for r in records)
        assert all(r["worker_ordinal"] is None for r in records)
