"""Tests for sweep telemetry: spans, progress math, and the renderer.

Everything here drives the progress model with a fake clock and
hand-built heartbeat streams — no sleeps, no real pools — so the ETA
and straggler arithmetic is checked exactly, not statistically.
"""

import io

from repro.obs.telemetry import (
    HEARTBEAT_DONE,
    HEARTBEAT_START,
    LANE_ENGINE,
    ProgressModel,
    ProgressRenderer,
    SweepTelemetry,
    format_progress_line,
)
from repro.obs.trace import validate_chrome_trace


class FakeClock:
    """A monotonically advancing clock the tests control."""

    def __init__(self, t: float = 100.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t


def replay(model, events):
    """Feed ``(tag, pid, cell_id, t)`` heartbeats like the pump does."""
    for tag, pid, cell_id, t in events:
        if tag == HEARTBEAT_START:
            model.cell_started(pid, cell_id, t)
        elif tag == HEARTBEAT_DONE:
            model.cell_finished(pid, cell_id, t)


class TestProgressModel:
    def test_eta_from_rate(self):
        model = ProgressModel(total=10)
        model.start(0.0)
        replay(model, [
            (HEARTBEAT_START, 1, 0, 0.0), (HEARTBEAT_DONE, 1, 0, 2.0),
            (HEARTBEAT_START, 1, 1, 2.0), (HEARTBEAT_DONE, 1, 1, 4.0),
        ])
        snap = model.snapshot(4.0)
        assert snap.done == 2
        assert snap.cells_per_s == 0.5
        # 8 remaining at 0.5 cells/s.
        assert snap.eta_s == 16.0

    def test_eta_none_before_first_completion(self):
        model = ProgressModel(total=5)
        model.start(0.0)
        model.cell_started(1, 0, 0.0)
        assert model.snapshot(1.0).eta_s is None

    def test_eta_zero_when_done(self):
        model = ProgressModel(total=1)
        model.start(0.0)
        replay(model, [
            (HEARTBEAT_START, 1, 0, 0.0), (HEARTBEAT_DONE, 1, 0, 1.0),
        ])
        assert model.snapshot(1.0).eta_s == 0.0

    def test_zero_cell_sweep(self):
        model = ProgressModel(total=0)
        model.start(0.0)
        snap = model.snapshot(0.0)
        assert snap.done == snap.total == 0
        assert snap.fraction == 1.0
        assert snap.eta_s == 0.0
        assert snap.stragglers == ()
        # The summary line must still format without dividing by zero.
        assert "0/0" in format_progress_line(snap)

    def test_all_cached_sweep(self):
        model = ProgressModel(total=4)
        model.start(0.0)
        for cell_id in range(4):
            model.cache_hit(cell_id, 0.0)
        snap = model.snapshot(0.0)
        assert snap.done == 4
        assert snap.cached == 4
        assert snap.executed == 0
        assert snap.cache_hit_rate == 1.0
        assert snap.fraction == 1.0
        assert snap.eta_s == 0.0

    def test_cache_hit_rate_mixed(self):
        model = ProgressModel(total=4)
        model.start(0.0)
        replay(model, [
            (HEARTBEAT_START, 1, 0, 0.0), (HEARTBEAT_DONE, 1, 0, 1.0),
        ])
        model.cache_hit(1, 1.0)
        assert model.snapshot(1.0).cache_hit_rate == 0.5

    def test_worker_utilization(self):
        model = ProgressModel(total=4)
        model.start(0.0)
        # Two workers; one busy the whole window, one idle half of it.
        replay(model, [
            (HEARTBEAT_START, 1, 0, 0.0), (HEARTBEAT_DONE, 1, 0, 4.0),
            (HEARTBEAT_START, 2, 1, 0.0), (HEARTBEAT_DONE, 2, 1, 2.0),
        ])
        assert model.worker_utilization(4.0) == (4.0 + 2.0) / (2 * 4.0)

    def test_utilization_counts_in_flight_work(self):
        model = ProgressModel(total=2)
        model.start(0.0)
        model.cell_started(1, 0, 0.0)
        assert model.worker_utilization(2.0) == 1.0

    def test_straggler_needs_min_samples(self):
        model = ProgressModel(total=10)
        model.start(0.0)
        # Two completions at 1 s each — below the 3-sample floor, so even
        # a 100x-median in-flight cell is not yet flagged.
        replay(model, [
            (HEARTBEAT_START, 1, 0, 0.0), (HEARTBEAT_DONE, 1, 0, 1.0),
            (HEARTBEAT_START, 1, 1, 1.0), (HEARTBEAT_DONE, 1, 1, 2.0),
            (HEARTBEAT_START, 2, 2, 0.0),
        ])
        assert model.stragglers(100.0) == ()

    def test_straggler_flagged_past_factor(self):
        model = ProgressModel(total=10)
        model.start(0.0)
        replay(model, [
            (HEARTBEAT_START, 1, 0, 0.0), (HEARTBEAT_DONE, 1, 0, 1.0),
            (HEARTBEAT_START, 1, 1, 1.0), (HEARTBEAT_DONE, 1, 1, 2.0),
            (HEARTBEAT_START, 1, 2, 2.0), (HEARTBEAT_DONE, 1, 2, 3.0),
        ])
        model.cell_started(2, 3, 3.0, label="best/mpeg")
        # Median completed wall is 1 s; the in-flight cell crosses the
        # 4x bar only after 4 s elapsed.
        assert model.stragglers(6.9) == ()
        [straggler] = model.stragglers(7.1)
        assert straggler.cell_id == 3
        assert straggler.worker_pid == 2
        assert straggler.label == "best/mpeg"
        assert straggler.elapsed_s == 7.1 - 3.0
        assert straggler.median_s == 1.0

    def test_identical_wall_times_flag_nothing(self):
        # A perfectly uniform sweep: every completed cell took exactly
        # 1 s and the in-flight cell has run exactly that long.  The
        # median equals the elapsed time, so nothing crosses the factor
        # bar — uniform progress must never read as a straggler.
        model = ProgressModel(total=10)
        model.start(0.0)
        replay(model, [
            (HEARTBEAT_START, 1, 0, 0.0), (HEARTBEAT_DONE, 1, 0, 1.0),
            (HEARTBEAT_START, 1, 1, 1.0), (HEARTBEAT_DONE, 1, 1, 2.0),
            (HEARTBEAT_START, 1, 2, 2.0), (HEARTBEAT_DONE, 1, 2, 3.0),
            (HEARTBEAT_START, 2, 3, 3.0),
        ])
        assert model.stragglers(4.0) == ()

    def test_stragglers_sorted_worst_first(self):
        model = ProgressModel(total=10)
        model.start(0.0)
        replay(model, [
            (HEARTBEAT_START, 1, i, float(i)) for i in range(3)
        ] + [
            (HEARTBEAT_DONE, 1, i, float(i) + 1.0) for i in range(3)
        ])
        model.cell_started(2, 8, 0.0)
        model.cell_started(3, 9, 2.0)
        flagged = model.stragglers(10.0)
        assert [s.cell_id for s in flagged] == [8, 9]

    def test_snapshot_line_formats(self):
        model = ProgressModel(total=10)
        model.start(0.0)
        replay(model, [
            (HEARTBEAT_START, 1, 0, 0.0), (HEARTBEAT_DONE, 1, 0, 2.0),
            (HEARTBEAT_START, 1, 1, 2.0), (HEARTBEAT_DONE, 1, 1, 4.0),
        ])
        line = format_progress_line(model.snapshot(4.0))
        assert "2/10" in line
        assert "20%" in line
        assert "0.5 cells/s" in line
        assert "eta 16s" in line

    def test_total_can_grow_across_batches(self):
        model = ProgressModel()
        model.add_total(3)
        model.add_total(2)
        assert model.snapshot(0.0).total == 5


class TestProgressRenderer:
    def model(self):
        model = ProgressModel(total=2)
        model.start(0.0)
        return model

    def test_disabled_on_non_tty(self):
        sink = io.StringIO()  # StringIO.isatty() is False
        renderer = ProgressRenderer(self.model(), sink)
        renderer.update(force=True)
        renderer.finish()
        assert sink.getvalue() == ""

    def test_forced_renderer_draws_and_clears(self):
        clock = FakeClock()
        model = self.model()
        sink = io.StringIO()
        renderer = ProgressRenderer(model, sink, clock=clock, enabled=True)
        renderer.update(force=True)
        out = sink.getvalue()
        assert out.startswith("\r")
        assert "0/2" in out
        renderer.finish()
        # finish() leaves the line cleared for whatever prints next.
        assert sink.getvalue().endswith("\r")

    def test_updates_throttle(self):
        clock = FakeClock()
        model = self.model()
        sink = io.StringIO()
        renderer = ProgressRenderer(
            model, sink, min_interval_s=0.1, clock=clock, enabled=True
        )
        renderer.update(force=True)
        first = sink.getvalue()
        renderer.update()  # same instant: throttled away
        assert sink.getvalue() == first
        clock.advance(0.2)
        renderer.update()
        assert len(sink.getvalue()) > len(first)


class TestSweepTelemetry:
    def test_trace_validates_with_worker_lanes(self):
        clock = FakeClock()
        tel = SweepTelemetry(clock=clock)
        tel.start()
        with tel.span("pool spin-up", workers=2):
            clock.advance(0.01)
        lane_a = tel.lane_for(111)
        lane_b = tel.lane_for(222)
        assert tel.lane_for(111) == lane_a  # stable per pid
        assert lane_a != lane_b
        tel.add_span("best", 0, 5000, lane=lane_a, seed=0)
        tel.add_span("best", 0, 5000, lane=lane_b, seed=1)
        tel.add_instant("cache hit", policy="best")
        payload = tel.chrome_trace()
        validate_chrome_trace(payload)
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"pool spin-up", "best", "cache hit"} <= names
        thread_names = [
            e["args"]["name"] for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "engine" in thread_names
        assert any("pid 111" in n for n in thread_names)
        assert payload["otherData"]["workers"] == 2

    def test_ordinals_match_lane_order(self):
        tel = SweepTelemetry()
        tel.start()
        tel.lane_for(500)
        tel.lane_for(600)
        assert tel.ordinal_for(500) == 0
        assert tel.ordinal_for(600) == 1
        assert tel.lane_for(500) != LANE_ENGINE

    def test_span_durations_never_negative(self):
        tel = SweepTelemetry()
        tel.start()
        tel.add_span("clamped", 100, 50)
        [event] = [
            e for e in tel.chrome_trace()["traceEvents"] if e["ph"] == "X"
        ]
        assert event["dur"] == 0

    def test_empty_telemetry_still_validates(self):
        tel = SweepTelemetry()
        tel.start()
        validate_chrome_trace(tel.chrome_trace())
