"""Tests for the sweep report aggregator and renderers."""

import pytest

from repro.cli import workload_spec
from repro.core.catalog import resolve_policy
from repro.measure.runner import run_workload
from repro.obs.diagnose import diagnose
from repro.obs.fleet import FleetRecord
from repro.obs.report import (
    FORMAT_HTML,
    FORMAT_MARKDOWN,
    build_report,
    load_bench_records,
    render_report,
)
from repro.obs.runlog import RUN_LOG_VERSION


def record(**overrides) -> dict:
    base = dict(
        v=RUN_LOG_VERSION,
        run_id="abc",
        policy="best",
        workload="mpeg",
        machine="itsy",
        seed=0,
        duration_us=1e6,
        energy_j=10.0,
        exact_energy_j=10.0,
        miss_count=0,
        cache="executed",
        wall_s=0.5,
        unix_time=1_700_000_000.0,
        repro_version="1.0.0",
    )
    base.update(overrides)
    return base


def real_diagnosis(policy="avg3-one", workload="mpeg", duration_s=5.0):
    result = run_workload(
        workload_spec(workload, duration_s).build(),
        resolve_policy(policy),
        use_daq=False,
    )
    return diagnose(result, policy=policy, workload=workload)


class TestBuildReport:
    def test_groups_by_cell_labels(self):
        report = build_report(
            [
                record(),
                record(seed=1, energy_j=12.0, cache="hit"),
                record(policy="avg3-one", energy_j=11.0, miss_count=2),
            ]
        )
        assert len(report.rows) == 2
        assert report.total_runs == 3
        assert report.total_cache_hits == 1
        by_policy = {row.policy: row for row in report.rows}
        best = by_policy["best"]
        assert best.runs == 2
        assert best.mean_energy_j == pytest.approx(11.0)
        assert best.energy_min_j == 10.0
        assert best.energy_max_j == 12.0
        assert by_policy["avg3-one"].miss_count == 2

    def test_rows_sorted_by_workload_machine_policy(self):
        report = build_report(
            [
                record(policy="z", workload="web"),
                record(policy="a", workload="web"),
                record(policy="m", workload="mpeg"),
            ]
        )
        keys = [(r.workload, r.policy) for r in report.rows]
        assert keys == [("mpeg", "m"), ("web", "a"), ("web", "z")]

    def test_diagnoses_join_on_labels(self):
        diagnosis = real_diagnosis()
        report = build_report(
            [record(policy="avg3-one")], diagnoses=[diagnosis]
        )
        [row] = report.rows
        assert row.diagnoses == [diagnosis]
        assert row.settled_verdict == "oscillates"

    def test_diagnosis_only_rows_appear(self):
        report = build_report([], diagnoses=[real_diagnosis()])
        assert len(report.rows) == 1
        assert report.rows[0].runs == 0
        assert report.total_runs == 0

    def test_mixed_versions_warn(self):
        report = build_report([record(), record(v=1)])
        assert any("schema versions" in w for w in report.warnings)

    def test_homogeneous_log_has_no_warnings(self):
        report = build_report([record(), record(seed=1)])
        assert report.warnings == ()


class TestRenderers:
    def test_markdown_contains_table_and_diagnoses(self):
        text = render_report(
            build_report([record(policy="avg3-one")], [real_diagnosis()]),
            FORMAT_MARKDOWN,
        )
        assert text.startswith("# Sweep report")
        assert "| policy | workload |" in text
        assert "| avg3-one | mpeg | itsy |" in text
        assert "## Diagnoses" in text
        assert "oscillates" in text
        assert "oracle" not in text  # baseline was infeasible/absent here

    def test_markdown_is_deterministic(self):
        records = [record(), record(policy="avg3-one")]
        assert render_report(build_report(records)) == render_report(
            build_report(records)
        )

    def test_html_is_standalone_and_escaped(self):
        text = render_report(
            build_report(
                [record(policy="<script>alert(1)</script>")],
                [real_diagnosis()],
            ),
            FORMAT_HTML,
        )
        assert text.startswith("<!DOCTYPE html>")
        assert "<style>" in text
        assert "<script>alert(1)</script>" not in text
        assert "&lt;script&gt;" in text
        assert 'class="oscillates"' in text

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown report format"):
            render_report(build_report([record()]), "pdf")

    def test_warnings_rendered_in_both_formats(self):
        report = build_report([record(), record(v=1)])
        assert "> **warning:**" in render_report(report, FORMAT_MARKDOWN)
        assert 'class="warning"' in render_report(report, FORMAT_HTML)


def bench_record(**overrides) -> dict:
    base = dict(
        benchmark="kernel_hotloop",
        machine="itsy",
        workload="mpeg",
        duration_s=60.0,
        fastpath_speedup=2.9,
        min_fastpath_speedup=2.0,
        full_wall_s=0.14,
    )
    base.update(overrides)
    return base


class TestPerfHistory:
    def test_absent_without_bench_records(self):
        text = render_report(build_report([record()]), FORMAT_MARKDOWN)
        assert "Perf history" not in text

    def test_markdown_section_renders_known_benchmarks(self):
        report = build_report(
            [record()],
            bench_records=[
                bench_record(),
                dict(
                    benchmark="obs_overhead",
                    machine="itsy",
                    workload="mpeg",
                    duration_s=60.0,
                    enabled_overhead_pct=2.3,
                    disabled_overhead_pct=0.0,
                    max_enabled_overhead_pct=10.0,
                    max_disabled_overhead_pct=5.0,
                ),
                dict(
                    benchmark="sweep_throughput",
                    machine="itsy",
                    workload="mpeg",
                    duration_s=60.0,
                    new_cells_per_s=22.7,
                    speedup=3.1,
                    min_speedup=3.0,
                ),
            ],
        )
        text = render_report(report, FORMAT_MARKDOWN)
        assert "## Perf history" in text
        assert "fastpath 2.9x over full recorders" in text
        assert "enabled +2.3%" in text
        assert "22.7 cells/s" in text

    def test_html_section_renders(self):
        text = render_report(
            build_report([record()], bench_records=[bench_record()]),
            FORMAT_HTML,
        )
        assert "<h2>Perf history</h2>" in text
        assert "fastpath 2.9x over full recorders" in text

    def test_profile_overhead_renders(self):
        text = render_report(
            build_report(
                [record()],
                bench_records=[dict(
                    benchmark="profile_overhead",
                    machine="itsy",
                    workload="mpeg",
                    duration_s=60.0,
                    profile_overhead_pct=0.0,
                    max_profile_overhead_pct=5.0,
                    phases_seen=5,
                    coverage_pct=99.7,
                )],
            ),
            FORMAT_MARKDOWN,
        )
        assert "phase profiling +0%" in text
        assert "5 phases" in text
        assert "99.7% wall accounted" in text
        assert "<= 5.0%" in text

    def test_unknown_benchmark_falls_back_to_numeric_dump(self):
        text = render_report(
            build_report(
                [record()],
                bench_records=[dict(benchmark="future_bench", widgets=7.0)],
            ),
            FORMAT_MARKDOWN,
        )
        assert "future_bench" in text
        assert "widgets=7" in text

    def test_committed_records_render(self):
        # The actual BENCH_*.json files at the repo root must flow
        # through the renderer without falling back or raising.
        import json
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        records = [
            json.loads(p.read_text())
            for p in sorted(root.glob("BENCH_*.json"))
        ]
        assert records, "committed BENCH_*.json records missing"
        text = render_report(
            build_report([record()], bench_records=records), FORMAT_MARKDOWN
        )
        assert "## Perf history" in text
        for line in text.splitlines():
            if line.startswith("| kernel_hotloop"):
                assert "fastpath" in line
            if line.startswith("| obs_overhead"):
                assert "enabled" in line
            if line.startswith("| sweep_throughput"):
                assert "cells/s" in line
            if line.startswith("| telemetry_overhead"):
                assert "worker lanes" in line


class TestLoadBenchRecords:
    def write(self, path, **fields):
        import json

        base = dict(benchmark="b", machine="itsy")
        base.update(fields)
        path.write_text(json.dumps(base))
        return path

    def test_directory_loads_all_bench_json(self, tmp_path):
        self.write(tmp_path / "BENCH_a.json", unix_time=2.0)
        self.write(tmp_path / "BENCH_b.json", unix_time=1.0)
        (tmp_path / "notes.txt").write_text("ignored")
        records = load_bench_records([tmp_path])
        assert [r["unix_time"] for r in records] == [1.0, 2.0]

    def test_glob_pattern(self, tmp_path):
        self.write(tmp_path / "BENCH_a.json", unix_time=1.0)
        self.write(tmp_path / "BENCH_b.json", unix_time=2.0)
        records = load_bench_records([str(tmp_path / "BENCH_*.json")])
        assert len(records) == 2

    def test_explicit_files_dedup_and_order_by_mtime(self, tmp_path):
        import os

        older = self.write(tmp_path / "BENCH_old.json")
        newer = self.write(tmp_path / "BENCH_new.json")
        os.utime(older, (1_000_000, 1_000_000))
        os.utime(newer, (2_000_000, 2_000_000))
        records = load_bench_records([newer, older, newer])
        assert len(records) == 2
        # mtime orders records that carry no unix_time of their own.
        assert [r["benchmark"] for r in records] == ["b", "b"]

    def test_recorded_timestamp_beats_mtime(self, tmp_path):
        import os

        a = self.write(tmp_path / "BENCH_a.json", unix_time=5.0)
        b = self.write(tmp_path / "BENCH_b.json", unix_time=1.0)
        os.utime(a, (1_000_000, 1_000_000))
        os.utime(b, (2_000_000, 2_000_000))
        records = load_bench_records([tmp_path])
        assert [r["unix_time"] for r in records] == [1.0, 5.0]

    def test_equal_stamps_tie_break_on_path(self, tmp_path):
        # Files written within the same mtime quantum (or sharing a
        # recorded unix_time) must still come back in one deterministic
        # order, whatever order the caller listed them in.
        import os

        a = self.write(tmp_path / "BENCH_a.json", benchmark="a")
        b = self.write(tmp_path / "BENCH_b.json", benchmark="b")
        os.utime(a, (1_000_000, 1_000_000))
        os.utime(b, (1_000_000, 1_000_000))
        forward = load_bench_records([a, b])
        reverse = load_bench_records([b, a])
        assert forward == reverse
        assert [r["benchmark"] for r in forward] == ["a", "b"]

    def test_equal_stamps_in_different_directories(self, tmp_path):
        import os

        (tmp_path / "one").mkdir()
        (tmp_path / "two").mkdir()
        a = self.write(tmp_path / "two" / "BENCH_x.json", benchmark="two")
        b = self.write(tmp_path / "one" / "BENCH_x.json", benchmark="one")
        for path in (a, b):
            os.utime(path, (1_000_000, 1_000_000))
        records = load_bench_records([a, b])
        # Same basename, same stamp: the full path breaks the tie.
        assert [r["benchmark"] for r in records] == ["one", "two"]

    def test_no_match_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no benchmark records match"):
            load_bench_records([tmp_path / "BENCH_missing.json"])

    def test_non_json_raises(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("not json")
        with pytest.raises(ValueError, match="not a JSON benchmark record"):
            load_bench_records([bad])


def fleet_record(**overrides):
    base = dict(
        sweep_id="20260809T120000-abcd",
        unix_time=1_786_000_000.0,
        command="table2",
        policies=("best",),
        workloads=("mpeg",),
        machines=("itsy",),
        seeds=3,
        cells_total=15,
        cells_executed=15,
        cells_cached=0,
        wall_s=0.7,
        cells_per_s=21.4,
        backend="fastpath",
        jobs=2,
    )
    base.update(overrides)
    return FleetRecord(**base)


class TestFleetHistory:
    def test_absent_without_fleet_records(self):
        text = render_report(build_report([record()]), FORMAT_MARKDOWN)
        assert "Fleet history" not in text

    def test_markdown_section(self):
        report = build_report(
            [],
            fleet_records=[
                fleet_record(unix_time=1.0, cells_per_s=5.7),
                fleet_record(sweep_id="later", unix_time=2.0,
                             cells_per_s=19.3),
            ],
        )
        text = render_report(report, FORMAT_MARKDOWN)
        assert "## Fleet history" in text
        assert "throughput trend (cells/s): 5.7 → 19.3" in text
        assert "| sweep | when | command |" in text
        assert "| 20260809T120000-abcd |" in text
        # Rows are ordered oldest first regardless of input order.
        assert text.index("20260809T120000-abcd") < text.index("later")

    def test_html_section(self):
        text = render_report(
            build_report([], fleet_records=[fleet_record()]), FORMAT_HTML
        )
        assert "<h2>Fleet history</h2>" in text
        assert "throughput trend" in text
        assert "<td>20260809T120000-abcd</td>" in text

    def test_normalized_column_renders_when_calibrated(self):
        report = build_report(
            [], fleet_records=[fleet_record(host_score=2.0)]
        )
        text = render_report(report, FORMAT_MARKDOWN)
        assert "| norm/s |" in "\n".join(
            line for line in text.splitlines() if line.startswith("| sweep")
        )
        assert f"| {21.4 / 2.0:.1f} |" in text

    def test_phase_table_renders_from_ledger_phases(self):
        report = build_report(
            [],
            fleet_records=[fleet_record(
                phases=(("kernel compute", 0.4), ("result IPC", 0.05)),
            )],
        )
        md = render_report(report, FORMAT_MARKDOWN)
        assert "### Where the time went" in md
        assert "kernel compute" in md
        html = render_report(report, FORMAT_HTML)
        assert "<h3>Where the time went</h3>" in html

    def test_html_embeds_trend_charts(self):
        text = render_report(
            build_report([], fleet_records=[fleet_record()]), FORMAT_HTML
        )
        assert "<svg" in text
        assert "Sweep throughput over commits" in text

    def test_unprofiled_ledger_skips_phase_table(self):
        text = render_report(
            build_report([], fleet_records=[fleet_record()]), FORMAT_MARKDOWN
        )
        assert "Where the time went" not in text

    def test_fleet_only_report_skips_runs_table(self):
        text = render_report(
            build_report([], fleet_records=[fleet_record()]), FORMAT_MARKDOWN
        )
        assert "| policy | workload |" not in text
