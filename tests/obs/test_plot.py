"""Tests for the dependency-free fleet SVG charts."""

import xml.etree.ElementTree as ET

from repro.obs.fleet import FleetRecord
from repro.obs.plot import (
    PANEL_HEIGHT,
    PANEL_WIDTH,
    cache_hit_chart,
    fleet_charts,
    fleet_plot_svg,
    phase_mix_chart,
    throughput_chart,
)


def record(**overrides) -> FleetRecord:
    defaults = dict(
        sweep_id="20260809T120000-abcd",
        unix_time=1_786_000_000.0,
        command="table2",
        policies=("best", "past-peg"),
        workloads=("mpeg",),
        machines=("itsy",),
        seeds=3,
        cells_total=6,
        cells_executed=6,
        cells_cached=0,
        wall_s=0.5,
        cells_per_s=12.0,
        backend="fastpath",
        jobs=2,
    )
    defaults.update(overrides)
    return FleetRecord(**defaults)


def ledger(n=4, **common):
    return [
        record(
            sweep_id=f"sweep-{i}", unix_time=float(i),
            cells_per_s=10.0 + i, git_sha=f"{i:07d}abc", **common
        )
        for i in range(n)
    ]


class TestDocument:
    def test_plot_is_valid_xml(self):
        svg = fleet_plot_svg(ledger())
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        assert root.get("width") == str(PANEL_WIDTH)
        assert root.get("height") == str(PANEL_HEIGHT * 3)

    def test_plot_is_deterministic(self):
        records = ledger()
        assert fleet_plot_svg(records) == fleet_plot_svg(list(records))

    def test_charts_are_standalone_svgs(self):
        charts = fleet_charts(ledger())
        assert len(charts) == 3
        for chart in charts:
            root = ET.fromstring(chart)
            assert root.tag.endswith("svg")

    def test_record_order_does_not_matter(self):
        records = ledger()
        assert fleet_plot_svg(records) == fleet_plot_svg(records[::-1])


class TestDegenerateInputs:
    def test_empty_ledger_still_renders(self):
        svg = fleet_plot_svg([])
        ET.fromstring(svg)
        assert "no profiled sweeps in the ledger" in svg

    def test_single_record_renders_a_point(self):
        svg = throughput_chart([record()])
        ET.fromstring(svg)
        assert "<circle" in svg
        assert "<polyline" not in svg  # one point, no line

    def test_all_cached_sweeps_gap_the_throughput_series(self):
        # Warm-cache sweeps executed nothing; their cells/s measures the
        # cache, not the engine, so the line must skip them.
        records = ledger()
        records.append(record(
            sweep_id="warm", unix_time=50.0,
            cells_executed=0, cells_cached=6, cells_per_s=900.0,
        ))
        svg = throughput_chart(records)
        ET.fromstring(svg)
        # The y-scale would read ~900 if the cached sweep leaked in.
        assert "900" not in svg


class TestSeries:
    def test_normalized_series_appears_when_calibrated(self):
        plain = throughput_chart(ledger())
        scored = throughput_chart(ledger(host_score=1.5))
        assert "normalized cells/s" not in plain
        assert "normalized cells/s" in scored

    def test_cache_hit_axis_is_percent(self):
        svg = cache_hit_chart(ledger(cells_executed=3, cells_cached=3))
        assert "cache-hit %" in svg
        assert "100%" in svg

    def test_phase_mix_placeholder_without_profiles(self):
        svg = phase_mix_chart(ledger())
        ET.fromstring(svg)
        assert "no profiled sweeps in the ledger" in svg

    def test_phase_mix_stacks_recorded_phases(self):
        svg = phase_mix_chart(ledger(
            phases=(("kernel compute", 0.4), ("result IPC", 0.05)),
        ))
        ET.fromstring(svg)
        assert "kernel compute" in svg
        assert "result IPC" in svg
        assert "<polygon" in svg

    def test_commit_shas_label_the_x_axis(self):
        svg = throughput_chart(ledger())
        assert "0000000" in svg and "0000003" in svg
