"""Tests for the metrics registry and the kernel metrics recorder."""

import pickle

import pytest

from repro.core.catalog import resolve_policy
from repro.measure.runner import run_workload
from repro.obs.metrics import (
    HistogramSnapshot,
    KernelMetricsRecorder,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)
from repro.workloads.mpeg import MpegConfig, mpeg_workload


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert reg.counter("n") is c  # get-or-create returns the same one

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("n").inc(-1)

    def test_gauge_last_write_wins(self):
        g = MetricsRegistry().gauge("g")
        g.set(5)
        g.set(2)
        assert g.value == 2.0

    def test_histogram(self):
        h = MetricsRegistry().histogram("h")
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap.count == 3
        assert snap.sum == 6.0
        assert snap.min == 1.0 and snap.max == 3.0
        assert snap.mean == 2.0

    def test_empty_histogram_mean_is_zero(self):
        assert HistogramSnapshot().mean == 0.0


class TestSnapshots:
    def populated(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(4)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(1.5)
        return reg

    def test_snapshot_pickles(self):
        snap = self.populated().snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap

    def test_merge_accumulates(self):
        a, b = self.populated(), self.populated()
        b.gauge("g").set(9)
        b.histogram("h").observe(0.5)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap.counters["c"] == 8.0
        assert snap.gauges["g"] == 9.0  # last writer wins
        assert snap.histograms["h"].count == 3
        assert snap.histograms["h"].min == 0.5

    def test_merge_snapshots_skips_none(self):
        merged = merge_snapshots(
            self.populated().snapshot(), None, self.populated().snapshot()
        )
        assert merged.counters["c"] == 8.0

    def test_to_json_is_serializable(self):
        import json

        payload = self.populated().snapshot().to_json()
        parsed = json.loads(json.dumps(payload))
        assert parsed["counters"]["c"] == 4.0
        assert parsed["histograms"]["h"]["count"] == 1

    def test_empty_histogram_json_bounds_are_null(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        payload = reg.snapshot().to_json()
        assert payload["histograms"]["h"]["min"] is None
        assert payload["histograms"]["h"]["max"] is None

    def test_snapshot_default_is_empty(self):
        snap = MetricsSnapshot()
        assert snap.counters == {} and snap.gauges == {}


class TestKernelMetricsRecorder:
    def run_with_metrics(self, policy="best", duration_s=2.0):
        registry = MetricsRegistry()
        result = run_workload(
            mpeg_workload(MpegConfig(duration_s=duration_s)),
            resolve_policy(policy),
            use_daq=False,
            extra_recorders=[KernelMetricsRecorder(registry)],
        )
        return registry.snapshot(), result

    def test_counts_match_the_run(self):
        snap, result = self.run_with_metrics()
        run = result.run
        assert snap.counters["kernel.quanta"] == len(run.quanta)
        assert snap.counters["kernel.freq_changes"] == run.clock_changes
        assert snap.counters["kernel.clock_stall_us"] == pytest.approx(
            run.clock_stall_us
        )
        assert snap.counters["kernel.volt_changes"] == run.voltage_changes
        assert snap.counters["kernel.busy_us"] == pytest.approx(
            sum(q.busy_us for q in run.quanta)
        )
        assert snap.gauges["kernel.final_mhz"] == run.quanta[-1].mhz

    def test_busy_plus_idle_covers_every_quantum(self):
        snap, result = self.run_with_metrics()
        quanta = snap.counters["kernel.quanta"]
        covered = snap.counters["kernel.busy_us"] + snap.counters["kernel.idle_us"]
        # busy is clamped per quantum, so covered >= quanta * quantum_us.
        assert covered >= quanta * 10_000.0 - 1e-6

    def test_utilization_histogram_matches_mean(self):
        snap, result = self.run_with_metrics()
        hist = snap.histograms["kernel.quantum_utilization"]
        assert hist.count == len(result.run.quanta)
        assert hist.mean == pytest.approx(result.run.mean_utilization())

    def test_custom_prefix(self):
        registry = MetricsRegistry()
        KernelMetricsRecorder(registry, prefix="sa2")
        assert "sa2.quanta" in registry.snapshot().counters
