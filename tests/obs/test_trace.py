"""Tests for kernel event tracing and the Chrome trace-event exporter."""

import json

import pytest

from repro.core.catalog import resolve_policy
from repro.measure.runner import run_workload
from repro.obs.metrics import KernelMetricsRecorder, MetricsRegistry
from repro.obs.trace import (
    TRACE_PID_MACHINE,
    TRACE_PID_PROCESSES,
    TraceRecorder,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.workloads.mpeg import MpegConfig, mpeg_workload


def traced_run(policy="best", duration_s=2.0, seed=0):
    tracer = TraceRecorder()
    workload = mpeg_workload(MpegConfig(duration_s=duration_s))
    result = run_workload(
        workload,
        resolve_policy(policy),
        seed=seed,
        use_daq=False,
        extra_recorders=[tracer],
    )
    return tracer, result, workload


class TestTraceRecorder:
    def test_captures_every_stream(self):
        tracer, result, _ = traced_run()
        assert len(tracer.quanta) == len(result.run.quanta)
        assert tracer.quanta == result.run.quanta
        assert tracer.freq_changes == result.run.freq_changes
        assert len(tracer.power) >= len(result.run.timeline)
        # Sched decisions are captured even though record_sched_log is off.
        assert tracer.decisions
        assert result.run.sched_log == []

    def test_contribute_attaches_to_run(self):
        tracer, result, _ = traced_run()
        assert result.run.trace is tracer

    def test_stall_windows_match_transition_accounting(self):
        tracer, result, _ = traced_run()
        windows = tracer.stall_windows()
        assert len(windows) == result.run.clock_changes
        total = sum(end - start for start, end in windows)
        assert total == pytest.approx(result.run.clock_stall_us)
        assert all(end > start for start, end in windows)

    def test_tracing_is_bitwise_pure(self):
        """Attaching tracer + metrics must not move a single bit."""
        _, traced, _ = traced_run(seed=3)
        registry = MetricsRegistry()
        both = run_workload(
            mpeg_workload(MpegConfig(duration_s=2.0)),
            resolve_policy("best"),
            seed=3,
            use_daq=False,
            extra_recorders=[TraceRecorder(), KernelMetricsRecorder(registry)],
        )
        plain = run_workload(
            mpeg_workload(MpegConfig(duration_s=2.0)),
            resolve_policy("best"),
            seed=3,
            use_daq=False,
        )
        for result in (traced, both):
            assert result.exact_energy_j == plain.exact_energy_j
            assert result.energy_j == plain.energy_j
            assert result.run.mean_utilization() == plain.run.mean_utilization()
            assert result.run.clock_changes == plain.run.clock_changes
            assert result.run.quanta == plain.run.quanta


class TestChromeTraceExport:
    def test_valid_and_complete(self):
        tracer, result, workload = traced_run()
        payload = tracer.chrome_trace(
            run=result.run, tolerance_us=workload.tolerance_us
        )
        validate_chrome_trace(payload)  # must not raise
        events = payload["traceEvents"]
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert counters == {"frequency (MHz)", "voltage (V)", "power (W)"}
        slices = [
            e for e in events
            if e["ph"] == "X" and e["pid"] == TRACE_PID_PROCESSES
        ]
        assert slices, "process execution track must not be empty"
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert any("mpeg" in n or "pid" in n for n in names)
        stalls = [e for e in events if e["name"] == "clock-change stall"]
        assert len(stalls) == result.run.clock_changes

    def test_round_trips_through_json(self, tmp_path):
        tracer, result, workload = traced_run()
        payload = tracer.chrome_trace(run=result.run)
        out = write_chrome_trace(payload, tmp_path / "trace.json")
        parsed = json.loads(out.read_text())
        validate_chrome_trace(parsed)
        assert len(parsed["traceEvents"]) == len(payload["traceEvents"])

    def test_deadline_misses_become_instants(self):
        # const-59.0 cannot keep up with MPEG: misses are guaranteed.
        tracer, result, workload = traced_run(policy="const-59.0")
        assert result.misses
        payload = tracer.chrome_trace(
            run=result.run, tolerance_us=workload.tolerance_us
        )
        misses = [
            e for e in payload["traceEvents"]
            if e["name"].startswith("deadline miss")
        ]
        assert len(misses) == len(result.misses)
        assert all(e["ph"] == "i" for e in misses)

    def test_timestamps_sorted_after_metadata(self):
        tracer, result, _ = traced_run(duration_s=1.0)
        events = tracer.chrome_trace(run=result.run)["traceEvents"]
        phases = [e["ph"] for e in events]
        first_data = phases.index(next(p for p in phases if p != "M"))
        assert all(p == "M" for p in phases[:first_data])
        timestamps = [e["ts"] for e in events[first_data:]]
        assert timestamps == sorted(timestamps)

    def test_counter_track_follows_frequency(self):
        tracer, result, _ = traced_run(policy="best")
        events = tracer.chrome_trace(run=result.run)["traceEvents"]
        freq = [
            e["args"]["mhz"] for e in events
            if e["ph"] == "C" and e["name"] == "frequency (MHz)"
        ]
        assert freq == [q.mhz for q in result.run.quanta]
        assert len(set(freq)) > 1, "best policy must actually change speed"


class TestValidator:
    def good(self):
        return {
            "traceEvents": [
                {"name": "f", "ph": "C", "ts": 0.0, "pid": TRACE_PID_MACHINE,
                 "args": {"v": 1.0}},
            ]
        }

    def test_accepts_good_payload(self):
        validate_chrome_trace(self.good())

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("traceEvents"),
            lambda p: p["traceEvents"].append({"ph": "C"}),
            lambda p: p["traceEvents"].append(
                {"name": "x", "ph": "Q", "ts": 0.0, "pid": 1}),
            lambda p: p["traceEvents"].append(
                {"name": "x", "ph": "C", "ts": -1.0, "pid": 1, "args": {"v": 1}}),
            lambda p: p["traceEvents"].append(
                {"name": "x", "ph": "X", "ts": 0.0, "pid": 1}),
            lambda p: p["traceEvents"].append(
                {"name": "x", "ph": "C", "ts": 0.0, "pid": 1, "args": {}}),
            lambda p: p["traceEvents"].append(
                {"name": "x", "ph": "C", "ts": 0.0, "pid": 1,
                 "args": {"v": "high"}}),
        ],
    )
    def test_rejects_malformed(self, mutate):
        payload = self.good()
        mutate(payload)
        with pytest.raises(ValueError):
            validate_chrome_trace(payload)

    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([1, 2, 3])

    def test_write_refuses_invalid(self, tmp_path):
        with pytest.raises(ValueError):
            write_chrome_trace({"nope": []}, tmp_path / "bad.json")
        assert not (tmp_path / "bad.json").exists()
