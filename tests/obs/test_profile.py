"""Tests for the phase-level sweep profiler."""

import pytest

from repro.measure.parallel import (
    PolicySpec,
    ResultCache,
    SweepCell,
    SweepEngine,
    WorkloadSpec,
)
from repro.obs.profile import (
    PHASE_CACHE,
    PHASE_COMPUTE,
    PHASE_DIAGNOSE,
    PHASE_IPC,
    PHASE_ORDER,
    PHASE_REDUCE,
    PhaseProfile,
    arm_worker_stamps,
    drain_worker_stamps,
    format_phase_table,
    record_kernel_phase,
)
from repro.workloads.mpeg import MpegConfig


class TestStampSink:
    def test_disarmed_by_default(self):
        record_kernel_phase(PHASE_REDUCE, 1.0, 2.0)  # no-op, must not raise
        assert drain_worker_stamps() == ()

    def test_arm_collect_drain(self):
        arm_worker_stamps()
        record_kernel_phase(PHASE_REDUCE, 1.0, 2.0)
        record_kernel_phase(PHASE_DIAGNOSE, 2.0, 2.5)
        stamps = drain_worker_stamps()
        assert stamps == (
            (PHASE_REDUCE, 1.0, 2.0),
            (PHASE_DIAGNOSE, 2.0, 2.5),
        )
        # Draining disarms: later stamps vanish again.
        record_kernel_phase(PHASE_REDUCE, 3.0, 4.0)
        assert drain_worker_stamps() == ()


class TestAccounting:
    def test_simple_intervals_sum(self):
        profile = PhaseProfile()
        profile.add_interval(PHASE_CACHE, 0.0, 1.0)
        profile.add_interval(PHASE_CACHE, 2.0, 2.5)
        profile.add_interval(PHASE_IPC, 1.0, 1.25)
        seconds = profile.phase_seconds()
        assert seconds[PHASE_CACHE] == pytest.approx(1.5)
        assert seconds[PHASE_IPC] == pytest.approx(0.25)

    def test_zero_length_intervals_dropped(self):
        profile = PhaseProfile()
        profile.add_interval(PHASE_CACHE, 1.0, 1.0)
        profile.add_interval(PHASE_CACHE, 2.0, 1.0)
        assert profile.phase_seconds() == {}

    def test_nested_interval_charged_exclusively(self):
        # Reduction runs inside the compute interval: the inner phase
        # keeps its time, the outer is charged only the remainder.
        profile = PhaseProfile()
        profile.add_group([
            (PHASE_COMPUTE, 0.0, 10.0),
            (PHASE_REDUCE, 7.0, 9.0),
        ])
        seconds = profile.phase_seconds()
        assert seconds[PHASE_COMPUTE] == pytest.approx(8.0)
        assert seconds[PHASE_REDUCE] == pytest.approx(2.0)

    def test_identical_intervals_do_not_cancel(self):
        # Two equal-length intervals contain each other; strictly-shorter
        # subtraction must not zero both out.
        profile = PhaseProfile()
        profile.add_group([
            (PHASE_COMPUTE, 0.0, 5.0),
            (PHASE_REDUCE, 0.0, 5.0),
        ])
        seconds = profile.phase_seconds()
        assert seconds[PHASE_COMPUTE] == pytest.approx(5.0)
        assert seconds[PHASE_REDUCE] == pytest.approx(5.0)

    def test_no_cross_group_subtraction(self):
        # Two cells on different workers overlap in wall time without
        # either nesting in the other.
        profile = PhaseProfile()
        profile.add_group([(PHASE_COMPUTE, 0.0, 10.0)])
        profile.add_group([(PHASE_COMPUTE, 2.0, 8.0)])
        assert profile.phase_seconds()[PHASE_COMPUTE] == pytest.approx(16.0)

    def test_accounted_is_union_not_sum(self):
        profile = PhaseProfile()
        profile.add_group([(PHASE_COMPUTE, 0.0, 10.0)])
        profile.add_group([(PHASE_COMPUTE, 5.0, 15.0)])
        profile.add_interval(PHASE_IPC, 20.0, 21.0)
        assert profile.accounted_s() == pytest.approx(16.0)
        assert profile.coverage(20.0) == pytest.approx(0.8)

    def test_coverage_of_zero_wall(self):
        assert PhaseProfile().coverage(0.0) == 0.0

    def test_rows_follow_canonical_order(self):
        profile = PhaseProfile()
        profile.add_interval(PHASE_IPC, 0.0, 1.0)
        profile.add_interval(PHASE_COMPUTE, 0.0, 2.0)
        rows = profile.rows()
        assert [phase for phase, _, _ in rows] == [PHASE_COMPUTE, PHASE_IPC]
        assert rows[0][2] == pytest.approx(2.0 / 3.0)


class TestTable:
    def test_format_phase_table(self):
        text = format_phase_table(
            {PHASE_COMPUTE: 1.5, PHASE_IPC: 0.5}, wall_s=4.0
        )
        lines = text.splitlines()
        assert "of wall" in lines[0]
        assert lines[1].startswith(PHASE_COMPUTE)
        assert "37.5%" in lines[1]
        assert "total accounted" in lines[-1]
        assert "50.0%" in lines[-1]

    def test_unknown_phase_sorts_last(self):
        text = format_phase_table({"custom phase": 1.0, PHASE_IPC: 1.0})
        lines = text.splitlines()
        assert lines[1].startswith(PHASE_IPC)
        assert lines[2].startswith("custom phase")

    def test_profile_table_matches_format(self):
        profile = PhaseProfile()
        profile.add_interval(PHASE_COMPUTE, 0.0, 1.0)
        assert profile.table(2.0) == format_phase_table(
            profile.phase_seconds(), wall_s=2.0
        )


class TestEngineIntegration:
    def cells(self, duration_s=20.0, seeds=(0, 1)):
        workload = WorkloadSpec("mpeg", MpegConfig(duration_s=duration_s))
        return [
            SweepCell(workload=workload, policy=PolicySpec(name=policy),
                      seed=seed, use_daq=False)
            for policy in ("best", "past-peg")
            for seed in seeds
        ]

    def test_serial_sweep_coverage_meets_bar(self):
        # The acceptance criterion: on a serial sweep every pipeline
        # stage runs in the engine process, so the recorded intervals
        # must explain >= 95% of the measured wall time.
        profile = PhaseProfile()
        engine = SweepEngine(jobs=1, profile=profile)
        engine.run(self.cells())
        coverage = profile.coverage(engine.stats.wall_s)
        assert coverage >= 0.95, (
            f"phase profile covers {coverage:.1%} of sweep wall time"
        )
        seconds = profile.phase_seconds()
        assert seconds[PHASE_COMPUTE] > 0
        assert PHASE_REDUCE in seconds

    def test_profiled_results_bitwise_equal(self):
        cells = self.cells(duration_s=5.0)
        plain = SweepEngine(jobs=1).run(cells)
        profiled = SweepEngine(jobs=1, profile=PhaseProfile()).run(cells)
        assert [r.to_json() for r in profiled] == [
            r.to_json() for r in plain
        ]

    def test_pooled_sweep_records_pipeline_phases(self):
        profile = PhaseProfile()
        with SweepEngine(jobs=2, profile=profile, chunk_size=1) as engine:
            engine.run(self.cells(duration_s=5.0))
        seconds = profile.phase_seconds()
        assert seconds[PHASE_COMPUTE] > 0
        assert seconds[PHASE_IPC] > 0
        assert "pool spin-up" in seconds
        assert "chunk submission" in seconds

    def test_cache_phase_recorded(self, tmp_path):
        profile = PhaseProfile()
        engine = SweepEngine(
            jobs=1, profile=profile, cache=ResultCache(tmp_path / "cache")
        )
        cells = self.cells(duration_s=2.0, seeds=(0,))
        engine.run(cells)
        engine.run(cells)  # second pass hits the cache
        assert profile.phase_seconds()[PHASE_CACHE] > 0
        assert engine.stats.cache_hits == len(cells)

    def test_diagnosed_sweep_stamps_diagnosis(self):
        profile = PhaseProfile()
        engine = SweepEngine(jobs=1, diagnose=True, profile=profile)
        engine.run(self.cells(duration_s=2.0, seeds=(0,)))
        assert profile.phase_seconds()[PHASE_DIAGNOSE] > 0

    def test_fleet_record_carries_phases(self):
        profile = PhaseProfile()
        engine = SweepEngine(jobs=1, profile=profile)
        engine.run(self.cells(duration_s=2.0, seeds=(0,)))
        record = engine.fleet_record(command="unit-test")
        assert record.phases
        assert dict(record.phases)[PHASE_COMPUTE] == pytest.approx(
            profile.phase_seconds()[PHASE_COMPUTE]
        )
        # Stored pairs are sorted for a deterministic ledger line.
        assert list(record.phases) == sorted(record.phases)

    def test_phase_order_covers_engine_phases(self):
        # Every phase the engine can emit renders in canonical order.
        profile = PhaseProfile()
        engine = SweepEngine(jobs=2, diagnose=True, profile=profile)
        with engine:
            engine.run(self.cells(duration_s=2.0))
        for phase in profile.phase_seconds():
            assert phase in PHASE_ORDER
