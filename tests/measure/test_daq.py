"""Tests for the DAQ sampling model."""

import numpy as np
import pytest

from repro.measure.daq import DaqConfig, DaqSystem
from repro.traces.schema import PowerTimeline


def flat_timeline(watts=1.0, duration_us=1e6):
    tl = PowerTimeline()
    tl.record(0.0, duration_us, watts)
    return tl


class TestConfig:
    def test_paper_defaults(self):
        cfg = DaqConfig()
        assert cfg.sample_rate_hz == 5000.0
        assert cfg.sample_period_s == pytest.approx(0.0002)
        assert cfg.sense_ohms == 0.02
        assert cfg.adc_bits == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            DaqConfig(sample_rate_hz=0.0)
        with pytest.raises(ValueError):
            DaqConfig(sense_ohms=-1.0)
        with pytest.raises(ValueError):
            DaqConfig(adc_bits=0)


class TestCapture:
    def test_sample_count(self):
        daq = DaqSystem(seed=0)
        cap = daq.capture(flat_timeline(duration_us=1e6))
        assert len(cap) == 5000

    def test_energy_estimator_converges_to_exact(self):
        tl = flat_timeline(watts=1.4, duration_us=2e6)
        daq = DaqSystem(seed=0)
        cap = daq.capture(tl)
        assert cap.energy_joules() == pytest.approx(tl.energy_joules(), rel=1e-3)

    def test_mean_power(self):
        daq = DaqSystem(seed=0)
        cap = daq.capture(flat_timeline(watts=0.9))
        assert cap.mean_power_w() == pytest.approx(0.9, abs=0.005)

    def test_noise_is_zero_mean(self):
        daq = DaqSystem(DaqConfig(noise_rms_watts=0.01), seed=1)
        cap = daq.capture(flat_timeline(watts=1.0, duration_us=4e6))
        assert float(np.mean(cap.power_w)) == pytest.approx(1.0, abs=0.002)

    def test_noiseless_capture_is_quantized_exact(self):
        daq = DaqSystem(DaqConfig(noise_rms_watts=0.0), seed=0)
        cap = daq.capture(flat_timeline(watts=1.0))
        # All samples equal, within one ADC LSB of the true value.
        assert np.ptp(cap.power_w) == 0.0
        lsb = 0.1 / 2**16 / 0.02 * 3.1
        assert abs(cap.power_w[0] - 1.0) <= lsb / 2

    def test_trigger_window(self):
        tl = PowerTimeline()
        tl.record(0.0, 1e6, 0.5)
        tl.record(1e6, 2e6, 2.0)
        daq = DaqSystem(DaqConfig(noise_rms_watts=0.0), seed=0)
        cap = daq.capture(tl, trigger_us=1e6, stop_us=2e6)
        assert cap.mean_power_w() == pytest.approx(2.0, abs=1e-3)

    def test_empty_window_rejected(self):
        daq = DaqSystem(seed=0)
        with pytest.raises(ValueError):
            daq.capture(flat_timeline(), trigger_us=5e5, stop_us=5e5)

    def test_seeded_reproducibility(self):
        tl = flat_timeline()
        a = DaqSystem(seed=7).capture(tl)
        b = DaqSystem(seed=7).capture(tl)
        assert np.array_equal(a.power_w, b.power_w)

    def test_step_change_visible_in_samples(self):
        tl = PowerTimeline()
        tl.record(0.0, 5e5, 0.5)
        tl.record(5e5, 1e6, 1.5)
        daq = DaqSystem(DaqConfig(noise_rms_watts=0.0), seed=0)
        cap = daq.capture(tl)
        first_half = cap.power_w[cap.times_us < 5e5]
        second_half = cap.power_w[cap.times_us >= 5e5]
        assert np.all(first_half < 1.0)
        assert np.all(second_half > 1.0)

    def test_negative_power_clipped_by_quantizer(self):
        tl = flat_timeline(watts=0.0005)
        daq = DaqSystem(DaqConfig(noise_rms_watts=0.01), seed=3)
        cap = daq.capture(tl)
        assert np.all(cap.power_w >= 0.0)
