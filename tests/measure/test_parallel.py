"""Determinism regression tests for the parallel sweep engine.

The engine's contract is that parallelism and caching are pure plumbing:
the numbers a sweep produces are bitwise-identical whether cells run
serially in-process, fanned out over a process pool, or answered from a
warm on-disk cache.  These tests pin that contract with the acceptance
grid (3 policies x 2 workloads x 3 seeds, jobs=4).
"""

import pytest

from repro.core.catalog import resolve_policy
from repro.hw.machines import MachineSpec
from repro.kernel.scheduler import KernelConfig
from repro.measure import runner
from repro.measure.parallel import (
    CellResult,
    PolicySpec,
    ResultCache,
    SweepCell,
    SweepCellError,
    SweepEngine,
    SweepSpec,
    WorkloadSpec,
    constant_step_cells,
    find_ideal_constant,
    repeat_workload,
    run_sweep,
)
from repro.workloads.mpeg import MpegConfig, mpeg_workload
from repro.workloads.web import WebConfig

MPEG = WorkloadSpec("mpeg", MpegConfig(duration_s=0.4))
WEB = WorkloadSpec("web", WebConfig(duration_s=0.4))
SA2 = MachineSpec(name="sa2")

#: The acceptance grid: 3 policies x 2 workloads x 3 seeds = 18 cells.
GRID = SweepSpec(
    policies=(PolicySpec("best"), PolicySpec("avg3-peg"), PolicySpec("const-132.7")),
    workloads=(MPEG, WEB),
    seeds=(0, 1, 2),
    use_daq=False,
)


def cell(seed: int = 0, **overrides) -> SweepCell:
    defaults = dict(workload=MPEG, policy=PolicySpec("best"), seed=seed)
    defaults.update(overrides)
    return SweepCell(**defaults)


class TestSerialDeterminism:
    def test_two_serial_runs_identical(self):
        first, second = cell().run(), cell().run()
        assert first.energy_j == second.energy_j
        assert first.exact_energy_j == second.exact_energy_j
        assert first.miss_count == second.miss_count
        assert first == second

    def test_cell_matches_plain_runner(self):
        summary = cell(seed=3).run()
        ref = runner.run_workload(
            mpeg_workload(MpegConfig(duration_s=0.4)),
            resolve_policy("best"),
            seed=3,
        )
        assert summary.energy_j == ref.energy_j
        assert summary.exact_energy_j == ref.exact_energy_j
        assert summary.miss_count == len(ref.misses)


class TestSerialVsParallel:
    def test_grid_bitwise_equal(self):
        serial = run_sweep(GRID, SweepEngine(jobs=1))
        parallel = run_sweep(GRID, SweepEngine(jobs=4))
        assert len(serial) == 18
        # Dataclass equality compares every float field exactly.
        assert serial == parallel

    def test_results_follow_input_order(self):
        cells = [cell(seed=s) for s in (5, 1, 3)]
        results = SweepEngine(jobs=3).run(cells)
        reference = [c.run() for c in cells]
        assert results == reference


class TestCacheDeterminism:
    def test_cold_vs_warm_bitwise_equal(self, tmp_path):
        serial = run_sweep(GRID)
        cold = SweepEngine(jobs=4, cache=ResultCache(tmp_path))
        assert run_sweep(GRID, cold) == serial
        assert cold.stats.executed == 18
        assert cold.stats.cache_hits == 0

        warm = SweepEngine(jobs=4, cache=ResultCache(tmp_path))
        assert run_sweep(GRID, warm) == serial
        assert warm.stats.executed == 0, "warm re-run must execute nothing"
        assert warm.stats.cache_hits == 18

    def test_warm_serial_engine_also_free(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepEngine(cache=cache).run([cell()])
        warm = SweepEngine(cache=cache)
        assert warm.run([cell()]) == [cell().run()]
        assert warm.stats.executed == 0

    def test_duplicate_cells_simulated_once(self):
        engine = SweepEngine()
        results = engine.run([cell(), cell()])
        assert engine.stats.executed == 1
        assert results[0] == results[1]


class TestSpecHelpers:
    def test_repeat_workload_matches_serial_harness(self):
        summary = repeat_workload(MPEG, PolicySpec("const-206.4"), runs=3)
        ref = runner.repeat_workload(
            mpeg_workload(MpegConfig(duration_s=0.4)),
            resolve_policy("const-206.4"),
            runs=3,
        )
        assert [r.energy_j for r in summary.results] == [
            r.energy_j for r in ref.results
        ]
        assert summary.energy_ci == ref.energy_ci
        assert summary.total_misses == ref.total_misses

    def test_find_ideal_constant_matches_serial_harness(self):
        mpeg_1s = WorkloadSpec("mpeg", MpegConfig(duration_s=1.0))
        summary = find_ideal_constant(mpeg_1s, seed=1, engine=SweepEngine(jobs=4))
        ref = runner.find_ideal_constant(
            mpeg_workload(MpegConfig(duration_s=1.0)), seed=1
        )
        assert summary.final_mhz == ref.run.quanta[-1].mhz
        assert summary.exact_energy_j == ref.exact_energy_j

    def test_runner_accepts_specs(self):
        summary = runner.repeat_workload(MPEG, "const-206.4", runs=2)
        ref = repeat_workload(MPEG, PolicySpec("const-206.4"), runs=2)
        assert summary.results == ref.results

    def test_runner_rejects_engine_without_specs(self):
        with pytest.raises(ValueError):
            runner.repeat_workload(
                mpeg_workload(MpegConfig(duration_s=0.4)),
                resolve_policy("best"),
                runs=2,
                engine=SweepEngine(),
            )

    def test_kernel_config_flows_into_cells(self):
        tweaked = KernelConfig(sched_overhead_us=0.0)
        base = cell(use_daq=False).run()
        other = cell(use_daq=False, kernel_config=tweaked).run()
        assert base.exact_energy_j != other.exact_energy_j


class TestMachineAxis:
    def test_sa2_serial_parallel_cached_bitwise_equal(self, tmp_path):
        cells = [
            cell(seed=s, machine=SA2, policy=PolicySpec("past-peg-98-93"),
                 use_daq=False)
            for s in (0, 1)
        ]
        serial = [c.run() for c in cells]
        assert SweepEngine(jobs=2).run(cells) == serial
        cache = ResultCache(tmp_path)
        assert SweepEngine(jobs=2, cache=cache).run(cells) == serial
        warm = SweepEngine(cache=cache)
        assert warm.run(cells) == serial
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == 2

    def test_sa2_cells_resolve_const_against_sa2_table(self):
        cells = constant_step_cells(MPEG, machine=SA2)
        assert len(cells) == 11
        assert cells[0].policy.name == "const-150.0"
        assert cells[-1].policy.name == "const-600.0"

    def test_sa2_find_ideal_constant_caches(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = SweepEngine(jobs=4, cache=cache)
        first = find_ideal_constant(MPEG, machine=SA2, engine=cold)
        assert cold.stats.executed == 11
        warm = SweepEngine(cache=cache)
        again = find_ideal_constant(MPEG, machine=SA2, engine=warm)
        assert warm.stats.cache_hits == 11
        assert warm.stats.executed == 0
        assert again == first

    def test_machine_axis_multiplies_grid(self):
        spec = SweepSpec(
            policies=(PolicySpec("best"),),
            workloads=(MPEG,),
            machines=(MachineSpec(), SA2),
        )
        cells = spec.cells()
        assert len(cells) == 2
        assert {c.machine.name for c in cells} == {"itsy", "sa2"}

    def test_runner_rejects_opaque_machine_factory_with_engine(self):
        from repro.hw.itsy import ItsyConfig, ItsyMachine

        with pytest.raises(ValueError, match="MachineSpec"):
            runner.repeat_workload(
                MPEG,
                PolicySpec("best"),
                machine_factory=lambda: ItsyMachine(ItsyConfig()),
                runs=2,
            )


class TestRecordingModes:
    def test_minimal_cell_result_bitwise_equals_full(self):
        base = dict(workload=MPEG, policy=PolicySpec("best"), use_daq=False)
        full = SweepCell(recording="full", **base).run()
        minimal = SweepCell(recording="minimal", **base).run()
        assert minimal == full

    def test_minimal_on_sa2_bitwise_equals_full(self):
        base = dict(
            workload=MPEG, policy=PolicySpec("avg3-peg"),
            machine=SA2, use_daq=False,
        )
        assert (
            SweepCell(recording="minimal", **base).run()
            == SweepCell(recording="full", **base).run()
        )

    def test_daq_requires_full_recording(self):
        with pytest.raises(ValueError, match="use_daq=False"):
            cell(recording="minimal").run()  # use_daq defaults True

    def test_constant_step_cells_default_minimal(self):
        assert all(c.recording == "minimal" for c in constant_step_cells(MPEG))


class TestEngineValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepEngine(jobs=0)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec("quake").build()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            cell(policy=PolicySpec("ondemand")).run()

    def test_config_type_checked(self):
        with pytest.raises(TypeError):
            WorkloadSpec("mpeg", WebConfig()).build()


class TestSweepCellError:
    def test_pool_failure_names_the_cell(self):
        cells = [cell(), cell(policy=PolicySpec("ondemand"), seed=1)]
        with pytest.raises(SweepCellError) as excinfo:
            SweepEngine(jobs=2).run(cells)
        err = excinfo.value
        assert err.cell.policy.name == "ondemand"
        assert "policy=ondemand" in str(err)
        assert "workload=mpeg" in str(err)
        assert "seed=1" in str(err)
        assert isinstance(err.__cause__, ValueError)

    def test_serial_path_keeps_the_raw_error(self):
        # In-process failures already have a useful traceback; only the
        # pool path needs the naming wrapper.
        with pytest.raises(ValueError):
            SweepEngine(jobs=1).run([cell(policy=PolicySpec("ondemand"))])


class TestSweepObservability:
    def test_stats_time_the_run(self):
        engine = SweepEngine(jobs=1)
        engine.run([cell()])
        assert engine.stats.executed == 1
        assert engine.stats.wall_s > 0
        assert engine.stats.summary().startswith("sweep: 1 simulated, 0 cached")

    def test_metrics_count_executed_and_cached_cells(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        cache = ResultCache(tmp_path)
        SweepEngine(jobs=1, cache=cache, metrics=registry).run(
            [cell(), cell(seed=1)]
        )
        SweepEngine(jobs=1, cache=cache, metrics=registry).run([cell()])
        snap = registry.snapshot()
        assert snap.counters["sweep.cells_executed"] == 2
        assert snap.counters["sweep.cells_cached"] == 1
        assert snap.histograms["sweep.cell_wall_s"].count == 2
        assert snap.counters["kernel.quanta"] > 0

    def test_pool_metrics_merge_and_results_stay_bitwise(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        cells = [cell(seed=s) for s in range(3)]
        observed = SweepEngine(jobs=2, metrics=registry).run(cells)
        plain = SweepEngine(jobs=2).run(cells)
        assert observed == plain
        snap = registry.snapshot()
        assert snap.counters["sweep.cells_executed"] == 3
        assert snap.gauges["sweep.workers"] == 2
        # Kernel counters arrive via worker snapshots merged in the parent.
        assert snap.counters["kernel.quanta"] > 0


class TestSweepTelemetry:
    """The telemetry/progress stack must observe without perturbing."""

    def engine_with_telemetry(self, jobs: int):
        import io

        from repro.obs.telemetry import SweepTelemetry

        return SweepEngine(
            jobs=jobs,
            telemetry=SweepTelemetry(),
            progress=True,
            progress_stream=io.StringIO(),
        )

    def test_instrumented_grid_bitwise_equal(self):
        plain = run_sweep(GRID, SweepEngine(jobs=2))
        with self.engine_with_telemetry(jobs=2) as engine:
            instrumented = run_sweep(GRID, engine)
        assert instrumented == plain

    def test_trace_has_one_lane_per_worker(self):
        from repro.obs.trace import validate_chrome_trace

        with self.engine_with_telemetry(jobs=2) as engine:
            engine.run([cell(seed=s) for s in range(4)])
            payload = engine.telemetry.chrome_trace()
        validate_chrome_trace(payload)
        assert payload["otherData"]["workers"] == 2
        names = {e["name"] for e in payload["traceEvents"]}
        assert "pool spin-up" in names
        assert "merge results" in names
        # One per-cell span per executed cell, on a worker lane.
        cell_spans = [
            e for e in payload["traceEvents"]
            if e["ph"] == "X" and e["name"] == "best/mpeg"
        ]
        assert len(cell_spans) == 4
        assert all(e["tid"] > 0 for e in cell_spans)

    def test_serial_engine_uses_engine_lane(self):
        with self.engine_with_telemetry(jobs=1) as engine:
            engine.run([cell()])
            payload = engine.telemetry.chrome_trace()
        [span] = [
            e for e in payload["traceEvents"]
            if e["ph"] == "X" and e["name"] == "best/mpeg"
        ]
        assert span["tid"] == 0
        assert payload["otherData"]["workers"] == 0

    def test_cache_hits_become_instants(self, tmp_path):
        from repro.obs.telemetry import SweepTelemetry

        cache = ResultCache(tmp_path)
        SweepEngine(jobs=1, cache=cache).run([cell()])
        telemetry = SweepTelemetry()
        SweepEngine(jobs=1, cache=cache, telemetry=telemetry).run([cell()])
        instants = [
            e for e in telemetry.chrome_trace()["traceEvents"]
            if e["ph"] == "i"
        ]
        assert len(instants) == 1
        assert instants[0]["name"] == "cache hit"

    def test_progress_counts_pool_cells(self):
        with self.engine_with_telemetry(jobs=2) as engine:
            engine.run([cell(seed=s) for s in range(4)])
            snap = engine.progress_model.snapshot(0.0)
        assert snap.total == 4
        assert snap.executed == 4
        assert snap.cached == 0

    def test_progress_counts_cached_cells(self, tmp_path):
        import io

        cache = ResultCache(tmp_path)
        SweepEngine(jobs=1, cache=cache).run([cell(), cell(seed=1)])
        engine = SweepEngine(
            jobs=1, cache=cache, progress=True, progress_stream=io.StringIO()
        )
        engine.run([cell(), cell(seed=1)])
        snap = engine.progress_model.snapshot(0.0)
        assert snap.cached == 2
        assert snap.cache_hit_rate == 1.0

    def test_fleet_record_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = SweepEngine(jobs=1, cache=cache)
        engine.run([cell(), cell(seed=1)])
        engine.run([cell(), cell(seed=2)])
        rec = engine.fleet_record(command="test")
        assert rec.cells_total == 4
        assert rec.cells_executed == 3
        assert rec.cells_cached == 1
        assert rec.policies == ("best",)
        assert rec.seeds == 3


class TestCellResultRoundTrip:
    def test_json_round_trip_is_exact(self):
        result = cell().run()
        assert CellResult.from_json(result.to_json()) == result

    def test_parameterized_policy_spec_builds(self):
        spec = PolicySpec.of("pering-avg", n=3, up="peg", down="peg")
        governor = spec.build_factory()()
        assert governor.predictor.n == 3
