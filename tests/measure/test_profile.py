"""Tests for power-profile statistics."""

import pytest

from repro.measure.profile import burst_profile, profile_timeline, time_above_w
from repro.traces.schema import PowerTimeline


def timeline(segments):
    tl = PowerTimeline()
    t = 0.0
    for duration_us, watts in segments:
        tl.record(t, t + duration_us, watts)
        t += duration_us
    return tl


class TestProfile:
    def test_flat_signal(self):
        prof = profile_timeline(timeline([(1e6, 1.5)]))
        assert prof.mean_w == pytest.approx(1.5)
        assert prof.peak_w == prof.min_w == 1.5
        assert prof.p50_w == prof.p95_w == prof.p99_w == 1.5
        assert prof.duration_s == pytest.approx(1.0)
        assert prof.energy_j == pytest.approx(1.5)
        assert prof.peak_to_mean == pytest.approx(1.0)

    def test_time_weighted_percentiles(self):
        # 90 % of time at 1 W, 10 % at 3 W.
        prof = profile_timeline(timeline([(9e5, 1.0), (1e5, 3.0)]))
        assert prof.p50_w == 1.0
        assert prof.p99_w == 3.0
        assert prof.mean_w == pytest.approx(1.2)
        assert prof.peak_to_mean == pytest.approx(3.0 / 1.2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            profile_timeline(PowerTimeline())

    def test_from_real_run(self):
        from repro.core.catalog import constant_speed
        from repro.measure.runner import run_workload
        from repro.workloads.mpeg import MpegConfig, mpeg_workload

        res = run_workload(
            mpeg_workload(MpegConfig(duration_s=4.0)),
            lambda: constant_speed(206.4),
            seed=0,
            use_daq=False,
        )
        prof = profile_timeline(res.run.timeline)
        assert prof.energy_j == pytest.approx(res.exact_energy_j)
        assert prof.min_w < prof.mean_w < prof.peak_w


class TestTimeAbove:
    def test_threshold_selection(self):
        tl = timeline([(5e5, 1.0), (5e5, 2.0)])
        assert time_above_w(tl, 1.5) == pytest.approx(0.5)
        assert time_above_w(tl, 0.5) == pytest.approx(1.0)
        assert time_above_w(tl, 3.0) == 0.0

    def test_empty_timeline_is_zero(self):
        assert time_above_w(PowerTimeline(), 1.0) == 0.0
        assert time_above_w(PowerTimeline(), 0.0) == 0.0

    def test_zero_duration_segments_contribute_nothing(self):
        tl = PowerTimeline()
        tl.record(0.0, 0.0, 5.0)
        assert time_above_w(tl, 1.0) == 0.0


class TestBurstProfile:
    def test_burst_quiet_decomposition(self):
        tl = timeline([(1e5, 0.2), (2e5, 2.0), (1e5, 0.3), (1e5, 2.5)])
        phases = burst_profile(tl, threshold_w=1.0)
        assert len(phases) == 4
        powers = [p for p, _ in phases]
        assert powers[0] == pytest.approx(0.2)
        assert powers[1] == pytest.approx(2.0)
        assert powers[3] == pytest.approx(2.5)
        durations = [d for _, d in phases]
        assert durations == pytest.approx([0.1, 0.2, 0.1, 0.1])

    def test_merges_contiguous_same_side_segments(self):
        tl = timeline([(1e5, 2.0), (1e5, 3.0), (1e5, 0.1)])
        phases = burst_profile(tl, threshold_w=1.0)
        assert len(phases) == 2
        assert phases[0][0] == pytest.approx(2.5)  # energy-weighted mean

    def test_feeds_battery_model(self):
        from repro.battery.pulsed import PulsedDischargeModel

        tl = timeline([(5e6, 2.0), (5e6, 0.1)] * 3)
        phases = burst_profile(tl, threshold_w=1.0)
        battery = PulsedDischargeModel(capacity_c=100.0)
        delivered = battery.run_profile(phases)
        assert delivered > 0.0

    def test_empty_timeline(self):
        assert burst_profile(PowerTimeline(), 1.0) == []

    def test_all_zero_duration_segments_yield_no_phases(self):
        tl = PowerTimeline()
        tl.record(0.0, 0.0, 2.0)
        tl.record(0.0, 0.0, 0.1)
        assert burst_profile(tl, 1.0) == []

    def test_single_segment_is_a_single_phase(self):
        phases = burst_profile(timeline([(1e6, 2.0)]), threshold_w=1.0)
        assert phases == [(pytest.approx(2.0), pytest.approx(1.0))]
