"""Tests for Welch-test experiment comparison."""

import numpy as np
import pytest

from repro.measure.compare import welch_compare


class TestWelchCompare:
    def test_clearly_different_samples(self):
        rng = np.random.default_rng(0)
        a = rng.normal(86.0, 0.2, 8)
        b = rng.normal(80.3, 0.2, 8)
        cmp = welch_compare(a, b)
        assert cmp.significant
        assert cmp.p_value < 1e-6
        assert cmp.difference == pytest.approx(5.7, abs=0.5)
        assert cmp.relative_difference == pytest.approx(5.7 / 80.3, abs=0.01)

    def test_identical_distributions_not_significant(self):
        rng = np.random.default_rng(1)
        a = rng.normal(85.0, 0.3, 6)
        b = rng.normal(85.0, 0.3, 6)
        cmp = welch_compare(a, b)
        assert not cmp.significant

    def test_constant_equal_samples(self):
        cmp = welch_compare([5.0, 5.0], [5.0, 5.0])
        assert not cmp.significant
        assert cmp.p_value == 1.0

    def test_constant_unequal_samples(self):
        cmp = welch_compare([5.0, 5.0], [6.0, 6.0])
        assert cmp.significant
        assert cmp.p_value == 0.0

    def test_alpha_controls_verdict(self):
        rng = np.random.default_rng(2)
        a = rng.normal(85.0, 1.0, 4)
        b = rng.normal(85.9, 1.0, 4)
        loose = welch_compare(a, b, alpha=0.9)
        strict = welch_compare(a, b, alpha=1e-6)
        assert loose.significant or not strict.significant

    def test_validation(self):
        with pytest.raises(ValueError):
            welch_compare([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            welch_compare([1.0, 2.0], [1.0, 2.0], alpha=1.5)

    def test_matches_paper_style_ci_reasoning(self):
        """Welch agrees with Table 2's interval-overlap reasoning on the
        actual experiment data."""
        from repro.core.catalog import constant_speed
        from repro.measure.compare import energies
        from repro.measure.runner import repeat_workload
        from repro.workloads.mpeg import MpegConfig, mpeg_workload

        wl = mpeg_workload(MpegConfig(duration_s=10.0))
        const = repeat_workload(wl, lambda: constant_speed(206.4), runs=3)
        slow = repeat_workload(wl, lambda: constant_speed(132.7), runs=3)
        cmp = welch_compare(energies(slow), energies(const))
        assert cmp.significant
        assert cmp.difference < 0  # 132.7 MHz uses less energy
