"""Tests for confidence-interval statistics."""

import numpy as np
import pytest

from repro.measure.stats import ConfidenceInterval, confidence_interval


class TestConfidenceInterval:
    def test_symmetric_around_mean(self):
        ci = confidence_interval([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.high - ci.mean == pytest.approx(ci.mean - ci.low)

    def test_known_t_value(self):
        # n=5, std=1 -> sem=1/sqrt(5), t(0.975, df=4)=2.7764
        values = [0.0, 1.0, 2.0, 3.0, 4.0]
        ci = confidence_interval(values)
        sem = np.std(values, ddof=1) / np.sqrt(5)
        assert ci.half_width == pytest.approx(2.7764 * sem, rel=1e-3)

    def test_tighter_with_more_samples(self):
        rng = np.random.default_rng(0)
        small = confidence_interval(rng.normal(10, 1, 5))
        large = confidence_interval(rng.normal(10, 1, 200))
        assert large.half_width < small.half_width

    def test_identical_values_give_zero_width(self):
        ci = confidence_interval([5.0, 5.0, 5.0])
        assert ci.low == ci.high == ci.mean == 5.0
        assert ci.relative_half_width == 0.0

    def test_relative_half_width(self):
        ci = ConfidenceInterval(mean=100.0, low=99.3, high=100.7, level=0.95, n=5)
        assert ci.relative_half_width == pytest.approx(0.007)

    def test_contains(self):
        ci = ConfidenceInterval(mean=2.0, low=1.0, high=3.0, level=0.95, n=3)
        assert ci.contains(2.5)
        assert not ci.contains(3.5)

    def test_overlaps(self):
        a = ConfidenceInterval(2.0, 1.0, 3.0, 0.95, 3)
        b = ConfidenceInterval(3.5, 2.5, 4.5, 0.95, 3)
        c = ConfidenceInterval(6.0, 5.0, 7.0, 0.95, 3)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c) and not c.overlaps(a)

    def test_validation(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0])
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], level=1.5)

    def test_level_changes_width(self):
        values = [1.0, 2.0, 3.0, 4.0]
        narrow = confidence_interval(values, level=0.80)
        wide = confidence_interval(values, level=0.99)
        assert wide.half_width > narrow.half_width
