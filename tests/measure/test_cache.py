"""Cache-key and result-cache tests for the sweep engine.

The cache key must be a pure function of the cell's *values* — any change
to the policy (predictor decay N, speed setter, thresholds), the workload
config, the seed, or the kernel config must move the key, while
irrelevancies (spelling a default config explicitly, process restarts,
parameter ordering) must not.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.core.hysteresis import ThresholdPair
from repro.hw.machines import MachineSpec
from repro.kernel.scheduler import KernelConfig
from repro.measure.parallel import (
    CACHE_SCHEMA_VERSION,
    PolicySpec,
    ResultCache,
    SweepCell,
    SweepEngine,
    WorkloadSpec,
    cache_key,
)
from repro.workloads.mpeg import MpegConfig
from repro.workloads.web import WebConfig


def cell(**overrides) -> SweepCell:
    defaults = dict(
        workload=WorkloadSpec("mpeg", MpegConfig(duration_s=0.4)),
        policy=PolicySpec("avg3-one"),
        seed=0,
    )
    defaults.update(overrides)
    return SweepCell(**defaults)


class TestKeySensitivity:
    """Every axis of the experiment grid must move the key."""

    def test_seed(self):
        assert cache_key(cell(seed=0)) != cache_key(cell(seed=1))

    def test_daq_seed_and_use_daq(self):
        assert cache_key(cell(daq_seed=7)) != cache_key(cell())
        assert cache_key(cell(use_daq=False)) != cache_key(cell())

    def test_decay_n(self):
        assert cache_key(cell(policy=PolicySpec("avg3-one"))) != cache_key(
            cell(policy=PolicySpec("avg5-one"))
        )

    def test_speed_setter(self):
        assert cache_key(cell(policy=PolicySpec("avg3-one"))) != cache_key(
            cell(policy=PolicySpec("avg3-peg"))
        )

    def test_thresholds(self):
        pering = PolicySpec.of(
            "pering-avg", n=3, thresholds=ThresholdPair(low=0.50, high=0.70)
        )
        tighter = PolicySpec.of(
            "pering-avg", n=3, thresholds=ThresholdPair(low=0.93, high=0.98)
        )
        assert cache_key(cell(policy=pering)) != cache_key(cell(policy=tighter))

    def test_constant_voltage(self):
        assert cache_key(cell(policy=PolicySpec("const-132.7"))) != cache_key(
            cell(policy=PolicySpec("const-132.7@1.23"))
        )

    def test_workload_name_and_config(self):
        assert cache_key(
            cell(workload=WorkloadSpec("web", WebConfig(duration_s=0.4)))
        ) != cache_key(cell())
        assert cache_key(
            cell(workload=WorkloadSpec("mpeg", MpegConfig(duration_s=0.5)))
        ) != cache_key(cell())

    def test_machine_preset(self):
        assert cache_key(cell(machine=MachineSpec(name="sa2"))) != cache_key(cell())

    def test_machine_boot_voltage(self):
        assert cache_key(
            cell(machine=MachineSpec.parse("itsy@1.23"))
        ) != cache_key(cell())

    def test_machine_power_override(self):
        assert cache_key(
            cell(machine=MachineSpec(power=(("fixed_w", 0.5),)))
        ) != cache_key(cell())

    def test_every_kernel_config_field(self):
        base = cache_key(cell())
        assert cache_key(cell(kernel_config=KernelConfig(quantum_us=5_000.0))) != base
        assert cache_key(
            cell(kernel_config=KernelConfig(sched_overhead_us=0.0))
        ) != base
        assert cache_key(
            cell(kernel_config=KernelConfig(record_sched_log=True))
        ) != base


class TestKeyStability:
    """Irrelevant differences must NOT move the key."""

    def test_default_config_spelled_out(self):
        assert cache_key(
            cell(workload=WorkloadSpec("mpeg", MpegConfig()))
        ) == cache_key(cell(workload=WorkloadSpec("mpeg")))

    def test_default_kernel_config_spelled_out(self):
        assert cache_key(cell(kernel_config=KernelConfig())) == cache_key(
            cell(kernel_config=None)
        )

    def test_default_machine_spelled_out(self):
        assert cache_key(cell(machine=MachineSpec())) == cache_key(
            cell(machine=MachineSpec(name="itsy"))
        )

    def test_recording_mode_does_not_move_key(self):
        """Recording modes are bitwise-equivalent, so they share entries."""
        assert cache_key(cell(recording="minimal")) == cache_key(
            cell(recording="full")
        )

    def test_params_order_independent(self):
        a = PolicySpec.of("pering-avg", n=3, up="peg")
        b = PolicySpec.of("pering-avg", up="peg", n=3)
        assert cache_key(cell(policy=a)) == cache_key(cell(policy=b))

    def test_stable_across_process_restarts(self):
        """The key depends on values only — never on hash randomization."""
        here = cache_key(cell())
        src = Path(repro.__file__).resolve().parents[1]
        code = (
            "from repro.measure.parallel import SweepCell, WorkloadSpec, "
            "PolicySpec, cache_key\n"
            "from repro.workloads.mpeg import MpegConfig\n"
            "print(cache_key(SweepCell(workload=WorkloadSpec('mpeg', "
            "MpegConfig(duration_s=0.4)), policy=PolicySpec('avg3-one'), "
            "seed=0)))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        for salt in ("0", "1", "random"):
            env["PYTHONHASHSEED"] = salt
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            assert out.stdout.strip() == here


class TestResultCache:
    def test_round_trip_exact(self, tmp_path):
        result = cell(use_daq=False).run()
        cache = ResultCache(tmp_path)
        key = cache_key(cell(use_daq=False))
        cache.put(key, result)
        assert cache.get(key) == result
        assert len(cache) == 1

    def test_miss_on_absent_key(self, tmp_path):
        assert ResultCache(tmp_path).get("0" * 64) is None

    def test_miss_on_corrupt_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "1" * 64
        cache.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None

    def test_miss_on_schema_change(self, tmp_path):
        result = cell(use_daq=False).run()
        cache = ResultCache(tmp_path)
        key = cache_key(cell(use_daq=False))
        cache.put(key, result)
        payload = json.loads(cache.path_for(key).read_text())
        payload["schema"] = CACHE_SCHEMA_VERSION + 1
        cache.path_for(key).write_text(json.dumps(payload))
        assert cache.get(key) is None

    def test_no_temp_droppings(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("2" * 64, cell(use_daq=False).run())
        assert not list(tmp_path.glob("*.tmp"))

    def test_old_schema_entries_reexecute_cleanly(self, tmp_path):
        """An engine over a cache of old-schema entries must miss and
        re-simulate — never error out or serve stale numbers."""
        the_cell = cell(use_daq=False)
        key = cache_key(the_cell)
        stale = ResultCache(tmp_path)
        stale.put(key, the_cell.run())
        payload = json.loads(stale.path_for(key).read_text())
        payload["schema"] = CACHE_SCHEMA_VERSION - 1
        stale.path_for(key).write_text(json.dumps(payload))

        engine = SweepEngine(cache=ResultCache(tmp_path))
        results = engine.run([the_cell])
        assert engine.stats.executed == 1
        assert engine.stats.cache_hits == 0
        assert results == [the_cell.run()]
        # The refreshed entry is keyed under the current schema again.
        refreshed = json.loads(stale.path_for(key).read_text())
        assert refreshed["schema"] == CACHE_SCHEMA_VERSION
