"""Tests for the differential fuzz harness (and the backend-agnostic
observer taps it leans on)."""

import io
from contextlib import redirect_stderr
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.catalog import resolve_policy
from repro.hw.machines import MachineSpec
from repro.measure.differential import (
    RESIDUAL_TOLERANCE_J,
    DifferentialOutcome,
    check_fuzz_spec,
    compare_results,
    counterexample_entry,
    shrink_fuzz_spec,
)
from repro.measure.parallel import (
    PolicySpec,
    SweepCell,
    SweepEngine,
    WorkloadSpec,
)
from repro.measure.runner import run_workload
from repro.obs.metrics import KernelMetricsRecorder, MetricsRegistry
from repro.traces.corpus import load_entry, save_entry
from repro.workloads.fuzz import FuzzSpec, fuzz_family
from repro.workloads.mpeg import MpegConfig, mpeg_workload

MACHINES = ["itsy", "itsy-reconf", "sa2", "sa2-reconf"]


class TestCompareResults:
    def run_pair(self, seed=0):
        gov = resolve_policy("best")
        wl = mpeg_workload(MpegConfig(duration_s=0.5))
        ref = run_workload(wl, gov, seed=seed, use_daq=False,
                           backend="reference")
        fast = run_workload(wl, gov, seed=seed, use_daq=False,
                            backend="fastpath")
        return ref, fast

    def test_identical_runs_have_no_mismatches(self):
        ref, fast = self.run_pair()
        assert compare_results(ref, fast) == []

    def test_differing_runs_are_named(self):
        ref, _ = self.run_pair(seed=0)
        other, _ = self.run_pair(seed=1)
        mismatches = compare_results(ref, other)
        assert "quanta" in mismatches
        assert "energy_j" in mismatches


class TestCheckFuzzSpec:
    @pytest.mark.parametrize("machine", MACHINES)
    def test_cores_agree_on_every_machine(self, machine):
        outcome = check_fuzz_spec(
            FuzzSpec(seed=21, duration_s=0.5),
            policy="past-peg",
            machine=MachineSpec.parse(machine),
        )
        assert outcome.ok, outcome.describe()
        assert outcome.mismatches == ()

    @pytest.mark.parametrize("machine", MACHINES)
    def test_energy_decomposition_closes(self, machine):
        outcome = check_fuzz_spec(
            FuzzSpec(seed=22, duration_s=0.5, processes=2),
            policy="best",
            machine=MachineSpec.parse(machine),
        )
        assert outcome.residual_j is not None
        assert outcome.residual_j <= RESIDUAL_TOLERANCE_J

    def test_exception_parity_counts_as_ok(self):
        # best-voltage requests 1.23 V, which the stock Itsy rejects in
        # both cores with the same message: parity, so no failure.
        outcome = check_fuzz_spec(
            FuzzSpec(seed=1, duration_s=0.4),
            policy="best-voltage",
            machine=MachineSpec("itsy-stock"),
        )
        assert outcome.ok
        assert outcome.reference is None  # the run never completed

    def test_family_batch_is_clean(self):
        for spec in fuzz_family(4, master_seed=17, duration_s=0.5):
            outcome = check_fuzz_spec(spec, "best", MachineSpec("itsy-reconf"))
            assert outcome.ok, outcome.describe()

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        burstiness=st.floats(min_value=0.0, max_value=1.0),
        idle_storm=st.floats(min_value=0.0, max_value=1.0),
        tightness=st.floats(min_value=0.0, max_value=1.0),
        processes=st.integers(min_value=1, max_value=3),
    )
    def test_property_cores_bitwise_equal(
        self, seed, burstiness, idle_storm, tightness, processes
    ):
        spec = FuzzSpec(
            seed=seed,
            duration_s=0.3,
            phases=2,
            burstiness=burstiness,
            idle_storm=idle_storm,
            deadline_tightness=tightness,
            processes=processes,
        )
        outcome = check_fuzz_spec(spec, "past-double", MachineSpec("itsy-reconf"))
        assert outcome.ok, outcome.describe()


class TestShrinking:
    def test_passing_spec_returned_unchanged(self):
        spec = FuzzSpec(seed=2, duration_s=0.4)
        shrunk, outcome = shrink_fuzz_spec(spec, "best", MachineSpec("itsy"))
        assert shrunk == spec
        assert outcome.ok

    def test_shrinks_toward_minimal_failing_spec(self, monkeypatch):
        # Fake a failure that persists while processes > 1, so the
        # shrinker must simplify every other knob and keep that one.
        import repro.measure.differential as differential

        real_check = differential.check_fuzz_spec

        def fake_check(spec, policy="best", machine=None, seed=0,
                       check_decomposition=True, backend="fastpath"):
            outcome = real_check(spec, policy, machine, seed,
                                 check_decomposition=False)
            if spec.processes > 1:
                return replace(outcome, mismatches=("energy_j",))
            return outcome

        monkeypatch.setattr(differential, "check_fuzz_spec", fake_check)
        start = FuzzSpec(seed=3, duration_s=0.8, phases=4, processes=2,
                         burstiness=0.5, ramp=0.5, idle_storm=0.25)
        shrunk, outcome = differential.shrink_fuzz_spec(
            start, "best", MachineSpec("itsy")
        )
        assert not outcome.ok
        assert shrunk.processes == 2  # the knob the failure depends on
        assert shrunk.duration_s < start.duration_s
        assert shrunk.phases < start.phases
        assert shrunk.burstiness == 0.0
        assert shrunk.idle_storm == 0.0

    def test_counterexample_round_trips_through_corpus(self, tmp_path):
        outcome = check_fuzz_spec(
            FuzzSpec(seed=4, duration_s=0.4), "best", MachineSpec("itsy")
        )
        entry = counterexample_entry(outcome)
        assert entry is not None
        path = save_entry(tmp_path, entry)
        loaded = load_entry(path)
        assert loaded == entry
        provenance = dict(loaded.provenance)
        assert provenance["policy"] == "best"
        assert "FuzzSpec" in provenance["fuzz_spec"]

    def test_no_counterexample_without_reference(self):
        outcome = DifferentialOutcome(
            spec=FuzzSpec(), policy="best", machine="itsy", seed=0,
            exception_mismatch="reference ValueError(x) vs fastpath ok(None)",
        )
        assert counterexample_entry(outcome) is None


class TestObservedBackends:
    """Satellite: observers attach to either backend, no fallback left."""

    def _observed_run(self, backend):
        registry = MetricsRegistry()
        result = run_workload(
            mpeg_workload(MpegConfig(duration_s=0.3)),
            resolve_policy("best"),
            use_daq=False,
            backend=backend,
            extra_recorders=[KernelMetricsRecorder(registry)],
        )
        return result, registry.snapshot()

    def test_no_fallback_note_on_either_backend(self):
        buf = io.StringIO()
        with redirect_stderr(buf):
            self._observed_run("fastpath")
            self._observed_run("reference")
        assert buf.getvalue() == ""

    def test_observed_fastpath_bitwise_equal_to_plain(self):
        observed, _ = self._observed_run("fastpath")
        plain = run_workload(
            mpeg_workload(MpegConfig(duration_s=0.3)),
            resolve_policy("best"),
            use_daq=False,
            backend="fastpath",
        )
        assert compare_results(plain, observed) == []

    def test_observed_metrics_identical_across_backends(self):
        fast_result, fast_snap = self._observed_run("fastpath")
        ref_result, ref_snap = self._observed_run("reference")
        assert compare_results(ref_result, fast_result) == []
        assert fast_snap.counters == ref_snap.counters
        assert fast_snap.histograms == ref_snap.histograms

    def test_observed_sweep_stays_on_requested_backend(self):
        cell = SweepCell(
            workload=WorkloadSpec("mpeg", MpegConfig(duration_s=0.3)),
            policy=PolicySpec("best"),
            machine=MachineSpec("itsy"),
            use_daq=False,
            backend="fastpath",
        )
        buf = io.StringIO()
        with redirect_stderr(buf):
            with SweepEngine(jobs=1, metrics=MetricsRegistry()) as engine:
                engine.run([cell])
        assert buf.getvalue() == ""
        assert not hasattr(engine.stats, "fastpath_fallbacks")
        assert "fastpath" not in engine.stats.summary()
