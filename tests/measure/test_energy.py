"""Tests for the energy estimators."""

import numpy as np
import pytest

from repro.measure.energy import (
    energy_from_samples,
    mean_power_from_samples,
    select_window,
)


class TestEnergy:
    def test_rectangle_sum(self):
        # 5 samples of 2 W at 0.0002 s each = 2 mJ.
        assert energy_from_samples([2.0] * 5, 0.0002) == pytest.approx(0.002)

    def test_empty_samples(self):
        assert energy_from_samples([], 0.0002) == 0.0

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            energy_from_samples([1.0], 0.0)

    def test_matches_paper_formula(self):
        # E = sum(p_i * 0.0002) exactly.
        p = [1.4, 1.5, 1.3]
        assert energy_from_samples(p, 0.0002) == pytest.approx(sum(p) * 0.0002)


class TestMeanPower:
    def test_mean(self):
        assert mean_power_from_samples([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert mean_power_from_samples([]) == 0.0


class TestWindow:
    def test_select_inside(self):
        t = np.array([0.0, 100.0, 200.0, 300.0])
        p = np.array([1.0, 2.0, 3.0, 4.0])
        ts, ps = select_window(t, p, 100.0, 300.0)
        assert list(ts) == [100.0, 200.0]
        assert list(ps) == [2.0, 3.0]

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            select_window(np.array([0.0]), np.array([1.0]), 10.0, 10.0)
