"""Tests for the experiment runner (short synthetic workload for speed)."""

import pytest

from repro.core.catalog import best_policy, constant_speed
from repro.measure.runner import (
    default_machine,
    repeat_workload,
    run_workload,
)
from repro.workloads.mpeg import MpegConfig, mpeg_workload

SHORT = mpeg_workload(MpegConfig(duration_s=4.0))


class TestRunWorkload:
    def test_daq_energy_close_to_exact(self):
        res = run_workload(SHORT, lambda: constant_speed(206.4), seed=0)
        assert res.energy_j == pytest.approx(res.exact_energy_j, rel=0.01)
        assert res.capture is not None

    def test_daq_disabled(self):
        res = run_workload(
            SHORT, lambda: constant_speed(206.4), seed=0, use_daq=False
        )
        assert res.capture is None
        assert res.energy_j == res.exact_energy_j

    def test_missed_flag(self):
        ok = run_workload(SHORT, lambda: constant_speed(206.4), seed=0, use_daq=False)
        bad = run_workload(SHORT, lambda: constant_speed(59.0), seed=0, use_daq=False)
        assert not ok.missed
        assert bad.missed

    def test_default_machine_boots_fast(self):
        machine = default_machine()
        assert machine.step.mhz == pytest.approx(206.4)

    def test_fresh_governor_per_run(self):
        created = []

        def factory():
            gov = best_policy()
            created.append(gov)
            return gov

        run_workload(SHORT, factory, seed=0, use_daq=False)
        run_workload(SHORT, factory, seed=0, use_daq=False)
        assert len(created) == 2
        assert created[0] is not created[1]


class TestRepeatWorkload:
    def test_ci_over_runs(self):
        agg = repeat_workload(
            SHORT, lambda: constant_speed(206.4), runs=3, use_daq=False
        )
        assert agg.energy_ci.n == 3
        assert agg.energy_ci.low <= agg.mean_energy_j <= agg.energy_ci.high
        assert not agg.any_missed
        assert agg.total_misses == 0

    def test_runs_differ_by_seed(self):
        agg = repeat_workload(
            SHORT, lambda: constant_speed(206.4), runs=3, use_daq=False
        )
        energies = [r.energy_j for r in agg.results]
        assert len(set(energies)) > 1  # seeded jitter makes runs distinct

    def test_repeatability_tight(self):
        """The paper's §4.1: the 95 % CI is under 0.7 % of the mean."""
        agg = repeat_workload(
            SHORT, lambda: constant_speed(206.4), runs=5, use_daq=False
        )
        assert agg.energy_ci.relative_half_width < 0.007

    def test_minimum_two_runs(self):
        with pytest.raises(ValueError):
            repeat_workload(SHORT, lambda: constant_speed(206.4), runs=1)
