"""Tests for hysteresis threshold pairs."""

import pytest

from repro.core.hysteresis import (
    BEST_POLICY_THRESHOLDS,
    PERING_THRESHOLDS,
    Direction,
    ThresholdPair,
)


class TestDecision:
    def test_above_high_scales_up(self):
        t = ThresholdPair(0.5, 0.7)
        assert t.decide(0.71) is Direction.UP
        assert t.decide(1.0) is Direction.UP

    def test_below_low_scales_down(self):
        t = ThresholdPair(0.5, 0.7)
        assert t.decide(0.49) is Direction.DOWN
        assert t.decide(0.0) is Direction.DOWN

    def test_dead_zone_holds(self):
        t = ThresholdPair(0.5, 0.7)
        assert t.decide(0.5) is Direction.HOLD
        assert t.decide(0.6) is Direction.HOLD
        assert t.decide(0.7) is Direction.HOLD

    def test_boundaries_are_strict(self):
        t = ThresholdPair(0.93, 0.98)
        assert t.decide(0.98) is Direction.HOLD
        assert t.decide(0.9800001) is Direction.UP
        assert t.decide(0.93) is Direction.HOLD
        assert t.decide(0.9299999) is Direction.DOWN


class TestNamedPairs:
    def test_pering_values(self):
        assert PERING_THRESHOLDS.low == 0.50
        assert PERING_THRESHOLDS.high == 0.70

    def test_best_policy_values(self):
        assert BEST_POLICY_THRESHOLDS.low == 0.93
        assert BEST_POLICY_THRESHOLDS.high == 0.98


class TestValidation:
    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ThresholdPair(-0.1, 0.5)
        with pytest.raises(ValueError):
            ThresholdPair(0.5, 1.1)

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            ThresholdPair(0.8, 0.5)

    def test_equal_thresholds_allowed(self):
        t = ThresholdPair(0.7, 0.7)
        assert t.decide(0.7) is Direction.HOLD
        assert t.decide(0.71) is Direction.UP
        assert t.decide(0.69) is Direction.DOWN
