"""Tests for deadline-driven governors (§6 future work)."""

import pytest

from repro.core.deadline import (
    DeadlineGovernor,
    DeadlineSpec,
    SynthesizedDeadlineGovernor,
    dominant_period_quanta,
    slowest_feasible_step,
)
from repro.hw.rails import VOLTAGE_HIGH
from repro.hw.work import Work
from repro.kernel.governor import TickInfo
from repro.workloads.base import AUDIO_CHUNK_PROFILE, MPEG_FRAME_PROFILE


def mpeg_specs():
    return [
        DeadlineSpec("video", period_us=66_666.7, work=MPEG_FRAME_PROFILE.work(1.0)),
        DeadlineSpec("audio", period_us=100_000.0, work=AUDIO_CHUNK_PROFILE.work(1.0)),
    ]


def info(utilization=0.5, step_index=10, mhz=206.4, now_us=10_000.0):
    return TickInfo(
        now_us=now_us,
        utilization=utilization,
        busy_us=utilization * 10_000.0,
        quantum_us=10_000.0,
        step_index=step_index,
        mhz=mhz,
        volts=VOLTAGE_HIGH,
        max_step_index=10,
    )


class TestSlowestFeasibleStep:
    def test_mpeg_lands_at_132(self):
        """The declared MPEG demand solves to the paper's measured ideal."""
        step = slowest_feasible_step(mpeg_specs(), margin=1.05)
        assert step.mhz == pytest.approx(132.7)

    def test_higher_margin_picks_faster_step(self):
        low = slowest_feasible_step(mpeg_specs(), margin=1.0)
        high = slowest_feasible_step(mpeg_specs(), margin=1.18)
        assert high.mhz >= low.mhz

    def test_tiny_demand_sits_at_the_bottom(self):
        specs = [DeadlineSpec("tick", 100_000.0, Work(cpu_cycles=1000.0))]
        assert slowest_feasible_step(specs).mhz == 59.0

    def test_impossible_demand_pegs_to_max(self):
        specs = [DeadlineSpec("huge", 10_000.0, Work(cpu_cycles=1e10))]
        assert slowest_feasible_step(specs).mhz == 206.4

    def test_validation(self):
        with pytest.raises(ValueError):
            slowest_feasible_step([])
        with pytest.raises(ValueError):
            slowest_feasible_step(mpeg_specs(), margin=0.9)
        with pytest.raises(ValueError):
            DeadlineSpec("bad", 0.0, Work(cpu_cycles=1.0))


class TestDeadlineGovernor:
    def test_requests_feasible_step_once(self):
        gov = DeadlineGovernor(mpeg_specs(), margin=1.05)
        req = gov.on_tick(info())
        assert req is not None and req.step_index == 5  # 132.7 MHz
        assert gov.on_tick(info(step_index=5, mhz=132.7)) is None

    def test_declare_resolves_again(self):
        gov = DeadlineGovernor(mpeg_specs(), margin=1.05)
        gov.on_tick(info())
        gov.declare(
            DeadlineSpec("burst", 50_000.0, MPEG_FRAME_PROFILE.work(0.5))
        )
        req = gov.on_tick(info(step_index=5, mhz=132.7))
        assert req is not None and req.step_index > 5

    def test_retract_drops_demand(self):
        gov = DeadlineGovernor(mpeg_specs(), margin=1.05)
        gov.on_tick(info())
        gov.retract("video")
        req = gov.on_tick(info(step_index=5, mhz=132.7))
        assert req is not None and req.step_index == 0

    def test_declare_replaces_by_name(self):
        gov = DeadlineGovernor(mpeg_specs())
        gov.declare(DeadlineSpec("video", 66_666.7, Work(cpu_cycles=100.0)))
        assert len(gov.specs) == 2

    def test_no_specs_idles_at_bottom(self):
        gov = DeadlineGovernor([])
        req = gov.on_tick(info())
        assert req is not None and req.step_index == 0

    def test_reset(self):
        gov = DeadlineGovernor(mpeg_specs())
        gov.on_tick(info())
        gov.reset()
        assert gov.on_tick(info()) is not None


class TestPeriodDetection:
    def test_detects_rectangle_period(self):
        wave = ([1.0] * 9 + [0.0]) * 20
        assert dominant_period_quanta(wave, max_period=30) == 10

    def test_no_period_in_constant_signal(self):
        assert dominant_period_quanta([0.5] * 100, max_period=30) is None

    def test_no_period_in_noise(self):
        import random

        rng = random.Random(3)
        noise = [rng.random() for _ in range(200)]
        period = dominant_period_quanta(noise, max_period=40, min_strength=0.5)
        assert period is None

    def test_short_signal(self):
        assert dominant_period_quanta([1.0, 0.0], max_period=10) is None


class TestSynthesizedDeadlineGovernor:
    def test_settles_on_periodic_work_demand(self):
        """Closed loop against a real work-based periodic job: the
        governor detects the period and parks near the demand-covering
        step instead of pegging."""
        from repro.hw.itsy import ItsyConfig, ItsyMachine
        from repro.kernel.scheduler import Kernel, KernelConfig
        from repro.workloads.synthetic import cycle_demand_body

        machine = ItsyMachine(ItsyConfig())
        gov = SynthesizedDeadlineGovernor(window=128, resolve_every=16)
        kernel = Kernel(machine, gov, KernelConfig(sched_overhead_us=0.0))
        # 60 ms of full-speed CPU work per 100 ms period.
        work = Work(cpu_cycles=60_000.0 * 206.4)
        kernel.spawn("job", cycle_demand_body(work, 100_000.0, 30_000_000.0))
        run = kernel.run(30_000_000.0)
        tail = run.quanta[1500:]
        mean_mhz = sum(q.mhz for q in tail) / len(tail)
        # demand = 123.8 MHz-equivalents * 1.25 margin -> the 162.2 step.
        assert 130.0 < mean_mhz < 200.0
        assert gov.synthesis_log
        # the detected period is ~10 quanta (100 ms / 10 ms)
        periods = [p for _, p, __ in gov.synthesis_log if p is not None]
        assert periods and min(periods) >= 5

    def test_falls_back_to_max_without_period(self):
        import random

        rng = random.Random(0)
        gov = SynthesizedDeadlineGovernor(window=64, resolve_every=16)
        idx, mhz = 5, 132.7
        for _ in range(100):
            req = gov.on_tick(
                info(utilization=rng.random(), step_index=idx, mhz=mhz)
            )
            if req is not None and req.step_index is not None:
                idx = req.step_index
        # With noise the honest answer is the safe one: full speed.
        assert idx == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            SynthesizedDeadlineGovernor(window=4)
        with pytest.raises(ValueError):
            SynthesizedDeadlineGovernor(margin=0.5)

    def test_reset(self):
        gov = SynthesizedDeadlineGovernor()
        gov.on_tick(info())
        gov.reset()
        assert gov.synthesis_log == []
