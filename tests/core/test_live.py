"""Tests for the live (in-kernel) Govil predictor adapter."""

import pytest

from repro.core.govil import AgedAveragesPredictor, FlatPredictor, PeakPredictor
from repro.core.live import LivePredictorGovernor
from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.hw.rails import VOLTAGE_HIGH
from repro.kernel.governor import TickInfo
from repro.kernel.scheduler import Kernel, KernelConfig
from repro.workloads.synthetic import rectangle_wave_body


def info(utilization, step_index, mhz):
    return TickInfo(
        now_us=10_000.0,
        utilization=utilization,
        busy_us=utilization * 10_000.0,
        quantum_us=10_000.0,
        step_index=step_index,
        mhz=mhz,
        volts=VOLTAGE_HIGH,
        max_step_index=10,
    )


class TestAdapterMechanics:
    def test_flat_full_target_requests_max(self):
        gov = LivePredictorGovernor(FlatPredictor(1.0), target_utilization=1.0)
        req = gov.on_tick(info(0.1, 0, 59.0))
        assert req is not None and req.step_index == 10

    def test_flat_zero_requests_bottom(self):
        gov = LivePredictorGovernor(FlatPredictor(0.0))
        req = gov.on_tick(info(0.9, 10, 206.4))
        assert req is not None and req.step_index == 0

    def test_no_request_when_already_there(self):
        gov = LivePredictorGovernor(FlatPredictor(1.0), target_utilization=1.0)
        assert gov.on_tick(info(1.0, 10, 206.4)) is None

    def test_history_is_bounded(self):
        gov = LivePredictorGovernor(AgedAveragesPredictor(), history_limit=10)
        for _ in range(50):
            gov.on_tick(info(0.5, 10, 206.4))
        assert len(gov._history) <= 10

    def test_reset_clears_history(self):
        gov = LivePredictorGovernor(PeakPredictor())
        gov.on_tick(info(0.5, 10, 206.4))
        gov.reset()
        assert gov._history == []

    def test_validation(self):
        with pytest.raises(ValueError):
            LivePredictorGovernor(FlatPredictor(0.5), target_utilization=0.0)
        with pytest.raises(ValueError):
            LivePredictorGovernor(FlatPredictor(0.5), history_limit=0)


class TestClosedLoop:
    def test_aged_averages_tracks_steady_work_demand(self):
        """A *work-based* periodic demand (cycles per period) has a stable
        fixed point: delivered work per quantum is clock-invariant, so the
        governor converges near the step covering the demand at its target
        utilization."""
        from repro.hw.work import Work
        from repro.workloads.synthetic import cycle_demand_body

        machine = ItsyMachine(ItsyConfig())
        gov = LivePredictorGovernor(
            AgedAveragesPredictor(aging=0.8), target_utilization=0.85
        )
        kernel = Kernel(machine, gov, KernelConfig(sched_overhead_us=0.0))
        # 50 ms of full-speed CPU work per 100 ms period: demand = 103.2
        # MHz-equivalents; at the 0.85 target the policy needs ~121 MHz.
        work = Work(cpu_cycles=50_000.0 * 206.4)
        kernel.spawn("job", cycle_demand_body(work, 100_000.0, 20_000_000.0))
        run = kernel.run(20_000_000.0)
        tail = run.quanta[1000:]
        mean_mhz = sum(q.mhz for q in tail) / len(tail)
        assert 110.0 < mean_mhz < 180.0
        assert not run.deadline_misses(tolerance_us=50_000.0)

    def test_time_based_load_induces_downward_spiral(self):
        """The feedback trap: a busy-*wait* load delivers less work at a
        lower clock without raising utilization, so a demand tracker rides
        it all the way down -- exactly why observed-work policies need the
        work/time distinction the paper's kernel cannot make."""
        machine = ItsyMachine(ItsyConfig())
        gov = LivePredictorGovernor(
            AgedAveragesPredictor(aging=0.8), target_utilization=0.85
        )
        kernel = Kernel(machine, gov, KernelConfig(sched_overhead_us=0.0))
        kernel.spawn("wave", rectangle_wave_body(5, 5, 10_000_000.0))
        run = kernel.run(10_000_000.0)
        assert run.quanta[-1].mhz == 59.0

    def test_peak_predictor_is_jumpy(self):
        machine = ItsyMachine(ItsyConfig())
        gov = LivePredictorGovernor(PeakPredictor(), target_utilization=0.9)
        kernel = Kernel(machine, gov, KernelConfig(sched_overhead_us=0.0))
        kernel.spawn("wave", rectangle_wave_body(3, 3, 5_000_000.0))
        run = kernel.run(5_000_000.0)
        # PEAK reacts to every rise/fall: plenty of changes.
        assert run.clock_changes > 50
