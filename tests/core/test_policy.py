"""Tests for the assembled IntervalPolicy governor."""

from repro.core.hysteresis import Direction, ThresholdPair
from repro.core.policy import IntervalPolicy, VoltageRule
from repro.core.predictors import AvgN, Past
from repro.core.speed import OneStep, Peg
from repro.hw.rails import VOLTAGE_HIGH, VOLTAGE_LOW
from repro.kernel.governor import TickInfo


def info(utilization, step_index=5, mhz=132.7, volts=VOLTAGE_HIGH, now_us=10_000.0):
    return TickInfo(
        now_us=now_us,
        utilization=utilization,
        busy_us=utilization * 10_000.0,
        quantum_us=10_000.0,
        step_index=step_index,
        mhz=mhz,
        volts=volts,
        max_step_index=10,
    )


class TestScalingDecisions:
    def test_scale_up_above_high(self):
        policy = IntervalPolicy(Past(), ThresholdPair(0.5, 0.7), OneStep())
        req = policy.on_tick(info(0.9))
        assert req is not None and req.step_index == 6

    def test_scale_down_below_low(self):
        policy = IntervalPolicy(Past(), ThresholdPair(0.5, 0.7), OneStep())
        req = policy.on_tick(info(0.2))
        assert req is not None and req.step_index == 4

    def test_hold_in_dead_zone(self):
        policy = IntervalPolicy(Past(), ThresholdPair(0.5, 0.7), OneStep())
        assert policy.on_tick(info(0.6)) is None

    def test_peg_both_directions(self):
        policy = IntervalPolicy(Past(), ThresholdPair(0.93, 0.98), Peg())
        assert policy.on_tick(info(1.0)).step_index == 10
        policy.reset()
        assert policy.on_tick(info(0.0)).step_index == 0

    def test_no_request_at_extremes(self):
        policy = IntervalPolicy(Past(), ThresholdPair(0.5, 0.7), Peg())
        assert policy.on_tick(info(1.0, step_index=10, mhz=206.4)) is None
        policy.reset()
        assert policy.on_tick(info(0.0, step_index=0, mhz=59.0)) is None

    def test_clamping_at_table_edges(self):
        policy = IntervalPolicy(Past(), ThresholdPair(0.5, 0.7), OneStep())
        req = policy.on_tick(info(1.0, step_index=10, mhz=206.4))
        assert req is None  # 10 + 1 clamps back to 10: no change

    def test_separate_up_down_setters(self):
        policy = IntervalPolicy(
            Past(), ThresholdPair(0.5, 0.7), up=OneStep(), down=Peg()
        )
        assert policy.on_tick(info(1.0)).step_index == 6
        assert policy.on_tick(info(0.0)).step_index == 0


class TestPredictorIntegration:
    def test_avg9_lags_scale_up(self):
        """From idle, AVG_9 with a 70 % bound takes 12 quanta to scale up."""
        policy = IntervalPolicy(AvgN(9), ThresholdPair(0.5, 0.7), Peg())
        first_up = None
        for i in range(1, 30):
            req = policy.on_tick(info(1.0, step_index=0, mhz=59.0))
            if req is not None and req.step_index == 10:
                first_up = i
                break
        assert first_up == 12

    def test_decision_history_recorded(self):
        policy = IntervalPolicy(Past(), ThresholdPair(0.5, 0.7), OneStep())
        policy.on_tick(info(0.9, now_us=10_000.0))
        policy.on_tick(info(0.6, now_us=20_000.0))
        assert len(policy.decisions) == 2
        assert policy.decisions[0][2] is Direction.UP
        assert policy.decisions[1][2] is Direction.HOLD

    def test_reset_clears_predictor_and_history(self):
        policy = IntervalPolicy(AvgN(5), ThresholdPair(0.5, 0.7), OneStep())
        policy.on_tick(info(1.0))
        policy.reset()
        assert policy.decisions == []
        assert policy.predictor.weighted == 0.0


class TestVoltageRule:
    def test_volts_for_mhz(self):
        rule = VoltageRule()
        assert rule.volts_for_mhz(59.0) == VOLTAGE_LOW
        assert rule.volts_for_mhz(162.2) == VOLTAGE_LOW
        assert rule.volts_for_mhz(176.9) == VOLTAGE_HIGH

    def test_policy_requests_low_voltage_on_scale_down(self):
        policy = IntervalPolicy(
            Past(), ThresholdPair(0.93, 0.98), Peg(), voltage_rule=VoltageRule()
        )
        req = policy.on_tick(info(0.0, step_index=10, mhz=206.4))
        assert req.step_index == 0
        assert req.volts == VOLTAGE_LOW

    def test_policy_requests_high_voltage_on_scale_up(self):
        policy = IntervalPolicy(
            Past(), ThresholdPair(0.93, 0.98), Peg(), voltage_rule=VoltageRule()
        )
        req = policy.on_tick(info(1.0, step_index=0, mhz=59.0, volts=VOLTAGE_LOW))
        assert req.step_index == 10
        assert req.volts == VOLTAGE_HIGH

    def test_voltage_only_request_when_holding(self):
        # Holding speed at 132.7 but the voltage is still high: the rule
        # asks for the drop alone.
        policy = IntervalPolicy(
            Past(), ThresholdPair(0.5, 0.7), Peg(), voltage_rule=VoltageRule()
        )
        req = policy.on_tick(info(0.6, step_index=5, mhz=132.7))
        assert req.step_index is None
        assert req.volts == VOLTAGE_LOW

    def test_no_request_when_everything_matches(self):
        policy = IntervalPolicy(
            Past(), ThresholdPair(0.5, 0.7), Peg(), voltage_rule=VoltageRule()
        )
        assert policy.on_tick(info(0.6, volts=VOLTAGE_LOW)) is None
