"""Tests for Martin's battery-rational clock floor."""

import pytest

from repro.core.catalog import best_policy
from repro.core.martin import FlooredGovernor, martin_floor_step, martin_policy
from repro.hw.rails import VOLTAGE_HIGH, VOLTAGE_LOW
from repro.kernel.governor import Governor, GovernorRequest, TickInfo


def info(utilization, step_index=10, mhz=206.4):
    return TickInfo(
        now_us=10_000.0,
        utilization=utilization,
        busy_us=utilization * 10_000.0,
        quantum_us=10_000.0,
        step_index=step_index,
        mhz=mhz,
        volts=VOLTAGE_HIGH,
        max_step_index=10,
    )


class TestMartinFloor:
    def test_floor_above_bottom_with_default_model(self):
        """With the calibrated Itsy model's large fixed power, crawling at
        59 MHz wastes battery: the rational floor sits above index 0."""
        step = martin_floor_step()
        assert step.index > 0

    def test_floor_with_pure_frequency_power_is_bottom(self):
        step = martin_floor_step(power_of_step=lambda s: 1.6e-3 * s.mhz)
        assert step.index == 0


class TestFlooredGovernor:
    def test_clamps_downward_requests(self):
        floored = FlooredGovernor(best_policy(), floor_index=3)
        req = floored.on_tick(info(0.0))  # inner pegs to 0
        assert req is not None and req.step_index == 3

    def test_passes_upward_requests(self):
        floored = FlooredGovernor(best_policy(), floor_index=3)
        req = floored.on_tick(info(1.0, step_index=3, mhz=103.2))
        assert req is not None and req.step_index == 10

    def test_suppresses_noop_after_clamping(self):
        floored = FlooredGovernor(best_policy(), floor_index=3)
        # already at the floor; inner requests 0; clamped to 3 == current
        req = floored.on_tick(info(0.0, step_index=3, mhz=103.2))
        assert req is None

    def test_keeps_voltage_request_even_when_step_clamped_to_current(self):
        class VoltsDown(Governor):
            def on_tick(self, _info):
                return GovernorRequest(step_index=0, volts=VOLTAGE_LOW)

        floored = FlooredGovernor(VoltsDown(), floor_index=3)
        req = floored.on_tick(info(0.0, step_index=3, mhz=103.2))
        assert req is not None and req.volts == VOLTAGE_LOW

    def test_reset_propagates(self):
        inner = best_policy()
        inner.on_tick(info(0.5))
        FlooredGovernor(inner, 2).reset()
        assert inner.decisions == []

    def test_validation(self):
        with pytest.raises(ValueError):
            FlooredGovernor(best_policy(), floor_index=-1)

    def test_martin_policy_helper(self):
        gov = martin_policy(best_policy)
        assert isinstance(gov, FlooredGovernor)
        assert gov.floor_index == martin_floor_step().index
