"""Tests for PAST / AVG_N / WindowAverage predictors."""

import pytest

from repro.core.predictors import AvgN, Past, WindowAverage


class TestPast:
    def test_past_is_identity_on_last_observation(self):
        p = Past()
        assert p.observe(0.3) == pytest.approx(0.3)
        assert p.observe(0.9) == pytest.approx(0.9)
        assert p.observe(0.0) == pytest.approx(0.0)

    def test_past_is_avg0(self):
        p, a = Past(), AvgN(0)
        series = [0.1, 0.8, 0.5, 1.0, 0.0]
        assert p.feed(series) == a.feed(series)


class TestAvgN:
    def test_recurrence(self):
        a = AvgN(9)
        w = a.observe(1.0)
        assert w == pytest.approx(0.1)
        w = a.observe(1.0)
        assert w == pytest.approx((9 * 0.1 + 1.0) / 10)

    def test_table1_trace(self):
        """Reproduce Table 1's AVG_9 column (scaled by 10^4 in the paper).

        15 fully-active quanta from idle, then 5 idle quanta.  (The
        paper's 8th entry reads 5965 -- a typo for 5695: the recurrence
        from 5217 gives (9 * 0.5217 + 1) / 10 = 0.5695, and the printed
        9th entry 6125 only follows from 5695.)
        """
        a = AvgN(9)
        series = [1.0] * 15 + [0.0] * 5
        weighted = a.feed(series)
        paper = [
            0.1000, 0.1900, 0.2710, 0.3439, 0.4095,
            0.4685, 0.5217, 0.5695, 0.6125, 0.6513,
            0.6861, 0.7175, 0.7458, 0.7712, 0.7941,
            0.7146, 0.6432, 0.5789, 0.5210, 0.4689,
        ]
        assert weighted == pytest.approx(paper, abs=2e-4)

    def test_asymmetry_at_70_percent(self):
        """§5.3: from W=0.70, one active quantum gives 73 %, one idle 63 %."""
        up = AvgN(9, initial=0.70)
        assert up.observe(1.0) == pytest.approx(0.73)
        down = AvgN(9, initial=0.70)
        assert down.observe(0.0) == pytest.approx(0.63)

    def test_lag_from_idle_to_70_percent_is_12_quanta(self):
        """Table 1: starting idle, AVG_9 crosses 70 % on the 12th quantum."""
        a = AvgN(9)
        crossing = None
        for i in range(1, 30):
            if a.observe(1.0) > 0.70:
                crossing = i
                break
        assert crossing == 12

    def test_converges_to_constant_input(self):
        a = AvgN(5)
        for _ in range(300):
            w = a.observe(0.6)
        assert w == pytest.approx(0.6, abs=1e-6)

    def test_reset(self):
        a = AvgN(3, initial=0.5)
        a.observe(1.0)
        a.reset()
        assert a.weighted == 0.5

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            AvgN(-1)
        with pytest.raises(ValueError):
            AvgN(3).observe(1.5)
        with pytest.raises(ValueError):
            AvgN(3).observe(-0.1)

    def test_output_stays_in_unit_interval(self):
        a = AvgN(4)
        for u in [1.0, 0.0, 1.0, 1.0, 0.0, 0.3, 0.9] * 10:
            w = a.observe(u)
            assert 0.0 <= w <= 1.0


class TestWindowAverage:
    def test_mean_of_window(self):
        w = WindowAverage(3)
        assert w.observe(0.3) == pytest.approx(0.3)
        assert w.observe(0.9) == pytest.approx(0.6)
        assert w.observe(0.0) == pytest.approx(0.4)
        assert w.observe(0.6) == pytest.approx(0.5)  # 0.9, 0.0, 0.6

    def test_empty_weighted_is_initial(self):
        w = WindowAverage(4, initial=0.25)
        assert w.weighted == 0.25

    def test_reset(self):
        w = WindowAverage(2)
        w.observe(1.0)
        w.reset()
        assert w.weighted == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowAverage(0)
        with pytest.raises(ValueError):
            WindowAverage(3).observe(2.0)

    def test_pure_average_oscillates_like_weighted(self):
        """§5.3: plain averaging is no better on a periodic workload."""
        w = WindowAverage(4)
        wave = ([1.0] * 9 + [0.0]) * 20
        series = w.feed(wave)
        tail = series[100:]
        assert max(tail) - min(tail) > 0.2  # still swings widely
