"""Tests for the one / double / peg speed setters."""

import pytest

from repro.core.hysteresis import Direction
from repro.core.speed import Double, OneStep, Peg

MAX = 10  # SA-1100 table


class TestOneStep:
    def test_up_and_down(self):
        s = OneStep()
        assert s.next_index(5, Direction.UP, MAX) == 6
        assert s.next_index(5, Direction.DOWN, MAX) == 4

    def test_extremes_overflow_for_caller_to_clamp(self):
        s = OneStep()
        assert s.next_index(10, Direction.UP, MAX) == 11
        assert s.next_index(0, Direction.DOWN, MAX) == -1

    def test_hold_rejected(self):
        with pytest.raises(ValueError):
            OneStep().next_index(5, Direction.HOLD, MAX)


class TestDouble:
    def test_up_increments_before_doubling(self):
        s = Double()
        # The paper: the lowest step is zero, so increment before doubling.
        assert s.next_index(0, Direction.UP, MAX) == 1
        assert s.next_index(1, Direction.UP, MAX) == 3
        assert s.next_index(3, Direction.UP, MAX) == 7
        assert s.next_index(7, Direction.UP, MAX) == 15  # clamped by caller

    def test_down_halves(self):
        s = Double()
        assert s.next_index(10, Direction.DOWN, MAX) == 4
        assert s.next_index(4, Direction.DOWN, MAX) == 1
        assert s.next_index(1, Direction.DOWN, MAX) == 0
        assert s.next_index(0, Direction.DOWN, MAX) == -1

    def test_down_inverts_up(self):
        s = Double()
        for i in range(0, 6):
            up = s.next_index(i, Direction.UP, MAX)
            assert s.next_index(up, Direction.DOWN, MAX) == i

    def test_hold_rejected(self):
        with pytest.raises(ValueError):
            Double().next_index(5, Direction.HOLD, MAX)


class TestPeg:
    def test_up_pegs_to_max(self):
        s = Peg()
        for i in range(MAX + 1):
            assert s.next_index(i, Direction.UP, MAX) == MAX

    def test_down_pegs_to_min(self):
        s = Peg()
        for i in range(MAX + 1):
            assert s.next_index(i, Direction.DOWN, MAX) == 0

    def test_hold_rejected(self):
        with pytest.raises(ValueError):
            Peg().next_index(5, Direction.HOLD, MAX)
