"""Tests for the naive busy-cycle averaging policy (Figure 5)."""

import pytest

from repro.core.cycleavg import CycleAverageGovernor
from repro.hw.rails import VOLTAGE_HIGH
from repro.kernel.governor import TickInfo


def info(mhz, utilization, step_index):
    return TickInfo(
        now_us=10_000.0,
        utilization=utilization,
        busy_us=utilization * 10_000.0,
        quantum_us=10_000.0,
        step_index=step_index,
        mhz=mhz,
        volts=VOLTAGE_HIGH,
        max_step_index=10,
    )


class TestGoingIdle:
    def test_figure5a_going_to_idle(self):
        """Figure 5(a): from full speed, idle quanta collapse the average.

        Quanta: 206/1, 206/1, 206/1, 206/0 -> avg 154.5 -> next step is the
        lowest step at or above 154.5 MHz (162.2 on the real table).
        """
        gov = CycleAverageGovernor(window=4)
        for _ in range(3):
            gov.on_tick(info(206.4, 1.0, 10))
        req = gov.on_tick(info(206.4, 0.0, 10))
        assert gov.average_mhz == pytest.approx(206.4 * 3 / 4)
        assert req is not None and req.step_index == 7  # 162.2 MHz

    def test_reaches_59_quickly_when_idle(self):
        from repro.hw.clocksteps import SA1100_CLOCK_TABLE

        gov = CycleAverageGovernor(window=4)
        for _ in range(4):
            gov.on_tick(info(206.4, 1.0, 10))
        idx = 10
        steps = [idx]
        for _ in range(4):
            req = gov.on_tick(info(SA1100_CLOCK_TABLE[idx].mhz, 0.0, idx))
            if req is not None:
                idx = req.step_index
            steps.append(idx)
        # Within four idle quanta the policy is at the lowest step.
        assert steps[-1] == 0
        # And the descent is monotone.
        assert steps == sorted(steps, reverse=True)


class TestSpeedingUp:
    def test_figure5b_stuck_at_59(self):
        """Figure 5(b): once at 59 MHz, a busy quantum contributes at most
        59 MHz to the average, so the policy can never exceed 59 MHz."""
        gov = CycleAverageGovernor(window=4)
        # History: idle at 59.
        for _ in range(4):
            gov.on_tick(info(59.0, 0.0, 0))
        # Now fully busy at 59, forever.
        for _ in range(50):
            req = gov.on_tick(info(59.0, 1.0, 0))
            assert req is None  # target stays 59 -> no change requested
        assert gov.average_mhz == pytest.approx(59.0)

    def test_figure5b_first_busy_quantum_average(self):
        gov = CycleAverageGovernor(window=4)
        for _ in range(3):
            gov.on_tick(info(59.0, 0.0, 0))
        gov.on_tick(info(59.0, 1.0, 0))
        assert gov.average_mhz == pytest.approx(14.75)


class TestMechanics:
    def test_decision_history(self):
        gov = CycleAverageGovernor(window=2)
        gov.on_tick(info(206.4, 1.0, 10))
        gov.on_tick(info(206.4, 0.5, 10))
        assert len(gov.decisions) == 2
        __, avg, chosen = gov.decisions[-1]
        assert avg == pytest.approx(206.4 * 0.75)
        assert chosen == pytest.approx(162.2)

    def test_reset(self):
        gov = CycleAverageGovernor(window=2)
        gov.on_tick(info(206.4, 1.0, 10))
        gov.reset()
        assert gov.average_mhz == 0.0
        assert gov.decisions == []

    def test_window_validation(self):
        with pytest.raises(ValueError):
            CycleAverageGovernor(window=0)
