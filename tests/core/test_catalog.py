"""Tests for the named policy catalog."""

import pytest

from repro.core.catalog import (
    best_policy,
    constant_speed,
    cycle_average,
    make_setter,
    pering_avg,
    sweep_avg_policies,
)
from repro.core.predictors import AvgN, Past
from repro.core.speed import Double, OneStep, Peg
from repro.kernel.governor import ConstantGovernor


class TestFactories:
    def test_make_setter(self):
        assert isinstance(make_setter("one"), OneStep)
        assert isinstance(make_setter("double"), Double)
        assert isinstance(make_setter("peg"), Peg)
        with pytest.raises(ValueError):
            make_setter("triple")

    def test_constant_speed_resolves_step(self):
        gov = constant_speed(132.7)
        assert isinstance(gov, ConstantGovernor)
        assert gov.step_index == 5

    def test_constant_speed_unknown_frequency(self):
        with pytest.raises(ValueError, match="no 100 MHz step"):
            constant_speed(100.0)

    def test_best_policy_shape(self):
        policy = best_policy()
        assert isinstance(policy.predictor, Past)
        assert isinstance(policy.up, Peg)
        assert isinstance(policy.down, Peg)
        assert policy.thresholds.low == 0.93
        assert policy.thresholds.high == 0.98
        assert policy.voltage_rule is None

    def test_best_policy_with_voltage_scaling(self):
        policy = best_policy(voltage_scaling=True)
        assert policy.voltage_rule is not None
        assert policy.voltage_rule.bound_mhz == pytest.approx(162.2)

    def test_pering_avg_defaults(self):
        policy = pering_avg(3)
        assert isinstance(policy.predictor, AvgN)
        assert policy.predictor.n == 3
        assert policy.thresholds.low == 0.50
        assert policy.thresholds.high == 0.70

    def test_cycle_average(self):
        gov = cycle_average(window=4)
        assert gov.window == 4

    def test_factories_return_fresh_instances(self):
        a, b = best_policy(), best_policy()
        assert a is not b
        assert a.predictor is not b.predictor


class TestSweep:
    def test_sweep_covers_paper_grid(self):
        entries = list(sweep_avg_policies())
        # N in 0..10 x {one, double, peg} = 33 configurations.
        assert len(entries) == 33
        labels = [label for label, _ in entries]
        assert "AVG_0/one-one" in labels
        assert "AVG_10/peg-peg" in labels
        assert len(set(labels)) == len(labels)

    def test_sweep_policies_are_configured(self):
        for label, gov in sweep_avg_policies(n_values=(2,), setter_names=("peg",)):
            assert label == "AVG_2/peg-peg"
            assert gov.predictor.n == 2
            assert isinstance(gov.up, Peg)
