"""Tests for the Weiser trace-based baselines."""

import numpy as np
import pytest

from repro.core.oracle import (
    future_schedule,
    opt_schedule,
    past_schedule,
)
from repro.hw.clocksteps import SA1100_CLOCK_TABLE


class TestOpt:
    def test_constant_speed_set_by_busiest_suffix(self):
        work = [0.2, 0.8, 0.5, 0.5]
        res = opt_schedule(work)
        # The binding constraint is the last three intervals: 1.8 / 3.
        assert np.allclose(res.speeds, 0.6)
        assert res.missed_work == pytest.approx(0.0)

    def test_uniform_work_runs_at_mean(self):
        res = opt_schedule([0.4] * 10)
        assert np.allclose(res.speeds, 0.4)
        assert res.missed_work == pytest.approx(0.0)

    def test_opt_finishes_exactly_at_trace_end(self):
        work = [1.0, 0.0, 0.0, 1.0]
        res = opt_schedule(work)
        assert res.excess[-1] == pytest.approx(0.0)

    def test_opt_minimizes_energy_among_the_three(self):
        rng = np.random.default_rng(42)
        work = rng.uniform(0.0, 1.0, size=200)
        e_opt = opt_schedule(work).energy
        e_future = future_schedule(work).energy
        e_past = past_schedule(work).energy
        assert e_opt <= e_future + 1e-9
        assert e_opt <= e_past + 1e-9

    def test_overloaded_trace_caps_at_full_speed(self):
        res = opt_schedule([1.0, 1.0, 1.0])
        assert np.allclose(res.speeds, 1.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            opt_schedule([])


class TestFuture:
    def test_clairvoyant_never_carries_backlog_when_feasible(self):
        work = [0.3, 0.9, 0.1, 0.6]
        res = future_schedule(work)
        assert np.allclose(res.excess, 0.0)

    def test_saves_energy_versus_full_speed(self):
        work = [0.5] * 50
        res = future_schedule(work)
        assert res.full_speed_energy_ratio < 1.0


class TestPast:
    def test_first_interval_runs_at_min_speed(self):
        res = past_schedule([0.5, 0.5], min_speed=0.2)
        assert res.speeds[0] == pytest.approx(0.2)

    def test_carries_backlog_after_surprise(self):
        # Quiet history then a burst: PAST is caught slow and carries work.
        res = past_schedule([0.0, 1.0, 0.0, 0.0])
        assert res.excess[1] > 0.0
        assert res.excess[-1] == pytest.approx(0.0)  # eventually catches up

    def test_constant_work_converges_to_exact_speed(self):
        res = past_schedule([0.4] * 100)
        assert res.speeds[-1] == pytest.approx(0.4, abs=1e-6)

    def test_mismatched_lengths_rejected(self):
        from repro.core.oracle import _simulate

        with pytest.raises(ValueError):
            _simulate([0.5, 0.5], [1.0])

    def test_negative_work_rejected(self):
        from repro.core.oracle import _simulate

        with pytest.raises(ValueError):
            _simulate([-0.1], [1.0])


class TestQuantization:
    def test_quantized_speeds_live_on_the_clock_table(self):
        work = np.linspace(0.1, 0.9, 30)
        res = past_schedule(work, quantize=SA1100_CLOCK_TABLE)
        fractions = {s.mhz / 206.4 for s in SA1100_CLOCK_TABLE}
        for speed in res.speeds:
            assert any(abs(speed - f) < 1e-9 for f in fractions)

    def test_quantization_snaps_upward(self):
        work = [0.47] * 20
        cont = opt_schedule(work)
        quant = opt_schedule(work, quantize=SA1100_CLOCK_TABLE)
        assert np.all(quant.speeds >= cont.speeds - 1e-9)
        assert np.allclose(quant.speeds, 103.2 / 206.4)

    def test_quantization_costs_energy_on_smooth_schedules(self):
        work = [0.47] * 50
        cont = opt_schedule(work)
        quant = opt_schedule(work, quantize=SA1100_CLOCK_TABLE)
        assert quant.energy >= cont.energy
