"""Tests for the Govil et al. predictor family."""

import numpy as np
import pytest

from repro.core.govil import (
    AgedAveragesPredictor,
    CyclePredictor,
    FlatPredictor,
    LongShortPredictor,
    PatternPredictor,
    PeakPredictor,
    govil_schedule,
)


class TestFlat:
    def test_constant_prediction(self):
        p = FlatPredictor(0.7)
        assert p.predict([]) == 0.7
        assert p.predict([0.1, 0.9]) == 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            FlatPredictor(1.5)


class TestLongShort:
    def test_mixes_short_and_long_windows(self):
        p = LongShortPredictor(short=2, long=4)
        history = [0.0, 0.0, 1.0, 1.0]
        # short mean = 1.0, long mean = 0.5 -> 0.75
        assert p.predict(history) == pytest.approx(0.75)

    def test_empty_history(self):
        assert LongShortPredictor().predict([]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LongShortPredictor(short=0)


class TestAgedAverages:
    def test_matches_avg_n_fixed_point(self):
        # aging g converges to the input level on constant series.
        p = AgedAveragesPredictor(aging=0.9)
        history = [0.6] * 400
        assert p.predict(history) == pytest.approx(0.6, abs=1e-3)

    def test_recent_samples_dominate(self):
        p = AgedAveragesPredictor(aging=0.5)
        rising = p.predict([0.0] * 10 + [1.0])
        falling = p.predict([1.0] * 10 + [0.0])
        assert rising > 0.45
        assert falling < 0.55

    def test_validation(self):
        with pytest.raises(ValueError):
            AgedAveragesPredictor(aging=1.0)


class TestCycle:
    def test_detects_period(self):
        p = CyclePredictor(window=12, tolerance=0.05)
        wave = [1.0, 1.0, 0.0] * 8  # period 3
        # After ...1,1,0 the next value one period back is 1.0.
        assert p.predict(wave) == pytest.approx(1.0)
        assert p.predict(wave[:-1]) == pytest.approx(0.0)

    def test_falls_back_on_noise(self):
        rng = np.random.default_rng(7)
        noisy = list(rng.uniform(0, 1, 40))
        p = CyclePredictor(window=16, tolerance=0.01, aging=0.9)
        fallback = AgedAveragesPredictor(aging=0.9)
        assert p.predict(noisy) == pytest.approx(fallback.predict(noisy))

    def test_validation(self):
        with pytest.raises(ValueError):
            CyclePredictor(window=2)


class TestPattern:
    def test_recalls_following_value(self):
        p = PatternPredictor(m=3, tolerance=0.05)
        history = [0.1, 0.2, 0.3, 0.9, 0.5, 0.5, 0.1, 0.2, 0.3]
        # the probe (0.1, 0.2, 0.3) occurred before, followed by 0.9.
        assert p.predict(history) == pytest.approx(0.9)

    def test_short_history_falls_back(self):
        p = PatternPredictor(m=4)
        assert p.predict([0.5]) == AgedAveragesPredictor().predict([0.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            PatternPredictor(m=0)


class TestPeak:
    def test_rise_predicts_fall(self):
        p = PeakPredictor()
        assert p.predict([0.2, 0.9]) == pytest.approx(0.2)

    def test_fall_predicts_stay_low(self):
        p = PeakPredictor()
        assert p.predict([0.9, 0.2]) == pytest.approx(0.2)

    def test_flat_repeats(self):
        p = PeakPredictor()
        assert p.predict([0.5, 0.5]) == pytest.approx(0.5)
        assert p.predict([0.4]) == pytest.approx(0.4)
        assert p.predict([]) == 0.0


class TestGovilSchedule:
    def test_schedule_runs_all_predictors(self):
        rng = np.random.default_rng(3)
        work = rng.uniform(0, 0.9, 120)
        for predictor in (
            FlatPredictor(0.7),
            LongShortPredictor(),
            AgedAveragesPredictor(),
            CyclePredictor(),
            PatternPredictor(),
            PeakPredictor(),
        ):
            res = govil_schedule(work, predictor)
            assert len(res.speeds) == len(work)
            assert res.energy > 0
            # Backlog must not exceed the total work seen.
            assert res.missed_work <= float(np.sum(work))

    def test_flat_full_speed_never_misses(self):
        work = [0.9, 0.3, 0.8, 0.1]
        res = govil_schedule(work, FlatPredictor(1.0))
        assert np.allclose(res.excess, 0.0)

    def test_aged_averages_saves_energy_on_steady_load(self):
        work = [0.4] * 200
        res = govil_schedule(work, AgedAveragesPredictor(aging=0.8))
        assert res.full_speed_energy_ratio < 0.5
