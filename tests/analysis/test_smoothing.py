"""Tests for the AVG_N filter analysis (§5.3)."""

import numpy as np
import pytest

from repro.analysis.smoothing import (
    avg_n_convolve,
    avg_n_recursive,
    avg_n_weights,
    rectangle_wave,
    steady_state_range,
)
from repro.core.predictors import AvgN


class TestForms:
    def test_recursive_matches_predictor_class(self):
        series = np.array([1.0, 0.0, 1.0, 1.0, 0.5, 0.0])
        filt = avg_n_recursive(series, n=3)
        pred = AvgN(3).feed(series)
        assert filt == pytest.approx(pred)

    def test_convolution_equals_recursion(self):
        """The paper's expanded form must match the implementation form."""
        rng = np.random.default_rng(0)
        series = rng.uniform(0, 1, 300)
        for n in (0, 1, 3, 9):
            assert avg_n_convolve(series, n) == pytest.approx(
                avg_n_recursive(series, n), abs=1e-12
            )

    def test_convolution_equals_recursion_with_initial(self):
        series = np.array([0.5, 0.1, 0.9, 0.9])
        assert avg_n_convolve(series, 4, initial=0.7) == pytest.approx(
            avg_n_recursive(series, 4, initial=0.7)
        )

    def test_weights_are_normalized_decaying_exponential(self):
        w = avg_n_weights(9, 2000)
        assert w[0] == pytest.approx(0.1)
        assert w[1] / w[0] == pytest.approx(0.9)
        assert float(np.sum(w)) == pytest.approx(1.0, abs=1e-6)

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            avg_n_weights(-1, 10)
        with pytest.raises(ValueError):
            avg_n_weights(3, 0)

    def test_empty_series(self):
        assert len(avg_n_convolve([], 3)) == 0


class TestRectangleWave:
    def test_nine_one_shape(self):
        wave = rectangle_wave(9, 1, periods=2)
        assert len(wave) == 20
        assert list(wave[:9]) == [1.0] * 9
        assert wave[9] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            rectangle_wave(0, 1, 1)
        with pytest.raises(ValueError):
            rectangle_wave(1, -1, 1)
        with pytest.raises(ValueError):
            rectangle_wave(1, 1, 0)


class TestSteadyState:
    def test_closed_form_matches_numeric(self):
        """The analytic Figure 7 band equals the converged convolution."""
        wave = rectangle_wave(9, 1, periods=100)
        for n in (1, 3, 9):
            filtered = avg_n_recursive(wave, n)
            tail = filtered[500:]
            w_min, w_max = steady_state_range(9, 1, n)
            assert float(np.max(tail)) == pytest.approx(w_max, abs=1e-6)
            assert float(np.min(tail)) == pytest.approx(w_min, abs=1e-6)

    def test_figure7_band_is_wide(self):
        """AVG_3 on the 9/1 wave oscillates over a wide band (Figure 7)."""
        w_min, w_max = steady_state_range(9, 1, 3)
        assert w_max - w_min > 0.2
        assert w_max > 0.95
        assert w_min < 0.75

    def test_larger_n_narrows_but_never_closes_the_band(self):
        widths = []
        for n in (1, 3, 9, 30):
            w_min, w_max = steady_state_range(9, 1, n)
            widths.append(w_max - w_min)
        assert widths == sorted(widths, reverse=True)
        assert widths[-1] > 0.0  # attenuated, never eliminated

    def test_past_band_is_full_scale(self):
        assert steady_state_range(9, 1, 0) == (0.0, 1.0)
