"""Tests for the Fourier analysis of the AVG_N weighting function."""

import numpy as np
import pytest

from repro.analysis.fourier import (
    alpha_for_avg_n,
    decaying_exponential,
    fourier_magnitude,
    numeric_fourier_magnitude,
)


class TestDecayingExponential:
    def test_unit_step_gating(self):
        t = np.array([-1.0, 0.0, 1.0])
        x = decaying_exponential(t, alpha=1.0)
        assert x[0] == 0.0
        assert x[1] == 1.0
        assert x[2] == pytest.approx(np.exp(-1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            decaying_exponential(np.array([0.0]), alpha=0.0)


class TestClosedForm:
    def test_magnitude_formula(self):
        omega = np.array([0.0, 1.0, 3.0])
        mag = fourier_magnitude(omega, alpha=1.0)
        assert mag[0] == pytest.approx(1.0)
        assert mag[1] == pytest.approx(1.0 / np.sqrt(2.0))
        assert mag[2] == pytest.approx(1.0 / np.sqrt(10.0))

    def test_matches_numeric_integration(self):
        """The closed form 1/sqrt(w^2+a^2) must match direct integration."""
        omega = np.linspace(0.0, 10.0, 15)
        closed = fourier_magnitude(omega, alpha=2.0)
        numeric = numeric_fourier_magnitude(omega, alpha=2.0, t_max=40.0, dt=1e-3)
        assert numeric == pytest.approx(closed, rel=2e-3)

    def test_attenuates_but_never_eliminates(self):
        """Figure 6's point: high frequencies are attenuated, not removed."""
        omega = np.linspace(0.1, 100.0, 200)
        mag = fourier_magnitude(omega, alpha=1.0)
        assert np.all(np.diff(mag) < 0)  # strictly decreasing
        assert np.all(mag > 0)  # never zero

    def test_smaller_alpha_attenuates_more(self):
        """Smaller alpha (larger N) suppresses high frequencies more --
        relative to its own DC gain -- at the cost of more lag."""
        omega = np.array([5.0])
        wide = fourier_magnitude(omega, alpha=2.0) / fourier_magnitude(
            np.array([0.0]), alpha=2.0
        )
        narrow = fourier_magnitude(omega, alpha=0.5) / fourier_magnitude(
            np.array([0.0]), alpha=0.5
        )
        assert narrow[0] < wide[0]


class TestAlphaMapping:
    def test_alpha_matches_discrete_decay(self):
        # One 10 ms step at AVG_9 multiplies the weight by 0.9.
        alpha = alpha_for_avg_n(9, interval_s=0.010)
        assert np.exp(-alpha * 0.010) == pytest.approx(0.9)

    def test_larger_n_smaller_alpha(self):
        assert alpha_for_avg_n(9) < alpha_for_avg_n(3) < alpha_for_avg_n(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            alpha_for_avg_n(0)
        with pytest.raises(ValueError):
            alpha_for_avg_n(3, interval_s=0.0)
