"""Tests for the closed-form energy/delay analysis."""

import pytest

from repro.analysis.energymodel import (
    best_constant_step,
    energy_delay_curve,
    energy_for_work,
    processor_only_model,
    race_vs_crawl,
)
from repro.hw.clocksteps import SA1100_CLOCK_TABLE
from repro.hw.rails import VOLTAGE_HIGH, VOLTAGE_LOW
from repro.hw.work import Work

STEP_59 = SA1100_CLOCK_TABLE.min_step
STEP_132 = SA1100_CLOCK_TABLE.step_for_mhz(132.7)
STEP_206 = SA1100_CLOCK_TABLE.max_step

#: One second of CPU-bound work at full speed.
ONE_SECOND = Work(cpu_cycles=206.4e6)


class TestEnergyForWork:
    def test_busy_only(self):
        point = energy_for_work(ONE_SECOND, STEP_206)
        assert point.busy_us == pytest.approx(1e6)
        assert point.total_us == point.busy_us
        assert point.energy_j > 0

    def test_deadline_adds_idle_tail(self):
        point = energy_for_work(ONE_SECOND, STEP_206, deadline_us=2e6)
        assert point.total_us == 2e6
        busy_only = energy_for_work(ONE_SECOND, STEP_206)
        assert point.energy_j > busy_only.energy_j  # napping costs energy

    def test_infeasible_deadline_rejected(self):
        with pytest.raises(ValueError):
            energy_for_work(ONE_SECOND, STEP_59, deadline_us=1e6)

    def test_lower_voltage_cheaper(self):
        hi = energy_for_work(ONE_SECOND, STEP_132, VOLTAGE_HIGH)
        lo = energy_for_work(ONE_SECOND, STEP_132, VOLTAGE_LOW)
        assert lo.energy_j < hi.energy_j

    def test_mean_power(self):
        point = energy_for_work(ONE_SECOND, STEP_206, deadline_us=2e6)
        assert point.mean_power_w == pytest.approx(point.energy_j / 2.0)


class TestCurve:
    def test_curve_drops_infeasible_steps(self):
        curve = energy_delay_curve(ONE_SECOND, deadline_us=1.3e6)
        mhz = [p.step.mhz for p in curve]
        # only steps fast enough to finish 1 s of 206.4 MHz work in 1.3 s
        assert min(mhz) >= 206.4 / 1.3 - 1e-9
        assert 206.4 in mhz

    def test_voltage_scaling_assigns_low_volts_below_bound(self):
        curve = energy_delay_curve(ONE_SECOND, deadline_us=4e6, voltage_scaling=True)
        for point in curve:
            expected = VOLTAGE_LOW if point.step.mhz <= 162.2 else VOLTAGE_HIGH
            assert point.volts == expected

    def test_no_voltage_scaling_stays_high(self):
        curve = energy_delay_curve(ONE_SECOND, deadline_us=4e6, voltage_scaling=False)
        assert all(p.volts == VOLTAGE_HIGH for p in curve)


class TestRaceVsCrawl:
    def test_crawl_wins_with_voltage_scaling_processor_only(self):
        """The SA-2 style argument: processor in isolation, voltage
        scaling available -> running slower is much cheaper."""
        race, best = race_vs_crawl(
            ONE_SECOND,
            deadline_us=3.6e6,
            voltage_scaling=True,
            power=processor_only_model(),
        )
        assert best.energy_j < race.energy_j
        assert best.step.mhz < 206.4
        assert best.volts == VOLTAGE_LOW

    def test_savings_shrink_without_voltage_scaling(self):
        model = processor_only_model()
        _, best_vs = race_vs_crawl(
            ONE_SECOND, deadline_us=3.6e6, voltage_scaling=True, power=model
        )
        race, best_novs = race_vs_crawl(
            ONE_SECOND, deadline_us=3.6e6, voltage_scaling=False, power=model
        )
        saving_vs = 1 - best_vs.energy_j / race.energy_j
        saving_novs = 1 - best_novs.energy_j / race.energy_j
        assert saving_vs > saving_novs

    def test_whole_system_racing_competitive(self):
        """With the Itsy's big fixed platform power, crawling pays the
        platform cost longer: the gap between race and best closes (and
        the best step is not the slowest feasible one)."""
        race, best = race_vs_crawl(
            ONE_SECOND, deadline_us=3.6e6, voltage_scaling=True
        )
        # Platform power dominates: best saves only a few percent.
        assert best.energy_j <= race.energy_j
        assert (race.energy_j - best.energy_j) / race.energy_j < 0.15

    def test_no_feasible_step_raises(self):
        with pytest.raises(ValueError):
            best_constant_step(ONE_SECOND, deadline_us=0.5e6)


class TestProcessorOnlyModel:
    def test_idle_is_free(self):
        from repro.hw.power import CoreState

        model = processor_only_model()
        assert model.total_w(STEP_206, VOLTAGE_HIGH, CoreState.NAP) == 0.0
        assert model.total_w(STEP_206, VOLTAGE_HIGH, CoreState.ACTIVE) > 0.0

    def test_sa2_shaped_savings(self):
        """Processor-only, voltage-scaled, 4x slower: the energy ratio is
        in the few-times range of the paper's SA-2 example."""
        model = processor_only_model()
        fast = energy_for_work(ONE_SECOND, STEP_206, VOLTAGE_HIGH, power=model)
        # slowest step (3.5x slower) at the reduced voltage
        slow = energy_for_work(ONE_SECOND, STEP_59, VOLTAGE_LOW, power=model)
        # The Itsy's 1.5->1.23 V swing is far smaller than the SA-2's, so
        # the saving is modest but real and in the busy-energy term.
        assert slow.energy_j < fast.energy_j
