"""Tests for utilization-series helpers (Figures 3/4)."""

import numpy as np
import pytest

from repro.analysis.utilization import (
    busy_idle_runs,
    moving_average,
    utilization_series,
    window_slice,
)
from repro.core.catalog import constant_speed
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload


class TestMovingAverage:
    def test_window_one_is_identity(self):
        values = [0.1, 0.9, 0.4]
        assert list(moving_average(values, 1)) == pytest.approx(values)

    def test_trailing_average(self):
        out = moving_average([1.0, 0.0, 1.0, 1.0], 2)
        assert list(out) == pytest.approx([1.0, 0.5, 0.5, 1.0])

    def test_ramp_in_head(self):
        out = moving_average([1.0, 1.0, 1.0, 1.0], 10)
        assert list(out) == pytest.approx([1.0] * 4)

    def test_smoothing_reduces_variance(self):
        rng = np.random.default_rng(0)
        raw = rng.integers(0, 2, 500).astype(float)
        smooth = moving_average(raw, 10)
        assert np.var(smooth) < np.var(raw)

    def test_empty(self):
        assert len(moving_average([], 5)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)


class TestWindowSlice:
    def test_slice(self):
        t = np.array([0.0, 10.0, 20.0, 30.0])
        v = np.array([1.0, 2.0, 3.0, 4.0])
        ts, vs = window_slice(t, v, 10.0, 30.0)
        assert list(vs) == [2.0, 3.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            window_slice(np.array([0.0]), np.array([1.0]), 5.0, 5.0)


class TestBusyIdleRuns:
    def test_run_length_encoding(self):
        runs = busy_idle_runs([1.0, 1.0, 0.0, 1.0, 0.0, 0.0])
        assert runs == [(True, 2), (False, 1), (True, 1), (False, 2)]

    def test_empty(self):
        assert busy_idle_runs([]) == []

    def test_threshold(self):
        runs = busy_idle_runs([0.6, 0.4], busy_above=0.5)
        assert runs == [(True, 1), (False, 1)]


class TestFromKernelRun:
    def test_series_extraction(self):
        res = run_workload(
            mpeg_workload(MpegConfig(duration_s=3.0)),
            lambda: constant_speed(206.4),
            seed=0,
            use_daq=False,
        )
        times, utils = utilization_series(res.run)
        assert len(times) == len(utils) == len(res.run.quanta)
        assert np.all(np.diff(times) == pytest.approx(10_000.0))
        assert np.all((utils >= 0) & (utils <= 1))

    def test_mpeg_frame_periodicity_in_runs(self):
        """§5.1: each MPEG frame is rendered in just under 7 quanta."""
        res = run_workload(
            mpeg_workload(MpegConfig(duration_s=4.0)),
            lambda: constant_speed(206.4),
            seed=0,
            use_daq=False,
        )
        _, utils = utilization_series(res.run)
        runs = busy_idle_runs(utils, busy_above=0.5)
        busy_lengths = [length for busy, length in runs if busy]
        mean_busy = sum(busy_lengths) / len(busy_lengths)
        assert 3.5 < mean_busy < 7.5
