"""Tests for oscillation metrics (Figure 7)."""

import pytest

from repro.analysis.oscillation import oscillation_stats
from repro.analysis.smoothing import avg_n_recursive, rectangle_wave
from repro.core.hysteresis import BEST_POLICY_THRESHOLDS, PERING_THRESHOLDS, ThresholdPair


class TestStats:
    def test_constant_series(self):
        stats = oscillation_stats([0.5] * 100)
        assert stats.amplitude == 0.0
        assert stats.crossings_per_step == 0.0
        assert stats.mean == pytest.approx(0.5)

    def test_alternating_series(self):
        stats = oscillation_stats([0.0, 1.0] * 100)
        assert stats.amplitude == pytest.approx(1.0)
        assert stats.crossings_per_step > 0.9

    def test_settle_fraction_drops_transient(self):
        series = [0.0] * 50 + [1.0] * 50
        stats = oscillation_stats(series, settle_fraction=0.6)
        assert stats.amplitude == 0.0  # only the settled tail remains

    def test_validation(self):
        with pytest.raises(ValueError):
            oscillation_stats([])
        with pytest.raises(ValueError):
            oscillation_stats([1.0], settle_fraction=1.0)


class TestFigure7:
    def test_avg3_on_mpeg_wave_oscillates_widely(self):
        """Figure 7: the filtered 9/1 wave keeps swinging over a wide band
        (its steady-state range is ~0.74-0.98)."""
        wave = rectangle_wave(9, 1, periods=80)
        filtered = avg_n_recursive(wave, 3)
        stats = oscillation_stats(filtered)
        assert stats.amplitude > 0.2
        assert stats.crossings_per_step > 0.1

    def test_avg3_on_half_duty_wave_escapes_pering_thresholds(self):
        """A wave straddling the 50/70 band keeps the policy scaling both
        ways forever under Pering's thresholds."""
        wave = rectangle_wave(6, 4, periods=80)
        filtered = avg_n_recursive(wave, 3)
        stats = oscillation_stats(filtered)
        assert stats.escapes(PERING_THRESHOLDS)

    def test_avg3_also_escapes_best_policy_thresholds(self):
        wave = rectangle_wave(9, 1, periods=80)
        filtered = avg_n_recursive(wave, 3)
        stats = oscillation_stats(filtered)
        assert stats.escapes(BEST_POLICY_THRESHOLDS)

    def test_wide_dead_zone_contains_oscillation(self):
        wave = rectangle_wave(9, 1, periods=80)
        filtered = avg_n_recursive(wave, 9)
        stats = oscillation_stats(filtered)
        generous = ThresholdPair(low=0.05, high=0.99)
        assert not stats.escapes(generous)

    def test_oscillation_persists_at_large_n(self):
        """Raising N shrinks but never removes the oscillation (§5.3)."""
        wave = rectangle_wave(9, 1, periods=400)
        amp_small = oscillation_stats(avg_n_recursive(wave, 1)).amplitude
        amp_large = oscillation_stats(avg_n_recursive(wave, 20)).amplitude
        assert amp_large < amp_small
        assert amp_large > 0.005
