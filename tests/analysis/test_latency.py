"""Tests for response-latency analysis."""

import pytest

from repro.analysis.latency import (
    is_unsynchronized,
    latency_stats,
    sync_drift_series,
)
from repro.traces.schema import AppEvent


def event(kind, time_us, deadline_us):
    return AppEvent(time_us=time_us, pid=1, kind=kind, deadline_us=deadline_us)


class TestLatencyStats:
    def test_per_kind_statistics(self):
        events = [
            event("frame", 90.0, 100.0),   # on time
            event("frame", 150.0, 100.0),  # 50 late
            event("frame", 300.0, 200.0),  # 100 late
            event("audio", 110.0, 100.0),  # 10 late
            AppEvent(time_us=1.0, pid=1, kind="note"),  # no deadline
        ]
        stats = latency_stats(events)
        assert set(stats) == {"frame", "audio"}
        frame = stats["frame"]
        assert frame.count == 3
        assert frame.on_time == 1
        assert frame.on_time_fraction == pytest.approx(1 / 3)
        assert frame.mean_us == pytest.approx(50.0)
        assert frame.max_us == 100.0

    def test_empty(self):
        assert latency_stats([]) == {}

    def test_from_kernel_run(self):
        from repro.core.catalog import constant_speed
        from repro.measure.runner import run_workload
        from repro.workloads.mpeg import MpegConfig, mpeg_workload

        res = run_workload(
            mpeg_workload(MpegConfig(duration_s=4.0)),
            lambda: constant_speed(132.7),
            seed=0,
            use_daq=False,
        )
        stats = latency_stats(res.run.events)
        assert "frame" in stats and "audio_chunk" in stats
        # 4 s at 15 fps = 60 frames; the last may be cut off by run end.
        assert stats["frame"].count in (59, 60)


class TestSyncDrift:
    def test_series_sorted_by_deadline(self):
        events = [
            event("frame", 250.0, 200.0),
            event("frame", 90.0, 100.0),
        ]
        times, lateness = sync_drift_series(events)
        assert list(times) == [100.0, 200.0]
        assert list(lateness) == [0.0, 50.0]

    def test_empty_series(self):
        times, lateness = sync_drift_series([])
        assert len(times) == len(lateness) == 0

    def test_transient_spike_not_unsynchronized(self):
        events = [
            event("frame", 100.0 + (200.0 if i == 5 else 0.0), 100.0 * (i + 1))
            for i in range(10)
        ]
        # one isolated late frame recovers: not a sync loss
        assert not is_unsynchronized(events, tolerance_us=50.0, sustained=3)

    def test_sustained_drift_detected(self):
        events = []
        for i in range(10):
            deadline = 100.0 * (i + 1)
            lateness = 80.0 if i >= 4 else 0.0
            events.append(event("frame", deadline + lateness, deadline))
        assert is_unsynchronized(events, tolerance_us=50.0, sustained=3)

    def test_infeasible_clock_is_unsynchronized(self):
        from repro.core.catalog import constant_speed
        from repro.measure.runner import run_workload
        from repro.workloads.mpeg import MpegConfig, mpeg_workload

        res = run_workload(
            mpeg_workload(MpegConfig(duration_s=6.0)),
            lambda: constant_speed(118.0),
            seed=0,
            use_daq=False,
        )
        assert is_unsynchronized(res.run.events, tolerance_us=80_000.0)

    def test_feasible_clock_stays_synchronized(self):
        from repro.core.catalog import constant_speed
        from repro.measure.runner import run_workload
        from repro.workloads.mpeg import MpegConfig, mpeg_workload

        res = run_workload(
            mpeg_workload(MpegConfig(duration_s=6.0)),
            lambda: constant_speed(132.7),
            seed=0,
            use_daq=False,
        )
        assert not is_unsynchronized(res.run.events, tolerance_us=80_000.0)


class TestElasticPlayer:
    def test_elastic_drops_instead_of_drifting(self):
        from repro.core.catalog import constant_speed
        from repro.measure.runner import run_workload
        from repro.workloads.mpeg import MpegConfig, mpeg_workload

        cfg = MpegConfig(duration_s=6.0, elastic=True)
        res = run_workload(
            mpeg_workload(cfg), lambda: constant_speed(103.2), seed=0, use_daq=False
        )
        drops = res.run.events_of_kind("frame_drop")
        rendered = res.run.events_of_kind("frame")
        assert drops  # too slow: frames get dropped
        # every frame is accounted for (the final one may be cut off by
        # the end of the simulated run)
        assert len(drops) + len(rendered) >= cfg.n_frames - 1
        # and the *rendered* frames stay roughly on schedule
        assert not is_unsynchronized(
            res.run.events, tolerance_us=80_000.0, sustained=5
        )

    def test_elastic_drops_nothing_when_feasible(self):
        from repro.core.catalog import constant_speed
        from repro.measure.runner import run_workload
        from repro.workloads.mpeg import MpegConfig, mpeg_workload

        cfg = MpegConfig(duration_s=6.0, elastic=True)
        res = run_workload(
            mpeg_workload(cfg), lambda: constant_speed(206.4), seed=0, use_daq=False
        )
        assert not res.run.events_of_kind("frame_drop")
