"""Tests for the generative workload fuzzer (FuzzSpec and friends)."""

import pickle
from dataclasses import replace

import pytest

from repro.core.catalog import resolve_policy
from repro.hw.machines import MachineSpec
from repro.measure.parallel import (
    PolicySpec,
    ResultCache,
    SweepCell,
    SweepEngine,
    WorkloadSpec,
    cache_key,
)
from repro.measure.runner import run_workload
from repro.workloads.fuzz import FuzzSpec, fuzz_family, fuzz_plan, fuzz_workload


def run_spec(spec, policy="best", machine="itsy", seed=0, backend=None):
    mspec = MachineSpec.parse(machine)
    return run_workload(
        fuzz_workload(spec),
        resolve_policy(policy, clock_table=mspec.clock_table()),
        machine_factory=mspec,
        seed=seed,
        use_daq=False,
        backend=backend,
    )


class TestSpecValidation:
    def test_defaults_valid(self):
        FuzzSpec()

    @pytest.mark.parametrize("field,value", [
        ("duration_s", 0.0),
        ("duration_s", -1.0),
        ("phases", 0),
        ("processes", 0),
        ("periodicity_ms", 0.0),
        ("tolerance_us", -1.0),
        ("burstiness", 1.5),
        ("ramp", -0.1),
        ("idle_storm", 2.0),
        ("deadline_tightness", -0.5),
    ])
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            FuzzSpec(**{field: value})

    def test_hashable_and_picklable(self):
        spec = FuzzSpec(seed=9, burstiness=0.7)
        assert hash(spec) == hash(FuzzSpec(seed=9, burstiness=0.7))
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestDeterminism:
    def test_plans_are_pure_functions_of_seeds(self):
        spec = FuzzSpec(seed=5, processes=2)
        assert fuzz_plan(spec, seed=3) == fuzz_plan(spec, seed=3)

    def test_run_seed_changes_plan(self):
        spec = FuzzSpec(seed=5)
        assert fuzz_plan(spec, seed=0) != fuzz_plan(spec, seed=1)

    def test_spec_seed_changes_plan(self):
        assert fuzz_plan(FuzzSpec(seed=1)) != fuzz_plan(FuzzSpec(seed=2))

    def test_processes_get_distinct_streams(self):
        plans = fuzz_plan(FuzzSpec(seed=5, processes=2))
        assert plans[0] != plans[1]

    def test_repeated_runs_bitwise_identical(self):
        spec = FuzzSpec(seed=13, duration_s=0.5)
        a = run_spec(spec)
        b = run_spec(spec)
        assert a.exact_energy_j == b.exact_energy_j
        assert a.run.quanta == b.run.quanta
        assert a.run.events == b.run.events

    def test_different_seeds_diverge(self):
        a = run_spec(FuzzSpec(seed=1, duration_s=0.5))
        b = run_spec(FuzzSpec(seed=2, duration_s=0.5))
        assert a.exact_energy_j != b.exact_energy_j


class TestWorkloadShape:
    def test_duration_honoured(self):
        spec = FuzzSpec(seed=3, duration_s=0.8)
        res = run_spec(spec)
        assert res.run.duration_us == pytest.approx(0.8e6)

    def test_emits_deadline_events(self):
        res = run_spec(FuzzSpec(seed=3, duration_s=1.0))
        kinds = {e.kind for e in res.run.events}
        assert "fuzz_job" in kinds

    def test_idle_storm_only_spec_runs_no_jobs(self):
        # idle_storm=1.0 turns every phase into pure sleep: no jobs, no
        # deadline events, and only the kernel's own per-quantum tick
        # overhead (a few us) shows up as busy time.
        spec = FuzzSpec(seed=0, duration_s=0.5, idle_storm=1.0)
        res = run_spec(spec, policy="const-206.4")
        assert not any(e.kind == "fuzz_job" for e in res.run.events)
        assert res.run.mean_utilization() < 0.001

    def test_multi_process_spawns_all(self):
        spec = FuzzSpec(seed=4, duration_s=0.5, processes=3)
        res = run_spec(spec)
        fuzz_pids = [
            name for name in res.run.process_names.values()
            if name.startswith("fuzz-4-p")
        ]
        assert len(fuzz_pids) == 3

    def test_family_is_deterministic_and_diverse(self):
        fam = fuzz_family(6, master_seed=2)
        assert fam == fuzz_family(6, master_seed=2)
        assert len({spec.seed for spec in fam}) == 6
        assert len({spec.phases for spec in fam}) > 1
        assert fam != fuzz_family(6, master_seed=3)

    def test_family_count_validated(self):
        with pytest.raises(ValueError):
            fuzz_family(0)


class TestSweepAxis:
    """FuzzSpec is a first-class, cache-keyed sweep axis."""

    def cell(self, spec, machine="itsy"):
        return SweepCell(
            workload=WorkloadSpec("fuzz", spec),
            policy=PolicySpec("best"),
            machine=MachineSpec.parse(machine),
            seed=0,
            use_daq=False,
        )

    def test_equal_specs_share_cache_keys(self):
        a = self.cell(FuzzSpec(seed=8, duration_s=0.5))
        b = self.cell(FuzzSpec(seed=8, duration_s=0.5))
        assert cache_key(a) == cache_key(b)

    def test_any_knob_changes_the_key(self):
        base = FuzzSpec(seed=8, duration_s=0.5)
        key = cache_key(self.cell(base))
        for variant in (
            replace(base, seed=9),
            replace(base, burstiness=0.9),
            replace(base, deadline_tightness=0.1),
            replace(base, processes=2),
        ):
            assert cache_key(self.cell(variant)) != key

    def test_machine_axis_composes(self):
        spec = FuzzSpec(seed=8, duration_s=0.5)
        assert cache_key(self.cell(spec, "itsy")) != cache_key(
            self.cell(spec, "itsy-reconf")
        )

    def test_sweep_cache_round_trip(self, tmp_path):
        cell = self.cell(FuzzSpec(seed=8, duration_s=0.5))
        cold = SweepEngine(jobs=1, cache=ResultCache(tmp_path))
        first = cold.run([cell])[0]
        assert cold.stats.executed == 1
        warm = SweepEngine(jobs=1, cache=ResultCache(tmp_path))
        second = warm.run([cell])[0]
        assert warm.stats.cache_hits == 1 and warm.stats.executed == 0
        assert second.energy_j == first.energy_j
        assert second.mean_utilization == first.mean_utilization
