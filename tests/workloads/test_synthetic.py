"""Tests for the synthetic analysis workloads."""

import pytest

from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.hw.work import Work
from repro.kernel.scheduler import Kernel, KernelConfig
from repro.workloads.synthetic import (
    cycle_demand_body,
    rectangle_wave_body,
    step_body,
)

Q = 10_000.0
CFG = KernelConfig(sched_overhead_us=0.0)


def run_body(body, quanta, mhz=206.4, governor=None):
    kernel = Kernel(ItsyMachine(ItsyConfig(initial_mhz=mhz)), governor, CFG)
    kernel.spawn("synthetic", body)
    return kernel.run(quanta * Q)


class TestRectangleWave:
    def test_nine_one_pattern(self):
        run = run_body(rectangle_wave_body(9, 1, 40 * Q), 40)
        utils = run.utilizations()
        expected = ([1.0] * 9 + [0.0]) * 4
        assert utils == pytest.approx(expected)

    def test_pattern_is_frequency_invariant(self):
        u_fast = run_body(rectangle_wave_body(3, 2, 20 * Q), 20, mhz=206.4)
        u_slow = run_body(rectangle_wave_body(3, 2, 20 * Q), 20, mhz=59.0)
        assert u_fast.utilizations() == pytest.approx(u_slow.utilizations())

    def test_zero_idle_is_solid_busy(self):
        run = run_body(rectangle_wave_body(5, 0, 10 * Q), 10)
        assert run.mean_utilization() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            rectangle_wave_body(0, 1, Q)
        with pytest.raises(ValueError):
            rectangle_wave_body(1, -1, Q)


class TestStep:
    def test_busy_then_idle(self):
        run = run_body(step_body(busy_us=150_000.0, idle_us=50_000.0), 20)
        utils = run.utilizations()
        assert utils[:15] == pytest.approx([1.0] * 15)
        assert utils[15:] == pytest.approx([0.0] * 5)

    def test_start_delay(self):
        run = run_body(step_body(30_000.0, 0.0, start_delay_us=20_000.0), 5)
        assert run.utilizations() == pytest.approx([0.0, 0.0, 1.0, 1.0, 1.0])

    def test_repeat(self):
        run = run_body(step_body(20_000.0, 20_000.0, repeat=2), 8)
        assert run.utilizations() == pytest.approx(
            [1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            step_body(0.0, 1.0)
        with pytest.raises(ValueError):
            step_body(1.0, -1.0)


class TestCycleDemand:
    def test_meets_period_at_full_speed(self):
        work = Work(cpu_cycles=206.4 * 5_000.0)  # 5 ms at 206.4
        run = run_body(cycle_demand_body(work, 20_000.0, 200_000.0), 20)
        jobs = run.events_of_kind("job")
        assert len(jobs) == 10
        assert all(j.on_time for j in jobs)

    def test_overruns_at_low_speed(self):
        work = Work(cpu_cycles=206.4 * 15_000.0)  # 15 ms at 206.4 > 20 ms at 59
        run = run_body(cycle_demand_body(work, 20_000.0, 400_000.0), 40, mhz=59.0)
        jobs = run.events_of_kind("job")
        assert any(not j.on_time for j in jobs)

    def test_slower_clock_raises_utilization(self):
        work = Work(cpu_cycles=206.4 * 5_000.0)
        fast = run_body(cycle_demand_body(work, 20_000.0, 200_000.0), 20, mhz=206.4)
        slow = run_body(cycle_demand_body(work, 20_000.0, 200_000.0), 20, mhz=118.0)
        assert slow.mean_utilization() > fast.mean_utilization()

    def test_validation(self):
        with pytest.raises(ValueError):
            cycle_demand_body(Work(cpu_cycles=1.0), 0.0, 100.0)
