"""Tests for trace-driven replay workloads."""

import pytest

from repro.core.catalog import best_policy, constant_speed
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload
from repro.workloads.replay import (
    RecordedQuantum,
    ReplayMode,
    record_from_quanta,
    record_from_run,
    replay_body,
    replay_workload,
)


@pytest.fixture(scope="module")
def mpeg_trace():
    res = run_workload(
        mpeg_workload(MpegConfig(duration_s=8.0)),
        lambda: constant_speed(206.4),
        seed=2,
        use_daq=False,
    )
    return record_from_run(res.run)


class TestRecording:
    def test_record_from_run(self, mpeg_trace):
        assert len(mpeg_trace) == 800
        assert all(q.mhz == 206.4 for q in mpeg_trace)
        assert any(q.busy_us > 9_000 for q in mpeg_trace)

    def test_work_cycles(self):
        rec = RecordedQuantum(busy_us=5_000.0, mhz=206.4, quantum_us=10_000.0)
        assert rec.work_cycles == pytest.approx(5_000.0 * 206.4)

    def test_record_from_quanta_matches(self, mpeg_trace):
        from repro.traces.schema import QuantumRecord

        quanta = [
            QuantumRecord(10_000.0 * (i + 1), q.busy_us, q.quantum_us, 10, q.mhz, 1.5)
            for i, q in enumerate(mpeg_trace)
        ]
        assert record_from_quanta(quanta) == mpeg_trace

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            replay_body([], ReplayMode.TIME)


class TestTimeReplay:
    def test_reproduces_utilization_at_same_speed(self, mpeg_trace):
        wl = replay_workload(mpeg_trace, ReplayMode.TIME)
        res = run_workload(wl, lambda: constant_speed(206.4), seed=0, use_daq=False)
        orig_util = sum(q.busy_us for q in mpeg_trace) / (len(mpeg_trace) * 10_000.0)
        assert res.run.mean_utilization() == pytest.approx(orig_util, abs=0.02)

    def test_time_replay_is_clock_invariant(self, mpeg_trace):
        wl = replay_workload(mpeg_trace, ReplayMode.TIME)
        fast = run_workload(wl, lambda: constant_speed(206.4), seed=0, use_daq=False)
        wl2 = replay_workload(mpeg_trace, ReplayMode.TIME)
        slow = run_workload(wl2, lambda: constant_speed(59.0), seed=0, use_daq=False)
        # the busy pattern does not stretch: utilization is unchanged and
        # no deadlines are missed even at the bottom step
        assert slow.run.mean_utilization() == pytest.approx(
            fast.run.mean_utilization(), abs=0.02
        )
        assert not slow.missed


class TestWorkReplay:
    def test_work_replay_on_time_at_recording_speed(self, mpeg_trace):
        wl = replay_workload(mpeg_trace, ReplayMode.WORK)
        res = run_workload(wl, lambda: constant_speed(206.4), seed=0, use_daq=False)
        assert not res.missed

    def test_work_replay_misses_at_low_speed(self, mpeg_trace):
        wl = replay_workload(mpeg_trace, ReplayMode.WORK)
        res = run_workload(wl, lambda: constant_speed(59.0), seed=0, use_daq=False)
        assert res.missed

    def test_work_replay_stretches_utilization(self, mpeg_trace):
        wl_fast = replay_workload(mpeg_trace, ReplayMode.WORK)
        fast = run_workload(
            wl_fast, lambda: constant_speed(206.4), seed=0, use_daq=False
        )
        wl_slow = replay_workload(mpeg_trace, ReplayMode.WORK)
        slow = run_workload(
            wl_slow, lambda: constant_speed(132.7), seed=0, use_daq=False
        )
        assert slow.run.mean_utilization() > fast.run.mean_utilization() + 0.05


class TestTimeVsWorkSemantics:
    """The same recording means different things under the two modes:
    WORK preserves recorded cycles (faster clock finishes early), TIME
    preserves recorded busy time (faster clock changes nothing)."""

    #: 50 quanta recorded at the bottom step, 80% busy.
    LOW_SPEED_TRACE = [
        RecordedQuantum(busy_us=8_000.0, mhz=59.0, quantum_us=10_000.0)
        for _ in range(50)
    ]

    def busy_us(self, mode, mhz):
        wl = replay_workload(self.LOW_SPEED_TRACE, mode)
        res = run_workload(wl, lambda: constant_speed(mhz), seed=0, use_daq=False)
        return sum(res.run.busy_us_by_pid.values())

    def test_modes_agree_at_recording_speed(self):
        work = self.busy_us(ReplayMode.WORK, 59.0)
        time = self.busy_us(ReplayMode.TIME, 59.0)
        assert work == pytest.approx(time, rel=0.02)

    def test_work_mode_finishes_early_at_higher_step(self):
        at_59 = self.busy_us(ReplayMode.WORK, 59.0)
        at_206 = self.busy_us(ReplayMode.WORK, 206.4)
        # recorded cycles are fixed, so busy time scales as 59/206.4
        assert at_206 == pytest.approx(at_59 * 59.0 / 206.4, rel=0.05)

    def test_time_mode_busy_is_step_invariant(self):
        at_59 = self.busy_us(ReplayMode.TIME, 59.0)
        at_206 = self.busy_us(ReplayMode.TIME, 206.4)
        assert at_206 == pytest.approx(at_59, rel=0.02)


class TestMethodologyGap:
    def test_policy_looks_better_on_time_replay(self, mpeg_trace):
        """The paper's §3 criticism, quantified: the same policy saves more
        energy with zero misses on a TIME trace than on the WORK version
        of the same recording."""
        time_res = run_workload(
            replay_workload(mpeg_trace, ReplayMode.TIME),
            best_policy,
            seed=0,
            use_daq=False,
        )
        work_res = run_workload(
            replay_workload(mpeg_trace, ReplayMode.WORK),
            best_policy,
            seed=0,
            use_daq=False,
        )
        assert not time_res.missed
        # TIME replay lets the policy idle at low clock without penalty:
        # less energy than the honest WORK replay.
        assert time_res.exact_energy_j < work_res.exact_energy_j


class TestDescriptor:
    def test_workload_names_and_duration(self, mpeg_trace):
        wl = replay_workload(mpeg_trace, ReplayMode.WORK, name="mpeg")
        assert wl.name == "mpeg-work"
        assert wl.duration_s == pytest.approx(8.0)
