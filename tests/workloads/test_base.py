"""Tests for workload building blocks."""

import random

import pytest

from repro.hw.clocksteps import SA1100_CLOCK_TABLE
from repro.workloads.base import (
    AUDIO_CHUNK_PROFILE,
    FULL_SPEED,
    JAVA_PROFILE,
    MPEG_FRAME_PROFILE,
    WorkProfile,
    jitter_factor,
)

STEP_132 = SA1100_CLOCK_TABLE.step_for_mhz(132.7)
STEP_206 = SA1100_CLOCK_TABLE.max_step


class TestWorkProfile:
    def test_work_scales_components(self):
        p = WorkProfile(100.0, 10.0, 1.0)
        w = p.work(2.0)
        assert w.cpu_cycles == 200.0
        assert w.mem_refs == 20.0
        assert w.cache_refs == 2.0

    def test_work_for_duration_round_trips(self):
        p = JAVA_PROFILE
        w = p.work_for_duration(5_000.0, STEP_206)
        from repro.hw.memory import SA1100_MEMORY_TIMINGS

        assert w.duration_us(STEP_206, SA1100_MEMORY_TIMINGS) == pytest.approx(5_000.0)

    def test_work_for_duration_negative_rejected(self):
        with pytest.raises(ValueError):
            JAVA_PROFILE.work_for_duration(-1.0, STEP_206)

    def test_full_speed_is_206(self):
        assert FULL_SPEED.mhz == pytest.approx(206.4)


class TestProfileCalibration:
    """The work-mix calibrations DESIGN.md relies on."""

    def test_mpeg_frame_near_60ms_at_132(self):
        d = MPEG_FRAME_PROFILE.unit_duration_us(STEP_132)
        assert 58_000 < d < 63_000

    def test_mpeg_frame_near_47ms_at_206(self):
        d = MPEG_FRAME_PROFILE.unit_duration_us(STEP_206)
        assert 45_000 < d < 49_000

    def test_mpeg_memory_boundness(self):
        # Cycle inflation from 132.7 to 206.4 MHz should be ~15-25 %
        # (behind Figure 9's shape).
        from repro.hw.memory import SA1100_MEMORY_TIMINGS

        w = MPEG_FRAME_PROFILE.work(1.0)
        c132 = w.total_cycles(STEP_132, SA1100_MEMORY_TIMINGS)
        c206 = w.total_cycles(STEP_206, SA1100_MEMORY_TIMINGS)
        assert 1.15 < c206 / c132 < 1.25

    def test_audio_chunk_small(self):
        d = AUDIO_CHUNK_PROFILE.unit_duration_us(STEP_132)
        assert 1_500 < d < 3_500

    def test_java_most_memory_bound(self):
        from repro.hw.memory import SA1100_MEMORY_TIMINGS

        def inflation(profile):
            w = profile.work(1.0)
            return w.total_cycles(STEP_206, SA1100_MEMORY_TIMINGS) / w.total_cycles(
                STEP_132, SA1100_MEMORY_TIMINGS
            )

        assert inflation(JAVA_PROFILE) > inflation(MPEG_FRAME_PROFILE)


class TestJitter:
    def test_jitter_centred_and_small(self):
        rng = random.Random(0)
        samples = [jitter_factor(rng, 0.02) for _ in range(4000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(1.0, abs=0.005)
        assert all(0.9 <= s <= 1.1 for s in samples)

    def test_jitter_clipped_at_4_sigma(self):
        rng = random.Random(0)
        samples = [jitter_factor(rng, 0.05) for _ in range(10000)]
        assert max(samples) <= 1.2 + 1e-12
        assert min(samples) >= 0.8 - 1e-12

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            jitter_factor(random.Random(0), -0.1)

    def test_zero_sigma_is_deterministic(self):
        rng = random.Random(0)
        assert jitter_factor(rng, 0.0) == 1.0


class TestCombineWorkloads:
    def test_components_share_the_kernel(self):
        from repro.core.catalog import constant_speed
        from repro.measure.runner import run_workload
        from repro.workloads.base import combine_workloads
        from repro.workloads.mpeg import MpegConfig, mpeg_workload
        from repro.workloads.web import WebConfig, web_workload

        combo = combine_workloads(
            "mpeg+web",
            mpeg_workload(MpegConfig(duration_s=10.0)),
            web_workload(WebConfig(duration_s=20.0)),
        )
        assert combo.duration_s == 20.0
        res = run_workload(combo, lambda: constant_speed(206.4), seed=0, use_daq=False)
        kinds = {e.kind for e in res.run.events}
        assert "frame" in kinds and "ui_response" in kinds

    def test_tolerance_is_strictest(self):
        from repro.workloads.base import combine_workloads
        from repro.workloads.mpeg import mpeg_workload
        from repro.workloads.web import web_workload

        combo = combine_workloads("x", mpeg_workload(), web_workload())
        assert combo.tolerance_us == 0.0  # web's strict budget-in-deadline

    def test_multitasking_raises_contention(self):
        """Two MPEG players at once saturate a machine one would not."""
        from repro.core.catalog import constant_speed
        from repro.measure.runner import run_workload
        from repro.workloads.base import combine_workloads
        from repro.workloads.mpeg import MpegConfig, mpeg_workload

        single = run_workload(
            mpeg_workload(MpegConfig(duration_s=10.0)),
            lambda: constant_speed(206.4),
            seed=0,
            use_daq=False,
        )
        double = run_workload(
            combine_workloads(
                "mpeg x2",
                mpeg_workload(MpegConfig(duration_s=10.0)),
                mpeg_workload(MpegConfig(duration_s=10.0)),
            ),
            lambda: constant_speed(206.4),
            seed=0,
            use_daq=False,
        )
        assert double.run.mean_utilization() > single.run.mean_utilization() + 0.2
        # two full decodes exceed the machine: the second stream misses
        assert double.missed

    def test_empty_rejected(self):
        import pytest as _pytest

        from repro.workloads.base import combine_workloads

        with _pytest.raises(ValueError):
            combine_workloads("empty")
