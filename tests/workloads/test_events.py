"""Tests for input-event traces."""

import pytest

from repro.workloads.events import (
    InputEvent,
    InputTrace,
    chess_trace,
    editor_trace,
    quantize_ms,
    web_trace,
)


class TestQuantization:
    def test_quantize_rounds_to_ms(self):
        assert quantize_ms(1_499.0) == 1_000.0
        assert quantize_ms(1_501.0) == 2_000.0
        assert quantize_ms(0.0) == 0.0

    def test_trace_quantizes_and_sorts(self):
        trace = InputTrace(
            [InputEvent(5_400.0, "b"), InputEvent(1_600.0, "a")]
        )
        assert [e.kind for e in trace] == ["a", "b"]
        assert trace[0].time_us == 2_000.0
        assert trace[1].time_us == 5_000.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            InputEvent(-1.0, "x")


class TestTraceApi:
    def test_len_iter_duration(self):
        trace = InputTrace([InputEvent(1e6, "a"), InputEvent(2e6, "b")])
        assert len(trace) == 2
        assert trace.duration_us == 2e6
        assert InputTrace([]).duration_us == 0.0

    def test_of_kind(self):
        trace = InputTrace(
            [InputEvent(1e6, "a"), InputEvent(2e6, "b"), InputEvent(3e6, "a")]
        )
        assert [e.time_us for e in trace.of_kind("a")] == [1e6, 3e6]


class TestWebTrace:
    def test_structure(self):
        trace = web_trace(seed=0)
        kinds = [e.kind for e in trace]
        assert kinds.count("page_load") == 2
        assert kinds.count("back") == 1
        assert kinds.count("scroll") > 10

    def test_fits_duration(self):
        trace = web_trace(seed=0, duration_s=190.0)
        assert trace.duration_us < 190e6

    def test_deterministic_per_seed(self):
        a, b = web_trace(seed=5), web_trace(seed=5)
        assert [(e.time_us, e.kind) for e in a] == [(e.time_us, e.kind) for e in b]

    def test_seeds_differ(self):
        a, b = web_trace(seed=1), web_trace(seed=2)
        assert [(e.time_us, e.kind) for e in a] != [(e.time_us, e.kind) for e in b]

    def test_second_page_is_heavier(self):
        trace = web_trace(seed=0)
        loads = trace.of_kind("page_load")
        assert loads[1].magnitude > loads[0].magnitude


class TestChessTrace:
    def test_alternating_moves(self):
        trace = chess_trace(seed=0)
        kinds = [e.kind for e in trace]
        # user and engine moves alternate strictly
        for a, b in zip(kinds, kinds[1:]):
            assert a != b
        assert kinds[0] == "user_move"

    def test_book_moves_fast_then_timed_search(self):
        trace = chess_trace(seed=0)
        searches = [e.magnitude for e in trace.of_kind("engine_move")]
        assert all(s < 0.5 for s in searches[:3])
        assert all(s >= 2.0 for s in searches[3:])

    def test_fits_duration(self):
        trace = chess_trace(seed=0, duration_s=218.0)
        assert trace.duration_us < 218e6


class TestEditorTrace:
    def test_two_speak_events(self):
        trace = editor_trace(seed=0)
        speaks = trace.of_kind("speak")
        assert len(speaks) == 2
        assert speaks[1].magnitude > speaks[0].magnitude  # longer second file

    def test_dialogs_precede_opens(self):
        trace = editor_trace(seed=0)
        first_open = trace.of_kind("open_file")[0].time_us
        dialogs_before = [
            e for e in trace.of_kind("dialog") if e.time_us < first_open
        ]
        assert len(dialogs_before) >= 3

    def test_fits_duration(self):
        trace = editor_trace(seed=0, duration_s=70.0)
        assert trace.duration_us < 70e6
