"""Tests for the Kaffe JVM behaviours."""

import pytest

from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.kernel.scheduler import Kernel, KernelConfig
from repro.workloads.java import JavaConfig, jit_warmup_work, spawn_jvm_poller

Q = 10_000.0


def run_poller(seconds=2.0, mhz=206.4):
    kernel = Kernel(
        ItsyMachine(ItsyConfig(initial_mhz=mhz)),
        config=KernelConfig(sched_overhead_us=0.0),
    )
    spawn_jvm_poller(kernel, seed=0, cfg=JavaConfig(duration_s=seconds))
    return kernel.run(seconds * 1e6)


class TestPoller:
    def test_constant_low_background_load(self):
        run = run_poller()
        # ~1 ms of work roughly every 30-40 ms -> a few percent utilization.
        assert 0.01 < run.mean_utilization() < 0.10

    def test_poll_period_visible_in_quanta(self):
        run = run_poller()
        busy = [q.utilization > 0.001 for q in run.quanta]
        # Polling touches a quantum every ~3-4 quanta, never all of them.
        assert 0.2 < sum(busy) / len(busy) < 0.9

    def test_polls_cost_more_at_low_clock(self):
        fast = run_poller(mhz=206.4)
        slow = run_poller(mhz=59.0)
        assert slow.mean_utilization() > 1.5 * fast.mean_utilization()

    def test_poller_stops_at_duration(self):
        run_poller(seconds=1.0)
        # run two extra quanta beyond the poller's life: no activity there
        kernel = Kernel(
            ItsyMachine(ItsyConfig()), config=KernelConfig(sched_overhead_us=0.0)
        )
        spawn_jvm_poller(kernel, seed=0, cfg=JavaConfig(duration_s=0.5))
        long_run = kernel.run(1.0e6)
        tail = [q.utilization for q in long_run.quanta[60:]]
        assert all(u == 0.0 for u in tail)


class TestJitWarmup:
    def test_warmup_scales_with_magnitude(self):
        cfg = JavaConfig()
        small = jit_warmup_work(cfg, 0.5)
        large = jit_warmup_work(cfg, 2.0)
        assert large.cpu_cycles == pytest.approx(4 * small.cpu_cycles)

    def test_warmup_duration_matches_config(self):
        from repro.hw.memory import SA1100_MEMORY_TIMINGS
        from repro.workloads.base import FULL_SPEED

        cfg = JavaConfig(jit_unit_us_at_206=100_000.0)
        w = jit_warmup_work(cfg, 1.0)
        assert w.duration_us(FULL_SPEED, SA1100_MEMORY_TIMINGS) == pytest.approx(
            100_000.0
        )
