"""Validation of workload configuration parameters."""

import pytest

from repro.workloads.chess import ChessConfig
from repro.workloads.editor import EditorConfig
from repro.workloads.mpeg import MpegConfig
from repro.workloads.web import WebConfig


class TestMpegConfig:
    def test_defaults_valid(self):
        MpegConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fps": 0.0},
            {"fps": -15.0},
            {"duration_s": 0.0},
            {"gop": 0},
            {"i_scale": 0.0},
            {"p_scale": -1.0},
            {"frame_work_scale": 0.0},
            {"i_jitter_prob": 1.5},
            {"i_jitter_prob": -0.1},
            {"spin_threshold_us": -1.0},
            {"sync_tolerance_us": -1.0},
            {"audio_chunk_ms": 0.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MpegConfig(**kwargs)


class TestWebConfig:
    def test_defaults_valid(self):
        WebConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_s": 0.0},
            {"page_load_us_at_206": -1.0},
            {"scroll_us_at_206": -1.0},
            {"back_us_at_206": -1.0},
            {"response_budget_us": -1.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WebConfig(**kwargs)


class TestChessConfig:
    def test_defaults_valid(self):
        ChessConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_s": -1.0},
            {"gui_burst_us_at_206": -1.0},
            {"search_slice_us_at_206": 0.0},
            {"response_budget_us": -1.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChessConfig(**kwargs)


class TestEditorConfig:
    def test_defaults_valid(self):
        EditorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_s": 0.0},
            {"chunk_speech_s": 0.0},
            {"synth_cpu_per_speech_s_at_206": 0.0},
            {"gap_tolerance_us": -1.0},
            {"response_budget_us": -1.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EditorConfig(**kwargs)
