"""Tests for the Chess workload."""

import pytest

from repro.core.catalog import constant_speed
from repro.measure.runner import run_workload
from repro.workloads.chess import ChessConfig, chess_workload

SHORT = ChessConfig(duration_s=60.0)


def run_at(mhz, cfg=SHORT, seed=1):
    return run_workload(
        chess_workload(cfg), lambda: constant_speed(mhz), seed=seed, use_daq=False
    )


class TestSearchBehaviour:
    def test_search_is_time_bounded_not_work_bounded(self):
        """Crafty searches for wall-clock budgets: utilization during the
        search is ~100 % at any clock, and replies land at similar times."""
        res_fast = run_at(206.4)
        res_slow = run_at(103.2)
        replies_fast = [e.time_us for e in res_fast.run.events_of_kind("engine_reply")]
        replies_slow = [e.time_us for e in res_slow.run.events_of_kind("engine_reply")]
        assert len(replies_fast) == len(replies_slow)
        for a, b in zip(replies_fast, replies_slow):
            assert b == pytest.approx(a, abs=300_000)  # within a GUI burst

    def test_full_utilization_during_search(self):
        res = run_at(206.4)
        # There must be sustained 100 %-busy stretches (the searches).
        utils = res.run.utilizations()
        longest = best = 0
        for u in utils:
            best = best + 1 if u > 0.99 else 0
            longest = max(longest, best)
        assert longest >= 100  # at least one >1 s fully-busy stretch

    def test_low_utilization_while_user_thinks(self):
        res = run_at(206.4)
        idle_quanta = sum(1 for u in res.run.utilizations() if u < 0.2)
        assert idle_quanta > len(res.run.quanta) * 0.3


class TestResponsiveness:
    def test_meets_deadlines_at_132(self):
        assert not run_at(132.7).missed

    def test_misses_at_59(self):
        assert run_at(59.0).missed

    def test_descriptor(self):
        wl = chess_workload()
        assert wl.name == "Chess"
        assert wl.duration_s == 218.0
