"""Workload fidelity: the narrative claims of §4.2 and §5.1, asserted.

The paper describes each application's demand structure in prose; these
tests pin the synthetic workloads to that prose so refactors cannot
silently drift away from the shapes the policies are evaluated against.
"""

import numpy as np
import pytest

from repro.analysis.utilization import busy_idle_runs, moving_average
from repro.core.catalog import constant_speed
from repro.measure.runner import run_workload
from repro.workloads.chess import ChessConfig, chess_workload
from repro.workloads.editor import EditorConfig, editor_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload
from repro.workloads.web import WebConfig, web_workload


def utilizations(workload, seed=3, mhz=206.4):
    res = run_workload(
        workload, lambda: constant_speed(mhz), seed=seed, use_daq=False
    )
    return res.run


class TestMpegFidelity:
    """'The MPEG application renders at 15 frames/sec ... Each frame is
    rendered in 67ms or just under 7 scheduling quanta' and shows
    'significant variance in CPU utilization' even smoothed."""

    @pytest.fixture(scope="class")
    def run(self):
        return utilizations(mpeg_workload(MpegConfig(duration_s=20.0)))

    def test_frame_periodicity(self, run):
        frames = run.events_of_kind("frame")
        deadlines = sorted(e.deadline_us for e in frames)
        gaps = np.diff(deadlines)
        assert np.allclose(gaps, 1e6 / 15, atol=1.0)

    def test_interframe_variation(self, run):
        """I-frames cost visibly more than P-frames."""
        frames = run.events_of_kind("frame")
        times = [e.time_us for e in sorted(frames, key=lambda e: e.payload)]
        decode_spans = np.diff([0.0] + times)[1:]
        assert np.std(decode_spans) > 1_000.0

    def test_one_second_average_still_varies(self, run):
        ma = moving_average(run.utilizations(), 100)
        settled = ma[200:]
        assert np.max(settled) - np.min(settled) > 0.05


class TestWebFidelity:
    """'We scrolled down the page, reading the full article' -- long idle
    gaps between render bursts, with the 30 ms Java poll underneath."""

    @pytest.fixture(scope="class")
    def run(self):
        return utilizations(web_workload(WebConfig(duration_s=80.0)))

    def test_long_reading_pauses(self, run):
        runs = busy_idle_runs(run.utilizations(), busy_above=0.5)
        idle_lengths = [n for busy, n in runs if not busy]
        # reading pauses of seconds: idle stretches of 100+ quanta exist
        assert max(idle_lengths) > 100

    def test_render_bursts_are_short(self, run):
        runs = busy_idle_runs(run.utilizations(), busy_above=0.5)
        busy_lengths = [n for busy, n in runs if busy]
        assert busy_lengths and max(busy_lengths) < 200  # < 2 s

    def test_poll_activity_during_idle(self, run):
        # during "idle" reading, the 30 ms poll keeps some quanta slightly
        # busy: quanta with 0 < util < 0.5 are common
        utils = run.utilizations()
        polling = sum(1 for u in utils if 0.0 < u < 0.5)
        assert polling > len(utils) * 0.1


class TestChessFidelity:
    """Figure 4c: 'utilization is low when the user is thinking or making
    a move and ... reaches 100% when Crafty is planning moves.'"""

    @pytest.fixture(scope="class")
    def run(self):
        return utilizations(chess_workload(ChessConfig(duration_s=90.0)))

    def test_bimodal_utilization(self, run):
        utils = np.array(run.utilizations())
        low = np.mean(utils < 0.2)
        high = np.mean(utils > 0.95)
        assert low > 0.25
        assert high > 0.15
        assert low + high > 0.6  # mostly at the extremes

    def test_search_stretches_are_seconds_long(self, run):
        runs = busy_idle_runs(run.utilizations(), busy_above=0.9)
        busy_lengths = [n for busy, n in runs if busy]
        assert max(busy_lengths) >= 200  # >= 2 s of solid search


class TestEditorFidelity:
    """Figure 3d/4d: 'bursty behavior prior to the speech synthesis ...
    Following this are long bursts of computation as the text is actually
    synthesized' -- the burst phase precedes the synthesis phase."""

    @pytest.fixture(scope="class")
    def run(self):
        return utilizations(editor_workload(EditorConfig()))

    def test_burst_phase_before_synthesis_phase(self, run):
        utils = np.array(run.utilizations())
        runs = busy_idle_runs(utils, busy_above=0.9)
        # find the first long (>1 s) solid-busy stretch: synthesis
        position = 0
        synthesis_start = None
        for busy, length in runs:
            if busy and length >= 100:
                synthesis_start = position
                break
            position += length
        assert synthesis_start is not None
        # before it, there is bursty activity (nonzero but fragmented)
        head = utils[:synthesis_start]
        assert np.mean(head > 0.5) > 0.02
        head_runs = [n for b, n in busy_idle_runs(head, busy_above=0.5) if b]
        assert head_runs and max(head_runs) < 100

    def test_two_synthesis_phases(self, run):
        """Two files are spoken: two separated long busy stretches."""
        runs = busy_idle_runs(run.utilizations(), busy_above=0.9)
        long_runs = [n for busy, n in runs if busy and n >= 80]
        assert len(long_runs) >= 2
