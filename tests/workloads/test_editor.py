"""Tests for the TalkingEditor workload."""

import pytest

from repro.core.catalog import constant_speed
from repro.measure.runner import run_workload
from repro.workloads.editor import EditorConfig, editor_workload

CFG = EditorConfig()  # the full 70 s trace is already short


def run_at(mhz, cfg=CFG, seed=1):
    return run_workload(
        editor_workload(cfg), lambda: constant_speed(mhz), seed=seed, use_daq=False
    )


class TestSpeechPipeline:
    def test_chunks_cover_both_utterances(self):
        res = run_at(206.4)
        from repro.workloads.events import editor_trace

        trace = editor_trace(1, CFG.duration_s)
        total_speech = sum(e.magnitude for e in trace.of_kind("speak"))
        chunks = res.run.events_of_kind("speech_chunk")
        assert sum(c.payload for c in chunks) == pytest.approx(total_speech)

    def test_first_chunk_of_each_utterance_has_no_deadline(self):
        res = run_at(206.4)
        chunks = res.run.events_of_kind("speech_chunk")
        free = [c for c in chunks if c.deadline_us is None]
        assert len(free) == 2  # one per speak event

    def test_no_gaps_at_132(self):
        assert not run_at(132.7).missed

    def test_gaps_at_59(self):
        res = run_at(59.0)
        assert res.missed
        kinds = {e.kind for e in res.misses}
        assert "speech_chunk" in kinds

    def test_synthesis_bursts_visible(self):
        res = run_at(206.4)
        utils = res.run.utilizations()
        # Long near-full-busy stretches during synthesis.
        longest = streak = 0
        for u in utils:
            streak = streak + 1 if u > 0.9 else 0
            longest = max(longest, streak)
        assert longest >= 30


class TestUiPhase:
    def test_ui_responses_emitted(self):
        res = run_at(206.4)
        from repro.workloads.events import editor_trace

        trace = editor_trace(1, CFG.duration_s)
        expected = len(trace.of_kind("dialog")) + len(trace.of_kind("open_file"))
        assert len(res.run.events_of_kind("ui_response")) == expected

    def test_ui_on_time_at_132(self):
        res = run_at(132.7)
        assert all(
            e.lateness_us == 0.0 for e in res.run.events_of_kind("ui_response")
        )


class TestDescriptor:
    def test_descriptor(self):
        wl = editor_workload()
        assert wl.name == "TalkingEditor"
        assert wl.duration_s == 70.0
        assert wl.tolerance_us == CFG.gap_tolerance_us
