"""Tests for the Web workload (shortened traces for speed)."""

from repro.core.catalog import constant_speed
from repro.measure.runner import run_workload
from repro.workloads.web import WebConfig, web_workload

SHORT = WebConfig(duration_s=40.0)


def run_at(mhz, cfg=SHORT, seed=1):
    return run_workload(
        web_workload(cfg), lambda: constant_speed(mhz), seed=seed, use_daq=False
    )


class TestResponsiveness:
    def test_full_speed_meets_all_deadlines(self):
        assert not run_at(206.4).missed

    def test_132_meets_all_deadlines(self):
        assert not run_at(132.7).missed

    def test_59_misses_page_loads(self):
        res = run_at(59.0)
        assert res.missed

    def test_every_input_event_gets_a_response(self):
        res = run_at(206.4)
        from repro.workloads.events import web_trace

        trace = web_trace(1, SHORT.duration_s)
        assert len(res.run.events_of_kind("ui_response")) == len(trace)


class TestLoadShape:
    def test_mostly_idle_workload(self):
        res = run_at(206.4)
        assert res.run.mean_utilization() < 0.35

    def test_polling_keeps_background_activity(self):
        # Even between events, the Kaffe 30 ms poll shows up: some quanta
        # are partially busy long after the last input.
        res = run_at(206.4)
        busy_quanta = sum(1 for u in res.run.utilizations() if u > 0.01)
        assert busy_quanta > len(res.run.quanta) * 0.15

    def test_bursts_scale_with_magnitude(self):
        cfg = WebConfig(duration_s=40.0, scroll_us_at_206=300_000.0)
        res_big = run_at(206.4, cfg)
        res_small = run_at(206.4)
        assert res_big.run.mean_utilization() > res_small.run.mean_utilization()


class TestDescriptor:
    def test_workload_descriptor(self):
        wl = web_workload()
        assert wl.name == "Web"
        assert wl.duration_s == 190.0
        assert wl.tolerance_us == 0.0
