"""Tests for the MPEG workload (short runs for speed)."""

import pytest

from repro.core.catalog import constant_speed
from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.kernel.scheduler import Kernel
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload, setup_mpeg

SHORT = MpegConfig(duration_s=6.0)


def run_at(mhz, cfg=SHORT, seed=1):
    return run_workload(
        mpeg_workload(cfg), lambda: constant_speed(mhz), seed=seed, use_daq=False
    )


class TestConfig:
    def test_frame_interval(self):
        assert MpegConfig().frame_interval_us == pytest.approx(1e6 / 15)
        assert MpegConfig(fps=30.0).frame_interval_us == pytest.approx(1e6 / 30)

    def test_n_frames(self):
        assert MpegConfig().n_frames == 900
        assert SHORT.n_frames == 90

    def test_gop_scales_average_to_one(self):
        cfg = MpegConfig()
        mean = (cfg.i_scale + (cfg.gop - 1) * cfg.p_scale) / cfg.gop
        assert mean == pytest.approx(1.0, abs=0.01)


class TestPlaybackBehaviour:
    def test_all_frames_rendered(self):
        res = run_at(206.4)
        frames = res.run.events_of_kind("frame")
        assert len(frames) == SHORT.n_frames

    def test_on_time_at_full_speed(self):
        res = run_at(206.4)
        assert not res.missed

    def test_feasible_at_132(self):
        res = run_at(132.7)
        assert not res.missed

    def test_infeasible_at_118(self):
        res = run_at(118.0)
        assert res.missed
        # and the drift grows: last frame is much later than the first miss
        lateness = [e.lateness_us for e in res.run.events_of_kind("frame")]
        assert lateness[-1] > 100_000

    def test_utilization_rises_as_clock_falls(self):
        utils = [run_at(mhz).run.mean_utilization() for mhz in (206.4, 176.9, 132.7)]
        assert utils[0] < utils[1] < utils[2]

    def test_audio_chunks_emitted(self):
        res = run_at(206.4)
        chunks = res.run.events_of_kind("audio_chunk")
        assert len(chunks) == int(SHORT.duration_s * 1e6 / 100_000)
        assert all(c.on_time for c in chunks)


class TestSpinHeuristic:
    def test_spin_raises_utilization_near_optimum(self):
        cfg_spin = MpegConfig(duration_s=6.0, spin_enabled=True)
        cfg_nospin = MpegConfig(duration_s=6.0, spin_enabled=False)
        u_spin = run_at(132.7, cfg_spin).run.mean_utilization()
        u_nospin = run_at(132.7, cfg_nospin).run.mean_utilization()
        assert u_spin > u_nospin + 0.02

    def test_spin_negligible_at_full_speed(self):
        # At 206.4 MHz slack is usually > 12 ms, so the player sleeps.
        cfg_spin = MpegConfig(duration_s=6.0, spin_enabled=True)
        cfg_nospin = MpegConfig(duration_s=6.0, spin_enabled=False)
        u_spin = run_at(206.4, cfg_spin).run.mean_utilization()
        u_nospin = run_at(206.4, cfg_nospin).run.mean_utilization()
        assert u_spin == pytest.approx(u_nospin, abs=0.04)


class TestSetup:
    def test_two_processes_spawned(self):
        kernel = Kernel(ItsyMachine(ItsyConfig()))
        setup_mpeg(kernel, seed=0, cfg=SHORT)
        names = {p.name for p in kernel._procs.values()}
        assert names == {"mpeg_play", "wav_play"}

    def test_workload_descriptor(self):
        wl = mpeg_workload()
        assert wl.name == "MPEG"
        assert wl.duration_s == 60.0
        assert wl.duration_us == 60e6
        assert wl.tolerance_us == 80_000.0
