"""Quickstart: measure one workload under one clock-scaling policy.

Runs the paper's MPEG workload (60 s of 15 fps video + audio on the
simulated Itsy) three ways -- constant full speed, constant 132.7 MHz (the
slowest feasible step), and the paper's best heuristic policy -- and
prints the energy, deadline and clock-behaviour comparison.

Usage:
    python examples/quickstart.py
"""

from repro.core.catalog import best_policy, constant_speed
from repro.measure.runner import run_workload
from repro.workloads import mpeg_workload


def describe(name, result):
    run = result.run
    print(f"{name}")
    print(f"  energy (DAQ):        {result.energy_j:7.2f} J")
    print(f"  mean power:          {result.mean_power_w:7.3f} W")
    print(f"  mean utilization:    {run.mean_utilization():7.3f}")
    print(f"  clock changes:       {run.clock_changes:7d}")
    print(f"  deadline misses:     {len(result.misses):7d}")
    frequencies = sorted({q.mhz for q in run.quanta})
    print(f"  frequencies used:    {', '.join(f'{f:.1f}' for f in frequencies)} MHz")
    print()


def main():
    workload = mpeg_workload()
    print(f"Workload: {workload.name}, {workload.duration_s:.0f} s\n")

    configurations = [
        ("Constant 206.4 MHz / 1.5 V", lambda: constant_speed(206.4)),
        ("Constant 132.7 MHz / 1.5 V", lambda: constant_speed(132.7)),
        ("Best policy (PAST, peg-peg, 98/93)", best_policy),
    ]
    results = []
    for name, factory in configurations:
        result = run_workload(workload, factory, seed=0)
        describe(name, result)
        results.append((name, result))

    base = results[0][1].energy_j
    print("Savings relative to constant full speed:")
    for name, result in results[1:]:
        print(f"  {name:38s} {100 * (1 - result.energy_j / base):+6.2f} %")


if __name__ == "__main__":
    main()
