"""Why trace-driven studies got it wrong: record, replay, compare.

The paper's §3 argues that its predecessors' trace-driven simulations
cannot capture the feedback between a policy's clock choices and the
workload's behaviour.  This example makes that argument with the library:

1. record a live MPEG run at full speed;
2. replay the recording as busy *time* (the trace-study assumption) and
   as busy *work* (what the hardware actually must do);
3. evaluate the same policies against both and print the verdict flips.

Usage:
    python examples/methodology_gap.py
"""

from repro.core.catalog import best_policy, constant_speed, pering_avg
from repro.measure.runner import run_workload
from repro.workloads import ReplayMode, record_from_run, replay_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload


def main():
    print("Recording a live MPEG run at 206.4 MHz ...")
    source = run_workload(
        mpeg_workload(MpegConfig(duration_s=30.0)),
        lambda: constant_speed(206.4),
        seed=7,
        use_daq=False,
    )
    trace = record_from_run(source.run)
    print(
        f"  {len(trace)} quanta recorded, mean utilization "
        f"{source.run.mean_utilization():.3f}\n"
    )

    policies = [
        ("best (PAST peg 98/93)", best_policy),
        ("AVG_3 peg-peg 50/70", lambda: pering_avg(3, up="peg", down="peg")),
        ("AVG_9 one-one 50/70", lambda: pering_avg(9, up="one", down="one")),
    ]

    print(f"{'policy':24s} {'mode':6s} {'energy J':>9s} {'misses':>7s} {'verdict'}")
    for name, factory in policies:
        verdicts = {}
        for mode in (ReplayMode.TIME, ReplayMode.WORK):
            res = run_workload(
                replay_workload(trace, mode), factory, seed=0, use_daq=False
            )
            verdict = "acceptable" if not res.missed else "MISSES DEADLINES"
            verdicts[mode] = verdict
            print(
                f"{name:24s} {mode.value:6s} {res.exact_energy_j:9.2f} "
                f"{len(res.misses):7d} {verdict}"
            )
        if verdicts[ReplayMode.TIME] != verdicts[ReplayMode.WORK]:
            print(f"{'':24s} ^^ the trace-driven verdict flips under load!")
        print()

    print(
        "A policy that a trace-driven study would publish as safe can fail"
        "\ncatastrophically once the feedback loop is real -- the paper's"
        "\ncase for empirical evaluation."
    )


if __name__ == "__main__":
    main()
