"""Write and evaluate your own clock-scaling policy.

The paper ends by arguing that implementable *heuristics* are a dead end
and that applications must expose deadlines (§6).  This example shows both
sides of that argument using the library's extension points:

1. ``TwoLevelGovernor`` -- a custom heuristic built on the ``Governor``
   interface: it watches a longer window and picks between three fixed
   steps.  Like every heuristic in the paper, it trades misses against
   savings.
2. ``DeadlineOracleGovernor`` -- the paper's proposed future-work design,
   approximated: the workload's deadline stream is made visible to the
   governor (application-provided deadlines), which then selects the
   slowest clock step that still meets the known per-period demand.

Usage:
    python examples/custom_policy.py
"""

from collections import deque
from typing import Optional

from repro.core.catalog import best_policy, constant_speed
from repro.hw.clocksteps import SA1100_CLOCK_TABLE
from repro.kernel.governor import Governor, GovernorRequest, TickInfo
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload


class TwoLevelGovernor(Governor):
    """A hand-rolled heuristic: cruise / sprint / rest.

    Keeps a 300 ms window of utilization.  Above 85 % mean it sprints
    (206.4 MHz); below 30 % it rests (59 MHz); otherwise it cruises at
    147.5 MHz.
    """

    def __init__(self):
        self._window = deque(maxlen=30)

    def on_tick(self, info: TickInfo) -> Optional[GovernorRequest]:
        self._window.append(info.utilization)
        mean = sum(self._window) / len(self._window)
        if mean > 0.85:
            target = SA1100_CLOCK_TABLE.max_index
        elif mean < 0.30:
            target = 0
        else:
            target = SA1100_CLOCK_TABLE.step_for_mhz(147.5).index
        if target == info.step_index:
            return None
        return GovernorRequest(step_index=target)

    def reset(self):
        self._window.clear()


class DeadlineOracleGovernor(Governor):
    """Application-provided deadlines (the paper's §6 proposal).

    The application registers its period and per-period demand in cycles
    (here: MPEG's mean frame at the current step).  The governor then runs
    at the slowest step whose throughput covers the demand with a safety
    margin -- no prediction at all.
    """

    def __init__(self, demand_units: float, period_us: float, margin: float = 1.10):
        from repro.hw.memory import SA1100_MEMORY_TIMINGS
        from repro.workloads.base import MPEG_FRAME_PROFILE

        self._target_index = SA1100_CLOCK_TABLE.max_index
        for step in SA1100_CLOCK_TABLE:
            busy = MPEG_FRAME_PROFILE.work(demand_units).duration_us(
                step, SA1100_MEMORY_TIMINGS
            )
            if busy * margin <= period_us:
                self._target_index = step.index
                break
        self._applied = False

    def on_tick(self, info: TickInfo) -> Optional[GovernorRequest]:
        if self._applied:
            return None
        self._applied = True
        return GovernorRequest(step_index=self._target_index)

    def reset(self):
        self._applied = False


def main():
    cfg = MpegConfig(duration_s=30.0)
    workload = mpeg_workload(cfg)
    # The oracle knows the application's real demand: mean frame work plus
    # the audio process, per 66.7 ms period.
    oracle = lambda: DeadlineOracleGovernor(demand_units=1.05, period_us=cfg.frame_interval_us)

    policies = [
        ("const 206.4 (baseline)", lambda: constant_speed(206.4)),
        ("paper best policy", best_policy),
        ("custom: TwoLevelGovernor", TwoLevelGovernor),
        ("custom: DeadlineOracle", oracle),
    ]
    print(f"{'policy':26s} {'energy J':>9s} {'misses':>7s} {'clk chg':>8s} {'freqs used':>22s}")
    base = None
    for name, factory in policies:
        result = run_workload(workload, factory, seed=0, use_daq=False)
        if base is None:
            base = result.exact_energy_j
        freqs = sorted({q.mhz for q in result.run.quanta})
        print(
            f"{name:26s} {result.exact_energy_j:9.2f} {len(result.misses):7d} "
            f"{result.run.clock_changes:8d} {str([f'{f:.0f}' for f in freqs]):>22s}"
        )
    print(
        "\nThe deadline oracle parks at the slowest feasible step without"
        "\nany heuristic -- the information the kernel alone cannot infer."
    )


if __name__ == "__main__":
    main()
