"""Compare interval policies across all four paper workloads.

Reproduces the experience of the paper's §5: for each workload (MPEG, Web,
Chess, TalkingEditor) and each policy (constant speeds, PAST/AVG_N with
different speed setters, the best policy), report energy, deadline misses
and clock behaviour.  The output makes the paper's conclusion visible:
policies that save real energy miss deadlines somewhere, and the one
policy that never misses saves little on MPEG (though more on the
idle-heavy interactive workloads).

Usage:
    python examples/policy_comparison.py [--quick]
"""

import argparse

from repro.core.catalog import best_policy, constant_speed, pering_avg
from repro.measure.runner import run_workload
from repro.workloads import (
    chess_workload,
    editor_workload,
    mpeg_workload,
    web_workload,
)
from repro.workloads.chess import ChessConfig
from repro.workloads.mpeg import MpegConfig
from repro.workloads.web import WebConfig

POLICIES = [
    ("const 206.4", lambda: constant_speed(206.4)),
    ("const 132.7", lambda: constant_speed(132.7)),
    ("AVG_3 one-one 50/70", lambda: pering_avg(3, up="one", down="one")),
    ("AVG_9 peg-peg 50/70", lambda: pering_avg(9, up="peg", down="peg")),
    ("best (PAST peg 98/93)", best_policy),
    ("best + voltage scaling", lambda: best_policy(True)),
]


def workloads(quick: bool):
    if quick:
        return [
            mpeg_workload(MpegConfig(duration_s=20.0)),
            web_workload(WebConfig(duration_s=60.0)),
            chess_workload(ChessConfig(duration_s=60.0)),
            editor_workload(),
        ]
    return [mpeg_workload(), web_workload(), chess_workload(), editor_workload()]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="shorten traces for a fast run"
    )
    args = parser.parse_args()

    header = f"{'policy':24s} {'energy J':>9s} {'vs 206.4':>9s} {'misses':>7s} {'clk chg':>8s}"
    for workload in workloads(args.quick):
        print(f"\n=== {workload.name} ({workload.duration_s:.0f} s) ===")
        print(header)
        base = None
        for name, factory in POLICIES:
            result = run_workload(workload, factory, seed=0, use_daq=False)
            if base is None:
                base = result.exact_energy_j
            saving = 100 * (1 - result.exact_energy_j / base)
            print(
                f"{name:24s} {result.exact_energy_j:9.2f} {saving:+8.2f}% "
                f"{len(result.misses):7d} {result.run.clock_changes:8d}"
            )
    print(
        "\nNote how every row with large savings has misses somewhere, and"
        "\nthe miss-free best policy saves little on MPEG -- the paper's"
        "\ncentral negative result."
    )


if __name__ == "__main__":
    main()
