"""Battery planning on the Itsy: lifetimes, rate-capacity, pulsed power.

Walks through §2.1 of the paper quantitatively:

1. idle-system battery life vs clock frequency (2 h at 206 MHz vs 18 h at
   59 MHz on two AAA alkalines);
2. Martin's computations-per-battery-lifetime metric: the rational lower
   bound on clock frequency once fixed power is accounted for;
3. the pulsed-discharge (KiBaM) recovery effect and why the paper judges
   it secondary for pocket computers;
4. projected MPEG playback hours at each feasible clock setting, using
   the calibrated whole-system power model.

Usage:
    python examples/battery_planning.py
"""

from repro.battery.lifetime import best_step_for_computations, idle_lifetime_hours
from repro.battery.model import AAA_ALKALINE_PAIR
from repro.battery.pulsed import PulsedDischargeModel
from repro.core.catalog import constant_speed
from repro.hw.clocksteps import SA1100_CLOCK_TABLE
from repro.hw.power import IdleManagerParameters
from repro.measure.runner import run_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload


def section(title):
    print(f"\n--- {title} ---")


def main():
    section("Idle-system battery life vs clock (the paper's anecdote)")
    for step in SA1100_CLOCK_TABLE:
        hours = idle_lifetime_hours(step)
        bar = "#" * int(hours * 2)
        print(f"  {step.mhz:6.1f} MHz  {hours:5.1f} h  {bar}")
    ratio = idle_lifetime_hours(SA1100_CLOCK_TABLE.min_step) / idle_lifetime_hours(
        SA1100_CLOCK_TABLE.max_step
    )
    print(f"  -> {ratio:.1f}x lifetime for a 3.5x clock reduction")

    section("Martin's metric: computations per battery lifetime")
    idle = IdleManagerParameters()
    best, scored = best_step_for_computations(
        lambda step: idle.idle_power_w(step) + 0.25
    )
    for step, computations in scored:
        marker = "  <== best" if step.index == best.index else ""
        print(f"  {step.mhz:6.1f} MHz  {computations / 1e12:6.2f} Tcycles{marker}")

    section("Pulsed discharge (KiBaM recovery)")
    const = PulsedDischargeModel(capacity_c=1000.0)
    const.time_to_death_s(power_w=6.0)
    pulsed = PulsedDischargeModel(capacity_c=1000.0)
    pulsed.time_to_death_s(power_w=6.0, pulse_s=30.0, rest_s=30.0)
    print(f"  constant 6 W drain delivers {const.delivered:6.1f} charge units")
    print(f"  pulsed 30 s on / 30 s off   {pulsed.delivered:6.1f} charge units")
    print("  -> recovery helps, but needs long rest periods the paper notes")
    print("     most computer workloads do not provide")

    section("Projected MPEG playback time per clock setting (2x AAA)")
    for mhz in (132.7, 147.5, 162.2, 176.9, 191.7, 206.4):
        result = run_workload(
            mpeg_workload(MpegConfig(duration_s=20.0)),
            lambda m=mhz: constant_speed(m),
            seed=0,
            use_daq=False,
        )
        hours = AAA_ALKALINE_PAIR.lifetime_hours(result.run.mean_power_w())
        note = " (misses deadlines!)" if result.missed else ""
        print(
            f"  {mhz:6.1f} MHz: {result.run.mean_power_w():5.3f} W -> "
            f"{hours:4.2f} h of playback{note}"
        )


if __name__ == "__main__":
    main()
