"""Explore the utilization structure of the four workloads (Figures 3/4).

Renders ASCII strip charts of the per-quantum utilization and its 100 ms
moving average for each application at a constant 206.4 MHz -- the data
behind Figures 3 and 4 -- and prints the time-scale summary of §5.1
(MPEG's ~7-quantum frames, the Java 30 ms poll, Chess's think/search
phases, the TalkingEditor's burst-then-synthesis shape).

Usage:
    python examples/utilization_explorer.py [--window-s 20]
"""

import argparse

import numpy as np

from repro.analysis.utilization import (
    busy_idle_runs,
    moving_average,
    utilization_series,
)
from repro.core.catalog import constant_speed
from repro.measure.runner import run_workload
from repro.workloads import all_workloads

GLYPHS = " .:-=+*#%@"


def strip_chart(values, width=100):
    """Downsample a series into one text row of density glyphs."""
    if len(values) == 0:
        return ""
    chunks = np.array_split(np.asarray(values), min(width, len(values)))
    out = []
    for chunk in chunks:
        level = int(round(float(np.mean(chunk)) * (len(GLYPHS) - 1)))
        out.append(GLYPHS[level])
    return "".join(out)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--window-s", type=float, default=30.0, help="display window length"
    )
    args = parser.parse_args()

    for workload in all_workloads():
        result = run_workload(
            workload, lambda: constant_speed(206.4), seed=0, use_daq=False
        )
        times, utils = utilization_series(result.run)
        n = min(len(utils), int(args.window_s * 100))
        raw, smooth = utils[:n], moving_average(utils, 10)[:n]

        print(f"\n=== {workload.name} (first {n / 100:.0f} s at 206.4 MHz) ===")
        print(f"  raw 10 ms quanta : |{strip_chart(raw)}|")
        print(f"  100 ms moving avg: |{strip_chart(smooth)}|")

        runs = busy_idle_runs(utils)
        busy_lengths = [length for busy, length in runs if busy]
        idle_lengths = [length for busy, length in runs if not busy]
        print(
            f"  mean utilization {result.run.mean_utilization():.2f} | "
            f"busy stretches: mean {np.mean(busy_lengths):.1f}, "
            f"max {max(busy_lengths)} quanta | "
            f"idle stretches: mean {np.mean(idle_lengths):.1f} quanta"
            if busy_lengths and idle_lengths
            else "  (degenerate)"
        )


if __name__ == "__main__":
    main()
