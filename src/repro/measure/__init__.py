"""Measurement methodology (§4.1).

The paper measures whole-system power with a data-acquisition system: the
Itsy's supply current is sensed across a 0.02 ohm precision resistor,
sampled 5000 times per second as 16-bit values, and triggered by a GPIO pin
the workload toggles when it starts.  Energy is the rectangle sum
``E = sum(p_i * 0.0002)``.

- :mod:`repro.measure.daq` -- the sampling/quantization/trigger model;
- :mod:`repro.measure.energy` -- the paper's energy and average-power
  estimators;
- :mod:`repro.measure.stats` -- 95 % confidence intervals over repeated
  runs;
- :mod:`repro.measure.runner` -- the repeated-run experiment harness;
- :mod:`repro.measure.parallel` -- the process-pool sweep engine and its
  content-addressed result cache.
"""

from repro.measure.compare import Comparison, welch_compare
from repro.measure.daq import DaqConfig, DaqSystem, DaqCapture
from repro.measure.energy import energy_from_samples, mean_power_from_samples
from repro.measure.parallel import (
    CellResult,
    PolicySpec,
    ResultCache,
    SweepCell,
    SweepEngine,
    SweepSpec,
    WorkloadSpec,
    cache_key,
    run_sweep,
)
from repro.measure.profile import PowerProfile, burst_profile, profile_timeline
from repro.measure.runner import ExperimentResult, run_workload, repeat_workload
from repro.measure.stats import ConfidenceInterval, confidence_interval

__all__ = [
    "CellResult",
    "Comparison",
    "ConfidenceInterval",
    "DaqCapture",
    "DaqConfig",
    "DaqSystem",
    "ExperimentResult",
    "PolicySpec",
    "PowerProfile",
    "ResultCache",
    "SweepCell",
    "SweepEngine",
    "SweepSpec",
    "WorkloadSpec",
    "burst_profile",
    "cache_key",
    "confidence_interval",
    "energy_from_samples",
    "mean_power_from_samples",
    "profile_timeline",
    "repeat_workload",
    "run_sweep",
    "run_workload",
    "welch_compare",
]
