"""The data-acquisition (DAQ) model (§4.1).

The paper's setup: the Itsy runs from an external supply; the DAQ records
the supply voltage and the voltage drop across a 0.02 ohm precision sense
resistor 5000 times per second as 16-bit values, streamed to a host.  The
workload toggles a GPIO wired to the DAQ's external trigger, so recording
windows align with execution.  Instantaneous power is ``V * I``; energy is
the rectangle sum over samples.

Our simulated machine produces an exact power signal
(:class:`~repro.traces.schema.PowerTimeline`); the DAQ model re-creates the
*measurement* of it: periodic sampling, quantization to the 16-bit ADC
grid, and small Gaussian front-end noise.  Tests verify the estimator
converges to the exact integral.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

import numpy as np

from repro.traces.schema import PowerTimeline


@lru_cache(maxsize=8)
def _sample_offsets(n: int, period_us: float) -> np.ndarray:
    """``np.arange(n) * period_us``, cached and frozen.

    Every capture at the same rate over the same window length uses the
    same 300k-element offset grid; building it once per process saves an
    allocation and a multiply per capture.  The array is marked
    read-only so a cached copy can never be mutated by a caller.
    """
    offsets = np.arange(n) * period_us
    offsets.setflags(write=False)
    return offsets


@dataclass(frozen=True)
class DaqConfig:
    """DAQ front-end parameters (paper values as defaults).

    Attributes:
        sample_rate_hz: samples per second (5000).
        supply_volts: external supply voltage (3.1 V on the Itsy bench).
        sense_ohms: sense resistor (0.02 ohm).
        adc_bits: converter resolution (16).
        adc_full_scale_volts: ADC input range for the sense-drop channel.
        noise_rms_watts: white measurement noise, as power-equivalent RMS.
    """

    sample_rate_hz: float = 5000.0
    supply_volts: float = 3.1
    sense_ohms: float = 0.02
    adc_bits: int = 16
    adc_full_scale_volts: float = 0.1
    noise_rms_watts: float = 0.002

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        if self.sense_ohms <= 0 or self.supply_volts <= 0:
            raise ValueError("supply and sense resistor must be positive")
        if not 1 <= self.adc_bits <= 24:
            raise ValueError("adc_bits out of range")

    @property
    def sample_period_s(self) -> float:
        """Seconds between samples (0.0002 s in the paper)."""
        return 1.0 / self.sample_rate_hz


@dataclass(frozen=True)
class DaqCapture:
    """One triggered recording window.

    Attributes:
        times_us: sample timestamps.
        power_w: measured power samples (quantized, noisy).
        config: the DAQ configuration that produced it.
    """

    times_us: np.ndarray
    power_w: np.ndarray
    config: DaqConfig

    def __len__(self) -> int:
        return len(self.power_w)

    def energy_joules(self) -> float:
        """The paper's estimator: ``sum(p_i) * sample_period``."""
        return float(np.sum(self.power_w) * self.config.sample_period_s)

    def mean_power_w(self) -> float:
        """Average of the power samples."""
        if len(self.power_w) == 0:
            return 0.0
        return float(np.mean(self.power_w))


class DaqSystem:
    """Samples a simulated power signal the way the paper's DAQ does."""

    def __init__(self, config: DaqConfig = DaqConfig(), seed: Optional[int] = 0):
        self.config = config
        self._rng = np.random.default_rng(seed)

    def capture(
        self,
        timeline: PowerTimeline,
        trigger_us: Optional[float] = None,
        stop_us: Optional[float] = None,
    ) -> DaqCapture:
        """Record the window between the trigger and stop GPIO toggles.

        Args:
            timeline: the machine's exact power signal.
            trigger_us: window start (defaults to the timeline start).
            stop_us: window end (defaults to the timeline end).

        Returns:
            The captured samples, quantized and with front-end noise.
        """
        cfg = self.config
        start = timeline.start_us if trigger_us is None else trigger_us
        end = timeline.end_us if stop_us is None else stop_us
        if end <= start:
            raise ValueError("capture window is empty")
        period_us = cfg.sample_period_s * 1e6
        n = int((end - start) / period_us)
        times = start + _sample_offsets(n, period_us)
        exact = timeline.sample(times)

        # float addition commutes bitwise, so adding the exact signal into
        # the freshly drawn noise buffer (instead of ``exact + noise``)
        # reuses it as scratch for the quantizer and avoids three
        # window-sized temporaries per capture.
        noisy = self._rng.normal(0.0, cfg.noise_rms_watts, size=n)
        noisy += exact
        quantized = self._quantize(noisy)
        return DaqCapture(times_us=times, power_w=quantized, config=cfg)

    def _quantize(self, power_w: np.ndarray) -> np.ndarray:
        """Quantize power to the 16-bit sense-channel grid, in place.

        The ADC digitizes the sense-resistor drop ``V_sense = I * R``; the
        power LSB is therefore ``V_supply * full_scale / (R * 2^bits)``.
        The input buffer is consumed as scratch and returned.
        """
        cfg = self.config
        lsb_amps = cfg.adc_full_scale_volts / (2**cfg.adc_bits) / cfg.sense_ohms
        lsb_watts = lsb_amps * cfg.supply_volts
        np.divide(power_w, lsb_watts, out=power_w)
        np.round(power_w, out=power_w)
        power_w *= lsb_watts
        np.clip(power_w, 0.0, None, out=power_w)
        return power_w
