"""Differential testing: fuzzed workloads drive two execution backends.

This is the fuzzer's consumer side.  :func:`check_fuzz_spec` runs one
fuzzed scenario (:class:`~repro.workloads.fuzz.FuzzSpec`) through the
``"reference"`` execution backend and a backend under test (the
``"fastpath"`` core by default — any name in
:data:`repro.kernel.backend.BACKENDS` works) and demands:

- **bitwise identity** of everything a run records — the same contract as
  ``tests/kernel/test_fastpath.py``, field for field;
- **exception parity** — when one backend raises, the other must raise
  the same type with the same message;
- a **closed energy decomposition** — the diagnostics engine's
  overshoot/stall/sag components must reconstruct the measured energy to
  within :data:`RESIDUAL_TOLERANCE_J` on the reference run.

Any violation is shrunk (:func:`shrink_fuzz_spec` greedily simplifies the
spec while the failure reproduces) and can be persisted into the trace
corpus (:mod:`repro.traces.corpus`) as a permanent regression fixture —
``repro fuzz`` and the CI fuzz-smoke job both run on this module.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.core.catalog import resolve_policy
from repro.hw.machines import MachineSpec
from repro.kernel.recorders import RECORDING_FULL
from repro.measure.runner import ExperimentResult, run_workload
from repro.obs.diagnose import energy_decomposition
from repro.traces.corpus import CorpusEntry, entry_from_run
from repro.workloads.fuzz import FuzzSpec, fuzz_workload

#: Largest acceptable |measured − (baseline+overshoot+stall+sag)| on a
#: fuzzed run.  The decomposition is computed from the same timeline the
#: measurement integrates, so anything beyond float accumulation noise
#: means the accounting lost energy.
RESIDUAL_TOLERANCE_J = 1e-9


def compare_results(ref: ExperimentResult, fast: ExperimentResult) -> List[str]:
    """Names of every recorded field where the two backends disagree.

    Mirrors the bitwise-equality contract of the fast-path test suite:
    an empty list means the runs are indistinguishable.
    """
    mismatches = []
    for field in ("energy_j", "exact_energy_j", "mean_power_w", "misses"):
        if getattr(fast, field) != getattr(ref, field):
            mismatches.append(field)
    rr, fr = ref.run, fast.run
    if fr.duration_us != rr.duration_us:
        mismatches.append("duration_us")
    if fr.quanta != rr.quanta:
        mismatches.append("quanta")
    if fr.timeline._segments != rr.timeline._segments:
        mismatches.append("timeline")
    for field in (
        "freq_changes",
        "volt_changes",
        "events",
        "busy_us_by_pid",
        "process_names",
        "clock_changes",
        "clock_stall_us",
        "voltage_changes",
        "voltage_settle_us",
    ):
        if getattr(fr, field) != getattr(rr, field):
            mismatches.append(field)
    return mismatches


@dataclass(frozen=True)
class DifferentialOutcome:
    """The verdict on one fuzzed scenario.

    Attributes:
        spec: the scenario checked.
        policy: catalog policy name it ran under.
        machine: machine spec label it ran on.
        seed: run seed.
        mismatches: recorded fields where the backends disagreed (empty
            when bitwise-identical).
        exception_mismatch: human-readable description when exactly one
            backend raised, or both raised differently; None otherwise.
        residual_j: |measured − components| of the reference run's energy
            decomposition, or None when decomposition was skipped or the
            run raised.
        reference: the reference run, kept for corpus capture; None when
            it raised.

    ``ok`` is True only when every check passed.
    """

    spec: FuzzSpec
    policy: str
    machine: str
    seed: int
    mismatches: Tuple[str, ...] = ()
    exception_mismatch: Optional[str] = None
    residual_j: Optional[float] = None
    reference: Optional[ExperimentResult] = None

    @property
    def ok(self) -> bool:
        if self.mismatches or self.exception_mismatch:
            return False
        if self.residual_j is not None and self.residual_j > RESIDUAL_TOLERANCE_J:
            return False
        return True

    def describe(self) -> str:
        """One line naming the scenario and what (if anything) failed."""
        where = (
            f"fuzz seed={self.spec.seed} policy={self.policy} "
            f"machine={self.machine} run-seed={self.seed}"
        )
        if self.exception_mismatch:
            return f"{where}: exception parity broken: {self.exception_mismatch}"
        if self.mismatches:
            return (
                f"{where}: backends diverge on {', '.join(self.mismatches)}"
            )
        if self.residual_j is not None and self.residual_j > RESIDUAL_TOLERANCE_J:
            return f"{where}: energy decomposition residual {self.residual_j:.3e} J"
        return f"{where}: ok"


def _run(
    spec: FuzzSpec, policy: str, machine: MachineSpec, seed: int, backend: str
) -> ExperimentResult:
    return run_workload(
        fuzz_workload(spec),
        resolve_policy(policy, clock_table=machine.clock_table()),
        machine_factory=machine,
        seed=seed,
        use_daq=False,
        recording=RECORDING_FULL,
        backend=backend,
    )


def check_fuzz_spec(
    spec: FuzzSpec,
    policy: str = "best",
    machine: Optional[MachineSpec] = None,
    seed: int = 0,
    check_decomposition: bool = True,
    backend: str = "fastpath",
) -> DifferentialOutcome:
    """Run one fuzzed scenario on reference and ``backend``; judge it.

    Backends are named explicitly (never ``None``) so the comparison
    stays reference-vs-``backend`` even under ``REPRO_FORCE_BACKEND``.
    """
    machine = machine if machine is not None else MachineSpec("itsy")
    ref = fast = ref_exc = fast_exc = None
    try:
        ref = _run(spec, policy, machine, seed, backend="reference")
    except Exception as exc:  # noqa: BLE001 - parity checked below
        ref_exc = exc
    try:
        fast = _run(spec, policy, machine, seed, backend=backend)
    except Exception as exc:  # noqa: BLE001 - parity checked below
        fast_exc = exc

    label = machine.label
    if ref_exc is not None or fast_exc is not None:
        if type(ref_exc) is type(fast_exc) and str(ref_exc) == str(fast_exc):
            return DifferentialOutcome(spec, policy, label, seed, reference=None)
        return DifferentialOutcome(
            spec,
            policy,
            label,
            seed,
            exception_mismatch=(
                f"reference {type(ref_exc).__name__ if ref_exc else 'ok'}"
                f"({ref_exc}) vs {backend} "
                f"{type(fast_exc).__name__ if fast_exc else 'ok'}({fast_exc})"
            ),
        )

    mismatches = tuple(compare_results(ref, fast))
    residual = None
    if check_decomposition:
        # baseline_j=None keeps the baseline term out of the identity, so
        # the check is measured == baseline(0) + overshoot + stall + sag
        # without paying for an ideal-constant search per scenario.
        decomp = energy_decomposition(ref.run, machine.build(), baseline_j=None)
        residual = abs(decomp.measured_j - decomp.components_sum_j())
    return DifferentialOutcome(
        spec,
        policy,
        label,
        seed,
        mismatches=mismatches,
        residual_j=residual,
        reference=ref,
    )


def _shrink_candidates(spec: FuzzSpec) -> List[FuzzSpec]:
    """Simpler variants of ``spec``, most aggressive first."""
    candidates = []
    if spec.duration_s > 0.2:
        candidates.append(replace(spec, duration_s=max(0.2, spec.duration_s / 2)))
    if spec.phases > 1:
        candidates.append(replace(spec, phases=max(1, spec.phases // 2)))
    if spec.processes > 1:
        candidates.append(replace(spec, processes=1))
    for knob in ("burstiness", "ramp", "idle_storm"):
        if getattr(spec, knob) > 0.0:
            candidates.append(replace(spec, **{knob: 0.0}))
    if spec.deadline_tightness > 0.0:
        candidates.append(replace(spec, deadline_tightness=0.0))
    return candidates


def shrink_fuzz_spec(
    spec: FuzzSpec,
    policy: str = "best",
    machine: Optional[MachineSpec] = None,
    seed: int = 0,
    check_decomposition: bool = True,
    max_steps: int = 40,
    backend: str = "fastpath",
) -> Tuple[FuzzSpec, DifferentialOutcome]:
    """Greedily simplify a failing spec while the failure reproduces.

    Returns the smallest failing spec found and its outcome.  ``spec``
    must already fail; a passing spec is returned unchanged with its
    (ok) outcome.
    """
    outcome = check_fuzz_spec(
        spec, policy, machine, seed,
        check_decomposition=check_decomposition, backend=backend,
    )
    if outcome.ok:
        return spec, outcome
    for _ in range(max_steps):
        for candidate in _shrink_candidates(spec):
            cand_outcome = check_fuzz_spec(
                candidate, policy, machine, seed,
                check_decomposition=check_decomposition, backend=backend,
            )
            if not cand_outcome.ok:
                spec, outcome = candidate, cand_outcome
                break
        else:
            break  # no simpler variant still fails: minimal
    return spec, outcome


def counterexample_entry(outcome: DifferentialOutcome) -> Optional[CorpusEntry]:
    """A corpus entry reproducing a failing scenario's reference trace.

    Carries the full scenario coordinates as provenance so the failure
    can be re-fuzzed exactly, not just replayed.  None when the reference
    run itself raised (there is no trace to save).
    """
    if outcome.reference is None:
        return None
    spec = outcome.spec
    return entry_from_run(
        name=f"fuzz-{spec.seed}-{outcome.policy}-{outcome.machine}",
        run=outcome.reference.run,
        tolerance_us=spec.tolerance_us,
        provenance=(
            ("kind", "fuzz-counterexample"),
            ("policy", outcome.policy),
            ("machine", outcome.machine),
            ("run_seed", str(outcome.seed)),
            ("fuzz_spec", repr(spec)),
            ("failure", outcome.describe()),
        ),
    )
