"""Energy and average-power estimators (§4.1).

The paper computes energy from the DAQ samples as a rectangle sum: "the
power measured at time t represents the average power of the Itsy for the
interval t to t + 0.0002 seconds", so ``E = sum(p_i * 0.0002)``.  These
helpers apply the same estimator to arbitrary sample arrays and provide the
window-selection logic (the GPIO-trigger analogue is in
:mod:`repro.measure.daq`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def energy_from_samples(power_w: Sequence[float], sample_period_s: float) -> float:
    """The paper's rectangle-sum energy estimator, in joules.

    Args:
        power_w: power samples, in watts.
        sample_period_s: seconds between successive samples (0.0002).
    """
    if sample_period_s <= 0:
        raise ValueError("sample period must be positive")
    return float(np.sum(np.asarray(power_w, dtype=float)) * sample_period_s)


def mean_power_from_samples(power_w: Sequence[float]) -> float:
    """Average power over the samples, in watts."""
    arr = np.asarray(power_w, dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.mean(arr))


def select_window(
    times_us: np.ndarray,
    power_w: np.ndarray,
    start_us: float,
    end_us: float,
) -> "tuple[np.ndarray, np.ndarray]":
    """Select the samples inside [start_us, end_us).

    This is the paper's "determine the relevant part of the power-usage
    profile" step: the workload is timed with ``gettimeofday`` and only the
    matching measurement window is analysed.
    """
    if end_us <= start_us:
        raise ValueError("window is empty")
    mask = (times_us >= start_us) & (times_us < end_us)
    return times_us[mask], power_w[mask]
