"""Statistical comparison of repeated experiments.

The paper reasons about Table 2 through 95 % confidence-interval overlap
("statistically significant reduction", "no statistical decrease").  This
module adds the sharper standard tool -- Welch's unequal-variance t-test
-- so configurations can be compared with explicit p-values, plus a small
report type used by benchmarks and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing two samples of measured energies.

    Attributes:
        mean_a / mean_b: sample means.
        difference: ``mean_a - mean_b``.
        relative_difference: difference as a fraction of ``mean_b``.
        t_statistic: Welch's t.
        p_value: two-sided p-value.
        significant: whether p < alpha.
        alpha: the significance level used.
    """

    mean_a: float
    mean_b: float
    difference: float
    relative_difference: float
    t_statistic: float
    p_value: float
    significant: bool
    alpha: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "significant" if self.significant else "not significant"
        return (
            f"{self.mean_a:.2f} vs {self.mean_b:.2f} "
            f"(diff {self.difference:+.2f}, p={self.p_value:.4f}, {verdict})"
        )


def welch_compare(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    alpha: float = 0.05,
) -> Comparison:
    """Welch's two-sided t-test on two samples.

    Args:
        sample_a / sample_b: at least two observations each.
        alpha: significance level.

    Raises:
        ValueError: with fewer than two observations or a bad alpha.
    """
    a = np.asarray(sample_a, dtype=float)
    b = np.asarray(sample_b, dtype=float)
    if a.size < 2 or b.size < 2:
        raise ValueError("need at least two observations per sample")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    if np.std(a, ddof=1) == 0.0 and np.std(b, ddof=1) == 0.0:
        identical = float(np.mean(a)) == float(np.mean(b))
        t_stat, p_value = (0.0, 1.0) if identical else (float("inf"), 0.0)
    else:
        t_stat, p_value = _scipy_stats.ttest_ind(a, b, equal_var=False)
    mean_a, mean_b = float(np.mean(a)), float(np.mean(b))
    diff = mean_a - mean_b
    return Comparison(
        mean_a=mean_a,
        mean_b=mean_b,
        difference=diff,
        relative_difference=diff / mean_b if mean_b else float("inf"),
        t_statistic=float(t_stat),
        p_value=float(p_value),
        significant=bool(p_value < alpha),
        alpha=alpha,
    )


def energies(results) -> "list[float]":
    """Extract the measured energies from a RepeatedResult."""
    return [r.energy_j for r in results.results]
