"""Power-profile statistics.

The paper's battery discussion (§2.1) turns on properties of the power
*profile*, not just its mean: peak demand reduces deliverable capacity,
and pulsed profiles (bursts separated by quiet) can exploit recovery.
These helpers summarize a recorded :class:`~repro.traces.schema.PowerTimeline`
into the quantities those arguments need: percentiles, peak, time above a
threshold, and a burst/quiet decomposition suitable for feeding the
pulsed-discharge battery model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.traces.schema import PowerTimeline


@dataclass(frozen=True)
class PowerProfile:
    """Summary statistics of a power signal.

    All statistics are *time-weighted* (a 1 s segment counts 100x more
    than a 10 ms one).

    Attributes:
        mean_w / peak_w / min_w: central and extreme powers.
        p50_w / p95_w / p99_w: time-weighted percentiles.
        duration_s: profile length.
        energy_j: total energy.
    """

    mean_w: float
    peak_w: float
    min_w: float
    p50_w: float
    p95_w: float
    p99_w: float
    duration_s: float
    energy_j: float

    @property
    def peak_to_mean(self) -> float:
        """Crest factor of the demand (battery peak-demand argument)."""
        if self.mean_w <= 0:
            return float("inf")
        return self.peak_w / self.mean_w


def _weighted_percentile(powers, durations, q: float) -> float:
    order = np.argsort(powers)
    p_sorted = powers[order]
    w_sorted = durations[order]
    cum = np.cumsum(w_sorted)
    target = q * cum[-1]
    idx = int(np.searchsorted(cum, target))
    return float(p_sorted[min(idx, len(p_sorted) - 1)])


def profile_timeline(timeline: PowerTimeline) -> PowerProfile:
    """Summarize a power timeline.

    Raises:
        ValueError: for an empty timeline.
    """
    segments = list(timeline)
    if not segments:
        raise ValueError("empty timeline")
    powers = np.array([w for _, __, w in segments])
    durations = np.array([e - s for s, e, _ in segments])
    total_s = float(np.sum(durations)) * 1e-6
    energy = float(np.sum(powers * durations)) * 1e-6
    return PowerProfile(
        mean_w=energy / total_s,
        peak_w=float(np.max(powers)),
        min_w=float(np.min(powers)),
        p50_w=_weighted_percentile(powers, durations, 0.50),
        p95_w=_weighted_percentile(powers, durations, 0.95),
        p99_w=_weighted_percentile(powers, durations, 0.99),
        duration_s=total_s,
        energy_j=energy,
    )


def time_above_w(timeline: PowerTimeline, threshold_w: float) -> float:
    """Seconds the power spends at or above ``threshold_w``."""
    total_us = sum(e - s for s, e, w in timeline if w >= threshold_w)
    return total_us * 1e-6


def burst_profile(
    timeline: PowerTimeline, threshold_w: float
) -> List[Tuple[float, float]]:
    """Decompose the signal into (power, duration_s) phases by threshold.

    Contiguous time above the threshold becomes one "burst" phase at its
    mean power; below-threshold time becomes "quiet" phases.  The result
    feeds :meth:`repro.battery.pulsed.PulsedDischargeModel.run_profile`
    directly, linking measured runs to the battery recovery model.
    """
    phases: List[Tuple[float, float]] = []
    cur_high: "bool | None" = None
    cur_energy = 0.0
    cur_us = 0.0
    for start, end, watts in timeline:
        high = watts >= threshold_w
        if cur_high is None or high != cur_high:
            if cur_high is not None and cur_us > 0:
                phases.append((cur_energy / cur_us, cur_us * 1e-6))
            cur_high = high
            cur_energy = 0.0
            cur_us = 0.0
        cur_energy += watts * (end - start)
        cur_us += end - start
    if cur_high is not None and cur_us > 0:
        phases.append((cur_energy / cur_us, cur_us * 1e-6))
    return phases
