"""Confidence intervals over repeated runs (§4.1).

The paper reports 95 % confidence intervals for energy over multiple runs
of each workload and found them "to be less than 0.7 % of the mean energy".
We use the standard two-sided Student-t interval on the sample mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval on a mean.

    Attributes:
        mean: sample mean.
        low / high: interval bounds.
        level: confidence level (0.95).
        n: number of observations.
    """

    mean: float
    low: float
    high: float
    level: float
    n: int

    @property
    def half_width(self) -> float:
        """Half the interval width."""
        return (self.high - self.low) / 2.0

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (the paper's 0.7 % metric)."""
        if self.mean == 0:
            return float("inf")
        return abs(self.half_width / self.mean)

    def contains(self, value: float) -> bool:
        """True if ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        """True if the two intervals overlap.

        The paper uses non-overlap as its "statistically significant
        difference" criterion when comparing Table 2 rows.
        """
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.low:.2f} - {self.high:.2f} (mean {self.mean:.2f}, n={self.n})"


def confidence_interval(
    values: Sequence[float], level: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval on the mean of ``values``.

    Args:
        values: at least two observations.
        level: confidence level in (0, 1).

    Raises:
        ValueError: with fewer than two observations or a bad level.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size < 2:
        raise ValueError("need at least two observations for an interval")
    if not 0.0 < level < 1.0:
        raise ValueError("confidence level must be in (0, 1)")
    mean = float(np.mean(arr))
    sem = float(np.std(arr, ddof=1) / np.sqrt(arr.size))
    if sem == 0.0:
        return ConfidenceInterval(mean, mean, mean, level, int(arr.size))
    t = float(_scipy_stats.t.ppf(0.5 + level / 2.0, df=arr.size - 1))
    half = t * sem
    return ConfidenceInterval(mean, mean - half, mean + half, level, int(arr.size))
