"""Parallel sweep execution with a content-addressed result cache.

The paper's evaluation is an exhaustive grid — predictor × speed setter ×
thresholds × workload, repeated for confidence intervals — and the serial
harness in :mod:`repro.measure.runner` replays every cell from scratch on
each invocation.  This module makes large grids cheap:

- a :class:`SweepCell` names one simulation by *value* (policy name and
  parameters, workload name and config, seed, kernel config) instead of by
  closures, so cells pickle cleanly to worker processes and digest stably
  into cache keys;
- :class:`SweepEngine` fans cells out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` and memoizes each
  :class:`CellResult` in an on-disk :class:`ResultCache` keyed by a SHA-256
  digest of the cell plus :data:`CACHE_SCHEMA_VERSION`, so unchanged cells
  are free on re-run.

Throughput plumbing keeps grid wall-time dominated by simulation rather
than dispatch: cells ship to workers in contiguous *chunks* (one pool task
per chunk amortizes pickling and future bookkeeping), the pool is *warm*
(spawned once per engine, workers preimport the simulator via an
initializer, and the pool is reused across batches until :meth:`close`),
and :class:`CellResult` pickles as a compact field tuple.  None of it is
observable in the numbers: chunks preserve submission order, and every
worker still runs the very same ``cell.run``.

The engine is *provably* deterministic: a worker runs the very same
:func:`repro.measure.runner.run_workload` the serial path runs, with the
very same seeds, so parallel results are bitwise-equal to serial ones, and
cached results round-trip through JSON without losing a bit (Python's
``json`` serializes floats via ``repr``, which is exact for doubles).
``tests/measure/test_parallel.py`` and ``tests/measure/test_cache.py``
lock this in.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import inspect
import json
import multiprocessing
import os
import queue as queue_module
import sys
import tempfile
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import (
    Callable,
    Dict,
    IO,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.core.catalog import POLICY_FACTORIES, resolve_policy
from repro.hw.clocksteps import ClockTable
from repro.hw.machines import MachineSpec
from repro.kernel.governor import Governor
from repro.kernel.recorders import (
    RECORDING_FULL,
    RECORDING_MINIMAL,
    RunRecorder,
)
from repro.kernel.scheduler import KernelConfig
from repro.obs.diagnose import DiagnosisWriter, PolicyDiagnosis, diagnose
from repro.obs.metrics import (
    KernelMetricsRecorder,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.calibrate import host_score
from repro.obs.fleet import FleetRecord, git_sha, new_sweep_id
from repro.obs.profile import (
    PHASE_CACHE,
    PHASE_COMPUTE,
    PHASE_DIAGNOSE,
    PHASE_IPC,
    PHASE_REDUCE,
    PHASE_SPINUP,
    PHASE_SUBMIT,
    PhaseProfile,
    arm_worker_stamps,
    drain_worker_stamps,
)
from repro.obs.runlog import RunLogRecord, RunLogWriter, now_unix
from repro.obs.telemetry import (
    HEARTBEAT_DONE,
    HEARTBEAT_START,
    LANE_ENGINE,
    ProgressModel,
    ProgressRenderer,
    SweepTelemetry,
)
from repro.kernel.backend import resolve_backend
from repro.measure.stats import ConfidenceInterval, confidence_interval
from repro.workloads.base import Workload
from repro.workloads.chess import ChessConfig, chess_workload
from repro.workloads.editor import EditorConfig, editor_workload
from repro.workloads.fuzz import FuzzSpec, fuzz_workload
from repro.workloads.mpeg import MpegConfig, mpeg_workload
from repro.workloads.replay import ReplayConfig, replay_config_workload
from repro.workloads.web import WebConfig, web_workload

#: Bump when the simulator's observable numbers change (kernel model,
#: power model, workload calibration, or the :class:`CellResult` schema):
#: every cached result keyed under the old version is then ignored.
#: Version 2 added the machine axis to the key.
#: Version 3 added the fuzz/replay workload axes and the machine
#: reconfiguration-cost fields (which change every machine digest).
CACHE_SCHEMA_VERSION = 3

#: Workload builders by CLI name.  Each entry is ``(builder, config_type)``
#: where ``builder(config)`` returns a :class:`Workload`.
WORKLOAD_BUILDERS: Dict[str, Tuple[Callable[..., Workload], type]] = {
    "mpeg": (mpeg_workload, MpegConfig),
    "web": (web_workload, WebConfig),
    "chess": (chess_workload, ChessConfig),
    "editor": (editor_workload, EditorConfig),
    "fuzz": (fuzz_workload, FuzzSpec),
    "replay": (replay_config_workload, ReplayConfig),
}


def register_workload(
    name: str, builder: Callable[..., Workload], config_type: type
) -> None:
    """Register an additional named workload for sweep specs.

    Args:
        name: spec name (must be new).
        builder: ``builder(config)`` returning a :class:`Workload`.
        config_type: the (dataclass) config the builder accepts.

    Raises:
        ValueError: if the name is already taken.
    """
    if name in WORKLOAD_BUILDERS:
        raise ValueError(f"workload {name!r} is already registered")
    WORKLOAD_BUILDERS[name] = (builder, config_type)


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload named by value: picklable and stably digestible.

    Attributes:
        name: key into :data:`WORKLOAD_BUILDERS`
            (mpeg/web/chess/editor/fuzz/replay).
        config: workload config dataclass, or None for the default.  A
            ``None`` config digests identically to an explicitly passed
            default-constructed config.
    """

    name: str
    config: Optional[object] = None

    def _entry(self) -> Tuple[Callable[..., Workload], type]:
        try:
            return WORKLOAD_BUILDERS[self.name]
        except KeyError:
            raise ValueError(
                f"unknown workload {self.name!r} "
                f"(known: {', '.join(sorted(WORKLOAD_BUILDERS))})"
            ) from None

    def effective_config(self) -> object:
        """The config that will be used: the default if none was given."""
        builder, config_type = self._entry()
        if self.config is None:
            return config_type()
        if not isinstance(self.config, config_type):
            raise TypeError(
                f"workload {self.name!r} takes {config_type.__name__}, "
                f"got {type(self.config).__name__}"
            )
        return self.config

    def build(self) -> Workload:
        """Construct the workload descriptor."""
        builder, _ = self._entry()
        return builder(self.effective_config())


@dataclass(frozen=True)
class PolicySpec:
    """A policy named by value: picklable and stably digestible.

    Either a bare grammar name (``best``, ``avg3-peg``, ``const-132.7``,
    ``const-132.7@1.23`` — see :func:`repro.core.catalog.resolve_policy`)
    or a :data:`~repro.core.catalog.POLICY_FACTORIES` key plus keyword
    parameters, e.g. ``PolicySpec.of("pering-avg", n=3, up="peg")``.

    Attributes:
        name: policy grammar name, or a catalog factory key when
            ``params`` is non-empty.
        params: sorted ``(key, value)`` pairs passed to the factory.
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def of(cls, name: str, **params: object) -> "PolicySpec":
        """Build a parameterized spec; parameters are sorted for stability."""
        return cls(name=name, params=tuple(sorted(params.items())))

    @property
    def label(self) -> str:
        """A short human-readable name, e.g. ``pering-avg(n=3, up='peg')``."""
        if not self.params:
            return self.name
        args = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.name}({args})"

    def build_factory(
        self, clock_table: Optional[ClockTable] = None
    ) -> Callable[[], Governor]:
        """A fresh-governor factory for this spec.

        Args:
            clock_table: the machine's clock table, so speed setters and
                constant speeds resolve against the machine the cell
                actually runs on (None = the SA-1100 default).  Explicit
                ``clock_table`` entries in :attr:`params` win; factories
                that take no such parameter are left alone.

        Raises:
            ValueError: for unknown names.
        """
        if not self.params:
            return resolve_policy(self.name, clock_table=clock_table)
        try:
            factory = POLICY_FACTORIES[self.name]
        except KeyError:
            raise ValueError(
                f"unknown policy factory {self.name!r} "
                f"(known: {', '.join(sorted(POLICY_FACTORIES))})"
            ) from None
        kwargs = dict(self.params)
        if (
            clock_table is not None
            and "clock_table" not in kwargs
            and "clock_table" in inspect.signature(factory).parameters
        ):
            kwargs["clock_table"] = clock_table
        return lambda: factory(**kwargs)


@dataclass(frozen=True)
class SweepCell:
    """One simulation of the grid, named entirely by value.

    Attributes:
        workload: what to run.
        policy: which governor to install.
        machine: which machine to run it on (default: modified Itsy).
        seed: workload jitter seed.
        kernel_config: kernel tunables (None = defaults).
        use_daq: measure through the DAQ model, as in the paper.
        daq_seed: DAQ noise seed (defaults to ``seed``).
        recording: kernel instrumentation level (``"full"`` or
            ``"minimal"``).  Not part of the cache key: recording modes
            are bitwise-equivalent in everything a :class:`CellResult`
            carries, so either mode may answer for the other.
        backend: execution-backend name for the simulation
            (``"reference"`` / ``"fastpath"``; None = the default, see
            :func:`repro.kernel.backend.resolve_backend`).  Not part of
            the cache key either — backends are bitwise-equivalent, so a
            cached result from one backend answers for any other.
    """

    workload: WorkloadSpec
    policy: PolicySpec
    seed: int = 0
    kernel_config: Optional[KernelConfig] = None
    use_daq: bool = True
    daq_seed: Optional[int] = None
    machine: MachineSpec = MachineSpec()
    recording: str = RECORDING_FULL
    backend: Optional[str] = None

    def effective_kernel_config(self) -> KernelConfig:
        """The kernel config that will be used (defaults if none given)."""
        return self.kernel_config if self.kernel_config is not None else KernelConfig()

    def describe(self) -> str:
        """The cell's coordinates, for error messages and logs."""
        return (
            f"policy={self.policy.label} workload={self.workload.name} "
            f"machine={self.machine.label} seed={self.seed}"
        )

    def execute(
        self, extra_recorders: Optional[Iterable[RunRecorder]] = None
    ):
        """Execute the cell serially and return the full
        :class:`~repro.measure.runner.ExperimentResult`.

        Diagnosis needs the complete :class:`KernelRun`; callers that only
        want the picklable summary use :meth:`run` instead.

        Args:
            extra_recorders: additional pure-observer recorders to attach
                (results are bitwise-identical with or without them).
        """
        from repro.measure.runner import run_workload

        return run_workload(
            self.workload.build(),
            self.policy.build_factory(self.machine.clock_table()),
            machine_factory=self.machine,
            seed=self.seed,
            kernel_config=self.effective_kernel_config(),
            use_daq=self.use_daq,
            daq_seed=self.daq_seed,
            recording=self.recording,
            extra_recorders=extra_recorders,
            backend=self.backend,
        )

    def run(
        self, extra_recorders: Optional[Iterable[RunRecorder]] = None
    ) -> "CellResult":
        """Execute the cell serially and summarize it for transport.

        Args:
            extra_recorders: additional pure-observer recorders to attach
                (results are bitwise-identical with or without them).
        """
        return CellResult.from_experiment(self.execute(extra_recorders))


@dataclass(frozen=True)
class CellResult:
    """The picklable summary a sweep worker returns (and the cache stores).

    Carries every number the CLI, the benchmarks and the determinism tests
    compare — but not the full :class:`~repro.kernel.scheduler.KernelRun`,
    which is far too large to ship between processes or persist per cell.

    Attributes:
        energy_j: DAQ-estimated energy (the paper's number).
        exact_energy_j: the analytic integral.
        mean_power_w: average power over the run.
        mean_utilization: average per-quantum utilization.
        duration_us: simulated wall-clock length.
        miss_count: deadline misses beyond the workload's tolerance.
        worst_miss_kind: event kind of the latest miss (None if on time).
        worst_lateness_us: lateness of that miss (0.0 if on time).
        clock_changes / clock_stall_us: frequency-transition accounting.
        voltage_changes: rail-transition count.
        final_step_index / final_mhz: clock step of the last quantum (the
            settled speed; what ``find_ideal_constant`` reports).
        residency: ``(mhz, fraction_of_quanta)`` pairs, ascending by MHz.
    """

    energy_j: float
    exact_energy_j: float
    mean_power_w: float
    mean_utilization: float
    duration_us: float
    miss_count: int
    worst_miss_kind: Optional[str]
    worst_lateness_us: float
    clock_changes: int
    clock_stall_us: float
    voltage_changes: int
    final_step_index: int
    final_mhz: float
    residency: Tuple[Tuple[float, float], ...]

    @property
    def missed(self) -> bool:
        """True if any deadline was perceptibly missed."""
        return self.miss_count > 0

    def residency_at(self, mhz: float) -> float:
        """Fraction of quanta spent at ``mhz`` (0.0 if never)."""
        for step_mhz, share in self.residency:
            if step_mhz == mhz:
                return share
        return 0.0

    @classmethod
    def from_experiment(cls, result) -> "CellResult":
        """Summarize an :class:`~repro.measure.runner.ExperimentResult`.

        Under minimal recording the run carries no quantum log; the
        residency and final-step fields then come from the streaming
        :class:`~repro.kernel.recorders.QuantumStats`, whose counts and
        divisions are identical to the full log's, so the summary is
        bitwise-equal either way.
        """
        run = result.run
        counts: Dict[float, int] = {}
        stats = run.quantum_stats
        if stats is not None and stats.count:
            # Streaming aggregates are preferred when present: on the
            # fast-path core they spare materializing the quantum log
            # (thousands of QuantumRecord objects) just to count step
            # residency.  The per-step counts sum to the same integers
            # as a walk over the log, so the fractions are bitwise equal.
            for index, quanta in stats.quanta_by_step.items():
                mhz = stats.mhz_by_step[index]
                counts[mhz] = counts.get(mhz, 0) + quanta
            n = stats.count
            final_step_index = stats.final_step_index
            final_mhz = stats.final_mhz
        else:
            for q in run.quanta:
                counts[q.mhz] = counts.get(q.mhz, 0) + 1
            n = len(run.quanta)
            if run.quanta:
                final_step_index = run.quanta[-1].step_index
                final_mhz = run.quanta[-1].mhz
            else:
                final_step_index = 0
                final_mhz = 0.0
        residency = tuple(
            (mhz, counts[mhz] / n) for mhz in sorted(counts)
        ) if n else ()
        worst = max(result.misses, key=lambda e: e.lateness_us) if result.misses else None
        return cls(
            energy_j=result.energy_j,
            exact_energy_j=result.exact_energy_j,
            mean_power_w=result.mean_power_w,
            mean_utilization=run.mean_utilization(),
            duration_us=run.duration_us,
            miss_count=len(result.misses),
            worst_miss_kind=worst.kind if worst else None,
            worst_lateness_us=worst.lateness_us if worst else 0.0,
            clock_changes=run.clock_changes,
            clock_stall_us=run.clock_stall_us,
            voltage_changes=run.voltage_changes,
            final_step_index=final_step_index,
            final_mhz=final_mhz,
            residency=residency,
        )

    def __getstate__(self) -> tuple:
        """Pickle as a bare field tuple (compact wire transport).

        The default protocol ships the instance ``__dict__`` — fourteen
        field-name strings per result.  Sweeps move thousands of results
        between processes, so the tuple form measurably shrinks pool
        traffic.  Field order is the dataclass declaration order.
        """
        return tuple(
            getattr(self, f.name) for f in dataclasses.fields(self)
        )

    def __setstate__(self, state: tuple) -> None:
        for f, value in zip(dataclasses.fields(self), state):
            object.__setattr__(self, f.name, value)

    def to_json(self) -> dict:
        """A JSON-safe dict; floats survive exactly (``repr`` round-trip)."""
        payload = dataclasses.asdict(self)
        payload["residency"] = [list(pair) for pair in self.residency]
        return payload

    @classmethod
    def from_json(cls, payload: Mapping) -> "CellResult":
        """Inverse of :meth:`to_json`."""
        data = dict(payload)
        data["residency"] = tuple(tuple(pair) for pair in data["residency"])
        return cls(**data)


# -- cache keys ---------------------------------------------------------------------


def _canonical(obj: object) -> object:
    """A JSON-representable canonical form of specs and configs.

    Dataclasses are tagged with their class name so two config types with
    identical fields do not collide; tuples and lists are interchangeable;
    mapping keys are stringified and sorted by the JSON encoder.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        body = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__class__": type(obj).__name__, **body}
    if isinstance(obj, Mapping):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for a cache key")


def cache_key(cell: SweepCell) -> str:
    """The content address of a cell's result.

    A SHA-256 digest over the canonical JSON of (policy name/params,
    workload name/effective config, machine spec, seed, DAQ settings,
    kernel config, schema version).  Stable across processes and hosts —
    it depends only on the cell's values, never on object identity or
    hash seeds.  The recording mode and the execution ``backend`` are
    deliberately absent: recording modes and backends all produce
    bitwise-identical :class:`CellResult`\\ s, so they share cache
    entries.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "policy": {"name": cell.policy.name, "params": _canonical(cell.policy.params)},
        "workload": {
            "name": cell.workload.name,
            "config": _canonical(cell.workload.effective_config()),
        },
        "machine": _canonical(cell.machine),
        "seed": cell.seed,
        "use_daq": cell.use_daq,
        "daq_seed": cell.daq_seed,
        "kernel": _canonical(cell.effective_kernel_config()),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """A content-addressed on-disk store of :class:`CellResult` objects.

    One JSON file per key under ``root``; writes are atomic (temp file +
    rename) so concurrent sweeps sharing a cache directory never observe a
    torn entry.  Entries written under a different
    :data:`CACHE_SCHEMA_VERSION` are treated as absent.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives."""
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[CellResult]:
        """The cached result, or None on miss/corruption/schema change."""
        try:
            payload = json.loads(self.path_for(key).read_text())
        except (OSError, ValueError):
            return None
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        try:
            return CellResult.from_json(payload["result"])
        except (KeyError, TypeError):
            return None

    def put(self, key: str, result: CellResult) -> None:
        """Store ``result`` under ``key`` atomically."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {"schema": CACHE_SCHEMA_VERSION, "key": key, "result": result.to_json()}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*.json"))
        except OSError:
            return 0


def _execute_cell(cell: SweepCell) -> CellResult:
    """Worker entry point (module-level so it pickles)."""
    return cell.run()


def _execute_cell_observed(
    cell: SweepCell, with_metrics: bool, profiled: bool = False
) -> Tuple[
    CellResult, float, Optional[MetricsSnapshot], int, float, float,
    Tuple[Tuple[str, float, float], ...],
]:
    """Instrumented worker: times the cell and (optionally) collects the
    kernel hot-loop metrics in a worker-local registry whose snapshot the
    parent merges.  The simulation itself is the very same ``cell.run``
    the plain worker calls, so results stay bitwise-identical.

    The trailing ``(pid, t_start, t_end, phases)`` fields carry the
    executing process and the cell's ``perf_counter`` interval home on
    the result channel — the telemetry layer builds its per-cell
    worker-lane spans from these (never from heartbeats, which are
    display-only and may trail the future's completion).  With
    ``profiled``, ``phases`` additionally carries the cell's phase
    stamps for the :class:`~repro.obs.profile.PhaseProfile`: the
    kernel-compute interval, any kernel-side observer-reduction stamps
    (the fast path stamps its bulk-tap replay), and the summary
    reduction — ``cell.run`` split into its two halves
    (:meth:`SweepCell.execute` + :meth:`CellResult.from_experiment`),
    which is the very same computation, just stamped between the
    halves.
    """
    registry = MetricsRegistry() if with_metrics else None
    extra = [KernelMetricsRecorder(registry)] if registry is not None else None
    if not profiled:
        start = perf_counter()
        result = cell.run(extra_recorders=extra)
        end = perf_counter()
        snap = registry.snapshot() if registry is not None else None
        return result, end - start, snap, os.getpid(), start, end, ()
    arm_worker_stamps()
    start = perf_counter()
    experiment = cell.execute(extra_recorders=extra)
    t_computed = perf_counter()
    result = CellResult.from_experiment(experiment)
    end = perf_counter()
    phases = (
        (PHASE_COMPUTE, start, t_computed),
        *drain_worker_stamps(),
        (PHASE_REDUCE, t_computed, end),
    )
    snap = registry.snapshot() if registry is not None else None
    return result, end - start, snap, os.getpid(), start, end, phases


def _execute_cell_diagnosed(
    cell: SweepCell, with_metrics: bool, baseline_j: Optional[float],
    profiled: bool = False,
) -> Tuple[
    CellResult, float, Optional[MetricsSnapshot], PolicyDiagnosis,
    int, float, float, Tuple[Tuple[str, float, float], ...],
]:
    """Diagnosing worker: runs the cell with full recording, computes its
    :class:`~repro.obs.diagnose.PolicyDiagnosis` worker-side, and ships
    the picklable diagnosis home alongside the summary — the diagnosis
    analogue of merging a worker's :class:`MetricsSnapshot`.

    Full recording is forced (diagnosis needs the quantum log and power
    timeline); that cannot change the summary, because recording modes
    are bitwise-equivalent in everything a :class:`CellResult` carries.

    ``wall_s`` keeps its historical meaning (simulation time only) while
    the telemetry interval ``t_start..t_end`` covers simulate + diagnose
    — the span shows what the worker was occupied with, the run-log
    shows what the simulation cost.  With ``profiled``, the trailing
    ``phases`` carries compute / diagnosis / reduction stamps (plus any
    kernel-side stamps) for the phase profile; empty otherwise.
    """
    registry = MetricsRegistry() if with_metrics else None
    extra = [KernelMetricsRecorder(registry)] if registry is not None else None
    full_cell = dataclasses.replace(cell, recording=RECORDING_FULL)
    if profiled:
        arm_worker_stamps()
    start = perf_counter()
    result = full_cell.execute(extra_recorders=extra)
    t_computed = perf_counter()
    wall_s = t_computed - start
    diagnosis = diagnose(
        result,
        policy=cell.policy.label,
        workload=cell.workload.name,
        machine=cell.machine,
        machine_label=cell.machine.label,
        seed=cell.seed,
        baseline_j=baseline_j,
    )
    t_diagnosed = perf_counter()
    summary = CellResult.from_experiment(result)
    end = perf_counter()
    phases: Tuple[Tuple[str, float, float], ...] = ()
    if profiled:
        phases = (
            (PHASE_COMPUTE, start, t_computed),
            *drain_worker_stamps(),
            (PHASE_DIAGNOSE, t_computed, t_diagnosed),
            (PHASE_REDUCE, t_diagnosed, end),
        )
    return (
        summary,
        wall_s,
        registry.snapshot() if registry is not None else None,
        diagnosis,
        os.getpid(),
        start,
        end,
        phases,
    )


#: Worker-global heartbeat channel, installed by :func:`_warm_worker`.
#: None in workers whose engine runs without live progress.
_HEARTBEATS: Optional[object] = None


def _warm_worker(heartbeats: Optional[object] = None) -> None:
    """Pool initializer: preimport the simulator once per worker process.

    With the ``fork`` start method workers inherit the parent's modules
    and this is nearly free; under ``spawn`` it moves the import cost of
    the kernel, workloads and measurement stack out of the first chunk's
    latency.  Importing :mod:`repro.measure.runner` pulls in everything a
    cell run touches (both kernel cores, all workload builders, the DAQ).

    ``heartbeats`` is the engine's live-progress queue (or None): pool
    initargs travel through ``Process`` arguments, which is exactly the
    channel a ``multiprocessing.Queue`` is allowed to cross.
    """
    global _HEARTBEATS
    _HEARTBEATS = heartbeats
    import repro.measure.runner  # noqa: F401


def _heartbeat(tag: str, cell_id: Optional[int]) -> None:
    """Emit one display heartbeat, best-effort (never fails the cell)."""
    hb = _HEARTBEATS
    if hb is None or cell_id is None:
        return
    try:
        hb.put((tag, os.getpid(), cell_id, perf_counter()))
    except Exception:  # pragma: no cover - queue torn down mid-sweep
        pass


def _execute_chunk(
    cells: List[SweepCell],
    mode: str,
    with_metrics: bool,
    baseline_js: List[Optional[float]],
    cell_ids: Optional[List[int]] = None,
    profiled: bool = False,
) -> List[Tuple[str, object]]:
    """Run a contiguous chunk of cells in one pool task.

    One submission per chunk (instead of per cell) amortizes argument
    pickling, future bookkeeping and result IPC across the chunk.  Each
    cell's outcome is tagged ``("ok", outcome)`` or ``("err", exception)``
    so a failure is attributed to the *cell* that raised it, not to an
    opaque chunk — the parent re-raises it as a :class:`SweepCellError`
    with the original exception as ``__cause__``.  ``mode`` selects the
    same per-cell entry points the unchunked engine used: ``"plain"``,
    ``"observed"`` or ``"diagnosed"``.

    When the worker carries a heartbeat queue (live ``--progress``),
    each cell brackets its execution with start/done heartbeats keyed by
    ``cell_ids`` — pure display traffic on a side channel; results still
    travel only on the pool's result path.
    """
    if cell_ids is None:
        cell_ids = [None] * len(cells)  # type: ignore[list-item]
    out: List[Tuple[str, object]] = []
    for cell, baseline_j, cell_id in zip(cells, baseline_js, cell_ids):
        _heartbeat(HEARTBEAT_START, cell_id)
        try:
            if mode == "diagnosed":
                outcome: object = _execute_cell_diagnosed(
                    cell, with_metrics, baseline_j, profiled
                )
            elif mode == "observed":
                outcome = _execute_cell_observed(cell, with_metrics, profiled)
            else:
                outcome = _execute_cell(cell)
            out.append(("ok", outcome))
        except Exception as exc:
            out.append(("err", exc))
        _heartbeat(HEARTBEAT_DONE, cell_id)
    return out


def _baseline_key(cell: SweepCell) -> str:
    """The coordinates a cell's oracle baseline depends on, as a string.

    Policy, DAQ settings and recording mode are deliberately absent: the
    ideal-constant search is a property of workload x machine x seed x
    kernel config alone, so diagnosed cells that differ only in policy
    share one baseline computation.
    """
    payload = {
        "workload": {
            "name": cell.workload.name,
            "config": _canonical(cell.workload.effective_config()),
        },
        "machine": _canonical(cell.machine),
        "seed": cell.seed,
        "kernel": _canonical(cell.effective_kernel_config()),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class SweepCellError(RuntimeError):
    """A sweep worker failed; names the cell instead of an opaque pool error.

    A crashed worker process surfaces as
    :class:`~concurrent.futures.process.BrokenProcessPool` with no hint of
    *which* simulation sank it; this wrapper carries the failing cell's
    coordinates (policy / workload / machine / seed) and keeps the original
    exception as ``__cause__``.
    """

    def __init__(self, cell: SweepCell, cause: BaseException):
        self.cell = cell
        super().__init__(
            f"sweep cell failed ({cell.describe()}): "
            f"{type(cause).__name__}: {cause}"
        )


@dataclass
class SweepStats:
    """Cumulative accounting of a :class:`SweepEngine`.

    Attributes:
        executed: simulations actually run (unique cells, deduplicated).
        cache_hits: unique cells answered from the cache.
        wall_s: wall-clock time spent inside :meth:`SweepEngine.run`.
    """

    executed: int = 0
    cache_hits: int = 0
    wall_s: float = 0.0

    @property
    def total(self) -> int:
        """Unique cells served so far."""
        return self.executed + self.cache_hits

    @property
    def cells_per_s(self) -> float:
        """Sweep throughput: unique cells served per wall-clock second."""
        return self.total / self.wall_s if self.wall_s > 0 else 0.0

    def summary(self) -> str:
        """The one-line accounting every sweep CLI command prints."""
        return (
            f"sweep: {self.executed} simulated, {self.cache_hits} cached, "
            f"{self.wall_s:.1f} s, {self.cells_per_s:.1f} cells/s"
        )


class _HeartbeatPump:
    """Drains worker heartbeats into the progress model while futures fly.

    A daemon thread blocks on the heartbeat queue with a short timeout so
    the display stays live between chunk completions; :meth:`stop` joins
    the thread and then drains whatever the queue's feeder thread had
    still in flight — heartbeats are asynchronous to the result channel,
    so trailing events after the last future are normal, not a bug.
    """

    def __init__(
        self,
        heartbeats: object,
        model: ProgressModel,
        renderer: Optional[ProgressRenderer],
        labels: Dict[int, str],
        lock: threading.Lock,
    ):
        self._heartbeats = heartbeats
        self._model = model
        self._renderer = renderer
        self._labels = labels
        self._lock = lock
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="sweep-heartbeats", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            self._drain(timeout=0.05)

    def _drain(self, timeout: Optional[float] = None) -> None:
        try:
            event = self._heartbeats.get(timeout=timeout)  # type: ignore[attr-defined]
        except (queue_module.Empty, OSError, ValueError):
            return
        if event is not None:
            self._apply(event)
        while True:
            try:
                event = self._heartbeats.get_nowait()  # type: ignore[attr-defined]
            except (queue_module.Empty, OSError, ValueError):
                break
            if event is not None:
                self._apply(event)

    def _apply(self, event: Tuple[str, int, int, float]) -> None:
        tag, pid, cell_id, t = event
        with self._lock:
            if tag == HEARTBEAT_START:
                self._model.cell_started(
                    pid, cell_id, t, self._labels.get(cell_id, "")
                )
            elif tag == HEARTBEAT_DONE:
                self._model.cell_finished(pid, cell_id, t)
        if self._renderer is not None:
            self._renderer.update()

    def stop(self) -> None:
        """Stop the pump and drain any heartbeats already queued.

        A ``None`` sentinel wakes the drain thread out of its blocking
        get immediately, so stopping costs microseconds rather than a
        full poll-timeout — the pump must not tax sweeps that finish
        between display refreshes.
        """
        self._stop.set()
        try:
            self._heartbeats.put_nowait(None)  # type: ignore[attr-defined]
        except (OSError, ValueError):
            pass
        self._thread.join(timeout=2.0)
        while True:
            try:
                event = self._heartbeats.get_nowait()  # type: ignore[attr-defined]
            except (queue_module.Empty, OSError, ValueError):
                break
            if event is not None:
                self._apply(event)


class SweepEngine:
    """Runs batches of sweep cells, in parallel and through the cache.

    Results come back in the order the cells were given, regardless of
    which worker finished first, and duplicate cells within a batch are
    simulated once.  ``jobs=1`` executes in-process (and is what the
    determinism tests compare the pool against).

    The pool path is engineered for throughput: cells are submitted in
    contiguous chunks (``chunk_size`` per pool task; auto-sized to a few
    chunks per worker by default) so per-task pickling and future
    overhead amortize, and the pool itself is spawned once — warm
    workers preimport the simulator and are reused across batches until
    :meth:`close` (the engine is a context manager; ``reuse_pool=False``
    restores the spawn-per-batch behaviour).  Chunks preserve input
    order, so results are the same, bitwise, at any chunk size.

    Observability is opt-in and free when off: with ``metrics`` the engine
    counts cells/cache traffic, times each cell, and merges the workers'
    kernel hot-loop counters back into the given registry; with
    ``run_log`` it appends one structured JSONL audit record per unique
    cell.  With ``diagnose=True`` (or a ``diagnosis_log``) every executed
    cell additionally runs the
    :mod:`~repro.obs.diagnose` engine worker-side — the oracle baselines
    are batched through this same engine first, then each worker ships a
    :class:`~repro.obs.diagnose.PolicyDiagnosis` home next to its result,
    collected in :attr:`diagnoses` by run id (cache hits carry no kernel
    run and are not re-diagnosed).  None of this can change a result —
    instrumented workers run the very same simulation, and the
    determinism tests pin the equality bitwise.

    Sweep-level telemetry rides the same observer seam: pass a
    :class:`~repro.obs.telemetry.SweepTelemetry` to span-trace the
    pipeline (pool spin-up, chunk submission, per-cell execution on one
    lane per worker, cache hits, baseline dedup, result merge — export
    via ``telemetry.chrome_trace()``), and ``progress=True`` for the
    live heartbeat-driven TTY display (silently inert when
    ``progress_stream`` is not a terminal).  Both are pure observers;
    ``benchmarks/bench_telemetry_overhead.py`` enforces bitwise equality
    and the overhead bar.  :meth:`fleet_record` summarizes everything
    the engine served into one fleet-ledger entry.

    Pass a :class:`~repro.obs.profile.PhaseProfile` as ``profile`` to
    attribute the sweep's wall time to pipeline phases: the engine
    stamps its own stages (spin-up, submission, cache I/O, result IPC)
    and instrumented workers ship compute / reduction / diagnosis
    stamps home on the result tuples; the per-phase totals land in the
    fleet record and, with telemetry on, as nested spans in the Chrome
    trace.  ``benchmarks/bench_profile_overhead.py`` holds profiling to
    the same bitwise-equality and overhead bars.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        run_log: Optional[RunLogWriter] = None,
        diagnose: bool = False,
        diagnosis_log: Optional[DiagnosisWriter] = None,
        chunk_size: Optional[int] = None,
        reuse_pool: bool = True,
        telemetry: Optional[SweepTelemetry] = None,
        progress: bool = False,
        progress_stream: Optional[IO[str]] = None,
        profile: Optional[PhaseProfile] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.jobs = jobs
        self.cache = cache
        self.metrics = metrics
        self.run_log = run_log
        self.diagnosis_log = diagnosis_log
        self.chunk_size = chunk_size
        self.reuse_pool = reuse_pool
        self._diagnose = diagnose or diagnosis_log is not None
        #: diagnoses of executed cells, keyed by run id (the cache key).
        self.diagnoses: Dict[str, PolicyDiagnosis] = {}
        self.stats = SweepStats()
        self._run_depth = 0  # baseline batches re-enter run()
        self._pool: Optional[ProcessPoolExecutor] = None
        self.telemetry = telemetry
        self.profile = profile
        self.progress = progress
        self._progress_lock = threading.Lock()
        self._cell_labels: Dict[int, str] = {}
        self._next_cell_id = 0
        self._worker_ordinals: Dict[int, int] = {}
        self._pump: Optional[_HeartbeatPump] = None
        # The heartbeat queue is created up front (not per batch): pool
        # initargs are fixed at pool spin-up, and the warm pool outlives
        # individual batches.
        self._heartbeats = (
            multiprocessing.Queue() if progress and jobs > 1 else None
        )
        if progress:
            stream = progress_stream if progress_stream is not None else sys.stderr
            self.progress_model: Optional[ProgressModel] = ProgressModel()
            self.progress_renderer: Optional[ProgressRenderer] = ProgressRenderer(
                self.progress_model, stream
            )
        else:
            self.progress_model = None
            self.progress_renderer = None
        # Grid axes of top-level batches, accumulated for fleet_record().
        self._axis_policies: Set[str] = set()
        self._axis_workloads: Set[str] = set()
        self._axis_machines: Set[str] = set()
        self._axis_seeds: Set[int] = set()
        self._axis_backends: Set[str] = set()

    @property
    def diagnosing(self) -> bool:
        """Whether executed cells are diagnosed worker-side."""
        return self._diagnose

    def close(self) -> None:
        """Shut down the warm worker pool (idempotent).

        The engine stays usable — the next pooled batch spawns a fresh
        pool.  Exiting the engine's ``with`` block calls this.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _chunked(
        self, todo: List[Tuple[str, SweepCell, int]], workers: int
    ) -> List[List[Tuple[str, SweepCell, int]]]:
        """Split ``todo`` into contiguous chunks, preserving order.

        Auto-sizing targets four chunks per worker: large enough to
        amortize per-task pickling, small enough that a slow cell does
        not leave the other workers idle at the tail of the batch.
        """
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(todo) // (workers * 4)))
        return [todo[i : i + size] for i in range(0, len(todo), size)]

    def _run_chunks(
        self,
        pool: ProcessPoolExecutor,
        chunks: List[List[Tuple[str, SweepCell, int]]],
        mode: str,
        with_metrics: bool,
        baselines: Dict[str, Optional[float]],
    ) -> List[object]:
        """Submit chunks and flatten their outcomes back into todo order.

        Raises:
            SweepCellError: for an in-worker failure (naming the exact
                cell, original exception as ``__cause__``) or a pool-level
                failure (attributed to the chunk's first cell).
        """
        profiled = self.profile is not None
        with self._t_span(
            "submit chunks",
            chunks=len(chunks),
            cells=sum(len(chunk) for chunk in chunks),
        ), self._p_interval(PHASE_SUBMIT):
            futures = [
                pool.submit(
                    _execute_chunk,
                    [cell for _, cell, _ in chunk],
                    mode,
                    with_metrics,
                    [
                        baselines[_baseline_key(cell)]
                        if mode == "diagnosed"
                        else None
                        for _, cell, _ in chunk
                    ],
                    [cell_id for _, _, cell_id in chunk],
                    profiled,
                )
                for chunk in chunks
            ]
        fresh: List[object] = []
        for chunk, future in zip(chunks, futures):
            wait_start = perf_counter() if profiled else 0.0
            try:
                tagged = future.result()
            except Exception as exc:
                # The pool itself failed (worker crash, result transport);
                # a dead warm pool must not poison the next batch.
                if pool is self._pool:
                    self.close()
                raise SweepCellError(chunk[0][1], exc) from exc
            for (_, cell, _), (tag, payload) in zip(chunk, tagged):
                if tag == "err":
                    assert isinstance(payload, BaseException)
                    raise SweepCellError(cell, payload) from payload
                fresh.append(payload)
            if profiled:
                # Result IPC: the slice of the wait after the chunk's
                # last cell finished computing is unpickling/transfer —
                # the rest of the wait is covered by the workers' own
                # compute stamps on the shared timebase.  Plain-mode
                # outcomes carry no worker clock, so charge the whole
                # (already completed) wait.
                recv = perf_counter()
                ends = [
                    payload[-2]
                    for tag, payload in tagged
                    if tag == "ok" and mode != "plain"
                ]
                ipc_start = max([wait_start] + ends) if ends else wait_start
                self.profile.add_interval(PHASE_IPC, ipc_start, recv)
        return fresh

    def run(self, cells: Iterable[SweepCell]) -> List[CellResult]:
        """Execute ``cells`` and return their results, input-ordered.

        Raises:
            SweepCellError: when a worker fails (or the pool breaks),
                naming the affected cell.
        """
        start = perf_counter()
        if self._run_depth == 0:
            self._begin_sweep()
        self._run_depth += 1
        try:
            return self._run_batch(cells)
        finally:
            self._run_depth -= 1
            if self._run_depth == 0:
                self.stats.wall_s += perf_counter() - start
                self._end_sweep()

    def _begin_sweep(self) -> None:
        """Arm the observers before a top-level batch."""
        if self.telemetry is not None:
            self.telemetry.start()
        if (
            self._heartbeats is not None
            and self.progress_model is not None
            and self._pump is None
        ):
            self._pump = _HeartbeatPump(
                self._heartbeats,
                self.progress_model,
                self.progress_renderer,
                self._cell_labels,
                self._progress_lock,
            )
            self._pump.start()

    def _end_sweep(self) -> None:
        """Settle the observers after a top-level batch completes."""
        pump, self._pump = self._pump, None
        if pump is not None:
            pump.stop()
        if self.progress_renderer is not None:
            self.progress_renderer.finish()

    def _t_span(self, name: str, **args: object):
        """A telemetry span context, or a no-op when telemetry is off."""
        if self.telemetry is None:
            return contextlib.nullcontext()
        return self.telemetry.span(name, **args)

    @contextlib.contextmanager
    def _p_interval(self, phase: str):
        """Stamp the enclosed engine-side work into the phase profile.

        A no-op context when no profile is attached — the profiled path
        costs two ``perf_counter`` reads per use.
        """
        if self.profile is None:
            yield
            return
        t0 = perf_counter()
        try:
            yield
        finally:
            self.profile.add_interval(phase, t0, perf_counter())

    def _new_cell_id(self, cell: SweepCell) -> int:
        """A sweep-unique display id for one pending cell."""
        cell_id = self._next_cell_id
        self._next_cell_id += 1
        self._cell_labels[cell_id] = (
            f"{cell.policy.label}/{cell.workload.name}"
        )
        return cell_id

    def _ordinal_for(self, pid: int) -> int:
        """Stable zero-based worker ordinal for ``pid``.

        Shares the telemetry lane assignment when telemetry is on, so
        run-log ordinals and trace lanes name the same worker.
        """
        if self.telemetry is not None and pid != os.getpid():
            return self.telemetry.ordinal_for(pid)
        ordinal = self._worker_ordinals.get(pid)
        if ordinal is None:
            ordinal = len(self._worker_ordinals)
            self._worker_ordinals[pid] = ordinal
        return ordinal

    def _record_axes(self, cells: List[SweepCell]) -> None:
        """Accumulate top-level grid axes for :meth:`fleet_record`."""
        for cell in cells:
            self._axis_policies.add(cell.policy.label)
            self._axis_workloads.add(cell.workload.name)
            self._axis_machines.add(cell.machine.label)
            self._axis_seeds.add(cell.seed)
            self._axis_backends.add(resolve_backend(cell.backend).name)

    def fleet_record(self, command: str = "") -> FleetRecord:
        """Summarize everything this engine served as one ledger entry."""
        finished = now_unix()
        return FleetRecord(
            sweep_id=new_sweep_id(finished),
            unix_time=finished,
            command=command,
            policies=tuple(sorted(self._axis_policies)),
            workloads=tuple(sorted(self._axis_workloads)),
            machines=tuple(sorted(self._axis_machines)),
            seeds=len(self._axis_seeds),
            cells_total=self.stats.total,
            cells_executed=self.stats.executed,
            cells_cached=self.stats.cache_hits,
            wall_s=self.stats.wall_s,
            cells_per_s=self.stats.cells_per_s,
            backend=",".join(sorted(self._axis_backends)),
            jobs=self.jobs,
            git_sha=git_sha(),
            host_score=host_score(),
            phases=(
                tuple(sorted(self.profile.phase_seconds().items()))
                if self.profile is not None
                else ()
            ),
        )

    def _run_batch(self, cells: Iterable[SweepCell]) -> List[CellResult]:
        ordered = list(cells)
        keys = [cache_key(cell) for cell in ordered]
        results: Dict[str, CellResult] = {}
        if self._run_depth == 1:
            self._record_axes(ordered)
        if self.progress_model is not None:
            with self._progress_lock:
                self.progress_model.add_total(len(set(keys)))

        pending: Dict[str, SweepCell] = {}
        for key, cell in zip(keys, ordered):
            if key in results or key in pending:
                continue
            if self.cache is not None:
                with self._p_interval(PHASE_CACHE):
                    hit = self.cache.get(key)
            else:
                hit = None
            if hit is not None:
                results[key] = hit
                self.stats.cache_hits += 1
                self._observe(cell, key, hit, wall_s=0.0, cached=True)
                if self.telemetry is not None:
                    self.telemetry.add_instant(
                        "cache hit",
                        policy=cell.policy.label,
                        workload=cell.workload.name,
                        seed=cell.seed,
                    )
                if self.progress_model is not None:
                    with self._progress_lock:
                        self.progress_model.cache_hit(-1, perf_counter())
                    if self.progress_renderer is not None:
                        self.progress_renderer.update()
            else:
                pending[key] = cell

        # Diagnosis wants the oracle baseline per workload/machine/seed
        # combination.  Those constant-step searches run through this very
        # engine (parallelized and cached); _run_depth > 1 marks the
        # nested batches so they are not themselves diagnosed.
        diagnosing = self._diagnose and self._run_depth == 1
        baselines: Dict[str, Optional[float]] = {}
        if diagnosing and pending:
            with self._t_span("baseline dedup", cells=len(pending)):
                baselines = self._compute_baselines(pending.values())

        if pending:
            todo = [
                (key, cell, self._new_cell_id(cell))
                for key, cell in pending.items()
            ]
            observed = (
                self.metrics is not None
                or self.run_log is not None
                or self.telemetry is not None
                or self.profile is not None
            )
            profiled = self.profile is not None
            with_metrics = self.metrics is not None
            if diagnosing:
                mode = "diagnosed"
            elif observed:
                mode = "observed"
            else:
                mode = "plain"
            if self.jobs > 1 and len(todo) > 1:
                workers = min(self.jobs, len(todo))
                if self.metrics is not None:
                    self.metrics.gauge("sweep.workers").set(workers)
                chunks = self._chunked(todo, workers)
                if self.reuse_pool:
                    if self._pool is None:
                        with self._t_span(
                            "pool spin-up", workers=self.jobs
                        ), self._p_interval(PHASE_SPINUP):
                            self._pool = ProcessPoolExecutor(
                                max_workers=self.jobs,
                                initializer=_warm_worker,
                                initargs=(self._heartbeats,),
                            )
                    fresh = self._run_chunks(
                        self._pool, chunks, mode, with_metrics, baselines
                    )
                else:
                    with self._t_span(
                        "pool spin-up", workers=workers
                    ), self._p_interval(PHASE_SPINUP):
                        pool = ProcessPoolExecutor(
                            max_workers=workers,
                            initializer=_warm_worker,
                            initargs=(self._heartbeats,),
                        )
                    with pool:
                        fresh = self._run_chunks(
                            pool, chunks, mode, with_metrics, baselines
                        )
            else:
                fresh = []
                for _, cell, cell_id in todo:
                    self._progress_cell_started(cell_id)
                    if diagnosing:
                        outcome: object = _execute_cell_diagnosed(
                            cell, with_metrics,
                            baselines[_baseline_key(cell)], profiled,
                        )
                    elif observed:
                        outcome = _execute_cell_observed(
                            cell, with_metrics, profiled
                        )
                    else:
                        outcome = _execute_cell(cell)
                    fresh.append(outcome)
                    self._progress_cell_finished(cell_id)
            with self._t_span("merge results", cells=len(todo)):
                for (key, cell, cell_id), outcome in zip(todo, fresh):
                    diagnosis: Optional[PolicyDiagnosis] = None
                    pid: Optional[int] = None
                    t_start = t_end = 0.0
                    phases: Tuple[Tuple[str, float, float], ...] = ()
                    if diagnosing:
                        (
                            result, wall_s, snap, diagnosis,
                            pid, t_start, t_end, phases,
                        ) = outcome
                        if self.metrics is not None and snap is not None:
                            self.metrics.merge(snap)
                    elif observed:
                        (
                            result, wall_s, snap, pid, t_start, t_end, phases
                        ) = outcome
                        if self.metrics is not None and snap is not None:
                            self.metrics.merge(snap)
                    else:
                        result, wall_s = outcome, 0.0
                    if self.profile is not None and phases:
                        self.profile.add_group(phases)
                    results[key] = result
                    if self.cache is not None:
                        with self._p_interval(PHASE_CACHE):
                            self.cache.put(key, result)
                    self._observe(
                        cell,
                        key,
                        result,
                        wall_s=wall_s,
                        cached=False,
                        worker_pid=pid,
                        worker_ordinal=(
                            self._ordinal_for(pid) if pid is not None else None
                        ),
                    )
                    if self.telemetry is not None and pid is not None:
                        lane = (
                            LANE_ENGINE
                            if pid == os.getpid()
                            else self.telemetry.lane_for(pid)
                        )
                        self.telemetry.add_span(
                            self._cell_labels.get(cell_id, cell.policy.label),
                            self.telemetry.to_us(t_start),
                            self.telemetry.to_us(t_end),
                            lane=lane,
                            seed=cell.seed,
                            machine=cell.machine.label,
                            mode=mode,
                        )
                        # Phase stamps nest inside the cell span on the
                        # same lane; compute is the cell span itself.
                        for phase, p0, p1 in phases:
                            if phase == PHASE_COMPUTE:
                                continue
                            self.telemetry.add_span(
                                phase,
                                self.telemetry.to_us(p0),
                                self.telemetry.to_us(p1),
                                lane=lane,
                            )
                    if diagnosis is not None:
                        self.diagnoses[key] = diagnosis
                        if self.diagnosis_log is not None:
                            self.diagnosis_log.write(diagnosis)
            self.stats.executed += len(todo)

        return [results[key] for key in keys]

    def _progress_cell_started(self, cell_id: int) -> None:
        """Feed the in-process execution path into the progress model."""
        if self.progress_model is None:
            return
        with self._progress_lock:
            self.progress_model.cell_started(
                os.getpid(), cell_id, perf_counter(),
                self._cell_labels.get(cell_id, ""),
            )
        if self.progress_renderer is not None:
            self.progress_renderer.update()

    def _progress_cell_finished(self, cell_id: int) -> None:
        if self.progress_model is None:
            return
        with self._progress_lock:
            self.progress_model.cell_finished(
                os.getpid(), cell_id, perf_counter()
            )
        if self.progress_renderer is not None:
            self.progress_renderer.update()

    def _compute_baselines(
        self, cells: Iterable[SweepCell]
    ) -> Dict[str, Optional[float]]:
        """Exact oracle energies per unique baseline coordinate.

        Infeasible workloads (no constant step meets their deadlines) map
        to None; the decomposition then reports against a zero baseline.
        """
        out: Dict[str, Optional[float]] = {}
        for cell in cells:
            key = _baseline_key(cell)
            if key in out:
                continue
            try:
                out[key] = find_ideal_constant(
                    cell.workload,
                    machine=cell.machine,
                    seed=cell.seed,
                    kernel_config=cell.kernel_config,
                    engine=self,
                    backend=cell.backend,
                ).exact_energy_j
            except ValueError:
                out[key] = None
        return out

    def _observe(
        self,
        cell: SweepCell,
        key: str,
        result: CellResult,
        wall_s: float,
        cached: bool,
        worker_pid: Optional[int] = None,
        worker_ordinal: Optional[int] = None,
    ) -> None:
        """Account one served cell to the metrics registry and run-log.

        ``worker_pid``/``worker_ordinal`` attribute executed cells to the
        pool process that ran them (None for cache hits, which no worker
        touched) so reports can attribute stragglers.
        """
        if self.metrics is not None:
            which = "sweep.cells_cached" if cached else "sweep.cells_executed"
            self.metrics.counter(which).inc()
            if not cached:
                self.metrics.histogram("sweep.cell_wall_s").observe(wall_s)
        if self.run_log is not None:
            self.run_log.write(
                RunLogRecord(
                    run_id=key,
                    policy=cell.policy.label,
                    workload=cell.workload.name,
                    machine=cell.machine.label,
                    seed=cell.seed,
                    duration_us=result.duration_us,
                    energy_j=result.energy_j,
                    exact_energy_j=result.exact_energy_j,
                    miss_count=result.miss_count,
                    cache="hit" if cached else "executed",
                    wall_s=wall_s,
                    unix_time=now_unix(),
                    worker_pid=worker_pid,
                    worker_ordinal=worker_ordinal,
                )
            )


@dataclass(frozen=True)
class SweepSpec:
    """A full experiment grid: machines × policies × workloads × seeds.

    Attributes:
        policies: the policy axis.
        workloads: the workload axis.
        seeds: the repetition axis.
        machines: the machine axis (default: the modified Itsy only).
        kernel_config: shared kernel tunables (None = defaults).
        use_daq: measure through the DAQ model.
        backend: execution-backend name for every cell (None = the
            default; bitwise-equal results on any backend).
    """

    policies: Tuple[PolicySpec, ...]
    workloads: Tuple[WorkloadSpec, ...]
    seeds: Tuple[int, ...] = (0,)
    machines: Tuple[MachineSpec, ...] = (MachineSpec(),)
    kernel_config: Optional[KernelConfig] = None
    use_daq: bool = True
    backend: Optional[str] = None

    def cells(self) -> List[SweepCell]:
        """The grid flattened in deterministic machine-major order."""
        return [
            SweepCell(
                workload=workload,
                policy=policy,
                seed=seed,
                kernel_config=self.kernel_config,
                use_daq=self.use_daq,
                machine=machine,
                backend=self.backend,
            )
            for machine in self.machines
            for policy in self.policies
            for workload in self.workloads
            for seed in self.seeds
        ]


def run_sweep(
    spec: SweepSpec, engine: Optional[SweepEngine] = None
) -> List[CellResult]:
    """Execute a sweep grid; results follow :meth:`SweepSpec.cells` order."""
    return (engine or SweepEngine()).run(spec.cells())


@dataclass(frozen=True)
class RepeatedSummary:
    """Aggregate of several runs of one cell family (cf. ``RepeatedResult``).

    Exposes the same derived properties as
    :class:`repro.measure.runner.RepeatedResult`, so report code can
    consume either.
    """

    results: Tuple[CellResult, ...]
    energy_ci: ConfidenceInterval

    @property
    def any_missed(self) -> bool:
        """True if any run missed any deadline."""
        return any(r.missed for r in self.results)

    @property
    def total_misses(self) -> int:
        """Total deadline misses across runs."""
        return sum(r.miss_count for r in self.results)

    @property
    def mean_energy_j(self) -> float:
        """Mean measured energy."""
        return self.energy_ci.mean


def repeat_workload(
    workload: WorkloadSpec,
    policy: PolicySpec,
    machine: MachineSpec = MachineSpec(),
    runs: int = 5,
    base_seed: int = 0,
    kernel_config: Optional[KernelConfig] = None,
    use_daq: bool = True,
    engine: Optional[SweepEngine] = None,
    backend: Optional[str] = None,
) -> RepeatedSummary:
    """Spec-based analogue of :func:`repro.measure.runner.repeat_workload`.

    Uses the identical seed schedule (``base_seed + 1000 * i``), so its
    energies are bitwise-equal to the serial harness's.
    """
    if runs < 2:
        raise ValueError("need at least two runs for a confidence interval")
    cells = [
        SweepCell(
            workload=workload,
            policy=policy,
            seed=base_seed + 1000 * i,
            kernel_config=kernel_config,
            use_daq=use_daq,
            machine=machine,
            backend=backend,
        )
        for i in range(runs)
    ]
    results = (engine or SweepEngine()).run(cells)
    ci = confidence_interval([r.energy_j for r in results])
    return RepeatedSummary(results=tuple(results), energy_ci=ci)


def constant_step_cells(
    workload: WorkloadSpec,
    machine: MachineSpec = MachineSpec(),
    seed: int = 0,
    kernel_config: Optional[KernelConfig] = None,
    recording: str = RECORDING_MINIMAL,
    backend: Optional[str] = None,
) -> List[SweepCell]:
    """One exact-energy cell per constant clock step of ``machine``.

    These cells never touch the DAQ, so they default to minimal recording:
    the streaming energy meter and quantum statistics carry everything a
    :class:`CellResult` needs, bitwise-equal to full recording but without
    building the power timeline and quantum log in the hot loop.
    """
    return [
        SweepCell(
            workload=workload,
            policy=PolicySpec(name=f"const-{step.mhz:.1f}"),
            seed=seed,
            kernel_config=kernel_config,
            use_daq=False,
            machine=machine,
            recording=recording,
            backend=backend,
        )
        for step in machine.clock_table()
    ]


def find_ideal_constant(
    workload: WorkloadSpec,
    machine: MachineSpec = MachineSpec(),
    seed: int = 0,
    kernel_config: Optional[KernelConfig] = None,
    engine: Optional[SweepEngine] = None,
    backend: Optional[str] = None,
) -> CellResult:
    """Batched analogue of :func:`repro.measure.runner.find_ideal_constant`.

    All constant-step runs are submitted as one batch (so they parallelize
    and cache), then the cheapest feasible one wins — same tie-breaking
    (first strictly-cheaper survivor in table order) as the serial search.

    Raises:
        ValueError: if no constant step meets the workload's deadlines.
    """
    cells = constant_step_cells(
        workload,
        machine=machine,
        seed=seed,
        kernel_config=kernel_config,
        backend=backend,
    )
    results = (engine or SweepEngine()).run(cells)
    best: Optional[CellResult] = None
    for result in results:
        if result.missed:
            continue
        if best is None or result.exact_energy_j < best.exact_energy_j:
            best = result
    if best is None:
        raise ValueError(f"no constant step meets {workload.name}'s deadlines")
    return best
