"""The repeated-run experiment harness.

Mirrors the paper's procedure: boot the machine, install the clock-scaling
module, start the workload with the GPIO trigger, record power with the
DAQ, time the run, and compute energy over the window; repeat several times
and report the 95 % confidence interval.

Governors and kernels carry state, so experiments take *factories*; each
run builds a fresh machine, kernel and governor, and perturbs the workload
seed (run-to-run variation "from interactions between application threads,
other processes and system daemons" is modelled by the workloads' seeded
jitter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Union

from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.hw.machine import Machine
from repro.hw.machines import MachineSpec
from repro.kernel.backend import ExecutionBackend, resolve_backend
from repro.kernel.governor import Governor
from repro.kernel.recorders import RECORDING_FULL, RunRecorder
from repro.kernel.scheduler import KernelConfig, KernelRun
from repro.measure.daq import DaqCapture, DaqSystem
from repro.measure.stats import ConfidenceInterval, confidence_interval
from repro.traces.schema import AppEvent
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from repro.measure.parallel import (
        CellResult,
        PolicySpec,
        RepeatedSummary,
        SweepEngine,
        WorkloadSpec,
    )

GovernorFactory = Callable[[], Governor]
#: Anything that yields a fresh machine per run: a zero-argument callable
#: or a (callable) :class:`~repro.hw.machines.MachineSpec`.
MachineFactory = Callable[[], Machine]

#: A caller's execution-backend choice: a registered name
#: (``"reference"`` / ``"fastpath"``), a backend instance, or None for
#: the default (see :func:`repro.kernel.backend.resolve_backend`).
BackendChoice = Union[str, ExecutionBackend, None]


def default_machine() -> ItsyMachine:
    """A modified Itsy booted at 206.4 MHz / 1.5 V."""
    return ItsyMachine(ItsyConfig())


def _machine_spec_for(machine_factory: MachineFactory) -> MachineSpec:
    """The :class:`MachineSpec` equivalent of ``machine_factory``.

    Sweep cells name their machine by value so it can travel to worker
    processes and into cache keys; arbitrary factory callables cannot.

    Raises:
        ValueError: for factories that are not specs (or the default).
    """
    if isinstance(machine_factory, MachineSpec):
        return machine_factory
    if machine_factory is default_machine:
        return MachineSpec()
    raise ValueError("parallel execution needs a MachineSpec machine")


@dataclass
class ExperimentResult:
    """Outcome of one workload run.

    Attributes:
        run: the full kernel record.
        energy_j: DAQ-estimated energy over the run (the paper's number).
        exact_energy_j: the analytic integral, for validating the DAQ.
        mean_power_w: DAQ-estimated average power.
        misses: deadline misses beyond the workload's tolerance.
        capture: the raw DAQ capture (None if the DAQ was disabled).
        tolerance_us: the workload's perceptibility tolerance the misses
            were judged against (diagnostics reuse it downstream).
    """

    run: KernelRun
    energy_j: float
    exact_energy_j: float
    mean_power_w: float
    misses: List[AppEvent]
    capture: Optional[DaqCapture]
    tolerance_us: float = 0.0

    @property
    def missed(self) -> bool:
        """True if any deadline was perceptibly missed."""
        return bool(self.misses)


def run_workload(
    workload: Workload,
    governor_factory: GovernorFactory,
    machine_factory: MachineFactory = default_machine,
    seed: int = 0,
    kernel_config: Optional[KernelConfig] = None,
    use_daq: bool = True,
    daq_seed: Optional[int] = None,
    recording: str = RECORDING_FULL,
    extra_recorders: Optional[Iterable[RunRecorder]] = None,
    backend: BackendChoice = None,
) -> ExperimentResult:
    """Run one workload under one governor and measure it.

    Args:
        workload: the workload descriptor (spawns its own processes).
        governor_factory: builds a fresh governor for this run.
        machine_factory: builds a fresh machine for this run (a callable
            or a :class:`~repro.hw.machines.MachineSpec`).
        seed: workload jitter seed.
        kernel_config: kernel tunables (None means a fresh default; a
            shared default-argument instance could alias between calls).
        use_daq: measure energy through the DAQ model (True, as in the
            paper) or use the analytic integral only.
        daq_seed: DAQ noise seed (defaults to ``seed``).
        recording: kernel instrumentation level, ``"full"`` or
            ``"minimal"`` (energy totals and quantum statistics only;
            bitwise-equal energies, but no timeline for the DAQ).
        extra_recorders: additional observers (e.g. a
            :class:`~repro.obs.trace.TraceRecorder` or
            :class:`~repro.obs.metrics.KernelMetricsRecorder`) appended
            to the mode's recorder set on whichever backend runs.  Pure
            observation: results are bitwise-identical with or without
            them, on either backend.
        backend: the execution backend — a registered name
            (``"reference"`` / ``"fastpath"``), an
            :class:`~repro.kernel.backend.ExecutionBackend` instance, or
            None for the default (``"fastpath"``, overridable via the
            ``REPRO_FORCE_BACKEND`` environment variable).  Results are
            bitwise identical across backends.
    """
    if use_daq and recording != RECORDING_FULL:
        raise ValueError(
            "the DAQ samples the power timeline; minimal recording "
            "requires use_daq=False"
        )
    if kernel_config is None:
        kernel_config = KernelConfig()
    machine = machine_factory()
    kernel = resolve_backend(backend).build_kernel(
        machine,
        governor=governor_factory(),
        config=kernel_config,
        recording=recording,
        extra_recorders=extra_recorders,
    )
    workload.setup(kernel, seed)
    run = kernel.run(workload.duration_us)

    exact = run.energy_joules()
    capture = None
    if use_daq:
        daq = DaqSystem(seed=daq_seed if daq_seed is not None else seed)
        capture = daq.capture(run.timeline)
        energy = capture.energy_joules()
        mean_power = capture.mean_power_w()
    else:
        energy = exact
        mean_power = run.mean_power_w()

    misses = run.deadline_misses(tolerance_us=workload.tolerance_us)
    return ExperimentResult(
        run=run,
        energy_j=energy,
        exact_energy_j=exact,
        mean_power_w=mean_power,
        misses=misses,
        capture=capture,
        tolerance_us=workload.tolerance_us,
    )


def find_ideal_constant(
    workload: Union[Workload, "WorkloadSpec"],
    machine_factory: MachineFactory = default_machine,
    seed: int = 0,
    kernel_config: Optional[KernelConfig] = None,
    engine: Optional["SweepEngine"] = None,
    backend: BackendChoice = None,
) -> Union[ExperimentResult, "CellResult"]:
    """The energy-minimal *feasible* constant clock step for a workload.

    This is the oracle the paper measures against ("the best possible
    scheduling goal for MPEG would be to switch to a 132.7MHz speed"):
    run the workload at every constant step, discard runs with deadline
    misses, return the cheapest survivor.

    With an ``engine`` the workload must be a
    :class:`~repro.measure.parallel.WorkloadSpec`; all constant steps are
    then submitted as one batch (parallelized and cached) and the cheapest
    feasible :class:`~repro.measure.parallel.CellResult` summary is
    returned instead of a full :class:`ExperimentResult`.

    Raises:
        ValueError: if no constant step meets the workload's deadlines, or
            if an engine is given with a non-spec workload or a machine
            factory that is not a spec (it would not digest into a cache
            key).
    """
    from repro.kernel.governor import ConstantGovernor
    from repro.measure import parallel

    if isinstance(workload, parallel.WorkloadSpec):
        return parallel.find_ideal_constant(
            workload,
            machine=_machine_spec_for(machine_factory),
            seed=seed,
            kernel_config=kernel_config,
            engine=engine,
            backend=backend,
        )
    if engine is not None:
        raise ValueError("parallel execution needs a WorkloadSpec workload")

    clock_table = machine_factory().clock_table
    best: Optional[ExperimentResult] = None
    for step in clock_table:
        result = run_workload(
            workload,
            lambda s=step: ConstantGovernor(step_index=s.index),
            machine_factory,
            seed=seed,
            kernel_config=kernel_config,
            use_daq=False,
            backend=backend,
        )
        if result.missed:
            continue
        if best is None or result.exact_energy_j < best.exact_energy_j:
            best = result
    if best is None:
        raise ValueError(f"no constant step meets {workload.name}'s deadlines")
    return best


@dataclass
class RepeatedResult:
    """Aggregate of several runs of the same experiment."""

    results: List[ExperimentResult]
    energy_ci: ConfidenceInterval

    @property
    def any_missed(self) -> bool:
        """True if any run missed any deadline."""
        return any(r.missed for r in self.results)

    @property
    def total_misses(self) -> int:
        """Total deadline misses across runs."""
        return sum(len(r.misses) for r in self.results)

    @property
    def mean_energy_j(self) -> float:
        """Mean measured energy."""
        return self.energy_ci.mean


def repeat_workload(
    workload: Union[Workload, "WorkloadSpec"],
    governor_factory: Union[GovernorFactory, "PolicySpec", str],
    machine_factory: MachineFactory = default_machine,
    runs: int = 5,
    base_seed: int = 0,
    kernel_config: Optional[KernelConfig] = None,
    use_daq: bool = True,
    engine: Optional["SweepEngine"] = None,
    backend: BackendChoice = None,
) -> Union[RepeatedResult, "RepeatedSummary"]:
    """Run the experiment ``runs`` times and report the 95 % energy CI.

    With an ``engine`` (or spec arguments) the runs fan out as sweep
    cells: ``workload`` must be a
    :class:`~repro.measure.parallel.WorkloadSpec` and ``governor_factory``
    a :class:`~repro.measure.parallel.PolicySpec` or policy name, and a
    :class:`~repro.measure.parallel.RepeatedSummary` (same derived
    properties, summary results) is returned.  The seed schedule is
    identical either way, so the energies are too.
    """
    from repro.measure import parallel

    if isinstance(workload, parallel.WorkloadSpec) or engine is not None:
        if not isinstance(workload, parallel.WorkloadSpec):
            raise ValueError("parallel execution needs a WorkloadSpec workload")
        if isinstance(governor_factory, str):
            governor_factory = parallel.PolicySpec(name=governor_factory)
        if not isinstance(governor_factory, parallel.PolicySpec):
            raise ValueError("parallel execution needs a PolicySpec policy")
        return parallel.repeat_workload(
            workload,
            governor_factory,
            machine=_machine_spec_for(machine_factory),
            runs=runs,
            base_seed=base_seed,
            kernel_config=kernel_config,
            use_daq=use_daq,
            engine=engine,
            backend=backend,
        )
    if runs < 2:
        raise ValueError("need at least two runs for a confidence interval")
    results = [
        run_workload(
            workload,
            governor_factory,
            machine_factory,
            seed=base_seed + 1000 * i,
            kernel_config=kernel_config,
            use_daq=use_daq,
            backend=backend,
        )
        for i in range(runs)
    ]
    ci = confidence_interval([r.energy_j for r in results])
    return RepeatedResult(results=results, energy_ci=ci)
