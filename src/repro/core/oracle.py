"""Trace-based baselines from Weiser et al. (OSDI '94), §3 of the paper.

Weiser's algorithms operate on traces of per-interval *work* (the fraction
of a full-speed interval the CPU was busy) and choose a speed for each
interval; unfinished work carries over as *excess*.  Of the three, only
PAST is implementable -- OPT and FUTURE use future knowledge -- and even
Weiser's PAST needs the amount of left-over work, which a real kernel
cannot observe without application help (the paper's central criticism).

They are reproduced here as offline baselines:

- ``OPT``: perfect knowledge of the whole trace; runs at the single
  constant speed that completes all work exactly by the end of the trace
  (maximally smoothed, never idle until the work runs out).
- ``FUTURE``: peeks one interval ahead: each interval runs just fast
  enough to finish the backlog plus that interval's arriving work.
- ``PAST``: assumes the coming interval repeats the last one: speed is set
  to finish the previous interval's arriving work plus any backlog.

The energy model follows Weiser: voltage scales linearly with speed, so
energy per unit work is proportional to ``speed^2`` (``P ~ V^2 f``, energy
= power x time, work = speed x time).

Speeds are continuous in [min_speed, 1.0]; ``quantize`` snaps them up to
the SA-1100 clock table (as fractions of 206.4 MHz) to show the effect of
discrete clock steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.hw.clocksteps import ClockTable


@dataclass(frozen=True)
class TraceScheduleResult:
    """Outcome of scheduling a work trace.

    Attributes:
        speeds: chosen speed per interval (fraction of full speed).
        excess: backlog carried *out* of each interval (work units).
        energy: Weiser-style relative energy ``sum(done_i * speed_i^2)``.
        total_work: total work in the trace.
        missed_work: backlog remaining after the final interval.
        idle_time: total idle fraction-intervals.
    """

    speeds: np.ndarray
    excess: np.ndarray
    energy: float
    total_work: float
    missed_work: float
    idle_time: float

    @property
    def full_speed_energy_ratio(self) -> float:
        """Energy relative to running every interval's work at full speed."""
        if self.total_work <= 0:
            return 0.0
        return self.energy / self.total_work  # full speed: sum(work * 1^2)


def _simulate(
    work: Sequence[float],
    speeds: Sequence[float],
) -> TraceScheduleResult:
    """Run a speed schedule against a work trace, carrying excess."""
    work_arr = np.asarray(work, dtype=float)
    speeds_arr = np.clip(np.asarray(speeds, dtype=float), 0.0, 1.0)
    if work_arr.shape != speeds_arr.shape:
        raise ValueError("work and speed traces must have equal length")
    if np.any(work_arr < 0):
        raise ValueError("work must be non-negative")
    excess = np.zeros_like(work_arr)
    backlog = 0.0
    energy = 0.0
    idle = 0.0
    for i, (w, s) in enumerate(zip(work_arr, speeds_arr)):
        capacity = s  # one interval at speed s completes s work units
        demand = backlog + w
        done = min(demand, capacity)
        energy += done * s * s
        idle += (capacity - done) / s if s > 0 else 1.0
        backlog = demand - done
        excess[i] = backlog
    return TraceScheduleResult(
        speeds=speeds_arr,
        excess=excess,
        energy=float(energy),
        total_work=float(np.sum(work_arr)),
        missed_work=float(backlog),
        idle_time=float(idle),
    )


def _quantize_up(speeds: np.ndarray, table: ClockTable) -> np.ndarray:
    """Snap each speed up to the nearest clock-table fraction."""
    fractions = np.array([s.mhz for s in table]) / table.max_step.mhz
    out = np.empty_like(speeds)
    for i, s in enumerate(speeds):
        idx = int(np.searchsorted(fractions, min(s, 1.0) - 1e-12))
        out[i] = fractions[min(idx, len(fractions) - 1)]
    return out


def opt_schedule(
    work: Sequence[float],
    min_speed: float = 0.0,
    quantize: Optional[ClockTable] = None,
) -> TraceScheduleResult:
    """Weiser's OPT: the slowest constant speed finishing all work on time.

    Work cannot run before it arrives, so the binding constraint is the
    busiest *suffix*: ``speed = max_j (sum of work after j) / (n - j)``.
    For a feasible trace this completes everything exactly by the end with
    perfectly smoothed speed -- unrealizable in practice, as Weiser notes.

    Note that OPT is optimal among *constant* speeds (maximal smoothing,
    which by convexity of ``speed^2`` energy is globally optimal whenever
    arrivals do not bind, i.e. the chosen speed equals the trace mean).
    When a late burst forces the constant above the mean, a variable
    schedule that tracks demand can undercut it -- the property tests
    pin down both regimes.
    """
    work_arr = np.asarray(work, dtype=float)
    n = len(work_arr)
    if n == 0:
        raise ValueError("empty trace")
    suffix = np.cumsum(work_arr[::-1])[::-1]  # work arriving at or after j
    lengths = np.arange(n, 0, -1, dtype=float)
    speed = max(min_speed, float(np.max(suffix / lengths)))
    speeds = np.full(n, min(1.0, speed))
    if quantize is not None:
        speeds = _quantize_up(speeds, quantize)
    return _simulate(work_arr, speeds)


def future_schedule(
    work: Sequence[float],
    min_speed: float = 0.0,
    quantize: Optional[ClockTable] = None,
) -> TraceScheduleResult:
    """Weiser's FUTURE: peek one interval ahead, finish backlog + arrivals."""
    work_arr = np.asarray(work, dtype=float)
    speeds: List[float] = []
    backlog = 0.0
    fractions = (
        None
        if quantize is None
        else np.array([s.mhz for s in quantize]) / quantize.max_step.mhz
    )
    for w in work_arr:
        s = min(1.0, max(min_speed, backlog + w))
        if fractions is not None:
            idx = int(np.searchsorted(fractions, s - 1e-12))
            s = float(fractions[min(idx, len(fractions) - 1)])
        done = min(backlog + w, s)
        backlog = backlog + w - done
        speeds.append(s)
    return _simulate(work_arr, speeds)


def past_schedule(
    work: Sequence[float],
    min_speed: float = 0.0,
    quantize: Optional[ClockTable] = None,
) -> TraceScheduleResult:
    """Weiser's PAST: the coming interval is predicted to repeat the last.

    Speed covers the *previous* interval's arriving work plus the current
    backlog -- this needs the amount of unfinished work, which is exactly
    the quantity the paper shows a real kernel cannot know (§3).
    """
    work_arr = np.asarray(work, dtype=float)
    speeds: List[float] = []
    backlog = 0.0
    prev_work = 0.0
    fractions = (
        None
        if quantize is None
        else np.array([s.mhz for s in quantize]) / quantize.max_step.mhz
    )
    for w in work_arr:
        s = min(1.0, max(min_speed, backlog + prev_work))
        if fractions is not None:
            idx = int(np.searchsorted(fractions, s - 1e-12))
            s = float(fractions[min(idx, len(fractions) - 1)])
        done = min(backlog + w, s)
        backlog = backlog + w - done
        prev_work = w
        speeds.append(s)
    return _simulate(work_arr, speeds)
