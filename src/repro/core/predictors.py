"""Utilization predictors.

A predictor turns the stream of observed per-interval utilizations
``U_0, U_1, ...`` into the *weighted utilization* ``W_t`` that the policy
compares against its hysteresis thresholds.

The paper's predictors (after Weiser et al.):

- ``PAST``: the coming interval is assumed as busy as the last one
  (``W_t = U_{t-1}``); this is exactly ``AVG_0``.
- ``AVG_N``: an exponential moving average with decay ``N``:
  ``W_t = (N * W_{t-1} + U_{t-1}) / (N + 1)``.

Section 5.3 of the paper analyses AVG_N as a signal-processing filter: it
convolves the utilization signal with a decaying exponential, attenuating
but never eliminating oscillatory components -- see
:mod:`repro.analysis.smoothing` for that equivalent form and
:mod:`repro.analysis.fourier` for the frequency response.

``WindowAverage`` (the plain mean of the last ``n`` intervals) is included
because the paper also "simulated interval-based averaging policies that
used a pure average rather than an exponentially decaying weighting
function" and found it no better.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Deque, Iterable, List


class Predictor(abc.ABC):
    """Streaming utilization predictor."""

    @abc.abstractmethod
    def observe(self, utilization: float) -> float:
        """Feed the utilization of the interval that just ended.

        Args:
            utilization: busy fraction in [0, 1].

        Returns:
            The weighted utilization ``W_t`` to use for the coming interval.
        """

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all history."""

    def feed(self, utilizations: Iterable[float]) -> List[float]:
        """Observe a whole sequence; return the weighted series.

        Convenience for offline analysis (Table 1, Figure 7).
        """
        return [self.observe(u) for u in utilizations]


def _check_utilization(utilization: float) -> float:
    if not 0.0 <= utilization <= 1.0 + 1e-9:
        raise ValueError(f"utilization must be in [0, 1], got {utilization}")
    return min(utilization, 1.0)


class AvgN(Predictor):
    """Exponential moving average with decay ``N`` (the paper's AVG_N).

    ``W_t = (N * W_{t-1} + U_{t-1}) / (N + 1)``.  Larger ``N`` smooths more
    but lags more; the paper's Table 1 walks through AVG_9 showing a 120 ms
    lag from idle to full speed, and §5.3 shows the filter cannot settle on
    periodic workloads.

    Attributes:
        n: the decay parameter (``n = 0`` degenerates to PAST).
        initial: starting weighted utilization (0.0 = assume idle history).
    """

    def __init__(self, n: int, initial: float = 0.0):
        if n < 0:
            raise ValueError("AVG_N decay must be non-negative")
        self.n = n
        self.initial = _check_utilization(initial)
        self._weighted = self.initial

    @property
    def weighted(self) -> float:
        """The current weighted utilization ``W_t``."""
        return self._weighted

    def observe(self, utilization: float) -> float:
        # _check_utilization, inlined: this runs once per 10 ms tick in
        # every interval policy, and the call overhead is measurable.
        if not 0.0 <= utilization <= 1.0 + 1e-9:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        if utilization > 1.0:
            utilization = 1.0
        n = self.n
        weighted = (n * self._weighted + utilization) / (n + 1)
        self._weighted = weighted
        return weighted

    def reset(self) -> None:
        self._weighted = self.initial

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AvgN(n={self.n})"


class Past(AvgN):
    """The PAST predictor: the next interval mirrors the previous one.

    Identical to ``AVG_0``; provided as its own name because the paper (and
    Weiser et al.) treat it as the canonical implementable policy.
    """

    def __init__(self) -> None:
        super().__init__(n=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Past()"


class WindowAverage(Predictor):
    """Plain mean of the last ``window`` interval utilizations.

    The paper reports that pure averaging "suffers from the same problems
    experienced by the weighted averaging if you do not average the
    appropriate period"; this class exists to reproduce that comparison.
    An empty history predicts ``initial``.
    """

    def __init__(self, window: int, initial: float = 0.0):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.initial = _check_utilization(initial)
        self._values: Deque[float] = deque(maxlen=window)

    def observe(self, utilization: float) -> float:
        self._values.append(_check_utilization(utilization))
        return sum(self._values) / len(self._values)

    @property
    def weighted(self) -> float:
        """Current mean of the stored window."""
        if not self._values:
            return self.initial
        return sum(self._values) / len(self._values)

    def reset(self) -> None:
        self._values.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WindowAverage(window={self.window})"
