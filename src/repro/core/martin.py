"""Martin's battery-rational lower bound on clock frequency (§3).

Martin's thesis (cited by the paper) revised Weiser's PAST "to account for
the non-ideal properties of batteries and the non-linear relationship
between system power and clock frequency", arguing "the lower bound on
clock frequency should be chosen such that the number of computations per
battery lifetime is maximized."  This module computes that bound from the
battery model and a power function, and wraps any interval policy so it
never scales below it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.battery.lifetime import best_step_for_computations
from repro.battery.model import AAA_ALKALINE_PAIR, Battery
from repro.hw.clocksteps import ClockStep, ClockTable, SA1100_CLOCK_TABLE
from repro.hw.itsy import ItsyConfig, ItsyMachine
from repro.hw.power import CoreState
from repro.kernel.governor import Governor, GovernorRequest, TickInfo


def martin_floor_step(
    power_of_step: Optional[Callable[[ClockStep], float]] = None,
    battery: Battery = AAA_ALKALINE_PAIR,
    table: ClockTable = SA1100_CLOCK_TABLE,
    active_fraction: float = 0.7,
) -> ClockStep:
    """The clock step maximizing computations per battery lifetime.

    Args:
        power_of_step: system power as a function of the step; defaults to
            the calibrated Itsy model at the given ``active_fraction``.
        battery: the battery whose rate-capacity behaviour applies.
        active_fraction: assumed busy fraction for the default power model.
    """
    if power_of_step is None:
        machine = ItsyMachine(ItsyConfig())

        def power_of_step(step: ClockStep) -> float:
            active = machine.power.total_w(step, machine.volts, CoreState.ACTIVE)
            nap = machine.power.total_w(step, machine.volts, CoreState.NAP)
            return active_fraction * active + (1 - active_fraction) * nap

    best, _ = best_step_for_computations(power_of_step, table, battery)
    return best


class FlooredGovernor(Governor):
    """Wraps a governor so it never requests a step below the floor.

    The inner policy keeps its own dynamics; only its downward requests
    are clamped.  (Voltage requests pass through unchanged -- the kernel
    still enforces rail safety.)
    """

    def __init__(self, inner: Governor, floor_index: int):
        if floor_index < 0:
            raise ValueError("floor index must be non-negative")
        self.inner = inner
        self.floor_index = floor_index

    def on_tick(self, info: TickInfo) -> Optional[GovernorRequest]:
        request = self.inner.on_tick(info)
        if request is None or request.step_index is None:
            return request
        clamped = max(request.step_index, self.floor_index)
        if clamped == request.step_index:
            return request
        if clamped == info.step_index and request.volts is None:
            return None
        return GovernorRequest(step_index=clamped, volts=request.volts)

    def reset(self) -> None:
        self.inner.reset()


def martin_policy(inner_factory: Callable[[], Governor], **floor_kwargs) -> Governor:
    """A governor factory helper: ``inner`` clamped at Martin's floor."""
    floor = martin_floor_step(**floor_kwargs)
    return FlooredGovernor(inner_factory(), floor.index)
