"""Deadline-driven voltage scheduling (the paper's §6 future work).

The paper's conclusion: heuristics are a dead end, so "our immediate
future work is to provide 'deadline' mechanisms in Linux" -- and "a
further challenge will be to find a way to automatically synthesize those
deadlines for complex applications."  This module implements both sides:

- :class:`DeadlineSpec` / :class:`DeadlineGovernor`: applications declare
  periodic demands (period + work per period); the governor solves for the
  slowest clock step whose *wall-clock* throughput covers the sum of all
  declared demands with a safety margin, accounting for the
  frequency-dependent memory costs of Table 3.  Unlike a hard-real-time
  scheduler, the energy goal prefers deadlines met *as late as possible*
  (paper §6), which is exactly the slowest feasible step.
- :class:`SynthesizedDeadlineGovernor`: no application help.  It watches
  the delivered work (MHz x busy fraction per quantum), detects the
  dominant demand period by autocorrelation of the utilization signal,
  and targets the observed per-period work with a margin -- a concrete
  attempt at "synthesizing" deadlines, with the failure modes the paper
  predicts when the workload has no clean period.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence

import numpy as np

from repro.hw.clocksteps import ClockStep, ClockTable, SA1100_CLOCK_TABLE
from repro.hw.memory import MemoryTimings, SA1100_MEMORY_TIMINGS
from repro.hw.work import Work
from repro.kernel.governor import Governor, GovernorRequest, TickInfo


@dataclass(frozen=True)
class DeadlineSpec:
    """A periodic demand declared by an application.

    Attributes:
        name: label for reports.
        period_us: deadline period (e.g. 66,667 us for 15 fps video).
        work: the work that must complete within each period.
    """

    name: str
    period_us: float
    work: Work

    def __post_init__(self) -> None:
        if self.period_us <= 0:
            raise ValueError("period must be positive")

    def busy_fraction(self, step: ClockStep, timings: MemoryTimings) -> float:
        """Fraction of the period this demand occupies at ``step``."""
        return self.work.duration_us(step, timings) / self.period_us


def slowest_feasible_step(
    specs: Sequence[DeadlineSpec],
    margin: float = 1.10,
    clock_table: ClockTable = SA1100_CLOCK_TABLE,
    timings: MemoryTimings = SA1100_MEMORY_TIMINGS,
) -> ClockStep:
    """The slowest step whose capacity covers all declared demands.

    Feasibility per step: the summed busy fractions, scaled by ``margin``
    (headroom for scheduling interference and demand jitter), must not
    exceed 1.  If nothing is feasible the fastest step is returned --
    deadlines will be missed, but as few as possible.

    Args:
        specs: the declared periodic demands.
        margin: multiplicative safety factor on the demand (>= 1).

    Raises:
        ValueError: for an empty spec list or a margin below 1.
    """
    if not specs:
        raise ValueError("need at least one deadline spec")
    if margin < 1.0:
        raise ValueError("margin must be at least 1")
    for step in clock_table:
        load = sum(spec.busy_fraction(step, timings) for spec in specs)
        if load * margin <= 1.0:
            return step
    return clock_table.max_step


class DeadlineGovernor(Governor):
    """Runs at the slowest step covering the declared periodic demands.

    This is not a heuristic: with truthful specs it parks at the energy-
    optimal constant step (the paper's measured ideal, 132.7 MHz for
    MPEG) and never needs to move again.  Specs may be updated at run
    time (:meth:`declare` / :meth:`retract`), after which the governor
    re-solves on the next tick.
    """

    def __init__(
        self,
        specs: Sequence[DeadlineSpec] = (),
        margin: float = 1.10,
        clock_table: ClockTable = SA1100_CLOCK_TABLE,
        timings: MemoryTimings = SA1100_MEMORY_TIMINGS,
    ):
        if margin < 1.0:
            raise ValueError("margin must be at least 1")
        self.margin = margin
        self.clock_table = clock_table
        self.timings = timings
        self._specs: List[DeadlineSpec] = list(specs)
        self._dirty = True
        self._target: Optional[int] = None

    @property
    def specs(self) -> List[DeadlineSpec]:
        """The currently declared demands."""
        return list(self._specs)

    def declare(self, spec: DeadlineSpec) -> None:
        """Register (or replace, by name) a periodic demand."""
        self._specs = [s for s in self._specs if s.name != spec.name]
        self._specs.append(spec)
        self._dirty = True

    def retract(self, name: str) -> None:
        """Remove a demand; unknown names are ignored."""
        before = len(self._specs)
        self._specs = [s for s in self._specs if s.name != name]
        if len(self._specs) != before:
            self._dirty = True

    def on_tick(self, info: TickInfo) -> Optional[GovernorRequest]:
        if self._dirty:
            if self._specs:
                self._target = slowest_feasible_step(
                    self._specs, self.margin, self.clock_table, self.timings
                ).index
            else:
                self._target = 0  # nothing declared: idle at the bottom
            self._dirty = False
        if self._target is None or self._target == info.step_index:
            return None
        return GovernorRequest(step_index=self._target)

    def reset(self) -> None:
        self._dirty = True
        self._target = None


def dominant_period_quanta(
    utilization: Sequence[float], max_period: int, min_strength: float = 0.25
) -> Optional[int]:
    """Detect the dominant period of a utilization signal, in quanta.

    Uses the autocorrelation of the mean-removed signal; the first
    local-maximum lag whose normalized autocorrelation exceeds
    ``min_strength`` wins.  Returns None when no clean period exists
    (exactly the situation the paper predicts for Web-like workloads).
    """
    x = np.asarray(utilization, dtype=float)
    if len(x) < 4 or max_period < 2:
        return None
    x = x - x.mean()
    denom = float(np.dot(x, x))
    if denom < 1e-12:
        return None
    limit = min(max_period, len(x) - 1)
    best_lag, best_score = None, min_strength
    for lag in range(2, limit + 1):
        score = float(np.dot(x[:-lag], x[lag:])) / denom
        if score > best_score:
            best_lag, best_score = lag, score
    return best_lag


class SynthesizedDeadlineGovernor(Governor):
    """Synthesizes deadlines from observed behaviour (§6's open challenge).

    Maintains a window of per-quantum delivered work (``mhz * busy``).
    Once per ``resolve_every`` quanta it looks for a dominant period; if
    one exists, the demand per period is estimated as the windowed mean
    delivered work times the period, and the clock is set to the slowest
    step delivering that much per period with ``margin`` headroom.  With
    no detectable period it falls back to the fastest step (safe but
    unsaving -- the honest failure mode).
    """

    def __init__(
        self,
        window: int = 256,
        resolve_every: int = 32,
        margin: float = 1.25,
        clock_table: ClockTable = SA1100_CLOCK_TABLE,
    ):
        if window < 8 or resolve_every < 1:
            raise ValueError("window too small")
        if margin < 1.0:
            raise ValueError("margin must be at least 1")
        self.window = window
        self.resolve_every = resolve_every
        self.margin = margin
        self.clock_table = clock_table
        self._delivered: Deque[float] = deque(maxlen=window)
        self._utils: Deque[float] = deque(maxlen=window)
        self._ticks = 0
        self._target = clock_table.max_index
        #: (time_us, detected period in quanta or None, target mhz)
        self.synthesis_log: List[tuple] = []

    def on_tick(self, info: TickInfo) -> Optional[GovernorRequest]:
        self._delivered.append(info.mhz * info.utilization)
        self._utils.append(info.utilization)
        self._ticks += 1
        if self._ticks % self.resolve_every == 0 and len(self._utils) >= 32:
            period = dominant_period_quanta(
                list(self._utils), max_period=len(self._utils) // 3
            )
            if period is None:
                self._target = self.clock_table.max_index
            else:
                mean_delivered = sum(self._delivered) / len(self._delivered)
                # demand per quantum in MHz-equivalents, with headroom
                target_mhz = mean_delivered * self.margin
                self._target = self.clock_table.lowest_step_at_least(
                    target_mhz
                ).index
            self.synthesis_log.append(
                (info.now_us, period, self.clock_table[self._target].mhz)
            )
        if self._target == info.step_index:
            return None
        return GovernorRequest(step_index=self._target)

    def reset(self) -> None:
        self._delivered.clear()
        self._utils.clear()
        self._ticks = 0
        self._target = self.clock_table.max_index
        self.synthesis_log.clear()
