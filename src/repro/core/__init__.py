"""The paper's contribution: interval-based clock scheduling policies.

An interval policy performs two tasks on every scheduling interval
(prediction and speed-setting, after Govil et al.):

1. **Prediction** (:mod:`repro.core.predictors`): estimate the coming
   interval's utilization from the observed past -- ``PAST`` uses the last
   interval verbatim; ``AVG_N`` keeps an exponential moving average with
   decay ``N``.
2. **Speed setting** (:mod:`repro.core.speed`): decide how far to move
   through the discrete clock table -- ``one`` step, ``double``/halve,
   or ``peg`` to the extreme -- with hysteresis thresholds deciding *when*
   (:mod:`repro.core.hysteresis`).

:mod:`repro.core.policy` assembles these into a kernel governor, optionally
with the Itsy's limited voltage scaling (1.23 V below 162.2 MHz).
:mod:`repro.core.catalog` names the exact configurations evaluated in the
paper.  :mod:`repro.core.cycleavg` implements the naive busy-cycle
averaging policy of Figure 5, and :mod:`repro.core.oracle` the trace-based
Weiser baselines (OPT / FUTURE / unfinished-work PAST).

Extensions beyond the paper's evaluation:

- :mod:`repro.core.govil` -- the Govil et al. predictor family as
  trace-level baselines; :mod:`repro.core.live` runs them in-kernel;
- :mod:`repro.core.deadline` -- the §6 future-work designs: declared
  deadline specs and synthesized (period-detected) deadlines;
- :mod:`repro.core.martin` -- Martin's battery-rational clock floor.
"""

from repro.core.cycleavg import CycleAverageGovernor
from repro.core.deadline import (
    DeadlineGovernor,
    DeadlineSpec,
    SynthesizedDeadlineGovernor,
)
from repro.core.hysteresis import Direction, ThresholdPair
from repro.core.live import LivePredictorGovernor
from repro.core.martin import FlooredGovernor, martin_floor_step
from repro.core.policy import IntervalPolicy, VoltageRule
from repro.core.predictors import AvgN, Past, Predictor, WindowAverage
from repro.core.speed import Double, OneStep, Peg, SpeedSetter

__all__ = [
    "AvgN",
    "CycleAverageGovernor",
    "DeadlineGovernor",
    "DeadlineSpec",
    "Direction",
    "Double",
    "FlooredGovernor",
    "IntervalPolicy",
    "LivePredictorGovernor",
    "OneStep",
    "Past",
    "Peg",
    "Predictor",
    "SpeedSetter",
    "SynthesizedDeadlineGovernor",
    "ThresholdPair",
    "VoltageRule",
    "WindowAverage",
    "martin_floor_step",
]
