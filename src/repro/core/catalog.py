"""Named policy configurations used in the paper's evaluation.

Factories return fresh governor instances (policies carry predictor state,
so they must not be shared between runs).

Every policy of the evaluation is reachable by *name* through
:func:`resolve_policy` (the grammar the CLI exposes) or through
:data:`POLICY_FACTORIES` plus keyword parameters.  Names and parameters —
unlike governor instances or lambdas — pickle cleanly and digest stably,
which is what lets :mod:`repro.measure.parallel` ship sweep cells to
worker processes and cache their results content-addressed.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.core.cycleavg import CycleAverageGovernor
from repro.core.hysteresis import (
    BEST_POLICY_THRESHOLDS,
    PERING_THRESHOLDS,
    ThresholdPair,
)
from repro.core.policy import IntervalPolicy, VoltageRule
from repro.core.predictors import AvgN, Past
from repro.core.speed import Double, OneStep, Peg, SpeedSetter
from repro.hw.clocksteps import ClockTable, SA1100_CLOCK_TABLE
from repro.hw.rails import VOLTAGE_HIGH
from repro.kernel.governor import ConstantGovernor, Governor

#: The speed setters of the paper, by name.
SPEED_SETTERS: Dict[str, type] = {
    "one": OneStep,
    "double": Double,
    "peg": Peg,
}


def make_setter(name: str) -> SpeedSetter:
    """Instantiate a speed setter by its paper name (one / double / peg)."""
    try:
        return SPEED_SETTERS[name]()
    except KeyError:
        raise ValueError(f"unknown speed setter {name!r}") from None


def constant_speed(
    mhz: float,
    volts: float = VOLTAGE_HIGH,
    clock_table: ClockTable = SA1100_CLOCK_TABLE,
) -> ConstantGovernor:
    """A constant-speed control run (the first rows of Table 2)."""
    step = clock_table.step_for_mhz(mhz)
    return ConstantGovernor(step_index=step.index, volts=volts)


def pering_avg(
    n: int,
    up: str = "one",
    down: str = "one",
    thresholds: ThresholdPair = PERING_THRESHOLDS,
    voltage_rule: Optional[VoltageRule] = None,
) -> IntervalPolicy:
    """An AVG_N policy with Pering's 50 %/70 % starting-point thresholds."""
    return IntervalPolicy(
        predictor=AvgN(n),
        thresholds=thresholds,
        up=make_setter(up),
        down=make_setter(down),
        voltage_rule=voltage_rule,
    )


def best_policy(voltage_scaling: bool = False) -> IntervalPolicy:
    """The best policy of the empirical study (§5.4).

    PAST (= AVG_0) prediction, pegging both directions, scale up above 98 %
    utilization and down below 93 %.  With ``voltage_scaling`` the core
    rail drops to 1.23 V whenever the clock is at or below 162.2 MHz
    (the last row of Table 2).
    """
    return IntervalPolicy(
        predictor=Past(),
        thresholds=BEST_POLICY_THRESHOLDS,
        up=Peg(),
        down=Peg(),
        voltage_rule=VoltageRule() if voltage_scaling else None,
    )


def cycle_average(window: int = 4) -> CycleAverageGovernor:
    """The naive busy-cycle averaging policy of Figure 5."""
    return CycleAverageGovernor(window=window)


#: Catalog factories by stable name, for parameterized (keyword) policy
#: specs.  Keys are part of the sweep cache-key schema: renaming one
#: invalidates cached results for policies built through it.
POLICY_FACTORIES: Dict[str, Callable[..., Governor]] = {
    "constant": constant_speed,
    "pering-avg": pering_avg,
    "best": best_policy,
    "cycle-average": cycle_average,
}

_AVG_PATTERN = re.compile(r"^avg(\d+)-(one|double|peg)$")
_CONST_PATTERN = re.compile(r"^const-(\d+(?:\.\d+)?)(?:@(\d+(?:\.\d+)?))?$")


def resolve_policy(name: str) -> Callable[[], Governor]:
    """Map a policy name to a fresh-governor factory.

    The grammar (also printed by ``python -m repro list-policies``):

    - ``const-<mhz>`` — constant speed at 1.5 V (e.g. ``const-132.7``);
    - ``const-<mhz>@<volts>`` — constant speed at an explicit core
      voltage (e.g. ``const-132.7@1.23``, the third row of Table 2);
    - ``best`` / ``best-voltage`` — the paper's best policy, optionally
      with voltage scaling at 162.2 MHz;
    - ``avg<N>-<setter>`` — AVG_N with one/double/peg both directions and
      Pering's 50/70 thresholds (e.g. ``avg9-peg``);
    - ``cycleavg`` — the naive busy-cycle averaging policy of Figure 5;
    - ``synth`` — the synthesized-deadline governor (§6 future work).

    Raises:
        ValueError: for unknown names.
    """
    if name == "best":
        return lambda: best_policy(False)
    if name == "best-voltage":
        return lambda: best_policy(True)
    if name == "cycleavg":
        return lambda: cycle_average()
    if name == "synth":
        from repro.core.deadline import SynthesizedDeadlineGovernor

        return lambda: SynthesizedDeadlineGovernor()
    match = _CONST_PATTERN.match(name)
    if match:
        mhz = float(match.group(1))
        volts = float(match.group(2)) if match.group(2) else VOLTAGE_HIGH
        return lambda: constant_speed(mhz, volts=volts)
    match = _AVG_PATTERN.match(name)
    if match:
        n, setter = int(match.group(1)), match.group(2)
        return lambda: pering_avg(n, up=setter, down=setter)
    raise ValueError(f"unknown policy {name!r}; see 'list-policies'")


def sweep_avg_policies(
    n_values: Tuple[int, ...] = tuple(range(11)),
    setter_names: Tuple[str, ...] = ("one", "double", "peg"),
    thresholds: ThresholdPair = PERING_THRESHOLDS,
) -> Iterator[Tuple[str, Governor]]:
    """The comprehensive sweep of §5.3: AVG_N for N in 0..10 x setters.

    Yields ``(label, governor)`` pairs; the same setter is used both
    directions, as in the paper's summary sweep.
    """
    for n in n_values:
        for name in setter_names:
            label = f"AVG_{n}/{name}-{name}"
            yield label, pering_avg(n, up=name, down=name, thresholds=thresholds)
