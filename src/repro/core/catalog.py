"""Named policy configurations used in the paper's evaluation.

Factories return fresh governor instances (policies carry predictor state,
so they must not be shared between runs).

Every policy of the evaluation is reachable by *name* through
:func:`resolve_policy` (the grammar the CLI exposes) or through
:data:`POLICY_FACTORIES` plus keyword parameters.  Names and parameters —
unlike governor instances or lambdas — pickle cleanly and digest stably,
which is what lets :mod:`repro.measure.parallel` ship sweep cells to
worker processes and cache their results content-addressed.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.core.cycleavg import CycleAverageGovernor
from repro.core.hysteresis import (
    BEST_POLICY_THRESHOLDS,
    PERING_THRESHOLDS,
    ThresholdPair,
)
from repro.core.policy import IntervalPolicy, VoltageRule
from repro.core.predictors import AvgN, Past
from repro.core.speed import Double, OneStep, Peg, SpeedSetter
from repro.hw.clocksteps import ClockTable, SA1100_CLOCK_TABLE
from repro.kernel.governor import ConstantGovernor, Governor

#: The speed setters of the paper, by name.
SPEED_SETTERS: Dict[str, type] = {
    "one": OneStep,
    "double": Double,
    "peg": Peg,
}


def make_setter(name: str) -> SpeedSetter:
    """Instantiate a speed setter by its paper name (one / double / peg)."""
    try:
        return SPEED_SETTERS[name]()
    except KeyError:
        raise ValueError(f"unknown speed setter {name!r}") from None


def constant_speed(
    mhz: float,
    volts: Optional[float] = None,
    clock_table: ClockTable = SA1100_CLOCK_TABLE,
) -> ConstantGovernor:
    """A constant-speed control run (the first rows of Table 2).

    With ``volts=None`` the kernel manages the rail by the machine's own
    convention (the Itsy holds its boot voltage; the SA-2 follows its
    per-step schedule); an explicit voltage pins the rail instead.

    Raises:
        ValueError: if the table has no step at ``mhz``.
    """
    try:
        step = clock_table.step_for_mhz(mhz)
    except KeyError:
        raise ValueError(
            f"no {mhz:g} MHz step in the clock table "
            f"(steps: {', '.join(f'{s.mhz:g}' for s in clock_table)})"
        ) from None
    return ConstantGovernor(step_index=step.index, volts=volts)


def pering_avg(
    n: int,
    up: str = "one",
    down: str = "one",
    thresholds: ThresholdPair = PERING_THRESHOLDS,
    voltage_rule: Optional[VoltageRule] = None,
    clock_table: ClockTable = SA1100_CLOCK_TABLE,
) -> IntervalPolicy:
    """An AVG_N policy with Pering's 50 %/70 % starting-point thresholds."""
    return IntervalPolicy(
        predictor=AvgN(n),
        thresholds=thresholds,
        up=make_setter(up),
        down=make_setter(down),
        voltage_rule=voltage_rule,
        clock_table=clock_table,
    )


def best_policy(
    voltage_scaling: bool = False,
    clock_table: ClockTable = SA1100_CLOCK_TABLE,
) -> IntervalPolicy:
    """The best policy of the empirical study (§5.4).

    PAST (= AVG_0) prediction, pegging both directions, scale up above 98 %
    utilization and down below 93 %.  With ``voltage_scaling`` the core
    rail drops to 1.23 V whenever the clock is at or below 162.2 MHz
    (the last row of Table 2).
    """
    return IntervalPolicy(
        predictor=Past(),
        thresholds=BEST_POLICY_THRESHOLDS,
        up=Peg(),
        down=Peg(),
        voltage_rule=VoltageRule() if voltage_scaling else None,
        clock_table=clock_table,
    )


def cycle_average(window: int = 4) -> CycleAverageGovernor:
    """The naive busy-cycle averaging policy of Figure 5."""
    return CycleAverageGovernor(window=window)


#: Catalog factories by stable name, for parameterized (keyword) policy
#: specs.  Keys are part of the sweep cache-key schema: renaming one
#: invalidates cached results for policies built through it.
POLICY_FACTORIES: Dict[str, Callable[..., Governor]] = {
    "constant": constant_speed,
    "pering-avg": pering_avg,
    "best": best_policy,
    "cycle-average": cycle_average,
}

_INTERVAL_PATTERN = re.compile(
    r"^(?:past|avg(\d+))-(one|double|peg)(?:-(\d+)-(\d+))?$"
)
_CONST_PATTERN = re.compile(r"^const-(\d+(?:\.\d+)?)(?:@(\d+(?:\.\d+)?))?$")


def resolve_policy(
    name: str, clock_table: Optional[ClockTable] = None
) -> Callable[[], Governor]:
    """Map a policy name to a fresh-governor factory.

    The grammar (also printed by ``python -m repro list-policies``):

    - ``const-<mhz>`` — constant speed, rail managed by the machine
      (e.g. ``const-132.7``);
    - ``const-<mhz>@<volts>`` — constant speed at an explicit core
      voltage (e.g. ``const-132.7@1.23``, the third row of Table 2);
    - ``best`` / ``best-voltage`` — the paper's best policy, optionally
      with voltage scaling at 162.2 MHz;
    - ``<pred>-<setter>`` — an interval policy: ``<pred>`` is ``past``
      or ``avg<N>``, ``<setter>`` is one/double/peg both directions,
      with Pering's 50/70 thresholds (e.g. ``avg9-peg``, ``past-one``);
    - ``<pred>-<setter>-<hi>-<lo>`` — the same with explicit scale-up /
      scale-down thresholds in percent: ``past-peg-98-93`` is the best
      policy of §5.4 by its construction;
    - ``cycleavg`` — the naive busy-cycle averaging policy of Figure 5;
    - ``synth`` — the synthesized-deadline governor (§6 future work).

    Args:
        name: a policy name in the grammar above.
        clock_table: the clock table constant speeds resolve against
            (None = the SA-1100 table).

    Raises:
        ValueError: for unknown names.
    """
    table = clock_table if clock_table is not None else SA1100_CLOCK_TABLE
    if name == "best":
        return lambda: best_policy(False, clock_table=table)
    if name == "best-voltage":
        return lambda: best_policy(True, clock_table=table)
    if name == "cycleavg":
        return lambda: cycle_average()
    if name == "synth":
        from repro.core.deadline import SynthesizedDeadlineGovernor

        return lambda: SynthesizedDeadlineGovernor()
    match = _CONST_PATTERN.match(name)
    if match:
        mhz = float(match.group(1))
        volts = float(match.group(2)) if match.group(2) else None
        return lambda: constant_speed(mhz, volts=volts, clock_table=table)
    match = _INTERVAL_PATTERN.match(name)
    if match:
        n_text, setter, hi_text, lo_text = match.groups()
        thresholds = (
            ThresholdPair(low=int(lo_text) / 100, high=int(hi_text) / 100)
            if hi_text is not None
            else PERING_THRESHOLDS
        )
        if n_text is None:
            return lambda: IntervalPolicy(
                predictor=Past(),
                thresholds=thresholds,
                up=make_setter(setter),
                down=make_setter(setter),
                clock_table=table,
            )
        n = int(n_text)
        return lambda: pering_avg(
            n, up=setter, down=setter, thresholds=thresholds, clock_table=table
        )
    raise ValueError(f"unknown policy {name!r}; see 'list-policies'")


def predictor_decay_n(name: str) -> Optional[int]:
    """The AVG_N decay length of a named policy's predictor, if any.

    Diagnostics recompute a policy's weighted-utilization series offline
    to compare predictions against realized utilization; that only works
    for policies whose predictor is AVG_N (PAST being AVG_0).  Returns
    ``0`` for ``past-*``/``best``/``best-voltage``, ``N`` for ``avg<N>-*``,
    and None for policies without an AVG_N predictor (constants,
    ``cycleavg``, ``synth``, unknown names).
    """
    if name in ("best", "best-voltage"):
        return 0
    match = _INTERVAL_PATTERN.match(name)
    if match:
        n_text = match.group(1)
        return 0 if n_text is None else int(n_text)
    return None


def sweep_avg_policies(
    n_values: Tuple[int, ...] = tuple(range(11)),
    setter_names: Tuple[str, ...] = ("one", "double", "peg"),
    thresholds: ThresholdPair = PERING_THRESHOLDS,
) -> Iterator[Tuple[str, Governor]]:
    """The comprehensive sweep of §5.3: AVG_N for N in 0..10 x setters.

    Yields ``(label, governor)`` pairs; the same setter is used both
    directions, as in the paper's summary sweep.
    """
    for n in n_values:
        for name in setter_names:
            label = f"AVG_{n}/{name}-{name}"
            yield label, pering_avg(n, up=name, down=name, thresholds=thresholds)
