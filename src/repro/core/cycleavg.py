"""The naive busy-cycle averaging policy of Figure 5.

One "simple" policy the paper examines before the interval schedulers:
determine the number of busy instructions during the previous N scheduling
quanta and set the clock just high enough to cover the same activity in the
coming quantum.  Each past quantum contributes ``f * busy_fraction``
delivered MHz; the target speed is the slowest clock step at or above the
window mean.

Figure 5 shows why this is poor: moving toward idle the average collapses
quickly (idle quanta contribute zero regardless of the clock), but speeding
up is pathologically slow -- while stuck at 59 MHz a fully busy quantum can
only ever contribute 59 MHz to the average, so the mean can never exceed
59 MHz and the policy never escapes the lowest step on its own.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.hw.clocksteps import ClockTable, SA1100_CLOCK_TABLE
from repro.kernel.governor import Governor, GovernorRequest, TickInfo


class CycleAverageGovernor(Governor):
    """Targets the mean delivered MHz of the last ``window`` quanta.

    Args:
        window: number of quanta to average over (the paper's illustration
            uses 4).
        clock_table: the machine's clock table.
    """

    def __init__(self, window: int = 4, clock_table: ClockTable = SA1100_CLOCK_TABLE):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.clock_table = clock_table
        self._delivered_mhz: Deque[float] = deque(maxlen=window)
        #: history of (time_us, average_mhz, chosen_mhz), for Figure 5.
        self.decisions: list[tuple[float, float, float]] = []

    @property
    def average_mhz(self) -> float:
        """Current window mean of delivered MHz (0.0 with no history)."""
        if not self._delivered_mhz:
            return 0.0
        return sum(self._delivered_mhz) / len(self._delivered_mhz)

    def on_tick(self, info: TickInfo) -> Optional[GovernorRequest]:
        self._delivered_mhz.append(info.mhz * info.utilization)
        avg = self.average_mhz
        target = self.clock_table.lowest_step_at_least(avg)
        self.decisions.append((info.now_us, avg, target.mhz))
        if target.index == info.step_index:
            return None
        return GovernorRequest(step_index=target.index)

    def reset(self) -> None:
        self._delivered_mhz.clear()
        self.decisions.clear()
