"""Speed setters: *how far* to scale through the discrete clock table.

Deciding how much to scale is separate from deciding when (paper §2.2).
The SA-1100 offers 11 discrete clock steps, so a speed setter is pure index
arithmetic:

- ``one``: increment or decrement the step index by one;
- ``double``: double (or halve) the step.  Because the lowest step index is
  zero, the index is incremented before doubling on the way up (so step 0
  goes to step 2, not step 0); halving inverts that mapping;
- ``peg``: jump straight to the highest (or lowest) step.

Separate setters may be used for the up and down directions; the paper's
best policy pegs in both.
"""

from __future__ import annotations

import abc

from repro.core.hysteresis import Direction


class SpeedSetter(abc.ABC):
    """Maps (current step index, direction) to a new step index.

    Implementations may return out-of-range indices; callers clamp into the
    clock table (pegging at the extremes is the defined behaviour).
    """

    @abc.abstractmethod
    def next_index(self, current: int, direction: Direction, max_index: int) -> int:
        """Return the new step index for a scaling decision.

        Args:
            current: the current clock-step index.
            direction: UP or DOWN (HOLD must be handled by the caller).

        Raises:
            ValueError: if called with ``Direction.HOLD``.
        """

    @staticmethod
    def _require_motion(direction: Direction) -> None:
        if direction is Direction.HOLD:
            raise ValueError("speed setters are only consulted for UP or DOWN")


class OneStep(SpeedSetter):
    """The ``one`` policy: move a single clock step at a time."""

    def next_index(self, current: int, direction: Direction, max_index: int) -> int:
        self._require_motion(direction)
        return current + (1 if direction is Direction.UP else -1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "OneStep()"


class Double(SpeedSetter):
    """The ``double`` policy: double or halve the clock step.

    Scaling up computes ``(index + 1) * 2 - 1``: the index is incremented
    before doubling (the paper's rule, since the lowest index is 0), then
    mapped back to 0-based.  Step 0 -> 1, 1 -> 3, 3 -> 7, 7 -> 15 (pegs at
    the table maximum).  Scaling down inverts the map:
    ``(index + 1) // 2 - 1``: 10 -> 4, 4 -> 1, 1 -> 0.
    """

    def next_index(self, current: int, direction: Direction, max_index: int) -> int:
        self._require_motion(direction)
        if direction is Direction.UP:
            return (current + 1) * 2 - 1
        return (current + 1) // 2 - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Double()"


class Peg(SpeedSetter):
    """The ``peg`` policy: jump to the fastest (or slowest) step."""

    def next_index(self, current: int, direction: Direction, max_index: int) -> int:
        self._require_motion(direction)
        return max_index if direction is Direction.UP else 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Peg()"
