"""Predictive algorithms from Govil, Chan & Wasserman (MobiCom '95), §3.

Govil et al. extended Weiser's trace-driven study with a family of
speed-setting heuristics.  The paper under reproduction cites this work as
the source of the AVG_N scheduler; the rest of the family is implemented
here as trace-level baselines sharing the Weiser simulation semantics of
:mod:`repro.core.oracle` (per-interval work, carry-over backlog,
``speed^2`` energy weight).

Each algorithm is a *work predictor*: given the history of per-interval
arriving work, predict the next interval's work; the speed is then set to
cover the prediction plus the current backlog.

- ``PAST``: next = last (Weiser's PAST; in :mod:`repro.core.oracle`).
- ``FLAT(u)``: predict a constant ``u`` regardless of history -- try to
  smooth speed to a flat level.
- ``LONG_SHORT(s, l)``: average of a short-term (last 3) and a long-term
  (last 12) utilization average.
- ``AGED_AVERAGES(g)``: geometrically aged average -- the trace-level
  twin of the kernel AVG_N predictor.
- ``CYCLE(x)``: if the last ``x`` intervals look periodic with period p,
  predict the value one period back; else fall back to aged averages.
- ``PATTERN(m)``: find the most recent previous occurrence of the last
  ``m``-interval pattern and predict what followed it.
- ``PEAK``: pattern-matching specialized to narrow peaks: rising runs are
  predicted to fall, falling runs to keep falling.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from repro.core.oracle import TraceScheduleResult, _simulate
from repro.hw.clocksteps import ClockTable


class WorkPredictor(abc.ABC):
    """Predicts the next interval's arriving work from history."""

    @abc.abstractmethod
    def predict(self, history: Sequence[float]) -> float:
        """Predicted work for the coming interval (history may be empty)."""

    def name(self) -> str:
        """Short label for reports."""
        return type(self).__name__


class FlatPredictor(WorkPredictor):
    """FLAT: always predict the same utilization level."""

    def __init__(self, level: float = 0.7):
        if not 0.0 <= level <= 1.0:
            raise ValueError("level must be in [0, 1]")
        self.level = level

    def predict(self, history: Sequence[float]) -> float:
        return self.level


class LongShortPredictor(WorkPredictor):
    """LONG_SHORT: mean of short- and long-window utilization averages."""

    def __init__(self, short: int = 3, long: int = 12):
        if short <= 0 or long <= 0:
            raise ValueError("window lengths must be positive")
        self.short = short
        self.long = long

    def predict(self, history: Sequence[float]) -> float:
        if not history:
            return 0.0
        short = history[-self.short:]
        long = history[-self.long:]
        return 0.5 * (sum(short) / len(short) + sum(long) / len(long))


class AgedAveragesPredictor(WorkPredictor):
    """AGED_AVERAGES: geometric aging, the trace twin of AVG_N.

    ``W = sum(g^k * U_{t-1-k}) * (1 - g)`` with aging factor
    ``g = N/(N+1)``.
    """

    def __init__(self, aging: float = 0.9):
        if not 0.0 <= aging < 1.0:
            raise ValueError("aging factor must be in [0, 1)")
        self.aging = aging

    def predict(self, history: Sequence[float]) -> float:
        w = 0.0
        weight = 1.0 - self.aging
        for u in reversed(history):
            w += weight * u
            weight *= self.aging
            if weight < 1e-12:
                break
        return w


class CyclePredictor(WorkPredictor):
    """CYCLE: detect a periodic pattern in the recent window.

    Tries periods 2..window//2 over the last ``window`` samples; if some
    period's self-mismatch is below ``tolerance`` (mean absolute
    difference), predict the sample one period back.  Otherwise fall back
    to aged averages.
    """

    def __init__(self, window: int = 16, tolerance: float = 0.1, aging: float = 0.9):
        if window < 4:
            raise ValueError("window must be at least 4")
        self.window = window
        self.tolerance = tolerance
        self._fallback = AgedAveragesPredictor(aging)

    def predict(self, history: Sequence[float]) -> float:
        if len(history) < 4:
            return self._fallback.predict(history)
        recent = np.asarray(history[-self.window:], dtype=float)
        n = len(recent)
        best_period: Optional[int] = None
        best_err = self.tolerance
        for period in range(2, n // 2 + 1):
            a = recent[period:]
            b = recent[:-period]
            err = float(np.mean(np.abs(a - b)))
            if err < best_err:
                best_err = err
                best_period = period
        if best_period is None:
            return self._fallback.predict(history)
        return float(recent[n - best_period])


class PatternPredictor(WorkPredictor):
    """PATTERN: match the last ``m`` intervals against earlier history.

    Finds the most recent earlier position where the ``m``-gram is closest
    (mean absolute difference below ``tolerance``) and predicts the value
    that followed it; falls back to aged averages when nothing matches.
    """

    def __init__(self, m: int = 4, tolerance: float = 0.15, aging: float = 0.9):
        if m <= 0:
            raise ValueError("pattern length must be positive")
        self.m = m
        self.tolerance = tolerance
        self._fallback = AgedAveragesPredictor(aging)

    def predict(self, history: Sequence[float]) -> float:
        if len(history) <= self.m:
            return self._fallback.predict(history)
        hist = np.asarray(history, dtype=float)
        probe = hist[-self.m:]
        best_err = self.tolerance
        best_next: Optional[float] = None
        # newest candidates first: prefer recent behaviour
        for start in range(len(hist) - self.m - 1, -1, -1):
            window = hist[start : start + self.m]
            err = float(np.mean(np.abs(window - probe)))
            if err < best_err:
                best_err = err
                best_next = float(hist[start + self.m])
                if err == 0.0:
                    break
        if best_next is None:
            return self._fallback.predict(history)
        return best_next


class PeakPredictor(WorkPredictor):
    """PEAK: expect narrow peaks -- after a rise, predict a fall.

    If the last interval rose above its predecessor, predict a return to
    the pre-rise level; if it fell, predict it keeps the lower level;
    otherwise repeat the last value.
    """

    def predict(self, history: Sequence[float]) -> float:
        if not history:
            return 0.0
        if len(history) == 1:
            return history[-1]
        last, prev = history[-1], history[-2]
        if last > prev:
            return prev  # the peak is assumed narrow: fall back down
        return last


def govil_schedule(
    work: Sequence[float],
    predictor: WorkPredictor,
    min_speed: float = 0.0,
    quantize: Optional[ClockTable] = None,
) -> TraceScheduleResult:
    """Run a Govil-style predictor as a trace-level speed schedule.

    Speed for each interval covers the prediction plus current backlog,
    clamped to [min_speed, 1.0], optionally snapped up to the clock table.
    """
    work_arr = np.asarray(work, dtype=float)
    fractions = (
        None
        if quantize is None
        else np.array([s.mhz for s in quantize]) / quantize.max_step.mhz
    )
    history: List[float] = []
    backlog = 0.0
    speeds: List[float] = []
    for w in work_arr:
        predicted = predictor.predict(history)
        s = min(1.0, max(min_speed, backlog + predicted))
        if fractions is not None:
            idx = int(np.searchsorted(fractions, s - 1e-12))
            s = float(fractions[min(idx, len(fractions) - 1)])
        done = min(backlog + w, s)
        backlog = backlog + w - done
        history.append(w)
        speeds.append(s)
    return _simulate(work_arr, speeds)
