"""Live (in-kernel) versions of the Govil et al. predictors.

:mod:`repro.core.govil` implements the Govil family as *trace-level*
schedulers, faithful to their original trace-driven study.  This module
closes the loop the paper closes for AVG_N: it runs the same predictors
inside the kernel, where the feedback the trace studies miss becomes real
-- observed work depends on the clock the policy itself chose, the
workload spins or sleeps in response, and mispredictions cost deadlines.

The adapter keeps a history of *delivered demand* per quantum, expressed
as speed fractions (``mhz * utilization / max_mhz``), asks the predictor
for the next interval's demand, and sets the slowest step covering the
prediction with a target utilization.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.govil import WorkPredictor
from repro.hw.clocksteps import ClockTable, SA1100_CLOCK_TABLE
from repro.kernel.governor import Governor, GovernorRequest, TickInfo


class LivePredictorGovernor(Governor):
    """Runs a :class:`~repro.core.govil.WorkPredictor` as a kernel governor.

    Args:
        predictor: the work predictor (FLAT, LONG_SHORT, AGED_AVERAGES,
            CYCLE, PATTERN, PEAK, ...).
        target_utilization: desired busy fraction at the chosen step; the
            clock is set so the predicted demand lands at this level
            (Govil et al. aim near but below saturation).
        history_limit: bound on retained history (PATTERN/CYCLE scan it).
    """

    def __init__(
        self,
        predictor: WorkPredictor,
        target_utilization: float = 0.85,
        history_limit: int = 512,
        clock_table: ClockTable = SA1100_CLOCK_TABLE,
    ):
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError("target utilization must be in (0, 1]")
        if history_limit < 1:
            raise ValueError("history limit must be positive")
        self.predictor = predictor
        self.target_utilization = target_utilization
        self.history_limit = history_limit
        self.clock_table = clock_table
        self._history: List[float] = []

    def on_tick(self, info: TickInfo) -> Optional[GovernorRequest]:
        max_mhz = self.clock_table.max_step.mhz
        observed = info.mhz * info.utilization / max_mhz
        self._history.append(min(1.0, observed))
        if len(self._history) > self.history_limit:
            del self._history[: -self.history_limit]

        predicted = self.predictor.predict(self._history)
        needed_mhz = predicted * max_mhz / self.target_utilization
        target = self.clock_table.lowest_step_at_least(needed_mhz)
        if target.index == info.step_index:
            return None
        return GovernorRequest(step_index=target.index)

    def reset(self) -> None:
        self._history.clear()
