"""Hysteresis thresholds: *when* to scale.

The decision of whether to scale the clock is determined by a pair of
boundary values (paper §2.2): if the weighted utilization rises above the
high value the clock is scaled up; if it drops below the low value the
clock is scaled down; in between, nothing happens.

Pering et al. set these to 50 % / 70 %; the paper found the values "very
sensitive to application behavior" and its best policy uses 93 % / 98 %.
Table 1 also shows the asymmetry the 70 % boundary induces for AVG_9: from
a weighted utilization of 70 %, one fully active quantum raises it only to
73 % while one fully idle quantum drops it to 63 % -- a systematic tendency
to scale down.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Direction(enum.Enum):
    """Scaling decision for one interval."""

    DOWN = -1
    HOLD = 0
    UP = 1


@dataclass(frozen=True)
class ThresholdPair:
    """A (low, high) hysteresis boundary pair on weighted utilization.

    Attributes:
        low: scale down when weighted utilization is strictly below this.
        high: scale up when weighted utilization is strictly above this.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.low <= 1.0 or not 0.0 <= self.high <= 1.0:
            raise ValueError("thresholds must lie in [0, 1]")
        if self.low > self.high:
            raise ValueError("low threshold must not exceed high threshold")

    def decide(self, weighted_utilization: float) -> Direction:
        """Map a weighted utilization to a scaling direction."""
        if weighted_utilization > self.high:
            return Direction.UP
        if weighted_utilization < self.low:
            return Direction.DOWN
        return Direction.HOLD


#: The starting-point thresholds of Pering et al. (50 % / 70 %).
PERING_THRESHOLDS = ThresholdPair(low=0.50, high=0.70)

#: The thresholds of the paper's best policy (93 % / 98 %, §5.4).
BEST_POLICY_THRESHOLDS = ThresholdPair(low=0.93, high=0.98)
