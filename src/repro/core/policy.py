"""IntervalPolicy: predictor x thresholds x speed setters as a governor.

This is the complete interval scheduler of the paper: on every 10 ms clock
interrupt it

1. feeds the just-ended quantum's utilization to the predictor,
2. compares the weighted utilization to the hysteresis thresholds,
3. if scaling is called for, asks the (direction-specific) speed setter for
   the new clock-step index, and
4. applies the optional voltage-scaling rule: on the modified Itsy the core
   rail may drop to 1.23 V whenever the clock is at or below 162.2 MHz
   (and must return to 1.5 V before the clock rises above it -- the kernel
   sequences the transitions safely).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.hysteresis import Direction, ThresholdPair
from repro.core.predictors import AvgN, Predictor
from repro.core.speed import Peg, SpeedSetter
from repro.hw.clocksteps import ClockTable, SA1100_CLOCK_TABLE
from repro.hw.rails import VOLTAGE_HIGH, VOLTAGE_LOW
from repro.kernel.governor import Governor, GovernorRequest, TickInfo


@dataclass(frozen=True)
class VoltageRule:
    """When to use the reduced core voltage.

    Attributes:
        bound_mhz: run at ``low_volts`` when the clock frequency is at or
            below this bound, ``high_volts`` above it.  The paper's
            configuration scales the voltage at 162.2 MHz.
        low_volts: the reduced voltage (1.23 V).
        high_volts: the nominal voltage (1.5 V).
    """

    bound_mhz: float = 162.2
    low_volts: float = VOLTAGE_LOW
    high_volts: float = VOLTAGE_HIGH

    def volts_for_mhz(self, mhz: float) -> float:
        """The voltage this rule prescribes for a clock frequency."""
        return self.low_volts if mhz <= self.bound_mhz + 1e-9 else self.high_volts


class IntervalPolicy(Governor):
    """The paper's interval-based clock (and voltage) scheduler.

    Args:
        predictor: utilization predictor (PAST, AVG_N, ...).
        thresholds: hysteresis boundary pair.
        up: speed setter used when scaling up.
        down: speed setter used when scaling down (defaults to ``up`` --
            the paper allows separate policies per direction).
        voltage_rule: optional voltage-scaling rule (None = stay at 1.5 V).
        clock_table: the machine's clock table, used to translate step
            indices to frequencies for the voltage rule.
    """

    def __init__(
        self,
        predictor: Predictor,
        thresholds: ThresholdPair,
        up: SpeedSetter,
        down: Optional[SpeedSetter] = None,
        voltage_rule: Optional[VoltageRule] = None,
        clock_table: ClockTable = SA1100_CLOCK_TABLE,
    ):
        self.predictor = predictor
        self.thresholds = thresholds
        self.up = up
        self.down = down if down is not None else up
        self.voltage_rule = voltage_rule
        self.clock_table = clock_table
        #: history of (time_us, weighted utilization, direction) decisions,
        #: for offline inspection (Table 1-style traces).
        self.decisions: list[tuple[float, float, Direction]] = []
        # Hot-path specializations, all bitwise-identical to the
        # polymorphic calls they stand in for: on_tick runs every 10 ms
        # and the stock AvgN/Peg method calls dominate its profile.
        # Subclassed predictors/setters fall back to the generic path.
        self._avgn = (
            predictor
            if isinstance(predictor, AvgN)
            and type(predictor).observe is AvgN.observe
            else None
        )
        self._peg_up = type(self.up) is Peg
        self._peg_down = type(self.down) is Peg
        self._table_max = clock_table.max_index
        # volts_for_mhz is a pure function of the (clamped) step index;
        # precompute it per index so the voltage check is one tuple load.
        self._rule_volts = (
            tuple(
                voltage_rule.volts_for_mhz(clock_table[i].mhz)
                for i in range(clock_table.max_index + 1)
            )
            if voltage_rule is not None
            else None
        )

    def on_tick(self, info: TickInfo) -> Optional[GovernorRequest]:
        step_index = info.step_index
        # AvgN.observe, inlined for stock predictors: arithmetic,
        # tolerances and the error message are copied verbatim, so both
        # results and failures match the polymorphic fallback.
        avgn = self._avgn
        if avgn is not None:
            utilization = info.utilization
            if not 0.0 <= utilization <= 1.0 + 1e-9:
                raise ValueError(
                    f"utilization must be in [0, 1], got {utilization}"
                )
            if utilization > 1.0:
                utilization = 1.0
            n = avgn.n
            weighted = (n * avgn._weighted + utilization) / (n + 1)
            avgn._weighted = weighted
        else:
            weighted = self.predictor.observe(info.utilization)
        # ThresholdPair.decide, inlined: same comparisons, same strict
        # inequalities.
        thresholds = self.thresholds
        if weighted > thresholds.high:
            direction = Direction.UP
        elif weighted < thresholds.low:
            direction = Direction.DOWN
        else:
            direction = Direction.HOLD
        self.decisions.append((info.now_us, weighted, direction))

        if direction is Direction.HOLD:
            new_index = step_index
        elif direction is Direction.UP:
            if self._peg_up:
                # Peg.next_index + clamp_index: the table maximum,
                # clamped against this policy's own table.
                new_index = info.max_step_index
                if new_index > self._table_max:
                    new_index = self._table_max
            else:
                new_index = self.clock_table.clamp_index(
                    self.up.next_index(step_index, direction, info.max_step_index)
                )
        elif self._peg_down:
            new_index = 0
        else:
            new_index = self.clock_table.clamp_index(
                self.down.next_index(step_index, direction, info.max_step_index)
            )

        request_index = new_index if new_index != step_index else None

        request_volts: Optional[float] = None
        rule_volts = self._rule_volts
        if rule_volts is not None:
            target_volts = rule_volts[new_index]
            if target_volts != info.volts:
                request_volts = target_volts

        if request_index is None and request_volts is None:
            return None
        return GovernorRequest(step_index=request_index, volts=request_volts)

    def reset(self) -> None:
        self.predictor.reset()
        self.decisions.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IntervalPolicy({self.predictor!r}, {self.thresholds}, "
            f"up={self.up!r}, down={self.down!r}, voltage={self.voltage_rule})"
        )
