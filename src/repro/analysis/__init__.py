"""Signal-processing analysis of interval policies (paper §5.3, §5.1).

The paper's mathematical argument that AVG_N cannot stabilize:

- a processor workload over time is a 0/1 signal (busy/idle);
- AVG_N filters that signal with a decaying-exponential weighting function
  (:mod:`repro.analysis.smoothing` gives the recursive and convolution
  forms and proves them equal);
- the Fourier transform of the decaying exponential,
  ``|X(w)| = 1 / sqrt(w^2 + a^2)``, attenuates but never eliminates high
  frequencies (:mod:`repro.analysis.fourier`, Figure 6);
- hence a periodic workload (the 9-busy/1-idle rectangle wave idealizing
  MPEG at its optimal speed) keeps the weighted utilization oscillating
  over a wide band (:mod:`repro.analysis.oscillation`, Figure 7), crossing
  any reasonable hysteresis thresholds forever.

:mod:`repro.analysis.utilization` holds the utilization-series helpers for
Figures 3 and 4 (per-quantum series and moving averages).
"""

from repro.analysis.energymodel import (
    energy_delay_curve,
    energy_for_work,
    race_vs_crawl,
)
from repro.analysis.fourier import decaying_exponential, fourier_magnitude
from repro.analysis.latency import latency_stats, sync_drift_series
from repro.analysis.oscillation import OscillationStats, oscillation_stats
from repro.analysis.smoothing import (
    avg_n_convolve,
    avg_n_recursive,
    avg_n_weights,
    rectangle_wave,
)
from repro.analysis.utilization import moving_average, utilization_series

__all__ = [
    "OscillationStats",
    "avg_n_convolve",
    "avg_n_recursive",
    "avg_n_weights",
    "decaying_exponential",
    "energy_delay_curve",
    "energy_for_work",
    "fourier_magnitude",
    "latency_stats",
    "moving_average",
    "oscillation_stats",
    "race_vs_crawl",
    "rectangle_wave",
    "sync_drift_series",
    "utilization_series",
]
