"""Utilization-series helpers for Figures 3 and 4.

Figure 3 plots the raw per-10 ms-quantum utilization over 30-40 s windows;
because most processes run whole quanta, the signal is mostly 0 or 1.
Figure 4 smooths the same data with a 100 ms moving average, making each
application's structure visible (frame periodicity, think/search phases,
synthesis bursts).  The paper notes that even a 1 s moving average of MPEG
still swings 60-80 %.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.kernel.scheduler import KernelRun


def utilization_series(run: KernelRun) -> Tuple[np.ndarray, np.ndarray]:
    """Per-quantum (time_us, utilization) arrays from a kernel run."""
    times = np.array([q.end_us for q in run.quanta])
    utils = np.array([q.utilization for q in run.quanta])
    return times, utils


def moving_average(values: Sequence[float], window: int) -> np.ndarray:
    """Trailing moving average with a ramp-in head.

    Entry ``i`` averages ``values[max(0, i-window+1) .. i]``; a 100 ms
    window over 10 ms quanta is ``window=10`` (Figure 4), a 1 s window is
    ``window=100``.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return arr.copy()
    csum = np.concatenate([[0.0], np.cumsum(arr)])
    out = np.empty_like(arr)
    for i in range(arr.size):
        lo = max(0, i - window + 1)
        out[i] = (csum[i + 1] - csum[lo]) / (i + 1 - lo)
    return out


def window_slice(
    times_us: np.ndarray,
    values: np.ndarray,
    start_us: float,
    end_us: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Select the samples of a 30-40 s display window (Figures 3/4)."""
    if end_us <= start_us:
        raise ValueError("window is empty")
    mask = (times_us >= start_us) & (times_us < end_us)
    return times_us[mask], values[mask]


def busy_idle_runs(utilizations: Sequence[float], busy_above: float = 0.5) -> List[Tuple[bool, int]]:
    """Run-length encode a utilization series into busy/idle stretches.

    Used to characterize application time-scales (e.g. MPEG's ~7-quantum
    frames, §5.1).  Returns ``[(is_busy, length), ...]``.
    """
    runs: List[Tuple[bool, int]] = []
    for u in utilizations:
        busy = u > busy_above
        if runs and runs[-1][0] == busy:
            runs[-1] = (busy, runs[-1][1] + 1)
        else:
            runs.append((busy, 1))
    return runs
