"""Oscillation metrics for filtered utilization signals (Figure 7).

Figure 7 shows AVG_3 applied to the 9-busy/1-idle rectangle wave: the
weighted utilization "oscillates over a surprisingly wide range", so any
hysteresis band narrower than that range triggers speed changes forever.
These helpers quantify the band and relate it to threshold pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.hysteresis import ThresholdPair


@dataclass(frozen=True)
class OscillationStats:
    """Steady-state oscillation statistics of a weighted-utilization series.

    Attributes:
        minimum / maximum: extremes over the analysed (steady-state) tail.
        amplitude: ``maximum - minimum`` -- the oscillation band width.
        mean: average level.
        crossings_per_step: how often the series crosses its own mean,
            per step (0 for a settled series).
    """

    minimum: float
    maximum: float
    amplitude: float
    mean: float
    crossings_per_step: float

    def escapes(self, thresholds: ThresholdPair) -> bool:
        """True if the band leaves the hysteresis dead zone.

        A policy is (necessarily) unstable on this signal when the weighted
        utilization both rises above the high threshold and falls below the
        low one -- it will keep commanding speed changes forever.
        """
        return self.maximum > thresholds.high and self.minimum < thresholds.low


def oscillation_stats(
    weighted: Sequence[float], settle_fraction: float = 0.5
) -> OscillationStats:
    """Analyse the steady-state tail of a weighted-utilization series.

    Args:
        weighted: the filtered series (e.g. from
            :func:`repro.analysis.smoothing.avg_n_convolve`).
        settle_fraction: fraction of the series discarded as transient.
    """
    arr = np.asarray(weighted, dtype=float)
    if arr.size == 0:
        raise ValueError("empty series")
    if not 0.0 <= settle_fraction < 1.0:
        raise ValueError("settle_fraction must be in [0, 1)")
    tail = arr[int(arr.size * settle_fraction):]
    mean = float(np.mean(tail))
    above = tail > mean
    crossings = int(np.sum(above[1:] != above[:-1]))
    return OscillationStats(
        minimum=float(np.min(tail)),
        maximum=float(np.max(tail)),
        amplitude=float(np.max(tail) - np.min(tail)),
        mean=mean,
        crossings_per_step=crossings / max(1, tail.size - 1),
    )
