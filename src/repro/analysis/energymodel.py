"""Closed-form energy/delay analysis (§2.1's arguments, made computable).

The paper's background section walks through the fundamental tradeoffs:

- without voltage scaling, finishing fixed work slower saves little --
  power falls linearly with frequency but time grows linearly, so the
  *busy* energy is nearly constant and only the idle-power difference
  matters ("little or no energy will be saved");
- with voltage scaling the busy energy falls roughly with ``V^2``
  ("significant benefit to running slower when the application can
  tolerate additional delay" -- the SA-2's 4x example);
- racing to idle versus crawling is decided by how the idle power
  compares to the busy-power savings.

These helpers evaluate the tradeoffs exactly against the calibrated Itsy
machine model, including the Table 3 memory effects that make work cost
*more cycles* at higher clock steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hw.clocksteps import ClockStep, ClockTable, SA1100_CLOCK_TABLE
from repro.hw.memory import MemoryTimings, SA1100_MEMORY_TIMINGS
from repro.hw.power import CoreState, PowerModel, PowerParameters
from repro.hw.rails import DEFAULT_LOW_VOLTAGE_MAX_MHZ, VOLTAGE_HIGH, VOLTAGE_LOW
from repro.hw.work import Work


@dataclass(frozen=True)
class EnergyPoint:
    """Energy/delay of completing fixed work one way.

    Attributes:
        step: the clock step used while busy.
        volts: the core voltage used while busy.
        busy_us: time spent computing.
        total_us: busy time plus any idle tail (for deadline scenarios).
        energy_j: whole-system energy over ``total_us``.
    """

    step: ClockStep
    volts: float
    busy_us: float
    total_us: float
    energy_j: float

    @property
    def mean_power_w(self) -> float:
        """Average power over the scenario window."""
        if self.total_us <= 0:
            return 0.0
        return self.energy_j / (self.total_us * 1e-6)


def energy_for_work(
    work: Work,
    step: ClockStep,
    volts: float = VOLTAGE_HIGH,
    deadline_us: Optional[float] = None,
    idle_step: Optional[ClockStep] = None,
    idle_volts: Optional[float] = None,
    power: Optional[PowerModel] = None,
    timings: MemoryTimings = SA1100_MEMORY_TIMINGS,
) -> EnergyPoint:
    """Whole-system energy to complete ``work`` at a constant setting.

    With a ``deadline_us`` the scenario covers the full window: busy at
    ``step``/``volts``, then napping (at ``idle_step``/``idle_volts``,
    defaulting to the busy setting) until the deadline.  Without one, only
    the busy time is charged.

    Raises:
        ValueError: if the work cannot finish by the deadline.
    """
    model = power if power is not None else PowerModel()
    busy_us = work.duration_us(step, timings)
    if deadline_us is None:
        total_us = busy_us
        idle_us = 0.0
    else:
        if busy_us > deadline_us + 1e-9:
            raise ValueError(
                f"work needs {busy_us:.0f} us at {step.mhz:.1f} MHz, "
                f"deadline is {deadline_us:.0f} us"
            )
        total_us = deadline_us
        idle_us = deadline_us - busy_us
    e_busy = model.total_w(step, volts, CoreState.ACTIVE) * busy_us * 1e-6
    nap_step = idle_step if idle_step is not None else step
    nap_volts = idle_volts if idle_volts is not None else volts
    e_idle = model.total_w(nap_step, nap_volts, CoreState.NAP) * idle_us * 1e-6
    return EnergyPoint(
        step=step,
        volts=volts,
        busy_us=busy_us,
        total_us=total_us,
        energy_j=e_busy + e_idle,
    )


def energy_delay_curve(
    work: Work,
    deadline_us: float,
    voltage_scaling: bool = True,
    clock_table: ClockTable = SA1100_CLOCK_TABLE,
    low_voltage_max_mhz: float = DEFAULT_LOW_VOLTAGE_MAX_MHZ,
    power: Optional[PowerModel] = None,
    timings: MemoryTimings = SA1100_MEMORY_TIMINGS,
) -> List[EnergyPoint]:
    """Energy at every feasible constant step for a deadline scenario.

    With ``voltage_scaling`` the core runs at 1.23 V whenever the step is
    at or below the low-voltage bound, 1.5 V otherwise -- the modified
    Itsy's capability.  Infeasible steps are omitted.
    """
    points: List[EnergyPoint] = []
    for step in clock_table:
        volts = VOLTAGE_HIGH
        if voltage_scaling and step.mhz <= low_voltage_max_mhz + 1e-9:
            volts = VOLTAGE_LOW
        try:
            points.append(
                energy_for_work(
                    work,
                    step,
                    volts,
                    deadline_us=deadline_us,
                    power=power,
                    timings=timings,
                )
            )
        except ValueError:
            continue
    return points


def best_constant_step(
    work: Work,
    deadline_us: float,
    voltage_scaling: bool = True,
    **kwargs,
) -> EnergyPoint:
    """The energy-minimal feasible constant setting for the scenario.

    Raises:
        ValueError: when no step meets the deadline.
    """
    curve = energy_delay_curve(work, deadline_us, voltage_scaling, **kwargs)
    if not curve:
        raise ValueError("no clock step meets the deadline")
    # Break floating-point ties toward the slower step: for pure-CPU work
    # at a fixed voltage all steps cost identically, and the slow end is
    # the canonical representative ("meet the deadline as late as
    # possible", §6).
    return min(curve, key=lambda p: (round(p.energy_j, 9), p.step.index))


def race_vs_crawl(
    work: Work,
    deadline_us: float,
    voltage_scaling: bool = True,
    clock_table: ClockTable = SA1100_CLOCK_TABLE,
    **kwargs,
) -> "tuple[EnergyPoint, EnergyPoint]":
    """Compare racing-to-idle against the best slower constant setting.

    Returns ``(race, best)`` where ``race`` runs flat out then naps at the
    top step, and ``best`` is the energy-minimal constant setting.  The
    paper's §2.1: with voltage scaling ``best`` wins clearly; without it
    the difference shrinks to the idle-power gap.
    """
    race = energy_for_work(
        work, clock_table.max_step, VOLTAGE_HIGH, deadline_us=deadline_us, **kwargs
    )
    best = best_constant_step(
        work, deadline_us, voltage_scaling, clock_table=clock_table, **kwargs
    )
    return race, best


def processor_only_model() -> PowerModel:
    """A power model with the platform (fixed + clock-tracking) terms
    removed: processor energy in isolation, for the textbook curves.

    The paper's SA-2 illustration assumes "an idle computer consumes no
    energy"; this model reproduces that style of argument while the
    default model answers the whole-system question the Itsy DAQ measures.
    """
    base = PowerParameters()
    return PowerModel(
        PowerParameters(
            fixed_w=0.0,
            system_w_per_mhz=0.0,
            core_w_per_mhz_v2=base.core_w_per_mhz_v2,
            pad_w_per_mhz_v2=base.pad_w_per_mhz_v2,
            nap_w_per_mhz_v2=0.0,
        )
    )
