"""AVG_N as a linear filter: recursive and convolution forms (§5.3).

The paper derives, by recursively expanding ``W_t``:

    W_t = (1/(N+1)) * sum_{k=0}^{t-1} (N/(N+1))^(k) * U_{t-1-k}

(with a ``(N/(N+1))^t W_0`` term for the initial condition), i.e. the
weighted output is the discrete convolution of the raw utilization with a
decaying exponential.  These helpers compute both forms so tests can verify
they agree exactly, and generate the idealized workloads of the analysis.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def avg_n_recursive(
    utilizations: Sequence[float], n: int, initial: float = 0.0
) -> np.ndarray:
    """The implementation form: ``W_t = (N W_{t-1} + U_{t-1}) / (N+1)``.

    Returns the array ``[W_1, ..., W_T]`` (one output per input).
    """
    if n < 0:
        raise ValueError("N must be non-negative")
    out = np.empty(len(utilizations))
    w = initial
    for i, u in enumerate(utilizations):
        w = (n * w + u) / (n + 1)
        out[i] = w
    return out


def avg_n_weights(n: int, length: int) -> np.ndarray:
    """The first ``length`` taps of the AVG_N impulse response.

    ``h[k] = (1/(N+1)) * (N/(N+1))^k`` -- a decaying exponential whose sum
    converges to 1.
    """
    if n < 0:
        raise ValueError("N must be non-negative")
    if length <= 0:
        raise ValueError("length must be positive")
    decay = n / (n + 1)
    return (1.0 / (n + 1)) * decay ** np.arange(length)


def avg_n_convolve(
    utilizations: Sequence[float], n: int, initial: float = 0.0
) -> np.ndarray:
    """The analysis form: convolution with the decaying exponential.

    Equivalent to :func:`avg_n_recursive` (tests verify to machine
    precision); the initial condition enters as ``(N/(N+1))^t * initial``.
    """
    u = np.asarray(utilizations, dtype=float)
    t = len(u)
    if t == 0:
        return np.array([])
    h = avg_n_weights(n, t)
    full = np.convolve(u, h)[:t]
    decay = n / (n + 1) if n > 0 else 0.0
    init_term = initial * decay ** np.arange(1, t + 1)
    return full + init_term


def rectangle_wave(
    busy: int, idle: int, periods: int, amplitude: float = 1.0
) -> np.ndarray:
    """A repeating 0/1 rectangle wave: ``busy`` ones then ``idle`` zeros.

    The paper's Figure 7 input is busy=9, idle=1: "an idealized version of
    our MPEG player running roughly at an optimal speed, i.e. just idle
    enough to indicate that the system isn't saturated."
    """
    if busy <= 0 or idle < 0 or periods <= 0:
        raise ValueError("busy/periods must be positive, idle non-negative")
    one_period = np.concatenate([np.full(busy, amplitude), np.zeros(idle)])
    return np.tile(one_period, periods)


def steady_state_range(busy: int, idle: int, n: int) -> "tuple[float, float]":
    """Analytic steady-state (min, max) of AVG_N on a rectangle wave.

    In steady state the weighted utilization rises toward 1 for ``busy``
    steps from its periodic minimum and decays for ``idle`` steps from its
    maximum.  Solving the two-phase fixed point with ``a = N/(N+1)``:

        W_max = (1 - a^busy) / (1 - a^(busy+idle))  ... after the busy run
        W_min = W_max * a^idle                      ... after the idle run

    This gives the oscillation band of Figure 7 in closed form; the
    numeric convolution must converge to it.
    """
    if n == 0:
        # PAST: the weighted value is just the previous sample.
        return (0.0 if idle > 0 else 1.0, 1.0)
    a = n / (n + 1)
    period = busy + idle
    w_max = (1.0 - a**busy) / (1.0 - a**period)
    w_min = w_max * a**idle
    return w_min, w_max
