"""The frequency response of AVG_N (Figure 6, §5.3).

The continuous-space idealization: AVG_N convolves the workload with
``x(t) = e^(-a t) u(t)`` (``u`` the unit step).  Its Fourier transform is

    X(w) = 1 / (i w + a),    |X(w)| = 1 / sqrt(w^2 + a^2)

"The transform attenuates, but does not eliminate, higher frequency
elements.  If the input signal oscillates, the output will oscillate as
well."  Smaller ``a`` (larger N) attenuates more but lags more.
"""

from __future__ import annotations

import numpy as np


def decaying_exponential(t: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    """``x(t) = e^(-alpha t) u(t)``: the AVG_N weighting shape (Figure 6)."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    t = np.asarray(t, dtype=float)
    return np.where(t >= 0, np.exp(-alpha * np.clip(t, 0, None)), 0.0)


def fourier_magnitude(omega: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    """``|X(w)| = 1 / sqrt(w^2 + alpha^2)`` for the decaying exponential."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    omega = np.asarray(omega, dtype=float)
    return 1.0 / np.sqrt(omega**2 + alpha**2)


def numeric_fourier_magnitude(
    omega: np.ndarray, alpha: float = 1.0, t_max: float = 60.0, dt: float = 1e-3
) -> np.ndarray:
    """Numeric |FT| of the decaying exponential, to validate the closed form.

    Integrates ``x(t) e^(-i w t)`` by the rectangle rule over [0, t_max].
    """
    t = np.arange(0.0, t_max, dt)
    x = np.exp(-alpha * t)
    omega = np.asarray(omega, dtype=float)
    # outer product integration: for each w, sum x(t) e^{-iwt} dt
    phases = np.exp(-1j * np.outer(omega, t))
    return np.abs(phases @ x * dt)


def alpha_for_avg_n(n: int, interval_s: float = 0.010) -> float:
    """The continuous decay rate matching AVG_N at a given interval length.

    One discrete step multiplies the weight by ``N/(N+1)``; the matching
    continuous exponential has ``e^(-alpha * interval) = N/(N+1)``, i.e.
    ``alpha = -ln(N/(N+1)) / interval``.  Larger N gives smaller alpha:
    stronger attenuation, more lag (the paper's tradeoff).
    """
    if n <= 0:
        raise ValueError("alpha is only defined for N >= 1")
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    return -float(np.log(n / (n + 1))) / interval_s
