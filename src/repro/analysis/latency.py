"""Response-latency analysis of application events.

The paper's acceptance criterion is binary -- an event is on time "if
delaying its completion did not adversely affect the user."  These helpers
expose the underlying distribution so that criterion can be examined:
per-kind lateness percentiles, worst cases, and the synchronization-drift
series that decides whether MPEG audio and video have "become
unsynchronized".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.traces.schema import AppEvent


@dataclass(frozen=True)
class LatencyStats:
    """Lateness distribution for one event kind.

    Attributes:
        kind: event kind.
        count: events with deadlines.
        on_time: events with zero lateness.
        mean_us / p95_us / max_us: lateness statistics (zero-clamped).
    """

    kind: str
    count: int
    on_time: int
    mean_us: float
    p95_us: float
    max_us: float

    @property
    def on_time_fraction(self) -> float:
        """Fraction of deadline-bearing events that were not late at all."""
        if self.count == 0:
            return 1.0
        return self.on_time / self.count


def latency_stats(events: Sequence[AppEvent]) -> Dict[str, LatencyStats]:
    """Per-kind lateness statistics over deadline-bearing events."""
    by_kind: Dict[str, List[float]] = {}
    for event in events:
        if event.deadline_us is None:
            continue
        by_kind.setdefault(event.kind, []).append(event.lateness_us)
    out: Dict[str, LatencyStats] = {}
    for kind, lateness in by_kind.items():
        arr = np.asarray(lateness)
        out[kind] = LatencyStats(
            kind=kind,
            count=len(arr),
            on_time=int(np.sum(arr <= 0.0)),
            mean_us=float(np.mean(arr)),
            p95_us=float(np.percentile(arr, 95)),
            max_us=float(np.max(arr)),
        )
    return out


def sync_drift_series(
    events: Sequence[AppEvent], kind: str = "frame"
) -> "tuple[np.ndarray, np.ndarray]":
    """The A/V synchronization drift over time.

    Returns ``(deadline_times_us, lateness_us)`` for the given kind in
    deadline order; the paper's "MPEG audio and video became
    unsynchronized" is this series exceeding the perceptual tolerance and
    staying there.
    """
    stamped = [
        (e.deadline_us, e.lateness_us)
        for e in events
        if e.kind == kind and e.deadline_us is not None
    ]
    stamped.sort()
    if not stamped:
        return np.array([]), np.array([])
    times, lateness = zip(*stamped)
    return np.asarray(times), np.asarray(lateness)


def is_unsynchronized(
    events: Sequence[AppEvent],
    tolerance_us: float,
    kind: str = "frame",
    sustained: int = 3,
) -> bool:
    """True if the drift exceeds tolerance for ``sustained`` events in a row.

    A single late I-frame that recovers is imperceptible; sustained drift
    is what the user notices.
    """
    _, lateness = sync_drift_series(events, kind)
    run = 0
    for late in lateness:
        run = run + 1 if late > tolerance_us else 0
        if run >= sustained:
            return True
    return False
