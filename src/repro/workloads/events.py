"""Timestamped input-event traces: record and replay.

The paper captures repeatable interactive behaviour with "a tracing
mechanism that recorded timestamped input events and then allowed us to
replay those events with millisecond accuracy" (§4.2).  We reproduce that:
an :class:`InputTrace` is an ordered list of :class:`InputEvent` with
millisecond-quantized times; generators build the Web, Chess and
TalkingEditor traces from seeded randomness so each run is repeatable yet
distinct runs (different seeds) vary realistically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, List


@dataclass(frozen=True)
class InputEvent:
    """One user-input event.

    Attributes:
        time_us: replay time, quantized to whole milliseconds.
        kind: event name (``"page_load"``, ``"scroll"``, ``"move"``,
            ``"dialog"``, ``"open_file"`` ...).
        magnitude: free-form size parameter (e.g. render-burst scale).
    """

    time_us: float
    kind: str
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.time_us < 0:
            raise ValueError("event times must be non-negative")


def quantize_ms(time_us: float) -> float:
    """Quantize a time to whole milliseconds (replay accuracy of §4.2)."""
    return round(time_us / 1000.0) * 1000.0


class InputTrace:
    """An ordered, millisecond-accurate input event trace."""

    def __init__(self, events: Iterable[InputEvent]):
        quantized = [
            InputEvent(quantize_ms(e.time_us), e.kind, e.magnitude) for e in events
        ]
        quantized.sort(key=lambda e: e.time_us)
        self._events: List[InputEvent] = quantized

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[InputEvent]:
        return iter(self._events)

    def __getitem__(self, i: int) -> InputEvent:
        return self._events[i]

    @property
    def duration_us(self) -> float:
        """Time of the last event (0.0 for an empty trace)."""
        return self._events[-1].time_us if self._events else 0.0

    def of_kind(self, kind: str) -> List[InputEvent]:
        """All events of one kind, in order."""
        return [e for e in self._events if e.kind == kind]


@lru_cache(maxsize=64)
def web_trace(seed: int, duration_s: float = 190.0) -> InputTrace:
    """The Web workload's input trace (§4.2).

    Two page loads (the news article, then the table-heavy TN-56 report)
    with human-paced scrolling through each; reading pauses of a few
    seconds between scrolls.  Total activity ~190 s.

    Memoized per process: a sweep grid replays the same (seed, duration)
    trace once per policy × machine cell, and the trace is immutable —
    workload bodies only iterate it — so repeated cells in a worker reuse
    the synthesized events instead of rebuilding them.  (The same applies
    to :func:`chess_trace` and :func:`editor_trace`.)
    """
    rng = random.Random(seed)
    events: List[InputEvent] = []
    t = 1.5e6  # first page opened shortly after start

    def browse_page(t: float, n_scrolls: int, heavy: float) -> float:
        events.append(InputEvent(t, "page_load", magnitude=heavy))
        t += rng.uniform(2.0e6, 4.0e6)  # initial read of the top
        for _ in range(n_scrolls):
            events.append(
                InputEvent(t, "scroll", magnitude=heavy * rng.uniform(0.7, 1.4))
            )
            t += rng.uniform(1.2e6, 4.5e6)  # reading pause
        return t

    t = browse_page(t, n_scrolls=16, heavy=1.0)  # news article
    t += rng.uniform(2.0e6, 4.0e6)
    events.append(InputEvent(t, "back", magnitude=0.6))
    t += rng.uniform(1.5e6, 3.0e6)
    # TN-56 has many tables: heavier rendering per scroll.
    t = browse_page(t, n_scrolls=22, heavy=1.6)

    horizon = duration_s * 1e6 - 2.0e6
    return InputTrace(e for e in events if e.time_us < horizon)


@lru_cache(maxsize=64)
def chess_trace(
    seed: int, duration_s: float = 218.0
) -> InputTrace:
    """The Chess workload's input trace: a full game vs a novice.

    Alternating user moves (preceded by think time) and engine replies.
    The engine's search time is attached to each ``engine_move`` event as
    its magnitude, in seconds: Crafty "plays for specific periods of time"
    in the mid-game and quickly from book early on.
    """
    rng = random.Random(seed)
    events: List[InputEvent] = []
    t = 2.0e6
    move_no = 0
    horizon = duration_s * 1e6 - 3.0e6
    while t < horizon:
        move_no += 1
        # The novice thinks; utilization stays low except GUI polling.
        think = rng.uniform(2.5e6, 9.0e6) if move_no > 3 else rng.uniform(1.0e6, 2.5e6)
        t += think
        if t >= horizon:
            break
        events.append(InputEvent(t, "user_move", magnitude=1.0))
        t += rng.uniform(0.15e6, 0.4e6)  # GUI animates the move
        # Book moves early (fast), timed search later (several seconds).
        if move_no <= 3:
            search_s = rng.uniform(0.1, 0.4)
        else:
            search_s = rng.uniform(2.0, 6.5)
        events.append(InputEvent(t, "engine_move", magnitude=search_s))
        t += search_s * 1e6 + rng.uniform(0.1e6, 0.3e6)
    return InputTrace(events)


@lru_cache(maxsize=64)
def editor_trace(seed: int, duration_s: float = 70.0) -> InputTrace:
    """The TalkingEditor input trace (§4.2).

    The user navigates the file dialogue to a short text file, has it
    spoken aloud, then opens a second, longer file and has it read too.
    ``speak`` events carry the text length (seconds of speech) as
    magnitude.
    """
    rng = random.Random(seed)
    events: List[InputEvent] = []
    t = 1.0e6
    # File dialogue interaction: clicks and directory moves, bursty UI.
    for _ in range(5):
        events.append(InputEvent(t, "dialog", magnitude=rng.uniform(0.6, 1.4)))
        t += rng.uniform(0.5e6, 1.6e6)
    events.append(InputEvent(t, "open_file", magnitude=1.0))
    t += rng.uniform(0.8e6, 1.5e6)
    events.append(InputEvent(t, "speak", magnitude=rng.uniform(14.0, 18.0)))
    t += 20.0e6  # while it speaks, the user listens
    for _ in range(3):
        events.append(InputEvent(t, "dialog", magnitude=rng.uniform(0.6, 1.4)))
        t += rng.uniform(0.5e6, 1.4e6)
    events.append(InputEvent(t, "open_file", magnitude=1.3))
    t += rng.uniform(0.8e6, 1.5e6)
    events.append(InputEvent(t, "speak", magnitude=rng.uniform(24.0, 30.0)))
    horizon = duration_s * 1e6 - 1.0e6
    return InputTrace(e for e in events if e.time_us < horizon)
