"""Kaffe JVM behaviours shared by the Java workloads (§4.2, §5.1).

The paper's Web, Chess and TalkingEditor applications run on the Kaffe JVM,
whose GRX graphics library "uses a polling I/O model to check for new input
every 30 milliseconds"; when the application is otherwise idle this polling
"takes about a millisecond to complete" and injects the constant background
periodicity that destabilizes the clock-setting algorithms (§3, §5.3).

Kaffe also JITs: the first execution of new code costs an extra burst,
modelled as warm-up work attached to the first occurrence of each UI
action.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from repro.kernel.process import Action, Compute, ProcessContext, Sleep
from repro.kernel.scheduler import Kernel
from repro.workloads.base import FULL_SPEED, JAVA_PROFILE, jitter_factor


@dataclass(frozen=True)
class JavaConfig:
    """JVM background behaviour parameters.

    Attributes:
        poll_period_us: the GRX input polling period (30 ms).
        poll_cost_us_at_206: CPU time one poll takes at full speed (~1 ms).
        duration_s: how long the JVM lives.
        jit_unit_us_at_206: warm-up burst per unit of JIT magnitude.
    """

    poll_period_us: float = 30_000.0
    poll_cost_us_at_206: float = 1_000.0
    duration_s: float = 60.0
    jit_unit_us_at_206: float = 120_000.0


def jvm_poller_body(cfg: JavaConfig, seed: int):
    """The 30 ms GRX input-polling loop, running for the workload's life."""

    def body(ctx: ProcessContext) -> Generator[Action, None, None]:
        rng = random.Random(seed ^ 0x3A7A)
        end = ctx.now_us + cfg.duration_s * 1e6
        poll_work = JAVA_PROFILE.work_for_duration(cfg.poll_cost_us_at_206, FULL_SPEED)
        while ctx.now_us < end:
            yield Compute(poll_work.scaled(jitter_factor(rng, 0.05)))
            yield Sleep(cfg.poll_period_us)

    return body


def spawn_jvm_poller(
    kernel: Kernel, seed: int, cfg: JavaConfig = JavaConfig()
) -> None:
    """Add the JVM polling process to a kernel."""
    kernel.spawn("kaffe_poll", jvm_poller_body(cfg, seed))


def jit_warmup_work(cfg: JavaConfig, magnitude: float):
    """JIT warm-up work for a first-time UI action of the given magnitude."""
    return JAVA_PROFILE.work_for_duration(
        cfg.jit_unit_us_at_206 * magnitude, FULL_SPEED
    )
