"""The Web workload: the IceWeb Java browser (§4.2).

The user opens a stored www.news.com article, scrolls through the full
text, returns to the root menu, then opens an HTML version of WRL technical
report TN-56 ("which has many tables describing characteristics of power
usage in Itsy components") and scrolls through that.  190 seconds of
activity.

The browser is a Java application: it carries the Kaffe 30 ms polling loop
and pays JIT warm-up on first-time actions.  Each input event triggers a
render burst (layout + paint); page loads are large bursts, scrolls
moderate ones, with the TN-56 tables costing more per scroll.  Every event
emits a ``ui_response`` application event whose deadline encodes the
responsiveness budget the user tolerates (chosen so a constant 132.7 MHz
meets every deadline, per §5.1, while very low speeds visibly lag).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from repro.kernel.process import Action, Compute, ProcessContext, SleepUntil
from repro.kernel.scheduler import Kernel
from repro.workloads.base import FULL_SPEED, JAVA_PROFILE, Workload, jitter_factor
from repro.workloads.events import InputTrace, web_trace
from repro.workloads.java import JavaConfig, jit_warmup_work, spawn_jvm_poller


@dataclass(frozen=True)
class WebConfig:
    """Parameters of the Web browsing workload.

    Attributes:
        duration_s: trace length (190 s in the paper).
        page_load_us_at_206: render burst for a page load at full speed.
        scroll_us_at_206: render burst per scroll at full speed.
        response_budget_us: lateness budget for a ``ui_response`` --
            how much longer than the burst itself the user will tolerate.
    """

    duration_s: float = 190.0
    page_load_us_at_206: float = 650_000.0
    scroll_us_at_206: float = 110_000.0
    back_us_at_206: float = 60_000.0
    response_budget_us: float = 450_000.0
    burst_jitter_sigma: float = 0.08

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        for field_name in (
            "page_load_us_at_206",
            "scroll_us_at_206",
            "back_us_at_206",
            "response_budget_us",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")


_EVENT_COST_FIELD = {
    "page_load": "page_load_us_at_206",
    "scroll": "scroll_us_at_206",
    "back": "back_us_at_206",
}


def browser_body(cfg: WebConfig, trace: InputTrace, seed: int):
    """The IceWeb browser process: sleep until each input, then render."""

    def body(ctx: ProcessContext) -> Generator[Action, None, None]:
        rng = random.Random(seed ^ 0x1CE3)
        java_cfg = JavaConfig(duration_s=cfg.duration_s)
        seen_kinds = set()
        for event in trace:
            if ctx.now_us < event.time_us:
                yield SleepUntil(event.time_us)
            base_us = getattr(cfg, _EVENT_COST_FIELD[event.kind])
            burst_us = base_us * event.magnitude * jitter_factor(
                rng, cfg.burst_jitter_sigma
            )
            work = JAVA_PROFILE.work_for_duration(burst_us, FULL_SPEED)
            if event.kind not in seen_kinds:
                seen_kinds.add(event.kind)
                work = work + jit_warmup_work(java_cfg, event.magnitude)
            yield Compute(work)
            # The user notices if the render lags the input by more than
            # the burst-plus-budget: the budget already covers the time the
            # work takes at the slowest acceptable speed.
            deadline = event.time_us + burst_us + cfg.response_budget_us
            ctx.emit("ui_response", deadline_us=deadline, payload=event.time_us)

    return body


def setup_web(
    kernel: Kernel,
    seed: int,
    cfg: WebConfig = WebConfig(),
) -> None:
    """Spawn the browser and the JVM poller into ``kernel``."""
    trace = web_trace(seed, cfg.duration_s)
    kernel.spawn("iceweb", browser_body(cfg, trace, seed))
    spawn_jvm_poller(kernel, seed, JavaConfig(duration_s=cfg.duration_s))


def web_workload(cfg: WebConfig = WebConfig()) -> Workload:
    """The Web workload descriptor."""
    return Workload(
        name="Web",
        duration_s=cfg.duration_s,
        tolerance_us=0.0,  # the budget is already inside the deadlines
        setup=lambda kernel, seed: setup_web(kernel, seed, cfg),
    )
