"""Synthetic workloads for controlled policy analysis (§5.3).

The paper's stability analysis uses idealized signals: quanta that are
either fully busy or fully idle.  These processes reproduce them inside the
kernel simulator:

- :func:`rectangle_wave_body`: busy for ``busy_quanta`` quanta, idle for
  ``idle_quanta``, repeating.  With 9 busy / 1 idle this is "an idealized
  version of our MPEG player running roughly at an optimal speed"
  (Figure 7's input signal).
- :func:`step_body`: fully busy for a period, then fully idle -- the
  Table 1 scenario (15 active quanta, then idle) and Figure 5's
  going-to-idle / speeding-up transitions.

Both are built on busy-*waiting* (time-based, not work-based) so their
utilization pattern is identical at every clock step: the analysis isolates
the policy dynamics from the work/frequency feedback.  For the feedback
case (demand in cycles, so slowing the clock raises utilization) use
:func:`cycle_demand_body`.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hw.work import Work
from repro.kernel.process import (
    Action,
    Compute,
    ProcessContext,
    SleepUntil,
    SpinUntil,
)


def rectangle_wave_body(
    busy_quanta: int,
    idle_quanta: int,
    duration_us: float,
    quantum_us: float = 10_000.0,
):
    """A periodic rectangle-wave load: busy b quanta, idle i quanta.

    Args:
        busy_quanta: fully-busy quanta per period.
        idle_quanta: fully-idle quanta per period.
        duration_us: how long to keep the pattern up.
        quantum_us: the kernel's quantum (the wave is quantum-aligned).
    """
    if busy_quanta <= 0 or idle_quanta < 0:
        raise ValueError("need at least one busy quantum and idle >= 0")

    def body(ctx: ProcessContext) -> Generator[Action, None, None]:
        start = ctx.now_us
        end = start + duration_us
        t = start
        while t < end:
            busy_end = min(t + busy_quanta * quantum_us, end)
            yield SpinUntil(busy_end)
            t = busy_end + idle_quanta * quantum_us
            if idle_quanta and busy_end < end:
                yield SleepUntil(min(t, end))

    return body


def step_body(
    busy_us: float,
    idle_us: float,
    start_delay_us: float = 0.0,
    repeat: int = 1,
):
    """A step load: (optionally delayed) busy period, then idle, repeated.

    With ``repeat=1`` this is the Table 1 scenario: one active stretch
    followed by idleness.
    """
    if busy_us <= 0 or idle_us < 0 or start_delay_us < 0:
        raise ValueError("durations must be positive (idle/delay >= 0)")

    def body(ctx: ProcessContext) -> Generator[Action, None, None]:
        if start_delay_us > 0:
            yield SleepUntil(ctx.now_us + start_delay_us)
        for _ in range(repeat):
            yield SpinUntil(ctx.now_us + busy_us)
            if idle_us > 0:
                yield SleepUntil(ctx.now_us + idle_us)

    return body


def cycle_demand_body(
    work_per_period: Work,
    period_us: float,
    duration_us: float,
    deadline_kind: Optional[str] = "job",
):
    """A periodic *cycle* demand: fixed work each period, then sleep.

    Unlike the busy-wait signals above, the work is expressed in cycles, so
    a slower clock raises utilization and can overrun the period -- the
    feedback loop real policies face.  Each completed job emits an event
    with the period end as its deadline.
    """
    if period_us <= 0:
        raise ValueError("period must be positive")

    def body(ctx: ProcessContext) -> Generator[Action, None, None]:
        start = ctx.now_us
        n = 0
        while start + n * period_us < start + duration_us - 1e-9:
            yield Compute(work_per_period)
            deadline = start + (n + 1) * period_us
            if deadline_kind is not None:
                ctx.emit(deadline_kind, deadline_us=deadline, payload=float(n))
            if ctx.now_us < deadline:
                yield SleepUntil(deadline)
            n += 1

    return body
