"""Trace-driven replay workloads: the methodology the paper criticizes.

All prior work (Weiser, Govil, Pering) evaluated policies against
*recorded traces*.  The paper argues this misses the feedback a real
implementation faces -- so this module makes the comparison runnable by
replaying a recorded run's per-quantum activity in two modes:

- ``TIME`` replay: each quantum's recorded busy time is busy-*waited*
  verbatim.  The load pattern is identical at every clock step, exactly
  like a trace that records "the CPU was busy 80 % of this interval":
  slowing the clock costs nothing visible, so policies look better than
  they are.
- ``WORK`` replay: each quantum's busy time is converted into the *work*
  the original machine completed in it (cycles at the recorded clock
  step); the replayed process must actually finish that work before the
  next quantum's arrives, with a deadline per recorded quantum.  Slowing
  the clock now stretches execution and spills work -- the feedback a
  live system has.

The gap between the two modes under the same policy quantifies how much
trace-driven evaluation overstates a policy (see
``benchmarks/bench_trace_replay.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

from repro.hw.work import Work
from repro.kernel.process import Action, Compute, ProcessContext, SleepUntil, SpinUntil
from repro.kernel.scheduler import Kernel, KernelRun
from repro.traces.schema import QuantumRecord
from repro.workloads.base import Workload


class ReplayMode(enum.Enum):
    """How recorded activity is reinterpreted during replay."""

    TIME = "time"
    WORK = "work"


@dataclass(frozen=True)
class RecordedQuantum:
    """One quantum of recorded activity.

    Attributes:
        busy_us: recorded non-idle time.
        mhz: the clock frequency the recording ran at.
        quantum_us: quantum length of the recording.
    """

    busy_us: float
    mhz: float
    quantum_us: float

    @property
    def work_cycles(self) -> float:
        """Cycles the original machine spent in this quantum."""
        return self.busy_us * self.mhz


def record_from_run(run: KernelRun) -> List[RecordedQuantum]:
    """Extract a replayable trace from a kernel run."""
    return [
        RecordedQuantum(busy_us=q.busy_us, mhz=q.mhz, quantum_us=q.quantum_us)
        for q in run.quanta
    ]


def record_from_quanta(quanta: Sequence[QuantumRecord]) -> List[RecordedQuantum]:
    """Extract a replayable trace from raw quantum records (e.g. CSV)."""
    return [
        RecordedQuantum(busy_us=q.busy_us, mhz=q.mhz, quantum_us=q.quantum_us)
        for q in quanta
    ]


def replay_body(
    trace: Sequence[RecordedQuantum], mode: ReplayMode, name: str = "replay"
):
    """A process body replaying a recorded trace in the given mode.

    TIME mode busy-waits each quantum's recorded busy time inside its
    original quantum window (idle-filling the rest).  WORK mode issues the
    recorded cycles as :class:`~repro.hw.work.Work` with the end of the
    recorded quantum as the deadline; unfinished work delays subsequent
    quanta, as on a real machine.  Both emit a ``replay_quantum`` event
    per recorded quantum with that deadline.  ``name`` labels the trace in
    error messages.

    Raises:
        ValueError: for an empty trace or a non-positive quantum length,
            naming the trace and the offending quantum.
    """
    if not trace:
        raise ValueError(
            f"empty replay trace {name!r}: nothing to replay (0 quanta)"
        )
    for i, rec in enumerate(trace):
        if rec.quantum_us <= 0:
            raise ValueError(
                f"replay trace {name!r}: quantum {i} of {len(trace)} has "
                f"non-positive length {rec.quantum_us!r} us"
            )

    # precomputed window ends relative to the start time
    offsets = []
    total = 0.0
    for rec in trace:
        total += rec.quantum_us
        offsets.append(total)

    def body(ctx: ProcessContext) -> Generator[Action, None, None]:
        start = ctx.now_us
        for i, rec in enumerate(trace):
            window_end = start + offsets[i]
            if mode is ReplayMode.TIME:
                if ctx.now_us < window_end - rec.quantum_us:
                    yield SleepUntil(window_end - rec.quantum_us)
                if rec.busy_us > 0:
                    yield SpinUntil(min(ctx.now_us + rec.busy_us, window_end))
                ctx.emit("replay_quantum", deadline_us=window_end, payload=float(i))
                if ctx.now_us < window_end:
                    yield SleepUntil(window_end)
            else:
                if rec.busy_us > 0:
                    yield Compute(Work(cpu_cycles=rec.work_cycles))
                ctx.emit("replay_quantum", deadline_us=window_end, payload=float(i))
                if ctx.now_us < window_end:
                    yield SleepUntil(window_end)

    return body


def replay_workload(
    trace: Sequence[RecordedQuantum],
    mode: ReplayMode,
    name: str = "replay",
    tolerance_us: float = 10_000.0,
) -> Workload:
    """A workload descriptor replaying ``trace`` in ``mode``.

    The tolerance default (one quantum) forgives the tick-granularity
    wake-ups that both modes share.
    """
    duration_s = sum(q.quantum_us for q in trace) / 1e6

    def setup(kernel: Kernel, seed: int) -> None:
        del seed  # replay is deterministic by construction
        kernel.spawn(name, replay_body(trace, mode, name=name))

    return Workload(
        name=f"{name}-{mode.value}",
        duration_s=duration_s,
        tolerance_us=tolerance_us,
        setup=setup,
    )


@dataclass(frozen=True)
class ReplayConfig:
    """A replay workload named entirely by value: the sweep-axis form.

    Where :func:`replay_workload` takes live :class:`RecordedQuantum`
    objects, this config carries the trace as plain number tuples, so it
    pickles to worker processes and digests stably into sweep cache keys
    — corpus entries (:mod:`repro.traces.corpus`) convert to it to run as
    :class:`~repro.measure.parallel.SweepCell` workloads under the
    registered name ``"replay"``.

    Attributes:
        quanta: the trace as ``(busy_us, mhz, quantum_us)`` triples.
        mode: replay mode value, ``"time"`` or ``"work"``.
        name: trace label (part of the workload name, not of replay
            semantics).
        tolerance_us: per-deadline perceptibility tolerance.
        duration_s: accepted for uniformity with other workload configs
            (CLI ``--duration``); replay length comes from the trace, so
            any value given here must be None.
    """

    quanta: Tuple[Tuple[float, float, float], ...] = ()
    mode: str = "work"
    name: str = "replay"
    tolerance_us: float = 10_000.0
    duration_s: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "quanta", tuple(tuple(q) for q in self.quanta)
        )
        ReplayMode(self.mode)  # unknown modes raise here
        if self.duration_s is not None:
            raise ValueError(
                "replay duration comes from the trace; --duration does not apply"
            )

    def trace(self) -> List[RecordedQuantum]:
        """The live trace this config names."""
        return [
            RecordedQuantum(busy_us=b, mhz=m, quantum_us=q)
            for b, m, q in self.quanta
        ]

    @classmethod
    def from_trace(
        cls,
        trace: Sequence[RecordedQuantum],
        mode: ReplayMode = ReplayMode.WORK,
        name: str = "replay",
        tolerance_us: float = 10_000.0,
    ) -> "ReplayConfig":
        """Value-form of a live trace."""
        return cls(
            quanta=tuple(
                (rec.busy_us, rec.mhz, rec.quantum_us) for rec in trace
            ),
            mode=mode.value,
            name=name,
            tolerance_us=tolerance_us,
        )


def replay_config_workload(config: Optional[ReplayConfig] = None) -> Workload:
    """Builder for the registered ``"replay"`` sweep workload."""
    cfg = config if config is not None else ReplayConfig()
    return replay_workload(
        cfg.trace(),
        ReplayMode(cfg.mode),
        name=cfg.name,
        tolerance_us=cfg.tolerance_us,
    )
