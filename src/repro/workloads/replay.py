"""Trace-driven replay workloads: the methodology the paper criticizes.

All prior work (Weiser, Govil, Pering) evaluated policies against
*recorded traces*.  The paper argues this misses the feedback a real
implementation faces -- so this module makes the comparison runnable by
replaying a recorded run's per-quantum activity in two modes:

- ``TIME`` replay: each quantum's recorded busy time is busy-*waited*
  verbatim.  The load pattern is identical at every clock step, exactly
  like a trace that records "the CPU was busy 80 % of this interval":
  slowing the clock costs nothing visible, so policies look better than
  they are.
- ``WORK`` replay: each quantum's busy time is converted into the *work*
  the original machine completed in it (cycles at the recorded clock
  step); the replayed process must actually finish that work before the
  next quantum's arrives, with a deadline per recorded quantum.  Slowing
  the clock now stretches execution and spills work -- the feedback a
  live system has.

The gap between the two modes under the same policy quantifies how much
trace-driven evaluation overstates a policy (see
``benchmarks/bench_trace_replay.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Generator, List, Sequence

from repro.hw.work import Work
from repro.kernel.process import Action, Compute, ProcessContext, SleepUntil, SpinUntil
from repro.kernel.scheduler import Kernel, KernelRun
from repro.traces.schema import QuantumRecord
from repro.workloads.base import Workload


class ReplayMode(enum.Enum):
    """How recorded activity is reinterpreted during replay."""

    TIME = "time"
    WORK = "work"


@dataclass(frozen=True)
class RecordedQuantum:
    """One quantum of recorded activity.

    Attributes:
        busy_us: recorded non-idle time.
        mhz: the clock frequency the recording ran at.
        quantum_us: quantum length of the recording.
    """

    busy_us: float
    mhz: float
    quantum_us: float

    @property
    def work_cycles(self) -> float:
        """Cycles the original machine spent in this quantum."""
        return self.busy_us * self.mhz


def record_from_run(run: KernelRun) -> List[RecordedQuantum]:
    """Extract a replayable trace from a kernel run."""
    return [
        RecordedQuantum(busy_us=q.busy_us, mhz=q.mhz, quantum_us=q.quantum_us)
        for q in run.quanta
    ]


def record_from_quanta(quanta: Sequence[QuantumRecord]) -> List[RecordedQuantum]:
    """Extract a replayable trace from raw quantum records (e.g. CSV)."""
    return [
        RecordedQuantum(busy_us=q.busy_us, mhz=q.mhz, quantum_us=q.quantum_us)
        for q in quanta
    ]


def replay_body(trace: Sequence[RecordedQuantum], mode: ReplayMode):
    """A process body replaying a recorded trace in the given mode.

    TIME mode busy-waits each quantum's recorded busy time inside its
    original quantum window (idle-filling the rest).  WORK mode issues the
    recorded cycles as :class:`~repro.hw.work.Work` with the end of the
    recorded quantum as the deadline; unfinished work delays subsequent
    quanta, as on a real machine.  Both emit a ``replay_quantum`` event
    per recorded quantum with that deadline.
    """
    if not trace:
        raise ValueError("empty replay trace")

    # precomputed window ends relative to the start time
    offsets = []
    total = 0.0
    for rec in trace:
        total += rec.quantum_us
        offsets.append(total)

    def body(ctx: ProcessContext) -> Generator[Action, None, None]:
        start = ctx.now_us
        for i, rec in enumerate(trace):
            window_end = start + offsets[i]
            if mode is ReplayMode.TIME:
                if ctx.now_us < window_end - rec.quantum_us:
                    yield SleepUntil(window_end - rec.quantum_us)
                if rec.busy_us > 0:
                    yield SpinUntil(min(ctx.now_us + rec.busy_us, window_end))
                ctx.emit("replay_quantum", deadline_us=window_end, payload=float(i))
                if ctx.now_us < window_end:
                    yield SleepUntil(window_end)
            else:
                if rec.busy_us > 0:
                    yield Compute(Work(cpu_cycles=rec.work_cycles))
                ctx.emit("replay_quantum", deadline_us=window_end, payload=float(i))
                if ctx.now_us < window_end:
                    yield SleepUntil(window_end)

    return body


def replay_workload(
    trace: Sequence[RecordedQuantum],
    mode: ReplayMode,
    name: str = "replay",
    tolerance_us: float = 10_000.0,
) -> Workload:
    """A workload descriptor replaying ``trace`` in ``mode``.

    The tolerance default (one quantum) forgives the tick-granularity
    wake-ups that both modes share.
    """
    duration_s = sum(q.quantum_us for q in trace) / 1e6

    def setup(kernel: Kernel, seed: int) -> None:
        del seed  # replay is deterministic by construction
        kernel.spawn(name, replay_body(trace, mode))

    return Workload(
        name=f"{name}-{mode.value}",
        duration_s=duration_s,
        tolerance_us=tolerance_us,
        setup=setup,
    )
