"""Generative workload fuzzing: seeded scenario space for the policy catalog.

The paper's finding is that interval-policy quality is driven by the
*shape* of utilization, yet the evaluation sweeps only four hand-written
workloads.  This module generates whole families of scenarios from a
seed: periodic jobs with deadlines, demand ramps, bursty job sizes, busy
spins and idle storms, each knob a field of :class:`FuzzSpec`.  A spec is
a frozen dataclass, so it is a first-class, cache-keyed sweep axis
exactly like :class:`~repro.hw.machines.MachineSpec` — register name
``"fuzz"`` in :data:`~repro.measure.parallel.WORKLOAD_BUILDERS`.

Determinism is the point: the whole schedule (job sizes, periods,
deadlines, phase types) is precomputed from ``spec.seed`` mixed with the
run seed, using integer arithmetic that is stable across processes and
platforms.  The same spec + seed always produces the same workload,
bitwise — which is what makes the fuzzer usable as the repo's
differential-testing engine (:mod:`repro.measure.differential`): any
fuzzed run must be bitwise-identical between the reference kernel and
the fast-path core, and its energy decomposition must close.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

from repro.hw.work import Work
from repro.kernel.process import Action, Compute, ProcessContext, SleepUntil, SpinUntil
from repro.kernel.scheduler import Kernel
from repro.workloads.base import (
    CHESS_PROFILE,
    FULL_SPEED,
    JAVA_PROFILE,
    MPEG_FRAME_PROFILE,
    SYNTH_PROFILE,
    Workload,
    WorkProfile,
)

#: Work compositions a fuzzed phase can draw from: media-decode,
#: pointer-chasing, core-bound DSP, and hash-probing mixes — the span of
#: memory-boundedness the calibrated workloads cover.
FUZZ_PROFILES: Tuple[WorkProfile, ...] = (
    MPEG_FRAME_PROFILE,
    JAVA_PROFILE,
    SYNTH_PROFILE,
    CHESS_PROFILE,
)

#: Large odd multipliers decorrelate the spec seed, the run seed and the
#: per-process streams without tuple-hashing (whose value is not stable
#: across PYTHONHASHSEED settings).
_SPEC_SEED_MIX = 1_000_003
_RUN_SEED_MIX = 7_919
_PROC_SEED_MIX = 104_729


@dataclass(frozen=True)
class FuzzSpec:
    """One point of fuzzed-scenario space, named entirely by value.

    Attributes:
        seed: generator seed; the scenario is a pure function of it (and
            of the run seed it is mixed with).
        duration_s: trace length in seconds.
        phases: number of demand regimes the run is divided into.
        burstiness: 0..1, dispersion of per-job work around the phase's
            utilization target (0 = perfectly regular jobs).
        periodicity_ms: mean job period in milliseconds; actual phase
            periods vary around it.
        ramp: 0..1, strength of intra-phase demand ramps (0 = flat
            demand within each phase).
        idle_storm: 0..1, probability that a phase is an idle storm
            (no demand at all — the regime battery life depends on).
        deadline_tightness: 0..1, how close each job's deadline sits to
            its full-speed execution time (0 = deadline at the period
            end, 1 = only the fastest clock step can be on time).
        processes: concurrently scheduled fuzzed processes.
        tolerance_us: per-deadline perceptibility tolerance.
    """

    seed: int = 0
    duration_s: float = 1.5
    phases: int = 4
    burstiness: float = 0.5
    periodicity_ms: float = 40.0
    ramp: float = 0.5
    idle_storm: float = 0.25
    deadline_tightness: float = 0.6
    processes: int = 1
    tolerance_us: float = 10_000.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.phases < 1:
            raise ValueError("phases must be at least 1")
        if self.processes < 1:
            raise ValueError("processes must be at least 1")
        if self.periodicity_ms <= 0:
            raise ValueError("periodicity_ms must be positive")
        if self.tolerance_us < 0:
            raise ValueError("tolerance_us must be non-negative")
        for knob in ("burstiness", "ramp", "idle_storm", "deadline_tightness"):
            value = getattr(self, knob)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{knob} must be in [0, 1], got {value}")


#: One step of a fuzz plan, relative to the process start time:
#: ``("work", cpu_cycles, mem_refs, cache_refs, deadline_rel, job_index)``
#: computes a job and emits its deadline;
#: ``("spin", end_rel)`` busy-waits and ``("sleep", end_rel)`` idles
#: until the given offset.
PlanOp = Tuple


def _plan(spec: FuzzSpec, rng: random.Random) -> List[PlanOp]:
    """Precompute one process's deterministic schedule of plan ops."""
    total_us = spec.duration_s * 1e6
    phase_us = total_us / spec.phases
    ops: List[PlanOp] = []
    job_index = 0
    for phase in range(spec.phases):
        phase_start = phase * phase_us
        phase_end = phase_start + phase_us
        if rng.random() < spec.idle_storm:
            ops.append(("sleep", phase_end))
            continue
        profile = FUZZ_PROFILES[rng.randrange(len(FUZZ_PROFILES))]
        period_us = spec.periodicity_ms * 1000.0 * (0.5 + rng.random())
        period_us = min(period_us, phase_us)
        jobs = max(1, int(phase_us // period_us))
        # Demand regime: utilization starts at u0 and ramps toward u1.
        u0 = 0.1 + 0.8 * rng.random()
        u1 = u0 + spec.ramp * (2.0 * rng.random() - 1.0)
        u1 = min(0.95, max(0.05, u1))
        # A strongly bursty phase may be time-based (busy spins): those
        # stress TIME-replay-like feedback, where demand is wall-clock.
        spin_phase = rng.random() < 0.5 * spec.burstiness
        for j in range(jobs):
            release = phase_start + j * period_us
            frac = j / (jobs - 1) if jobs > 1 else 0.0
            target_u = u0 + (u1 - u0) * frac
            jitter = 1.0 + spec.burstiness * (2.0 * rng.random() - 1.0) * 0.6
            busy_us = target_u * period_us * max(0.05, jitter)
            busy_us = min(busy_us, period_us)
            if spin_phase:
                ops.append(("spin", release + busy_us))
            else:
                work = profile.work_for_duration(busy_us, FULL_SPEED)
                # Deadline between the full-speed finish time and the
                # period end, pulled toward the former by tightness.
                slack = (period_us - busy_us) * (1.0 - spec.deadline_tightness)
                deadline_rel = release + busy_us + slack
                ops.append(
                    (
                        "work",
                        work.cpu_cycles,
                        work.mem_refs,
                        work.cache_refs,
                        deadline_rel,
                        job_index,
                    )
                )
                job_index += 1
            next_release = release + period_us
            if next_release < phase_end:
                ops.append(("sleep", next_release))
        ops.append(("sleep", phase_end))
    return ops


def _fuzz_body(plan: Sequence[PlanOp]):
    """A process body executing a precomputed plan.

    Offsets are relative to the process start time, so the nominal
    schedule is fixed: an overloaded process slips past its releases
    (the sleeps become no-ops) and misses deadlines — the feedback a
    live system has.
    """

    def body(ctx: ProcessContext) -> Generator[Action, None, None]:
        start = ctx.now_us
        for op in plan:
            kind = op[0]
            if kind == "work":
                _, cpu_cycles, mem_refs, cache_refs, deadline_rel, idx = op
                yield Compute(
                    Work(
                        cpu_cycles=cpu_cycles,
                        mem_refs=mem_refs,
                        cache_refs=cache_refs,
                    )
                )
                ctx.emit(
                    "fuzz_job",
                    deadline_us=start + deadline_rel,
                    payload=float(idx),
                )
            elif kind == "spin":
                target = start + op[1]
                if ctx.now_us < target:
                    yield SpinUntil(target)
            else:  # sleep
                target = start + op[1]
                if ctx.now_us < target:
                    yield SleepUntil(target)

    return body


def fuzz_plan(spec: FuzzSpec, seed: int = 0) -> List[List[PlanOp]]:
    """The deterministic per-process plans for ``spec`` at run ``seed``.

    Exposed for tests and shrinking diagnostics; :func:`fuzz_workload`
    consumes the same plans.
    """
    plans: List[List[PlanOp]] = []
    for proc in range(spec.processes):
        rng = random.Random(
            spec.seed * _SPEC_SEED_MIX
            + seed * _RUN_SEED_MIX
            + proc * _PROC_SEED_MIX
        )
        plans.append(_plan(spec, rng))
    return plans


def fuzz_workload(spec: Optional[FuzzSpec] = None) -> Workload:
    """A workload descriptor generating the fuzzed scenario of ``spec``."""
    cfg = spec if spec is not None else FuzzSpec()

    def setup(kernel: Kernel, seed: int) -> None:
        for proc, plan in enumerate(fuzz_plan(cfg, seed)):
            kernel.spawn(f"fuzz-{cfg.seed}-p{proc}", _fuzz_body(plan))

    return Workload(
        name=f"fuzz-{cfg.seed}",
        duration_s=cfg.duration_s,
        tolerance_us=cfg.tolerance_us,
        setup=setup,
    )


def fuzz_family(
    count: int,
    master_seed: int = 0,
    duration_s: float = 1.0,
) -> List[FuzzSpec]:
    """``count`` diverse specs derived deterministically from one seed.

    The family sweeps the knob space (burstiness, periodicity, ramps,
    idle storms, deadline tightness, process count) so a fixed-seed CI
    job covers a representative slice of scenario space; the CI
    fuzz-smoke job and ``repro fuzz`` both build their batches here.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    rng = random.Random(master_seed * _SPEC_SEED_MIX + 1)
    specs = []
    for i in range(count):
        specs.append(
            FuzzSpec(
                seed=master_seed * 1_000_000 + i,
                duration_s=duration_s,
                phases=rng.randint(2, 6),
                burstiness=round(rng.random(), 3),
                periodicity_ms=round(10.0 + 90.0 * rng.random(), 3),
                ramp=round(rng.random(), 3),
                idle_storm=round(0.4 * rng.random(), 3),
                deadline_tightness=round(0.15 + 0.7 * rng.random(), 3),
                processes=1 + (i % 2),
            )
        )
    return specs
