"""The Chess workload: a Java GUI driving Crafty (§4.2).

A 218 s trace covers a complete game of Crafty v16.10 against a novice
player.  Crafty runs as a separate (non-Java) process; it "uses a play book
for opening moves and then plays for specific periods of time in later
stages of the games and plays the best move available when time expires."

Demand structure (Figure 4c): utilization is low while the user thinks or
moves (only the GUI and the Kaffe poll loop run) and reaches 100 % while
Crafty plans.  Because the search is *time-bounded* rather than
work-bounded, slowing the clock does not lengthen the search -- it only
reduces the number of positions examined -- so the deadline-bearing events
are the GUI responses (move animation, board redraw), not the search
itself.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from repro.kernel.process import Action, Compute, ProcessContext, SleepUntil
from repro.kernel.scheduler import Kernel
from repro.workloads.base import (
    CHESS_PROFILE,
    FULL_SPEED,
    JAVA_PROFILE,
    Workload,
    jitter_factor,
)
from repro.workloads.events import InputTrace, chess_trace
from repro.workloads.java import JavaConfig, jit_warmup_work, spawn_jvm_poller


@dataclass(frozen=True)
class ChessConfig:
    """Parameters of the Chess workload.

    Attributes:
        duration_s: trace length (218 s in the paper).
        gui_burst_us_at_206: GUI work per move (animation, board redraw).
        search_slice_us_at_206: Crafty's search is a loop of short
            evaluation slices until its time budget expires; this is the
            slice size at full speed.
        response_budget_us: lateness budget for GUI responses.
    """

    duration_s: float = 218.0
    gui_burst_us_at_206: float = 90_000.0
    search_slice_us_at_206: float = 5_000.0
    response_budget_us: float = 350_000.0
    burst_jitter_sigma: float = 0.08

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.gui_burst_us_at_206 < 0 or self.response_budget_us < 0:
            raise ValueError("burst and budget must be non-negative")
        if self.search_slice_us_at_206 <= 0:
            raise ValueError("search slice must be positive")


def chess_gui_body(cfg: ChessConfig, trace: InputTrace, seed: int):
    """The Java GUI: animate user moves and display engine replies."""

    def body(ctx: ProcessContext) -> Generator[Action, None, None]:
        rng = random.Random(seed ^ 0xC4E5)
        java_cfg = JavaConfig(duration_s=cfg.duration_s)
        first = True
        for event in trace:
            if event.kind not in ("user_move", "engine_move"):
                continue
            # The GUI reacts to a user move immediately; an engine move is
            # displayed once the search delivers it (event time + budget).
            anchor = event.time_us
            if event.kind == "engine_move":
                anchor += event.magnitude * 1e6
            if ctx.now_us < anchor:
                yield SleepUntil(anchor)
            burst_us = cfg.gui_burst_us_at_206 * jitter_factor(
                rng, cfg.burst_jitter_sigma
            )
            work = JAVA_PROFILE.work_for_duration(burst_us, FULL_SPEED)
            if first:
                first = False
                work = work + jit_warmup_work(java_cfg, 1.0)
            yield Compute(work)
            deadline = anchor + burst_us + cfg.response_budget_us
            ctx.emit("ui_response", deadline_us=deadline, payload=anchor)

    return body


def crafty_body(cfg: ChessConfig, trace: InputTrace, seed: int):
    """The Crafty engine: time-bounded search after each user move.

    The search loop issues short evaluation slices until the wall-clock
    budget attached to the ``engine_move`` event expires -- at a slower
    clock the same wall time simply covers fewer positions.
    """

    def body(ctx: ProcessContext) -> Generator[Action, None, None]:
        rng = random.Random(seed ^ 0xCF47)
        slice_work = CHESS_PROFILE.work_for_duration(
            cfg.search_slice_us_at_206, FULL_SPEED
        )
        for event in trace.of_kind("engine_move"):
            if ctx.now_us < event.time_us:
                yield SleepUntil(event.time_us)
            search_end = event.time_us + event.magnitude * 1e6
            while ctx.now_us < search_end:
                yield Compute(slice_work.scaled(jitter_factor(rng, 0.1)))
            ctx.emit("engine_reply", deadline_us=None, payload=event.time_us)

    return body


def setup_chess(
    kernel: Kernel,
    seed: int,
    cfg: ChessConfig = ChessConfig(),
) -> None:
    """Spawn the GUI, the engine and the JVM poller into ``kernel``."""
    trace = chess_trace(seed, cfg.duration_s)
    kernel.spawn("chess_gui", chess_gui_body(cfg, trace, seed))
    kernel.spawn("crafty", crafty_body(cfg, trace, seed))
    spawn_jvm_poller(kernel, seed, JavaConfig(duration_s=cfg.duration_s))


def chess_workload(cfg: ChessConfig = ChessConfig()) -> Workload:
    """The Chess workload descriptor."""
    return Workload(
        name="Chess",
        duration_s=cfg.duration_s,
        tolerance_us=0.0,
        setup=lambda kernel, seed: setup_chess(kernel, seed, cfg),
    )
