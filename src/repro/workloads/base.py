"""Workload building blocks.

The paper's applications are real binaries (mpeg_play, IceWeb, Crafty,
mpedit + DECtalk, the Kaffe JVM); we rebuild them as scripted processes
whose *demand structure* matches what the paper reports: the same
periodicities, burst shapes, and memory-intensity, with small seeded
run-to-run jitter (the paper's repeated measurements had 95 % confidence
intervals under 0.7 % of the mean).

Work composition matters because of the frequency-dependent memory costs
(Table 3): the more memory-bound a burst is, the less it speeds up with the
clock.  Each application gets a :class:`WorkProfile` -- a fixed mix of core
cycles, individual-word references and cache-line fills -- and bursts are
scalar multiples of that mix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol

from repro.hw.clocksteps import ClockStep, SA1100_CLOCK_TABLE
from repro.hw.memory import SA1100_MEMORY_TIMINGS, MemoryTimings
from repro.hw.work import Work
from repro.kernel.scheduler import Kernel


@dataclass(frozen=True)
class WorkProfile:
    """A work composition: one *unit* of application activity.

    Attributes:
        cpu_cycles: core cycles per unit.
        mem_refs: individual-word memory references per unit.
        cache_refs: cache-line fills per unit.
    """

    cpu_cycles: float
    mem_refs: float
    cache_refs: float

    def work(self, scale: float = 1.0) -> Work:
        """A :class:`Work` of ``scale`` units of this profile."""
        cpu_cycles = self.cpu_cycles * scale
        mem_refs = self.mem_refs * scale
        cache_refs = self.cache_refs * scale
        if cpu_cycles < 0 or mem_refs < 0 or cache_refs < 0:
            # Let Work's own validation raise the usual error.
            return Work(
                cpu_cycles=cpu_cycles, mem_refs=mem_refs, cache_refs=cache_refs
            )
        # Work is frozen; building it through the instance dict skips
        # three object.__setattr__ calls plus the (just re-checked)
        # non-negativity validation.  Every workload burst comes through
        # here -- ~1500 times per 60 s run.
        w = Work.__new__(Work)
        w.__dict__.update(
            cpu_cycles=cpu_cycles, mem_refs=mem_refs, cache_refs=cache_refs
        )
        return w

    def unit_duration_us(
        self,
        step: ClockStep,
        timings: MemoryTimings = SA1100_MEMORY_TIMINGS,
    ) -> float:
        """Wall-clock duration of one unit at ``step``."""
        return self.work(1.0).duration_us(step, timings)

    def work_for_duration(
        self,
        duration_us: float,
        step: ClockStep,
        timings: MemoryTimings = SA1100_MEMORY_TIMINGS,
    ) -> Work:
        """Work sized to run for ``duration_us`` at ``step``.

        Used to express bursts as "x ms of computation at 206.4 MHz"; at
        other clock steps the same work takes correspondingly longer
        (sub-linearly, through the memory model).
        """
        if duration_us < 0:
            raise ValueError("duration must be non-negative")
        unit = self.unit_duration_us(step, timings)
        return self.work(duration_us / unit)


#: MPEG decode: media-decode mix, substantially memory-bound (framebuffer
#: and reference-frame traffic).  One unit ~= one mean video frame; see
#: :mod:`repro.workloads.mpeg` for the calibration.
MPEG_FRAME_PROFILE = WorkProfile(cpu_cycles=5.05e6, mem_refs=7.8e4, cache_refs=4.5e4)

#: Audio decode/copy: small, moderately memory-bound.
AUDIO_CHUNK_PROFILE = WorkProfile(cpu_cycles=1.6e5, mem_refs=4.0e3, cache_refs=2.0e3)

#: Java/JIT execution (browser, editor UI, chess GUI): pointer-chasing and
#: code-generation heavy, the most memory-bound mix.
JAVA_PROFILE = WorkProfile(cpu_cycles=1.0e6, mem_refs=2.4e4, cache_refs=1.4e4)

#: Speech synthesis (DECtalk): signal-processing loops, mostly core-bound.
SYNTH_PROFILE = WorkProfile(cpu_cycles=1.0e6, mem_refs=8.0e3, cache_refs=3.0e3)

#: Chess search (Crafty): hash-table probing, moderately memory-bound.
CHESS_PROFILE = WorkProfile(cpu_cycles=1.0e6, mem_refs=1.5e4, cache_refs=8.0e3)


def jitter_factor(rng: random.Random, sigma: float = 0.02) -> float:
    """A small multiplicative jitter around 1.0, clipped to +-4 sigma.

    Applied to burst sizes so repeated runs differ slightly, reproducing
    the paper's sub-0.7 % run-to-run confidence intervals.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    f = rng.gauss(1.0, sigma)
    return max(1.0 - 4.0 * sigma, min(1.0 + 4.0 * sigma, f))


class WorkloadSetup(Protocol):
    """Spawns a workload's processes into a kernel."""

    def __call__(self, kernel: Kernel, seed: int) -> None: ...


@dataclass(frozen=True)
class Workload:
    """A named, runnable workload.

    Attributes:
        name: workload name as used in the paper ("MPEG", "Web", ...).
        duration_s: trace length (MPEG 60 s, Web 190 s, Chess 218 s,
            TalkingEditor 70 s).
        tolerance_us: per-event lateness below which the user cannot
            perceive a difference (the paper's "on time if delaying its
            completion did not adversely affect the user").
        setup: function spawning the processes into a kernel.
    """

    name: str
    duration_s: float
    tolerance_us: float
    setup: WorkloadSetup

    @property
    def duration_us(self) -> float:
        """Trace length in microseconds."""
        return self.duration_s * 1e6


#: Convenience: the fastest SA-1100 step, used to express burst durations
#: as "time at full speed".
FULL_SPEED = SA1100_CLOCK_TABLE.max_step


def combine_workloads(name: str, *workloads: "Workload") -> "Workload":
    """Run several workloads concurrently on one machine.

    The paper stresses that the Itsy runs "a complete, functional
    multitasking operating system"; this helper builds the multitasking
    scenario: every component workload's processes share the kernel, the
    combined duration is the longest component's, and the lateness
    tolerance is the strictest (smallest) one, so a miss anywhere counts.

    Component seeds are decorrelated (seed, seed+7919, ...) so two copies
    of the same workload do not move in lockstep.

    Raises:
        ValueError: with no component workloads.
    """
    if not workloads:
        raise ValueError("need at least one component workload")

    def setup(kernel, seed: int) -> None:
        for i, workload in enumerate(workloads):
            workload.setup(kernel, seed + 7919 * i)

    return Workload(
        name=name,
        duration_s=max(w.duration_s for w in workloads),
        tolerance_us=min(w.tolerance_us for w in workloads),
        setup=setup,
    )
