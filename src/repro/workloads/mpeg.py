"""The MPEG workload: 320x200 video at 15 frames/s with WAV audio (§4.2).

Structure, per the paper:

- the player decodes and renders 15 frames per second (66.67 ms per frame,
  just under 7 scheduling quanta); a 14 s clip loops for 60 s of playback;
- audio is a WAV stream handed to a separate forked player process; the
  two stay synchronized only through their common 15 frame/s pacing;
- per-frame computation varies widely: I-frames (key frames) cost much
  more than P-frames and "do not necessarily occur at predictable
  intervals";
- the player's own scheduling heuristic (§5.3): when a frame finishes
  more than 12 ms before it is needed the player *sleeps*; closer than
  that it *spins*, so once the clock scales near the optimal value the
  apparent work increases -- "the kernel has no method of determining
  that this is wasteful work."

Calibration (with :data:`~repro.workloads.base.MPEG_FRAME_PROFILE` and
Table 3 memory costs): the mean frame needs ~60.5 ms of CPU at 132.7 MHz
and ~47 ms at 206.4 MHz, so with the audio process the workload runs at
~93 % utilization at 132.7 MHz (the slowest feasible step, as measured in
the paper) and ~72 % at 206.4 MHz, while 118.0 MHz cannot keep up.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from repro.kernel.process import (
    Action,
    Compute,
    ProcessContext,
    SleepUntil,
    SpinUntil,
)
from repro.kernel.scheduler import Kernel
from repro.workloads.base import (
    AUDIO_CHUNK_PROFILE,
    MPEG_FRAME_PROFILE,
    Workload,
    jitter_factor,
)


@dataclass(frozen=True)
class MpegConfig:
    """Parameters of the MPEG playback workload.

    Attributes:
        fps: frame rate (15 in the paper; 30 fps models the shorter-deadline
            input discussed in §5.3 -- pair it with a smaller
            ``frame_work_scale`` for a clip encoded at lower cost per
            frame, or keep 1.0 for an infeasible stream).
        frame_work_scale: per-frame work relative to the paper's clip
            (input-dependent demand, §5.3: "an application may have
            different deadline requirements depending on its input").
        duration_s: total playback time (the 14 s clip looped to 60 s).
        gop: frames per group-of-pictures (one I-frame per ``gop`` frames).
        i_scale / p_scale: work of I- and P-frames relative to the mean
            frame; chosen so a GOP averages ~1.0.
        i_jitter_prob: probability that an extra I-frame replaces a P-frame
            (scene cut), making key frames unpredictable.
        spin_threshold_us: the player's spin-vs-sleep boundary (12 ms).
        frame_jitter_sigma: per-frame multiplicative work jitter.
        run_scale_sigma: per-run multiplicative work factor (content and
            background-daemon differences between runs); sized so repeated
            measurements show the paper's run-to-run spread -- 95 %
            confidence intervals a few tenths of a percent of the mean,
            "less than 0.7 %" (§4.1).
        spin_enabled: ablation switch for the spin loop.
        elastic: Pering-style player (§3 contrast): frames whose display
            time has already passed when decoding would start are dropped
            (emitting ``frame_drop``) instead of accumulating lateness.
            The paper deliberately assumes inelastic constraints; the
            elastic player exists to reproduce the energy-vs-frame-rate
            tradeoff its predecessors reported.
        sync_tolerance_us: audio/video desynchronization the user notices
            (80 ms: the ITU-style acceptability bound; transient I-frame
            lateness at 132.7 MHz stays under it, the unbounded drift at
            118.0 MHz blows through it).
    """

    fps: float = 15.0
    frame_work_scale: float = 1.0
    duration_s: float = 60.0
    gop: int = 8
    i_scale: float = 1.30
    p_scale: float = 0.957
    i_jitter_prob: float = 0.04
    spin_threshold_us: float = 12_000.0
    frame_jitter_sigma: float = 0.05
    run_scale_sigma: float = 0.0045
    spin_enabled: bool = True
    elastic: bool = False
    sync_tolerance_us: float = 80_000.0
    audio_chunk_ms: float = 100.0

    def __post_init__(self) -> None:
        if self.fps <= 0 or self.duration_s <= 0:
            raise ValueError("fps and duration must be positive")
        if self.gop < 1:
            raise ValueError("gop must be at least 1")
        if self.i_scale <= 0 or self.p_scale <= 0 or self.frame_work_scale <= 0:
            raise ValueError("frame work scales must be positive")
        if not 0.0 <= self.i_jitter_prob <= 1.0:
            raise ValueError("i_jitter_prob must be a probability")
        if self.spin_threshold_us < 0 or self.sync_tolerance_us < 0:
            raise ValueError("thresholds must be non-negative")
        if self.audio_chunk_ms <= 0:
            raise ValueError("audio chunk must be positive")

    @property
    def frame_interval_us(self) -> float:
        """Time between successive frame display deadlines."""
        return 1e6 / self.fps

    @property
    def n_frames(self) -> int:
        """Total frames in the playback."""
        return int(self.duration_s * self.fps)


def mpeg_player_body(cfg: MpegConfig, seed: int):
    """The video player process: decode, then sleep or spin to the deadline."""

    def body(ctx: ProcessContext) -> Generator[Action, None, None]:
        rng = random.Random(seed)
        session = jitter_factor(rng, cfg.run_scale_sigma)
        start = ctx.now_us
        interval = cfg.frame_interval_us
        for n in range(cfg.n_frames):
            deadline = start + (n + 1) * interval
            if cfg.elastic and ctx.now_us >= deadline:
                # Pering-style elasticity: the frame is already stale;
                # drop it rather than decode late.
                ctx.emit("frame_drop", deadline_us=None, payload=float(n))
                continue
            is_key = (n % cfg.gop == 0) or (rng.random() < cfg.i_jitter_prob)
            scale = (cfg.i_scale if is_key else cfg.p_scale) * session
            scale *= cfg.frame_work_scale
            scale *= jitter_factor(rng, cfg.frame_jitter_sigma)
            yield Compute(MPEG_FRAME_PROFILE.work(scale))
            ctx.emit("frame", deadline_us=deadline, payload=float(n))
            slack = deadline - ctx.now_us
            if slack > cfg.spin_threshold_us or (slack > 0 and not cfg.spin_enabled):
                yield SleepUntil(deadline)
            elif slack > 0:
                yield SpinUntil(deadline)
            # If the frame is late there is no wait: decoding of the next
            # frame starts immediately so synchronization can recover.

    return body


def audio_player_body(cfg: MpegConfig, seed: int):
    """The forked audio process: decode one WAV chunk per period.

    Each chunk must be delivered before the previous chunk finishes
    playing; chunk ``n`` therefore carries the deadline ``start + (n+1) *
    chunk_period``.
    """

    def body(ctx: ProcessContext) -> Generator[Action, None, None]:
        rng = random.Random(seed ^ 0xA0D10)
        start = ctx.now_us
        period = cfg.audio_chunk_ms * 1000.0
        n_chunks = int(cfg.duration_s * 1e6 / period)
        # One chunk is chunk_ms of audio; the profile unit is calibrated to
        # ~2.3 ms of CPU per 100 ms chunk at 132.7 MHz.
        unit_per_chunk = cfg.audio_chunk_ms / 100.0
        for n in range(n_chunks):
            scale = unit_per_chunk * jitter_factor(rng, 0.03)
            yield Compute(AUDIO_CHUNK_PROFILE.work(scale))
            deadline = start + (n + 1) * period
            ctx.emit("audio_chunk", deadline_us=deadline, payload=float(n))
            if ctx.now_us < deadline:
                yield SleepUntil(deadline)

    return body


def setup_mpeg(kernel: Kernel, seed: int, cfg: MpegConfig = MpegConfig()) -> None:
    """Spawn the MPEG player and its audio process into ``kernel``."""
    kernel.spawn("mpeg_play", mpeg_player_body(cfg, seed))
    kernel.spawn("wav_play", audio_player_body(cfg, seed))


def mpeg_workload(cfg: MpegConfig = MpegConfig()) -> Workload:
    """The MPEG workload descriptor."""
    return Workload(
        name="MPEG",
        duration_s=cfg.duration_s,
        tolerance_us=cfg.sync_tolerance_us,
        setup=lambda kernel, seed: setup_mpeg(kernel, seed, cfg),
    )
