"""The paper's workloads (§4.2), rebuilt as scripted processes.

Four applications drive the evaluation: MPEG video+audio playback, the
IceWeb Java browser, a Java GUI around the Crafty chess engine, and the
TalkingEditor (mpedit + DECtalk speech synthesis).  Interactive workloads
replay timestamped input-event traces with millisecond accuracy
(:mod:`repro.workloads.events`); MPEG is untraced, as in the paper.

:mod:`repro.workloads.synthetic` adds the idealized signals of the
stability analysis (§5.3), and :mod:`repro.workloads.fuzz` generates
seeded scenario families beyond the hand-written four.
"""

from repro.workloads.base import Workload, WorkProfile, combine_workloads
from repro.workloads.chess import ChessConfig, chess_workload, setup_chess
from repro.workloads.editor import EditorConfig, editor_workload, setup_editor
from repro.workloads.events import InputEvent, InputTrace
from repro.workloads.fuzz import FuzzSpec, fuzz_family, fuzz_workload
from repro.workloads.java import JavaConfig, spawn_jvm_poller
from repro.workloads.mpeg import MpegConfig, mpeg_workload, setup_mpeg
from repro.workloads.replay import (
    RecordedQuantum,
    ReplayConfig,
    ReplayMode,
    record_from_run,
    replay_config_workload,
    replay_workload,
)
from repro.workloads.web import WebConfig, setup_web, web_workload


def all_workloads() -> "list[Workload]":
    """The paper's four workloads with default configurations."""
    return [mpeg_workload(), web_workload(), chess_workload(), editor_workload()]


__all__ = [
    "ChessConfig",
    "EditorConfig",
    "FuzzSpec",
    "InputEvent",
    "InputTrace",
    "JavaConfig",
    "MpegConfig",
    "RecordedQuantum",
    "ReplayConfig",
    "ReplayMode",
    "WebConfig",
    "Workload",
    "WorkProfile",
    "all_workloads",
    "chess_workload",
    "combine_workloads",
    "editor_workload",
    "fuzz_family",
    "fuzz_workload",
    "mpeg_workload",
    "record_from_run",
    "replay_config_workload",
    "replay_workload",
    "setup_chess",
    "setup_editor",
    "setup_mpeg",
    "setup_web",
    "spawn_jvm_poller",
    "web_workload",
]
