"""The TalkingEditor workload: mpedit + DECtalk speech synthesis (§4.2).

The input trace records the user navigating the file dialogue, opening a
short text file, having it spoken aloud, then opening and speaking a second
file; 70 seconds in total.  The paper's Figure 3d/4d shows the structure:
bursty behaviour first ("dragging images, JIT'ing applications and opening
files"), then "long bursts of computation as the text is actually
synthesized and sent to the OSS-compatible sound driver," then further
cycles in the sound driver.

Processes:

- ``mpedit``: the Java editor, handling dialogue/open events (bursty UI);
- ``dectalk``: the synthesis engine (separate process).  Text is spoken in
  chunks; chunk *n+1* must be synthesized before chunk *n* finishes
  playing or the speech gaps audibly.  Synthesis runs faster than real
  time at high clock rates (~0.35 s of CPU at 206.4 MHz per second of
  speech), so a constant 132.7 MHz still keeps up while very low speeds
  starve the audio;
- ``oss_audio``: the sound driver, small periodic work while speech plays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, List, Tuple

from repro.kernel.process import Action, Compute, ProcessContext, SleepUntil
from repro.kernel.scheduler import Kernel
from repro.workloads.base import (
    AUDIO_CHUNK_PROFILE,
    FULL_SPEED,
    JAVA_PROFILE,
    SYNTH_PROFILE,
    Workload,
    jitter_factor,
)
from repro.workloads.events import InputTrace, editor_trace
from repro.workloads.java import JavaConfig, jit_warmup_work, spawn_jvm_poller


@dataclass(frozen=True)
class EditorConfig:
    """Parameters of the TalkingEditor workload.

    Attributes:
        duration_s: trace length (70 s in the paper).
        ui_burst_us_at_206: editor UI work per dialogue event.
        open_burst_us_at_206: work to open and lay out a file.
        synth_cpu_per_speech_s_at_206: seconds of CPU (at 206.4 MHz) needed
            to synthesize one second of speech (~0.35: faster than real
            time, but not by a huge margin).
        chunk_speech_s: seconds of speech per synthesis chunk.
        gap_tolerance_us: audible speech-gap threshold.
        response_budget_us: lateness budget for UI responses.
    """

    duration_s: float = 70.0
    ui_burst_us_at_206: float = 180_000.0
    open_burst_us_at_206: float = 350_000.0
    synth_cpu_per_speech_s_at_206: float = 0.35
    chunk_speech_s: float = 2.0
    gap_tolerance_us: float = 30_000.0
    response_budget_us: float = 400_000.0
    burst_jitter_sigma: float = 0.08

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.chunk_speech_s <= 0:
            raise ValueError("chunk length must be positive")
        if self.synth_cpu_per_speech_s_at_206 <= 0:
            raise ValueError("synthesis rate must be positive")
        if self.gap_tolerance_us < 0 or self.response_budget_us < 0:
            raise ValueError("tolerances must be non-negative")


def editor_ui_body(cfg: EditorConfig, trace: InputTrace, seed: int):
    """The mpedit Java UI: dialogue navigation and file opening."""

    def body(ctx: ProcessContext) -> Generator[Action, None, None]:
        rng = random.Random(seed ^ 0xED17)
        java_cfg = JavaConfig(duration_s=cfg.duration_s)
        seen_kinds = set()
        for event in trace:
            if event.kind not in ("dialog", "open_file"):
                continue
            if ctx.now_us < event.time_us:
                yield SleepUntil(event.time_us)
            base = (
                cfg.open_burst_us_at_206
                if event.kind == "open_file"
                else cfg.ui_burst_us_at_206
            )
            burst_us = base * event.magnitude * jitter_factor(
                rng, cfg.burst_jitter_sigma
            )
            work = JAVA_PROFILE.work_for_duration(burst_us, FULL_SPEED)
            if event.kind not in seen_kinds:
                seen_kinds.add(event.kind)
                work = work + jit_warmup_work(java_cfg, event.magnitude)
            yield Compute(work)
            deadline = event.time_us + burst_us + cfg.response_budget_us
            ctx.emit("ui_response", deadline_us=deadline, payload=event.time_us)

    return body


def _speech_chunks(cfg: EditorConfig, trace: InputTrace) -> List[Tuple[float, float]]:
    """Flatten speak events into (request_time_us, speech_seconds) chunks."""
    chunks: List[Tuple[float, float]] = []
    for event in trace.of_kind("speak"):
        remaining = event.magnitude
        t = event.time_us
        while remaining > 1e-9:
            chunk = min(cfg.chunk_speech_s, remaining)
            chunks.append((t, chunk))
            remaining -= chunk
    return chunks


def dectalk_body(cfg: EditorConfig, trace: InputTrace, seed: int):
    """The DECtalk synthesis engine.

    Chunk *n* may start once it has been requested and chunk *n-1* is
    synthesized; it must be ready by the time the already-queued audio runs
    out (its ``speech_chunk`` deadline).  Playback of a chunk begins when
    both the synthesizer finishes it and the previous chunk has drained.
    """

    def body(ctx: ProcessContext) -> Generator[Action, None, None]:
        rng = random.Random(seed ^ 0xDEC7)
        playback_end = None  # when queued audio runs out
        for request_us, speech_s in _speech_chunks(cfg, trace):
            if ctx.now_us < request_us:
                yield SleepUntil(request_us)
                playback_end = None  # a new utterance starts fresh
            cpu_s = speech_s * cfg.synth_cpu_per_speech_s_at_206
            work = SYNTH_PROFILE.work_for_duration(
                cpu_s * 1e6 * jitter_factor(rng, cfg.burst_jitter_sigma),
                FULL_SPEED,
            )
            yield Compute(work)
            deadline = playback_end  # None for the first chunk of a speak
            ctx.emit("speech_chunk", deadline_us=deadline, payload=speech_s)
            play_start = (
                ctx.now_us if playback_end is None else max(ctx.now_us, playback_end)
            )
            playback_end = play_start + speech_s * 1e6

    return body


def oss_audio_body(cfg: EditorConfig, trace: InputTrace, seed: int):
    """The OSS sound driver: small periodic work while speech plays.

    The driver's schedule is approximated from the nominal (full-speed)
    synthesis timeline; it is background load, not a deadline source.
    """

    def body(ctx: ProcessContext) -> Generator[Action, None, None]:
        rng = random.Random(seed ^ 0x0551)
        period_us = 100_000.0
        for event in trace.of_kind("speak"):
            start = event.time_us + cfg.synth_cpu_per_speech_s_at_206 * 1e6
            if ctx.now_us < start:
                yield SleepUntil(start)
            end = start + event.magnitude * 1e6
            while ctx.now_us < end:
                yield Compute(
                    AUDIO_CHUNK_PROFILE.work(jitter_factor(rng, 0.05))
                )
                yield SleepUntil(ctx.now_us + period_us)

    return body


def setup_editor(
    kernel: Kernel,
    seed: int,
    cfg: EditorConfig = EditorConfig(),
) -> None:
    """Spawn the editor UI, DECtalk, the sound driver and the JVM poller."""
    trace = editor_trace(seed, cfg.duration_s)
    kernel.spawn("mpedit", editor_ui_body(cfg, trace, seed))
    kernel.spawn("dectalk", dectalk_body(cfg, trace, seed))
    kernel.spawn("oss_audio", oss_audio_body(cfg, trace, seed))
    spawn_jvm_poller(kernel, seed, JavaConfig(duration_s=cfg.duration_s))


def editor_workload(cfg: EditorConfig = EditorConfig()) -> Workload:
    """The TalkingEditor workload descriptor."""
    return Workload(
        name="TalkingEditor",
        duration_s=cfg.duration_s,
        tolerance_us=cfg.gap_tolerance_us,
        setup=lambda kernel, seed: setup_editor(kernel, seed, cfg),
    )
