"""A replayable, content-addressed on-disk trace corpus.

Corpus entries are recorded (or fuzzed) runs persisted as JSON, addressed
by a SHA-256 digest of their replay-relevant content — the same
content-addressing discipline as the sweep
:class:`~repro.measure.parallel.ResultCache`, so an entry's filename *is*
its identity: renaming a trace or annotating its provenance never moves
it, while touching a single recorded quantum does.  That stability is
what makes corpus entries usable as permanent regression fixtures: the
differential fuzz harness (:mod:`repro.measure.differential`) saves every
shrunk counterexample here, and ``tests/corpus/`` replays whatever the
directory holds through both kernel cores on every run.

Entries round-trip losslessly (floats serialize via ``repr``) and convert
to :class:`~repro.workloads.replay.ReplayConfig`, so a loaded trace is a
first-class, cache-keyed sweep workload.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Tuple, Union

from repro.kernel.scheduler import KernelRun
from repro.workloads.base import Workload
from repro.workloads.replay import (
    RecordedQuantum,
    ReplayConfig,
    ReplayMode,
    record_from_run,
    replay_workload,
)

PathLike = Union[str, Path]

#: Bump when the entry format changes; old entries are then rejected with
#: a clear error instead of being misread.
CORPUS_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CorpusEntry:
    """One replayable trace in the corpus.

    Attributes:
        name: human-readable label (not part of the digest).
        mode: replay mode value, ``"time"`` or ``"work"``.
        tolerance_us: per-deadline perceptibility tolerance.
        quanta: the trace as ``(busy_us, mhz, quantum_us)`` triples.
        provenance: free-form ``(key, value)`` string pairs describing
            where the trace came from (policy, machine, fuzz spec, ...);
            metadata only, not part of the digest.
    """

    name: str
    mode: str = "work"
    tolerance_us: float = 10_000.0
    quanta: Tuple[Tuple[float, float, float], ...] = ()
    provenance: Tuple[Tuple[str, str], ...] = field(default=())

    def __post_init__(self) -> None:
        ReplayMode(self.mode)  # unknown modes raise here
        object.__setattr__(
            self, "quanta", tuple(tuple(q) for q in self.quanta)
        )
        object.__setattr__(
            self, "provenance", tuple(tuple(p) for p in self.provenance)
        )
        if not self.quanta:
            raise ValueError(f"corpus entry {self.name!r} has no quanta")
        for i, (busy_us, _mhz, quantum_us) in enumerate(self.quanta):
            if quantum_us <= 0:
                raise ValueError(
                    f"corpus entry {self.name!r}: quantum {i} has "
                    f"non-positive length {quantum_us!r} us"
                )
            if busy_us < 0 or busy_us > quantum_us + 1e-6:
                raise ValueError(
                    f"corpus entry {self.name!r}: quantum {i} busy time "
                    f"{busy_us!r} us outside [0, {quantum_us!r}] us"
                )

    def trace(self) -> List[RecordedQuantum]:
        """The live trace this entry holds."""
        return [
            RecordedQuantum(busy_us=b, mhz=m, quantum_us=q)
            for b, m, q in self.quanta
        ]

    def workload(self) -> Workload:
        """A runnable replay workload of this entry."""
        return replay_workload(
            self.trace(),
            ReplayMode(self.mode),
            name=self.name,
            tolerance_us=self.tolerance_us,
        )

    def replay_config(self) -> ReplayConfig:
        """The sweep-axis (cache-keyed) form of this entry."""
        return ReplayConfig(
            quanta=self.quanta,
            mode=self.mode,
            name=self.name,
            tolerance_us=self.tolerance_us,
        )


def entry_digest(entry: CorpusEntry) -> str:
    """The content address of an entry.

    Covers exactly what determines replay behaviour — mode, tolerance and
    the quanta — so relabeling or annotating an entry keeps its identity,
    while any change to the recorded activity moves it.
    """
    payload = {
        "schema": CORPUS_SCHEMA_VERSION,
        "mode": entry.mode,
        "tolerance_us": entry.tolerance_us,
        "quanta": [list(q) for q in entry.quanta],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def entry_from_run(
    name: str,
    run: KernelRun,
    mode: ReplayMode = ReplayMode.WORK,
    tolerance_us: float = 10_000.0,
    provenance: Tuple[Tuple[str, str], ...] = (),
) -> CorpusEntry:
    """Capture a kernel run as a corpus entry."""
    return CorpusEntry(
        name=name,
        mode=mode.value,
        tolerance_us=tolerance_us,
        quanta=tuple(
            (rec.busy_us, rec.mhz, rec.quantum_us)
            for rec in record_from_run(run)
        ),
        provenance=provenance,
    )


def save_entry(root: PathLike, entry: CorpusEntry) -> Path:
    """Persist ``entry`` under its content address, atomically.

    Returns the entry's path (``<digest>.json`` under ``root``).  The
    write is temp-file + rename, like the sweep result cache, so
    concurrent writers never leave a torn entry.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    digest = entry_digest(entry)
    path = root / f"{digest}.json"
    payload = {
        "schema": CORPUS_SCHEMA_VERSION,
        "digest": digest,
        "name": entry.name,
        "mode": entry.mode,
        "tolerance_us": entry.tolerance_us,
        "provenance": [list(p) for p in entry.provenance],
        "quanta": [list(q) for q in entry.quanta],
    }
    fd, tmp = tempfile.mkstemp(dir=root, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_entry(path: PathLike) -> CorpusEntry:
    """Load and validate one corpus entry.

    Raises:
        ValueError: for an unknown schema version, a digest that does not
            match the content (tampered or corrupted entry), or invalid
            quanta — each naming the file.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: unreadable corpus entry: {exc}") from None
    if payload.get("schema") != CORPUS_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: corpus schema {payload.get('schema')!r} "
            f"(expected {CORPUS_SCHEMA_VERSION})"
        )
    try:
        entry = CorpusEntry(
            name=payload["name"],
            mode=payload["mode"],
            tolerance_us=payload["tolerance_us"],
            quanta=tuple(tuple(q) for q in payload["quanta"]),
            provenance=tuple(tuple(p) for p in payload.get("provenance", ())),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"{path}: malformed corpus entry: {exc}") from None
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None
    digest = entry_digest(entry)
    recorded = payload.get("digest")
    if recorded != digest:
        raise ValueError(
            f"{path}: digest mismatch (file says {recorded!r}, content is "
            f"{digest!r}); the entry was edited or corrupted"
        )
    return entry


def load_corpus(root: PathLike) -> List[Tuple[Path, CorpusEntry]]:
    """All entries under ``root``, sorted by filename (digest) for
    deterministic iteration order.  A missing directory is an empty
    corpus."""
    root = Path(root)
    if not root.is_dir():
        return []
    return [
        (path, load_entry(path)) for path in sorted(root.glob("*.json"))
    ]
