"""Trace persistence: CSV for series, JSON for run summaries.

The paper's host computer stored DAQ streams and kernel logs for offline
analysis; these helpers provide the same round-trip so benchmarks can save
the series behind each figure next to their printed output.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.kernel.scheduler import KernelRun
from repro.traces.schema import AppEvent, QuantumRecord

PathLike = Union[str, Path]


def save_quanta_csv(path: PathLike, quanta: Sequence[QuantumRecord]) -> None:
    """Write per-quantum records (the Figure 3 raw data) as CSV."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(
            ["end_us", "busy_us", "quantum_us", "step_index", "mhz", "volts"]
        )
        for q in quanta:
            writer.writerow(
                [q.end_us, q.busy_us, q.quantum_us, q.step_index, q.mhz, q.volts]
            )


def load_quanta_csv(path: PathLike) -> List[QuantumRecord]:
    """Read per-quantum records written by :func:`save_quanta_csv`.

    Raises:
        ValueError: if quantum end timestamps are not strictly
            increasing — a scrambled or hand-edited file would otherwise
            replay as a nonsense schedule.
    """
    out: List[QuantumRecord] = []
    with open(path, newline="") as f:
        for i, row in enumerate(csv.DictReader(f)):
            record = QuantumRecord(
                end_us=float(row["end_us"]),
                busy_us=float(row["busy_us"]),
                quantum_us=float(row["quantum_us"]),
                step_index=int(row["step_index"]),
                mhz=float(row["mhz"]),
                volts=float(row["volts"]),
            )
            if out and record.end_us <= out[-1].end_us:
                raise ValueError(
                    f"{path}: quantum timestamps must increase "
                    f"monotonically (row {i}: end_us {record.end_us!r} "
                    f"after {out[-1].end_us!r})"
                )
            out.append(record)
    return out


def save_events_csv(path: PathLike, events: Sequence[AppEvent]) -> None:
    """Write application events (deadline bookkeeping) as CSV."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["time_us", "pid", "kind", "deadline_us", "payload"])
        for e in events:
            writer.writerow(
                [
                    e.time_us,
                    e.pid,
                    e.kind,
                    "" if e.deadline_us is None else e.deadline_us,
                    "" if e.payload is None else e.payload,
                ]
            )


def load_events_csv(path: PathLike) -> List[AppEvent]:
    """Read application events written by :func:`save_events_csv`."""
    out: List[AppEvent] = []
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            out.append(
                AppEvent(
                    time_us=float(row["time_us"]),
                    pid=int(row["pid"]),
                    kind=row["kind"],
                    deadline_us=float(row["deadline_us"]) if row["deadline_us"] else None,
                    payload=float(row["payload"]) if row["payload"] else None,
                )
            )
    return out


def run_summary(run: KernelRun) -> Dict[str, float]:
    """A JSON-serializable summary of a kernel run."""
    return {
        "duration_us": run.duration_us,
        "energy_j": run.energy_joules(),
        "mean_power_w": run.mean_power_w(),
        "mean_utilization": run.mean_utilization(),
        "quanta": float(len(run.quanta)),
        "clock_changes": float(run.clock_changes),
        "clock_stall_us": run.clock_stall_us,
        "voltage_changes": float(run.voltage_changes),
        "events": float(len(run.events)),
    }


def save_run_summary(path: PathLike, run: KernelRun) -> None:
    """Write a run summary as JSON."""
    with open(path, "w") as f:
        json.dump(run_summary(run), f, indent=2, sort_keys=True)


def load_run_summary(path: PathLike) -> Dict[str, float]:
    """Read a run summary written by :func:`save_run_summary`."""
    with open(path) as f:
        return json.load(f)
