"""Trace records and persistence.

Everything the instrumented Itsy of the paper logs -- scheduling decisions,
per-quantum utilization, clock/voltage changes, application events, and the
power signal -- is represented here as plain record types, with CSV/JSON
round-trip in :mod:`repro.traces.io`.
"""

from repro.traces.schema import (
    AppEvent,
    FreqChange,
    PowerTimeline,
    QuantumRecord,
    SchedDecision,
    VoltChange,
)

__all__ = [
    "AppEvent",
    "FreqChange",
    "PowerTimeline",
    "QuantumRecord",
    "SchedDecision",
    "VoltChange",
]
