"""Trace records and persistence.

Everything the instrumented Itsy of the paper logs -- scheduling decisions,
per-quantum utilization, clock/voltage changes, application events, and the
power signal -- is represented here as plain record types, with CSV/JSON
round-trip in :mod:`repro.traces.io` and a content-addressed, replayable
trace corpus in :mod:`repro.traces.corpus`.
"""

from repro.traces.schema import (
    AppEvent,
    FreqChange,
    PowerTimeline,
    QuantumRecord,
    SchedDecision,
    VoltChange,
)

#: Corpus names re-exported lazily (PEP 562).  The cycle that forces
#: this: :mod:`repro.kernel.scheduler` imports :mod:`repro.traces.schema`,
#: whose import initializes this package — so when the import chain
#: *starts* at the kernel (as ``import repro.kernel.scheduler`` does),
#: this module runs while ``repro.kernel.scheduler`` is only partially
#: initialized.  An eager ``from repro.traces.corpus import ...`` here
#: would re-enter it: corpus needs the scheduler module at runtime, both
#: directly (:class:`~repro.kernel.scheduler.KernelRun`) and through
#: :mod:`repro.workloads.base` / :mod:`repro.workloads.replay` (which
#: import :class:`~repro.kernel.scheduler.Kernel` to drive replays), and
#: names like ``Kernel`` do not exist on the half-initialized module yet.
#: Deferring the corpus import to first attribute access breaks the
#: re-entry; the direct ``repro.traces.schema`` imports above are safe
#: because schema depends on nothing in kernel or workloads.
#: ``tests/traces/test_corpus.py`` pins the kernel-first import order.
_CORPUS_EXPORTS = (
    "CorpusEntry",
    "entry_digest",
    "entry_from_run",
    "load_corpus",
    "load_entry",
    "save_entry",
)


def __getattr__(name: str):
    if name in _CORPUS_EXPORTS:
        from repro.traces import corpus

        return getattr(corpus, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_CORPUS_EXPORTS))

__all__ = [
    "AppEvent",
    "CorpusEntry",
    "FreqChange",
    "PowerTimeline",
    "QuantumRecord",
    "SchedDecision",
    "VoltChange",
    "entry_digest",
    "entry_from_run",
    "load_corpus",
    "load_entry",
    "save_entry",
]
