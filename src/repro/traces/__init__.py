"""Trace records and persistence.

Everything the instrumented Itsy of the paper logs -- scheduling decisions,
per-quantum utilization, clock/voltage changes, application events, and the
power signal -- is represented here as plain record types, with CSV/JSON
round-trip in :mod:`repro.traces.io` and a content-addressed, replayable
trace corpus in :mod:`repro.traces.corpus`.
"""

from repro.traces.schema import (
    AppEvent,
    FreqChange,
    PowerTimeline,
    QuantumRecord,
    SchedDecision,
    VoltChange,
)

#: Corpus names re-exported lazily: :mod:`repro.traces.corpus` imports the
#: kernel (for :class:`~repro.kernel.scheduler.KernelRun`), and the kernel
#: imports :mod:`repro.traces.schema` — an eager import here would close
#: that cycle while the kernel package is still initializing.
_CORPUS_EXPORTS = (
    "CorpusEntry",
    "entry_digest",
    "entry_from_run",
    "load_corpus",
    "load_entry",
    "save_entry",
)


def __getattr__(name: str):
    if name in _CORPUS_EXPORTS:
        from repro.traces import corpus

        return getattr(corpus, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AppEvent",
    "CorpusEntry",
    "FreqChange",
    "PowerTimeline",
    "QuantumRecord",
    "SchedDecision",
    "VoltChange",
    "entry_digest",
    "entry_from_run",
    "load_corpus",
    "load_entry",
    "save_entry",
]
