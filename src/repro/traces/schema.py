"""Trace record types.

These mirror the instrumentation the paper added to the Itsy:

- the *process scheduler activity log* (kernel module, §4.3): process id,
  time with microsecond resolution, current clock rate;
- the per-quantum CPU-utilization accounting read by the clock-scaling
  module on every clock interrupt;
- the clock/voltage change history of the governor;
- application-level events (frame displayed, speech chunk played, input
  event handled) used to check the paper's "no visible behaviour change"
  criterion;
- the continuous power signal that the DAQ samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class SchedDecision:
    """One entry of the scheduler activity log (paper §4.3)."""

    time_us: float
    pid: int
    name: str
    mhz: float


@dataclass(frozen=True)
class QuantumRecord:
    """Utilization accounting for one 10 ms scheduling quantum.

    Attributes:
        end_us: time of the clock interrupt closing the quantum.
        busy_us: non-idle execution time within the quantum (includes
            spinning and the forced-scheduler overhead).
        quantum_us: nominal quantum length.
        step_index: clock-step index in effect during the quantum.
        mhz: clock frequency during the quantum.
        volts: core voltage during the quantum.
    """

    end_us: float
    busy_us: float
    quantum_us: float
    step_index: int
    mhz: float
    volts: float

    @property
    def utilization(self) -> float:
        """Busy fraction of the quantum, clamped to [0, 1]."""
        if self.quantum_us <= 0:
            return 0.0
        return max(0.0, min(1.0, self.busy_us / self.quantum_us))

    @property
    def start_us(self) -> float:
        """Start time of the quantum."""
        return self.end_us - self.quantum_us


@dataclass(frozen=True)
class FreqChange:
    """A clock-frequency change applied by the governor."""

    time_us: float
    from_mhz: float
    to_mhz: float
    stall_us: float


@dataclass(frozen=True)
class VoltChange:
    """A core-voltage change applied by the governor."""

    time_us: float
    from_volts: float
    to_volts: float
    settle_us: float


@dataclass(frozen=True)
class AppEvent:
    """An application-level event with deadline bookkeeping.

    Attributes:
        time_us: when the event actually completed.
        pid: process that produced it.
        kind: event name, e.g. ``"frame"``, ``"audio_chunk"``,
            ``"speech_chunk"``, ``"ui_response"``.
        deadline_us: when it should have completed (None if no deadline).
        payload: free-form tag (e.g. frame number).
    """

    time_us: float
    pid: int
    kind: str
    deadline_us: Optional[float] = None
    payload: Optional[float] = None

    @property
    def lateness_us(self) -> float:
        """How late the event was (0 if on time or no deadline)."""
        if self.deadline_us is None:
            return 0.0
        return max(0.0, self.time_us - self.deadline_us)

    @property
    def on_time(self) -> bool:
        """True if the event met its deadline (or had none)."""
        return self.lateness_us <= 0.0


class PowerTimeline:
    """The continuous power signal produced by the simulated machine.

    Stored as contiguous segments ``(start_us, end_us, watts)``.  Adjacent
    segments with equal power are merged, so typical 60 s runs stay small.
    The DAQ model (:mod:`repro.measure.daq`) samples this signal; the exact
    energy integral is also available directly for validation.
    """

    def __init__(self) -> None:
        self._segments: List[Tuple[float, float, float]] = []

    def record(self, start_us: float, end_us: float, watts: float) -> None:
        """Append a segment.  Zero-length segments are ignored.

        Raises:
            ValueError: if the segment overlaps or precedes recorded time,
                or has negative power.
        """
        if end_us <= start_us + 1e-9:
            return
        if watts < 0:
            raise ValueError("power cannot be negative")
        if self._segments:
            last_start, last_end, last_w = self._segments[-1]
            if start_us < last_end - 1e-6:
                raise ValueError(
                    f"segment at {start_us} overlaps previous ending {last_end}"
                )
            if abs(last_end - start_us) < 1e-6 and abs(last_w - watts) < 1e-12:
                self._segments[-1] = (last_start, end_us, last_w)
                return
        self._segments.append((start_us, end_us, watts))

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[Tuple[float, float, float]]:
        return iter(self._segments)

    @property
    def start_us(self) -> float:
        """Start of recorded time (0.0 if empty)."""
        return self._segments[0][0] if self._segments else 0.0

    @property
    def end_us(self) -> float:
        """End of recorded time (0.0 if empty)."""
        return self._segments[-1][1] if self._segments else 0.0

    def power_at(self, t_us: float) -> float:
        """Instantaneous power at time ``t_us``.

        Returns 0.0 outside the recorded range.  Gap-free recording is the
        normal case; queries inside an (unexpected) gap return the next
        segment's power only if ``t_us`` falls inside a segment.
        """
        lo, hi = 0, len(self._segments) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            start, end, watts = self._segments[mid]
            if t_us < start:
                hi = mid - 1
            elif t_us >= end:
                lo = mid + 1
            else:
                return watts
        return 0.0

    def sample(self, times_us: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`power_at` for an ascending array of times.

        Times outside the recorded range (or in gaps) sample as 0.0.
        """
        if not self._segments:
            return np.zeros(len(times_us))
        starts = np.array([s for s, _, _ in self._segments])
        ends = np.array([e for _, e, _ in self._segments])
        watts = np.array([w for _, _, w in self._segments])
        n = len(times_us)
        m = len(starts)
        if (
            n > m
            and np.all(starts[1:] >= starts[:-1])
            and np.all(times_us[1:] >= times_us[:-1])
        ):
            # Slice-fill: with both arrays ascending, bisect each segment
            # boundary into the time grid once (O(m log n)) instead of
            # bisecting every sample into the segment list (O(n log m)).
            # A sample still takes segment j exactly when j is the last
            # segment with start <= t and t < end_j, so the filled values
            # are identical to the per-sample lookup below.
            first = np.searchsorted(times_us, starts, side="left")
            cut = np.searchsorted(times_us, ends, side="left")
            nxt = np.empty_like(first)
            nxt[:-1] = first[1:]
            nxt[-1] = n
            hi = np.minimum(np.maximum(cut, first), nxt)
            vals = np.zeros(2 * m + 1)
            vals[1::2] = watts
            counts = np.empty(2 * m + 1, dtype=np.intp)
            counts[0] = first[0]
            counts[1::2] = hi - first
            counts[2::2] = nxt - hi
            return np.repeat(vals, counts)
        idx = np.searchsorted(starts, times_us, side="right") - 1
        idx_clipped = np.clip(idx, 0, len(starts) - 1)
        inside = (idx >= 0) & (times_us < ends[idx_clipped])
        return np.where(inside, watts[idx_clipped], 0.0)

    def energy_joules(
        self, start_us: Optional[float] = None, end_us: Optional[float] = None
    ) -> float:
        """Exact integral of power over [start_us, end_us], in joules."""
        if start_us is None:
            start_us = self.start_us
        if end_us is None:
            end_us = self.end_us
        total = 0.0
        segments = self._segments
        if segments and start_us <= segments[0][0] and end_us >= segments[-1][1]:
            # Whole-timeline integral (the common case): segments ascend,
            # so no clamping is needed -- the max/min below would return
            # the segment bounds unchanged.
            for seg_start, seg_end, watts in segments:
                total += watts * (seg_end - seg_start) * 1e-6
            return total
        for seg_start, seg_end, watts in segments:
            a = max(seg_start, start_us)
            b = min(seg_end, end_us)
            if b > a:
                total += watts * (b - a) * 1e-6
        return total

    def mean_power_w(
        self, start_us: Optional[float] = None, end_us: Optional[float] = None
    ) -> float:
        """Average power over the window, in watts."""
        if start_us is None:
            start_us = self.start_us
        if end_us is None:
            end_us = self.end_us
        duration_s = (end_us - start_us) * 1e-6
        if duration_s <= 0:
            return 0.0
        return self.energy_joules(start_us, end_us) / duration_s
