"""Battery models (paper §2.1).

Two non-ideal battery properties drive the paper's argument that running
slower can beat racing-to-idle even without voltage scaling:

1. **Rate-capacity effect**: "the amount of energy a battery can deliver
   (i.e., its capacity) is reduced with increased power consumption"
   (:mod:`repro.battery.model`).  The Itsy anecdote: two AAA alkalines
   last ~2 h with the system idle at a 206 MHz clock but ~18 h at 59 MHz --
   a 9x lifetime gain for a 3.5x clock reduction.
2. **Recovery / pulsed discharge** (Chiasserini & Rao): interspersing
   short high-power demands with long low-power periods lets the battery
   recover capacity (:mod:`repro.battery.pulsed`); the paper judges this
   less important for pocket computers than peak-demand minimization.

:mod:`repro.battery.lifetime` adds Martin's metric: choose the clock
frequency that maximizes *computations per battery lifetime*.
"""

from repro.battery.lifetime import computations_per_lifetime, lifetime_hours
from repro.battery.model import AAA_ALKALINE_PAIR, Battery, RateCapacityCurve
from repro.battery.pulsed import PulsedDischargeModel

__all__ = [
    "AAA_ALKALINE_PAIR",
    "Battery",
    "PulsedDischargeModel",
    "RateCapacityCurve",
    "computations_per_lifetime",
    "lifetime_hours",
]
