"""Battery-lifetime figures of merit (§2.1, §3).

Martin's thesis (cited by the paper) argues the lower bound on clock
frequency should be chosen to maximize the number of *computations per
battery lifetime*, not simply to minimize power: below some frequency the
fixed system power dominates and slowing down loses both speed and
lifetime-normalized work.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.battery.model import AAA_ALKALINE_PAIR, Battery
from repro.hw.clocksteps import ClockStep, ClockTable, SA1100_CLOCK_TABLE
from repro.hw.power import IdleManagerParameters


def lifetime_hours(
    power_w: float, battery: Battery = AAA_ALKALINE_PAIR
) -> float:
    """Battery runtime at a constant system power."""
    return battery.lifetime_hours(power_w)


def idle_lifetime_hours(
    step: ClockStep,
    battery: Battery = AAA_ALKALINE_PAIR,
    idle_params: IdleManagerParameters = IdleManagerParameters(),
) -> float:
    """Runtime of the idle Itsy at a given clock step (the 2 h/18 h anecdote)."""
    return battery.lifetime_hours(idle_params.idle_power_w(step))


def computations_per_lifetime(
    step: ClockStep,
    power_of_step: Callable[[ClockStep], float],
    battery: Battery = AAA_ALKALINE_PAIR,
) -> float:
    """Martin's metric: total cycles executable on one battery.

    ``cycles/s * lifetime(P(f))``; the argmax over the clock table is the
    rational lower bound on clock frequency.
    """
    power = power_of_step(step)
    hours = battery.lifetime_hours(power)
    return step.hz * hours * 3600.0


def best_step_for_computations(
    power_of_step: Callable[[ClockStep], float],
    table: ClockTable = SA1100_CLOCK_TABLE,
    battery: Battery = AAA_ALKALINE_PAIR,
) -> Tuple[ClockStep, List[Tuple[ClockStep, float]]]:
    """The clock step maximizing computations per battery lifetime.

    Returns the best step and the full ``(step, computations)`` table.
    """
    scored = [
        (step, computations_per_lifetime(step, power_of_step, battery))
        for step in table
    ]
    best = max(scored, key=lambda pair: pair[1])[0]
    return best, scored
