"""Rate-capacity battery model (§2.1).

Batteries deliver less total energy at higher drain.  We use a
Peukert-style law expressed in power terms:

    E_eff(P) = E_ref * (P_ref / P)^(k - 1)

clamped to the nominal (low-drain) capacity.  The exponent is calibrated to
the Itsy anecdote -- two AAA alkaline cells power the idle system for about
2 hours at a 206 MHz clock but about 18 hours at 59 MHz, a 9x lifetime
ratio against a ~2.7x power ratio -- which needs ``k ~= 2.2``.  That is
steeper than the textbook Peukert constant for alkaline cells at moderate
drain, but alkaline capacity genuinely collapses at the multi-hundred-mA
drains of the 206 MHz Itsy; the curve should be read as an empirical fit to
the paper's reported behaviour, not as cell chemistry.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RateCapacityCurve:
    """Effective deliverable energy as a function of constant drain power.

    Attributes:
        e_ref_wh: deliverable energy at the reference power, in Wh.
        p_ref_w: reference drain power, in W.
        peukert_k: Peukert-style exponent (1.0 = ideal battery).
        e_max_wh: nominal capacity ceiling, in Wh.
    """

    e_ref_wh: float
    p_ref_w: float
    peukert_k: float
    e_max_wh: float

    def __post_init__(self) -> None:
        if self.e_ref_wh <= 0 or self.p_ref_w <= 0 or self.e_max_wh <= 0:
            raise ValueError("energies and powers must be positive")
        if self.peukert_k < 1.0:
            raise ValueError("Peukert exponent must be >= 1")
        if self.e_ref_wh > self.e_max_wh:
            raise ValueError("reference energy exceeds the nominal capacity")

    def effective_energy_wh(self, power_w: float) -> float:
        """Deliverable energy at a constant drain of ``power_w`` watts."""
        if power_w <= 0:
            raise ValueError("drain power must be positive")
        e = self.e_ref_wh * (self.p_ref_w / power_w) ** (self.peukert_k - 1.0)
        return min(e, self.e_max_wh)

    def lifetime_hours(self, power_w: float) -> float:
        """Runtime at a constant drain of ``power_w`` watts."""
        return self.effective_energy_wh(power_w) / power_w


@dataclass(frozen=True)
class Battery:
    """A battery pack: chemistry curve plus pack parameters.

    Attributes:
        curve: the rate-capacity behaviour.
        volts: nominal pack voltage (two AAA cells in series ~= 3.0 V).
        name: label for reports.
    """

    curve: RateCapacityCurve
    volts: float = 3.0
    name: str = "battery"

    def lifetime_hours(self, power_w: float) -> float:
        """Runtime at a constant drain of ``power_w`` watts."""
        return self.curve.lifetime_hours(power_w)

    def effective_capacity_ah(self, power_w: float) -> float:
        """Deliverable charge at the given drain, in amp-hours."""
        return self.curve.effective_energy_wh(power_w) / self.volts

    def drain_amps(self, power_w: float) -> float:
        """Pack current at the given power."""
        return power_w / self.volts


#: Two AAA alkaline cells in series, calibrated to the Itsy anecdote:
#: ~2 h at the idle system's 206 MHz drain (~0.34 W) and ~18 h at the
#: 59 MHz drain (~0.13 W).  Nominal capacity ~1.15 Ah at 3 V = 3.45 Wh.
AAA_ALKALINE_PAIR = Battery(
    curve=RateCapacityCurve(
        e_ref_wh=2.26,
        p_ref_w=0.1256,
        peukert_k=2.211,
        e_max_wh=3.45,
    ),
    volts=3.0,
    name="2x AAA alkaline",
)
