"""Pulsed-discharge battery model (§2.1; Chiasserini & Rao 1999).

The paper notes that battery capacity "can also be increased by
interspacing periods of high power demand with much longer periods of low
power demand resulting in a 'pulsed power' system", but argues the effect
matters less for pocket computers because recovery needs long quiet
periods while computer loads are comparatively steady.

We model this with the standard Kinetic Battery Model (KiBaM): charge
lives in an *available* well (directly usable) and a *bound* well that
replenishes the available well at a finite rate ``k'``.  High steady drain
exhausts the available well while charge remains bound (capacity loss);
rest periods let the wells equalize (recovery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple


@dataclass
class PulsedDischargeModel:
    """KiBaM two-well battery.

    Attributes:
        capacity_c: total charge capacity (arbitrary charge units).
        c_fraction: fraction of capacity in the available well at rest.
        k_rate: well-equalization rate constant, 1/s.
        volts: pack voltage (converts power demand to current).
    """

    capacity_c: float
    c_fraction: float = 0.5
    k_rate: float = 1e-3
    volts: float = 3.0

    def __post_init__(self) -> None:
        if self.capacity_c <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < self.c_fraction < 1.0:
            raise ValueError("c_fraction must be in (0, 1)")
        if self.k_rate <= 0 or self.volts <= 0:
            raise ValueError("rate and voltage must be positive")
        self.reset()

    def reset(self) -> None:
        """Return to a fully charged, equalized state."""
        self.available = self.c_fraction * self.capacity_c
        self.bound = (1.0 - self.c_fraction) * self.capacity_c
        self.delivered = 0.0
        self.dead = False

    @property
    def remaining(self) -> float:
        """Total charge remaining in both wells."""
        return self.available + self.bound

    def step(self, power_w: float, dt_s: float, substep_s: float = 1.0) -> float:
        """Drain at ``power_w`` for ``dt_s`` seconds.

        Integrates the KiBaM ODEs with forward-Euler substeps.  Returns the
        charge actually delivered; if the available well empties the
        battery is *dead* (voltage collapse under load) and delivery stops.
        """
        if dt_s < 0 or power_w < 0:
            raise ValueError("negative time or power")
        if self.dead:
            return 0.0
        current = power_w / self.volts
        delivered = 0.0
        t = 0.0
        while t < dt_s and not self.dead:
            h = min(substep_s, dt_s - t)
            # Well heights normalize by the well size so equalization pulls
            # toward equal *fractional* fill.
            h1 = self.available / self.c_fraction
            h2 = self.bound / (1.0 - self.c_fraction)
            flow = self.k_rate * (h2 - h1) * h
            draw = current * h
            if draw > self.available + flow:
                # The available well empties mid-step: the battery dies.
                delivered += max(0.0, self.available + flow)
                self.bound -= flow
                self.available = 0.0
                self.dead = True
                break
            self.available += flow - draw
            self.bound -= flow
            delivered += draw
            t += h
        self.delivered += delivered
        return delivered

    def run_profile(self, profile: Iterable[Tuple[float, float]]) -> float:
        """Drain through ``(power_w, duration_s)`` phases; return delivered charge."""
        for power_w, duration_s in profile:
            self.step(power_w, duration_s)
            if self.dead:
                break
        return self.delivered

    def time_to_death_s(
        self, power_w: float, rest_power_w: float = 0.0,
        pulse_s: float = 0.0, rest_s: float = 0.0, max_s: float = 1e7,
    ) -> float:
        """Runtime under constant or pulsed drain.

        With ``pulse_s == 0`` the drain is constant at ``power_w``;
        otherwise it alternates ``pulse_s`` at ``power_w`` with ``rest_s``
        at ``rest_power_w``.
        """
        self.reset()
        t = 0.0
        phases: List[Tuple[float, float]] = (
            [(power_w, 60.0)]
            if pulse_s <= 0
            else [(power_w, pulse_s), (rest_power_w, rest_s)]
        )
        while not self.dead and t < max_s:
            for p, d in phases:
                self.step(p, d)
                t += d
                if self.dead or t >= max_s:
                    break
        return t
