"""Command-line interface: run the paper's experiments from a shell.

Usage (after installation)::

    python -m repro list-policies
    python -m repro run mpeg --policy best
    python -m repro run web --policy avg3-one --duration 60
    python -m repro table2 --runs 3
    python -m repro fig9
    python -m repro battery

Policies are named:

- ``const-<mhz>`` -- constant speed (e.g. ``const-132.7``);
- ``best`` / ``best-voltage`` -- the paper's best policy, optionally with
  voltage scaling at 162.2 MHz;
- ``avg<N>-<setter>`` -- AVG_N with one/double/peg both directions and
  Pering's 50/70 thresholds (e.g. ``avg9-peg``);
- ``cycleavg`` -- the naive busy-cycle averaging policy of Figure 5;
- ``synth`` -- the synthesized-deadline governor (§6 future work).
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import Callable, List, Optional

from repro.core.catalog import best_policy, constant_speed, cycle_average, pering_avg
from repro.core.deadline import SynthesizedDeadlineGovernor
from repro.hw.clocksteps import SA1100_CLOCK_TABLE
from repro.hw.rails import VOLTAGE_LOW
from repro.kernel.governor import Governor
from repro.measure.runner import repeat_workload, run_workload
from repro.workloads import (
    chess_workload,
    editor_workload,
    mpeg_workload,
    web_workload,
)
from repro.workloads.base import Workload
from repro.workloads.chess import ChessConfig
from repro.workloads.editor import EditorConfig
from repro.workloads.mpeg import MpegConfig
from repro.workloads.web import WebConfig

_AVG_PATTERN = re.compile(r"^avg(\d+)-(one|double|peg)$")
_CONST_PATTERN = re.compile(r"^const-(\d+(?:\.\d+)?)$")


def resolve_policy(name: str) -> Callable[[], Governor]:
    """Map a policy name to a fresh-governor factory.

    Raises:
        ValueError: for unknown names.
    """
    if name == "best":
        return lambda: best_policy(False)
    if name == "best-voltage":
        return lambda: best_policy(True)
    if name == "cycleavg":
        return lambda: cycle_average()
    if name == "synth":
        return lambda: SynthesizedDeadlineGovernor()
    match = _CONST_PATTERN.match(name)
    if match:
        mhz = float(match.group(1))
        return lambda: constant_speed(mhz)
    match = _AVG_PATTERN.match(name)
    if match:
        n, setter = int(match.group(1)), match.group(2)
        return lambda: pering_avg(n, up=setter, down=setter)
    raise ValueError(f"unknown policy {name!r}; see 'list-policies'")


def resolve_workload(name: str, duration_s: Optional[float]) -> Workload:
    """Map a workload name (mpeg/web/chess/editor) to a descriptor.

    Raises:
        ValueError: for unknown names.
    """
    if name == "mpeg":
        return mpeg_workload(
            MpegConfig(duration_s=duration_s) if duration_s else MpegConfig()
        )
    if name == "web":
        return web_workload(
            WebConfig(duration_s=duration_s) if duration_s else WebConfig()
        )
    if name == "chess":
        return chess_workload(
            ChessConfig(duration_s=duration_s) if duration_s else ChessConfig()
        )
    if name == "editor":
        return editor_workload(
            EditorConfig(duration_s=duration_s) if duration_s else EditorConfig()
        )
    raise ValueError(f"unknown workload {name!r} (mpeg/web/chess/editor)")


def cmd_list_policies(_args) -> int:
    print("constant speeds : " + ", ".join(
        f"const-{s.mhz:.1f}" for s in SA1100_CLOCK_TABLE
    ))
    print("paper policies  : best, best-voltage")
    print("interval sweep  : avg<N>-<one|double|peg>  (N = 0..10, 50/70 thresholds)")
    print("other           : cycleavg (Figure 5), synth (synthesized deadlines)")
    return 0


def cmd_run(args) -> int:
    workload = resolve_workload(args.workload, args.duration)
    factory = resolve_policy(args.policy)
    result = run_workload(workload, factory, seed=args.seed, use_daq=not args.no_daq)
    run = result.run
    print(f"workload        : {workload.name} ({workload.duration_s:.0f} s)")
    print(f"policy          : {args.policy}")
    print(f"energy          : {result.energy_j:.2f} J "
          f"(exact {result.exact_energy_j:.2f} J)")
    print(f"mean power      : {result.mean_power_w:.3f} W")
    print(f"mean utilization: {run.mean_utilization():.3f}")
    print(f"clock changes   : {run.clock_changes} "
          f"(stalled {run.clock_stall_us / 1000:.1f} ms)")
    print(f"voltage changes : {run.voltage_changes}")
    print(f"deadline misses : {len(result.misses)}")
    if result.misses:
        worst = max(result.misses, key=lambda e: e.lateness_us)
        print(f"  worst: {worst.kind} late by {worst.lateness_us / 1000:.1f} ms")
    return 1 if result.misses else 0


def cmd_table2(args) -> int:
    rows = [
        ("Constant 206.4 MHz, 1.5 V", lambda: constant_speed(206.4)),
        ("Constant 132.7 MHz, 1.5 V", lambda: constant_speed(132.7)),
        ("Constant 132.7 MHz, 1.23 V",
         lambda: constant_speed(132.7, volts=VOLTAGE_LOW)),
        ("PAST peg-peg 98/93, 1.5 V", lambda: best_policy(False)),
        ("PAST peg-peg + Vscale", lambda: best_policy(True)),
    ]
    print(f"{'Algorithm':30s} {'Energy 95% CI (J)':>20s} {'Misses':>7s}")
    for name, factory in rows:
        agg = repeat_workload(mpeg_workload(), factory, runs=args.runs)
        ci = agg.energy_ci
        print(f"{name:30s} {ci.low:9.2f} - {ci.high:5.2f} {agg.total_misses:7d}")
    return 0


def cmd_fig9(args) -> int:
    cfg = MpegConfig(duration_s=args.duration or 30.0)
    print(f"{'MHz':>6s} {'Utilization':>12s} {'Misses':>7s}")
    for step in SA1100_CLOCK_TABLE:
        res = run_workload(
            mpeg_workload(cfg),
            lambda s=step: constant_speed(s.mhz),
            seed=args.seed,
            use_daq=False,
        )
        print(
            f"{step.mhz:6.1f} {res.run.mean_utilization() * 100:11.1f}% "
            f"{len(res.misses):7d}"
        )
    return 0


def cmd_compare(args) -> int:
    from repro.measure.compare import energies, welch_compare

    workload_a = resolve_workload(args.workload, args.duration)
    agg_a = repeat_workload(workload_a, resolve_policy(args.policy_a), runs=args.runs)
    workload_b = resolve_workload(args.workload, args.duration)
    agg_b = repeat_workload(workload_b, resolve_policy(args.policy_b), runs=args.runs)
    result = welch_compare(energies(agg_a), energies(agg_b))
    print(f"{args.policy_a:24s} {agg_a.energy_ci}  misses={agg_a.total_misses}")
    print(f"{args.policy_b:24s} {agg_b.energy_ci}  misses={agg_b.total_misses}")
    print(
        f"difference      : {result.difference:+.2f} J "
        f"({result.relative_difference:+.2%})"
    )
    print(f"Welch p-value   : {result.p_value:.4g}")
    print(
        "verdict         : "
        + ("statistically significant" if result.significant else "not significant")
    )
    return 0


def cmd_ideal(args) -> int:
    from repro.measure.runner import find_ideal_constant

    workload = resolve_workload(args.workload, args.duration)
    try:
        result = find_ideal_constant(workload, seed=args.seed)
    except ValueError as exc:
        print(f"no feasible constant step: {exc}", file=sys.stderr)
        return 1
    step_mhz = result.run.quanta[-1].mhz
    print(f"workload        : {workload.name} ({workload.duration_s:.0f} s)")
    print(f"ideal constant  : {step_mhz:.1f} MHz")
    print(f"energy          : {result.exact_energy_j:.2f} J")
    print(f"mean utilization: {result.run.mean_utilization():.3f}")
    return 0


def cmd_battery(_args) -> int:
    from repro.battery.lifetime import idle_lifetime_hours

    print(f"{'MHz':>6s} {'Idle lifetime (h)':>18s}")
    for step in SA1100_CLOCK_TABLE:
        print(f"{step.mhz:6.1f} {idle_lifetime_hours(step):18.1f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Policies for Dynamic Clock Scheduling'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-policies", help="list policy names").set_defaults(
        func=cmd_list_policies
    )

    run_parser = sub.add_parser("run", help="run one workload under one policy")
    run_parser.add_argument("workload", choices=["mpeg", "web", "chess", "editor"])
    run_parser.add_argument("--policy", default="best")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--duration", type=float, default=None,
                            help="override trace length (seconds)")
    run_parser.add_argument("--no-daq", action="store_true",
                            help="use the exact integral instead of the DAQ")
    run_parser.set_defaults(func=cmd_run)

    t2 = sub.add_parser("table2", help="regenerate Table 2")
    t2.add_argument("--runs", type=int, default=3)
    t2.set_defaults(func=cmd_table2)

    f9 = sub.add_parser("fig9", help="regenerate Figure 9's sweep")
    f9.add_argument("--seed", type=int, default=1)
    f9.add_argument("--duration", type=float, default=None)
    f9.set_defaults(func=cmd_fig9)

    cmp_parser = sub.add_parser(
        "compare", help="compare two policies on one workload (Welch t-test)"
    )
    cmp_parser.add_argument("workload", choices=["mpeg", "web", "chess", "editor"])
    cmp_parser.add_argument("policy_a")
    cmp_parser.add_argument("policy_b")
    cmp_parser.add_argument("--runs", type=int, default=3)
    cmp_parser.add_argument("--duration", type=float, default=None)
    cmp_parser.set_defaults(func=cmd_compare)

    ideal_parser = sub.add_parser(
        "ideal", help="find the cheapest feasible constant clock step"
    )
    ideal_parser.add_argument("workload", choices=["mpeg", "web", "chess", "editor"])
    ideal_parser.add_argument("--seed", type=int, default=0)
    ideal_parser.add_argument("--duration", type=float, default=None)
    ideal_parser.set_defaults(func=cmd_ideal)

    sub.add_parser("battery", help="idle battery lifetimes").set_defaults(
        func=cmd_battery
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
