"""Command-line interface: run the paper's experiments from a shell.

Usage (after installation)::

    python -m repro list-policies
    python -m repro list-machines
    python -m repro run mpeg --policy best
    python -m repro run mpeg --policy past-peg-98-93 --machine sa2
    python -m repro run web --policy avg3-one --duration 60
    python -m repro table2 --runs 3
    python -m repro fig9
    python -m repro battery
    python -m repro trace mpeg --policy past-peg-98-93 -o trace.json
    python -m repro diagnose avg3-one mpeg
    python -m repro report sweep.jsonl --diagnoses diag.jsonl -o report.html
    python -m repro fuzz --count 50 --seed 2026 --save-failures fuzz-failures

Policies are named:

- ``const-<mhz>`` -- constant speed (e.g. ``const-132.7``), optionally at
  an explicit voltage (``const-132.7@1.23``);
- ``best`` / ``best-voltage`` -- the paper's best policy, optionally with
  voltage scaling at 162.2 MHz;
- ``<past|avgN>-<setter>`` -- an interval policy with one/double/peg both
  directions and Pering's 50/70 thresholds (e.g. ``avg9-peg``), or with
  explicit percent thresholds (``past-peg-98-93``);
- ``cycleavg`` -- the naive busy-cycle averaging policy of Figure 5;
- ``synth`` -- the synthesized-deadline governor (§6 future work).

Simulation commands accept ``--machine`` to pick the hardware (``itsy``,
``itsy@1.23``, ``itsy-stock``, ``sa2``, or the reconfiguration-cost
variants ``itsy-reconf``/``sa2-reconf`` -- see ``list-machines``),
``--backend`` to pick the execution backend (default ``fastpath``;
``--no-fastpath`` is shorthand for ``--backend reference`` -- see
:mod:`repro.kernel.backend`), ``--jobs N`` to fan runs out over a
process pool, ``--cache DIR`` to memoize results on disk (see
:mod:`repro.measure.parallel`), and
``--run-log PATH`` to append one structured JSONL record per sweep cell
(see :mod:`repro.obs.runlog`), and ``--diagnoses PATH`` to diagnose every
executed cell worker-side (see :mod:`repro.obs.diagnose`); every
backend, parallel, cached and observed path is bitwise-equal to the
serial, uncached reference.  Sweep commands print a throughput summary
line (cells simulated/cached, wall time, cells/s) to stderr.
``trace`` exports a single run as Chrome trace-event JSON for Perfetto
(see :mod:`repro.obs.trace`), ``diagnose`` explains one run (settling,
prediction error, miss attribution, energy decomposition), and
``report`` aggregates a run-log (+ diagnoses) into markdown or HTML.
``fuzz`` drives seeded generated workloads (the ``fuzz`` workload, see
:mod:`repro.workloads.fuzz`) through the reference backend and the
backend under test (``--backend``) differentially, checking bitwise
identity and a closed energy decomposition, shrinking failures and
saving them as replayable corpus entries (see
:mod:`repro.traces.corpus`).
``report`` additionally renders a "Perf history" section from any
committed ``BENCH_*.json`` benchmark records passed via ``--bench``
(files, directories or globs, ordered by recorded timestamp).

Sweep commands also take the sweep-telemetry flags: ``--progress`` for a
live TTY status line (cells done/total, cells/s, ETA, cache-hit rate,
worker utilization, straggler flags — silent when stderr is piped),
``--sweep-trace PATH`` to export the whole sweep pipeline as a Chrome
trace with one lane per pool worker (see :mod:`repro.obs.telemetry`),
``--phases`` to print the phase-level wall-time breakdown (see
:mod:`repro.obs.profile` — engine-served sweeps always attribute their
wall time to pipeline phases; the flag only prints the table), and the
fleet ledger: every engine-served sweep appends one record to
``.repro/fleet.jsonl`` (``--fleet PATH`` overrides, ``--no-fleet`` opts
out), queryable afterwards with ``repro fleet`` — list/filter past
sweeps, throughput trend, markdown/HTML perf-trajectory reports,
inline-SVG trend curves (``--plot``, see :mod:`repro.obs.plot`) and the
perf-regression sentinel (``--check``: compares the latest sweep
against the median of comparable predecessors, normalized by the host
score ``repro calibrate`` caches, and exits non-zero naming the
regressed phase — see :mod:`repro.obs.fleet` and
:mod:`repro.obs.calibrate`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.catalog import resolve_policy
from repro.hw.clocksteps import SA1100_CLOCK_TABLE
from repro.hw.machines import MACHINE_PRESETS, MachineSpec
from repro.kernel.backend import backend_names
from repro.measure.parallel import (
    PolicySpec,
    ResultCache,
    SweepCell,
    SweepCellError,
    SweepEngine,
    WorkloadSpec,
)
from repro.obs.diagnose import DiagnosisWriter
from repro.obs.fleet import DEFAULT_FLEET_PATH, FleetLedger, read_fleet
from repro.obs.profile import PhaseProfile
from repro.obs.runlog import RunLogWriter
from repro.obs.telemetry import SweepTelemetry
from repro.measure.runner import find_ideal_constant, repeat_workload, run_workload
from repro.measure.stats import confidence_interval
from repro.workloads.base import Workload
from repro.workloads.chess import ChessConfig
from repro.workloads.editor import EditorConfig
from repro.workloads.fuzz import FuzzSpec
from repro.workloads.mpeg import MpegConfig
from repro.workloads.web import WebConfig

_WORKLOAD_CONFIGS = {
    "mpeg": MpegConfig,
    "web": WebConfig,
    "chess": ChessConfig,
    "editor": EditorConfig,
    "fuzz": FuzzSpec,
}

#: What the workload positional accepts.  The ``replay`` sweep axis is
#: deliberately absent: it is named by a trace, not by a duration, so it
#: is built from corpus entries (``repro fuzz --corpus``), not by name.
CLI_WORKLOADS = ["mpeg", "web", "chess", "editor", "fuzz"]


def workload_spec(name: str, duration_s: Optional[float] = None) -> WorkloadSpec:
    """Map a workload name (mpeg/web/chess/editor/fuzz) to a sweep spec.

    Raises:
        ValueError: for unknown names.
    """
    try:
        config_type = _WORKLOAD_CONFIGS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r} ({'/'.join(CLI_WORKLOADS)})"
        ) from None
    return WorkloadSpec(
        name=name,
        config=config_type(duration_s=duration_s) if duration_s else None,
    )


def resolve_workload(name: str, duration_s: Optional[float] = None) -> Workload:
    """Map a workload name (mpeg/web/chess/editor/fuzz) to a descriptor.

    Raises:
        ValueError: for unknown names.
    """
    return workload_spec(name, duration_s).build()


def machine_spec(args) -> MachineSpec:
    """The machine the ``--machine`` flag names (default: modified Itsy).

    Raises:
        ValueError: for unknown presets or a malformed boot voltage.
    """
    return MachineSpec.parse(getattr(args, "machine", "itsy"))


def sweep_engine(args) -> Optional[SweepEngine]:
    """Build the sweep engine the ``--jobs``/``--cache``/``--run-log``/
    ``--diagnoses``/``--progress``/``--sweep-trace``/``--fleet``/
    ``--phases`` flags ask for.

    Returns None when none of the flags is given: the command then takes
    the legacy serial, uncached path (and records nothing in the fleet
    ledger — only engine-served sweeps are ledger entries).  Every
    engine built here carries a :class:`~repro.obs.profile.PhaseProfile`
    — the ledger's phase attribution must not depend on remembering a
    flag — while ``--phases`` only controls printing the table.
    """
    jobs = getattr(args, "jobs", 1)
    cache_dir = getattr(args, "cache", None)
    run_log_path = getattr(args, "run_log", None)
    diagnoses_path = getattr(args, "diagnoses", None)
    progress = getattr(args, "progress", False)
    sweep_trace = getattr(args, "sweep_trace", None)
    fleet_path = getattr(args, "fleet", None)
    phases = getattr(args, "phases", False)
    if getattr(args, "no_cache", False):
        cache_dir = None
    if (
        jobs <= 1
        and cache_dir is None
        and run_log_path is None
        and diagnoses_path is None
        and not progress
        and sweep_trace is None
        and fleet_path is None
        and not phases
    ):
        return None
    cache = ResultCache(cache_dir) if cache_dir else None
    run_log = RunLogWriter(run_log_path) if run_log_path else None
    diagnosis_log = DiagnosisWriter(diagnoses_path) if diagnoses_path else None
    return SweepEngine(
        jobs=max(jobs, 1),
        cache=cache,
        run_log=run_log,
        diagnosis_log=diagnosis_log,
        telemetry=SweepTelemetry() if sweep_trace else None,
        progress=progress,
        profile=PhaseProfile(),
    )


def cell_backend(args) -> Optional[str]:
    """The execution backend ``--backend``/``--no-fastpath`` named.

    None means the default (``fastpath``, or ``REPRO_FORCE_BACKEND``).
    """
    return getattr(args, "backend", None)


def report_sweep_stats(
    engine: Optional[SweepEngine], args=None
) -> None:
    """Print the engine's throughput summary to stderr and shut it down.

    With ``args``, also settles the sweep-level observers: exports the
    ``--sweep-trace`` Chrome trace when requested, and appends one fleet
    record to the ledger (``--fleet`` path or the repo-local default)
    unless ``--no-fleet`` opted out.
    """
    if engine is None:
        return
    print(engine.stats.summary(), file=sys.stderr)
    if (
        args is not None
        and getattr(args, "phases", False)
        and engine.profile is not None
    ):
        print("phase profile:", file=sys.stderr)
        print(engine.profile.table(engine.stats.wall_s), file=sys.stderr)
    engine.close()
    if engine.run_log is not None:
        engine.run_log.close()
    if engine.diagnosis_log is not None:
        engine.diagnosis_log.close()
    if args is None:
        return
    sweep_trace = getattr(args, "sweep_trace", None)
    if sweep_trace and engine.telemetry is not None:
        from repro.obs.trace import write_chrome_trace

        payload = engine.telemetry.chrome_trace()
        out = write_chrome_trace(payload, sweep_trace)
        print(
            f"sweep trace: {out} ({len(payload['traceEvents'])} events, "
            f"{payload['otherData']['workers']} worker lanes; open in "
            f"Perfetto)",
            file=sys.stderr,
        )
    if not getattr(args, "no_fleet", False):
        fleet_path = getattr(args, "fleet", None) or DEFAULT_FLEET_PATH
        record = engine.fleet_record(command=getattr(args, "command", "") or "")
        with FleetLedger(fleet_path) as ledger:
            ledger.append(record)


def cmd_list_policies(_args) -> int:
    print("constant speeds : " + ", ".join(
        f"const-{s.mhz:.1f}" for s in SA1100_CLOCK_TABLE
    ))
    print("  (append @<volts> for an explicit voltage, e.g. const-132.7@1.23)")
    print("  (other machines take their own table, e.g. const-600.0 on sa2)")
    print("paper policies  : best, best-voltage")
    print("interval sweep  : <past|avg<N>>-<one|double|peg>  (N = 0..10, "
          "50/70 thresholds)")
    print("  (append -<hi>-<lo> percent thresholds; past-peg-98-93 = best)")
    print("other           : cycleavg (Figure 5), synth (synthesized deadlines)")
    return 0


def cmd_list_machines(_args) -> int:
    for name in sorted(MACHINE_PRESETS):
        preset = MACHINE_PRESETS[name]
        print(f"{name:12s}: {preset.description}")
        table = preset.clock_table
        print(f"{'':12s}  steps: "
              + ", ".join(f"{s.mhz:.1f}" for s in table))
    print("  (append @<volts> for a boot voltage, e.g. itsy@1.23)")
    return 0


def cmd_run(args) -> int:
    engine = sweep_engine(args)
    mspec = machine_spec(args)
    spec = workload_spec(args.workload, args.duration)
    workload = spec.build()
    print(f"workload        : {workload.name} ({workload.duration_s:.0f} s)")
    print(f"policy          : {args.policy}")
    print(f"machine         : {args.machine}")
    if engine is not None:
        cell = SweepCell(
            workload=spec,
            policy=PolicySpec(name=args.policy),
            seed=args.seed,
            use_daq=not args.no_daq,
            machine=mspec,
            backend=cell_backend(args),
        )
        summary = engine.run([cell])[0]
        print(f"energy          : {summary.energy_j:.2f} J "
              f"(exact {summary.exact_energy_j:.2f} J)")
        print(f"mean power      : {summary.mean_power_w:.3f} W")
        print(f"mean utilization: {summary.mean_utilization:.3f}")
        print(f"clock changes   : {summary.clock_changes} "
              f"(stalled {summary.clock_stall_us / 1000:.1f} ms)")
        print(f"voltage changes : {summary.voltage_changes}")
        print(f"deadline misses : {summary.miss_count}")
        if summary.missed:
            print(f"  worst: {summary.worst_miss_kind} late by "
                  f"{summary.worst_lateness_us / 1000:.1f} ms")
        report_sweep_stats(engine, args)
        return 1 if summary.missed else 0
    factory = resolve_policy(args.policy, clock_table=mspec.clock_table())
    result = run_workload(
        workload, factory, machine_factory=mspec,
        seed=args.seed, use_daq=not args.no_daq,
        backend=cell_backend(args),
    )
    run = result.run
    print(f"energy          : {result.energy_j:.2f} J "
          f"(exact {result.exact_energy_j:.2f} J)")
    print(f"mean power      : {result.mean_power_w:.3f} W")
    print(f"mean utilization: {run.mean_utilization():.3f}")
    print(f"clock changes   : {run.clock_changes} "
          f"(stalled {run.clock_stall_us / 1000:.1f} ms)")
    print(f"voltage changes : {run.voltage_changes}")
    print(f"deadline misses : {len(result.misses)}")
    if result.misses:
        worst = max(result.misses, key=lambda e: e.lateness_us)
        print(f"  worst: {worst.kind} late by {worst.lateness_us / 1000:.1f} ms")
    return 1 if result.misses else 0


#: Table 2's rows as (label, policy name) -- resolvable, hence sweepable.
TABLE2_ROWS = [
    ("Constant 206.4 MHz, 1.5 V", "const-206.4"),
    ("Constant 132.7 MHz, 1.5 V", "const-132.7"),
    ("Constant 132.7 MHz, 1.23 V", "const-132.7@1.23"),
    ("PAST peg-peg 98/93, 1.5 V", "best"),
    ("PAST peg-peg + Vscale", "best-voltage"),
]


def cmd_table2(args) -> int:
    engine = sweep_engine(args)
    mspec = machine_spec(args)
    spec = workload_spec("mpeg")
    print(f"{'Algorithm':30s} {'Energy 95% CI (J)':>20s} {'Misses':>7s}")
    if engine is not None:
        # Submit the whole table as one batch so rows share the pool.
        cells = [
            SweepCell(
                workload=spec, policy=PolicySpec(name=policy),
                seed=1000 * i, machine=mspec,
                backend=cell_backend(args),
            )
            for _, policy in TABLE2_ROWS
            for i in range(args.runs)
        ]
        results = engine.run(cells)
        for r, (name, _) in enumerate(TABLE2_ROWS):
            row = results[r * args.runs : (r + 1) * args.runs]
            ci = confidence_interval([c.energy_j for c in row])
            misses = sum(c.miss_count for c in row)
            print(f"{name:30s} {ci.low:9.2f} - {ci.high:5.2f} {misses:7d}")
        report_sweep_stats(engine, args)
        return 0
    table = mspec.clock_table()
    for name, policy in TABLE2_ROWS:
        agg = repeat_workload(
            spec.build(), resolve_policy(policy, clock_table=table),
            machine_factory=mspec, runs=args.runs,
            backend=cell_backend(args),
        )
        ci = agg.energy_ci
        print(f"{name:30s} {ci.low:9.2f} - {ci.high:5.2f} {agg.total_misses:7d}")
    return 0


def cmd_fig9(args) -> int:
    engine = sweep_engine(args)
    mspec = machine_spec(args)
    table = mspec.clock_table()
    spec = workload_spec("mpeg", args.duration or 30.0)
    print(f"{'MHz':>6s} {'Utilization':>12s} {'Misses':>7s}")
    if engine is not None:
        from repro.measure.parallel import constant_step_cells

        results = engine.run(
            constant_step_cells(
                spec, machine=mspec, seed=args.seed,
                backend=cell_backend(args),
            )
        )
        for step, res in zip(table, results):
            print(
                f"{step.mhz:6.1f} {res.mean_utilization * 100:11.1f}% "
                f"{res.miss_count:7d}"
            )
        report_sweep_stats(engine, args)
        return 0
    cfg = MpegConfig(duration_s=args.duration or 30.0)
    for step in table:
        res = run_workload(
            resolve_workload("mpeg", cfg.duration_s),
            lambda s=step: resolve_policy(
                f"const-{s.mhz:.1f}", clock_table=table
            )(),
            machine_factory=mspec,
            seed=args.seed,
            use_daq=False,
            backend=cell_backend(args),
        )
        print(
            f"{step.mhz:6.1f} {res.run.mean_utilization() * 100:11.1f}% "
            f"{len(res.misses):7d}"
        )
    return 0


def cmd_compare(args) -> int:
    from repro.measure.compare import energies, welch_compare

    mspec = machine_spec(args)
    table = mspec.clock_table()
    workload_a = resolve_workload(args.workload, args.duration)
    agg_a = repeat_workload(
        workload_a, resolve_policy(args.policy_a, clock_table=table),
        machine_factory=mspec, runs=args.runs,
    )
    workload_b = resolve_workload(args.workload, args.duration)
    agg_b = repeat_workload(
        workload_b, resolve_policy(args.policy_b, clock_table=table),
        machine_factory=mspec, runs=args.runs,
    )
    result = welch_compare(energies(agg_a), energies(agg_b))
    print(f"{args.policy_a:24s} {agg_a.energy_ci}  misses={agg_a.total_misses}")
    print(f"{args.policy_b:24s} {agg_b.energy_ci}  misses={agg_b.total_misses}")
    print(
        f"difference      : {result.difference:+.2f} J "
        f"({result.relative_difference:+.2%})"
    )
    print(f"Welch p-value   : {result.p_value:.4g}")
    print(
        "verdict         : "
        + ("statistically significant" if result.significant else "not significant")
    )
    return 0


def cmd_ideal(args) -> int:
    engine = sweep_engine(args)
    mspec = machine_spec(args)
    spec = workload_spec(args.workload, args.duration)
    workload = spec.build()
    try:
        if engine is not None:
            summary = find_ideal_constant(
                spec, machine_factory=mspec, seed=args.seed, engine=engine,
                backend=cell_backend(args),
            )
            print(f"workload        : {workload.name} ({workload.duration_s:.0f} s)")
            print(f"ideal constant  : {summary.final_mhz:.1f} MHz")
            print(f"energy          : {summary.exact_energy_j:.2f} J")
            print(f"mean utilization: {summary.mean_utilization:.3f}")
            report_sweep_stats(engine, args)
            return 0
        result = find_ideal_constant(
            workload, machine_factory=mspec, seed=args.seed,
            backend=cell_backend(args),
        )
    except ValueError as exc:
        print(f"no feasible constant step: {exc}", file=sys.stderr)
        return 1
    step_mhz = result.run.quanta[-1].mhz
    print(f"workload        : {workload.name} ({workload.duration_s:.0f} s)")
    print(f"ideal constant  : {step_mhz:.1f} MHz")
    print(f"energy          : {result.exact_energy_j:.2f} J")
    print(f"mean utilization: {result.run.mean_utilization():.3f}")
    return 0


def cmd_trace(args) -> int:
    """Run one workload under a tracer and export Chrome trace-event JSON."""
    from repro.obs.metrics import KernelMetricsRecorder, MetricsRegistry
    from repro.obs.trace import TraceRecorder, write_chrome_trace

    mspec = machine_spec(args)
    spec = workload_spec(args.workload, args.duration)
    workload = spec.build()
    tracer = TraceRecorder()
    registry = MetricsRegistry()
    result = run_workload(
        workload,
        resolve_policy(args.policy, clock_table=mspec.clock_table()),
        machine_factory=mspec,
        seed=args.seed,
        use_daq=False,
        extra_recorders=[tracer, KernelMetricsRecorder(registry)],
        backend=cell_backend(args),
    )
    payload = tracer.chrome_trace(
        run=result.run, tolerance_us=workload.tolerance_us
    )
    out = write_chrome_trace(payload, args.output)
    snap = registry.snapshot()
    print(f"workload        : {workload.name} ({workload.duration_s:.0f} s)")
    print(f"policy          : {args.policy}")
    print(f"machine         : {args.machine}")
    print(f"energy          : {result.exact_energy_j:.2f} J")
    print(f"quanta          : {snap.counters.get('kernel.quanta', 0):.0f}")
    print(f"clock changes   : "
          f"{snap.counters.get('kernel.freq_changes', 0):.0f} "
          f"(stalled {snap.counters.get('kernel.clock_stall_us', 0) / 1000:.1f} ms)")
    print(f"deadline misses : {len(result.misses)}")
    print(f"trace           : {out} "
          f"({len(payload['traceEvents'])} events; open in Perfetto or "
          f"chrome://tracing)")
    return 1 if result.misses else 0


def cmd_diagnose(args) -> int:
    """Run one workload under one policy and explain the outcome."""
    from repro.obs.diagnose import SETTLE_CHURN_PER_QUANTUM
    from repro.obs.diagnose import diagnose as diagnose_run

    mspec = machine_spec(args)
    spec = workload_spec(args.workload, args.duration)
    workload = spec.build()
    result = run_workload(
        workload,
        resolve_policy(args.policy, clock_table=mspec.clock_table()),
        machine_factory=mspec,
        seed=args.seed,
        use_daq=False,
        backend=cell_backend(args),
    )
    try:
        baseline = find_ideal_constant(
            workload, machine_factory=mspec, seed=args.seed,
            backend=cell_backend(args),
        ).exact_energy_j
    except ValueError:
        baseline = None
    diagnosis = diagnose_run(
        result,
        policy=args.policy,
        workload=args.workload,
        machine=mspec,
        seed=args.seed,
        baseline_j=baseline,
    )
    s = diagnosis.settling
    e = diagnosis.energy
    print(f"workload        : {workload.name} ({workload.duration_s:.0f} s)")
    print(f"policy          : {args.policy}")
    print(f"machine         : {diagnosis.machine}")
    print(f"quanta          : {diagnosis.quanta}")
    print(f"mean utilization: {diagnosis.mean_utilization:.3f}")
    print(f"energy          : {e.measured_j:.2f} J measured")
    if e.baseline_feasible:
        print(f"  = {e.baseline_j:.2f} J ideal-constant oracle")
    else:
        print("  (no feasible constant step; oracle term is 0)")
    print(f"  + {e.overshoot_j:+.2f} J overshoot (speed above the oracle)")
    print(f"  + {e.stall_j:.3f} J clock-change stall windows")
    print(f"  + {e.sag_j:.4f} J voltage-sag windows")
    verdict = "settles" if s.settled else "never settles"
    print(
        f"settling        : {verdict} "
        f"({s.churn_per_quantum:.3f} speed changes/quantum in the tail; "
        f"threshold {SETTLE_CHURN_PER_QUANTUM})"
    )
    if s.dominant_period_quanta is not None:
        print(
            f"  dominant oscillation period: "
            f"{s.dominant_period_quanta:.1f} quanta "
            f"({s.dominant_power_fraction * 100:.0f}% of tail power)"
        )
    if s.attenuation_at_dominant is not None:
        print(
            f"  predictor attenuation at that period: "
            f"{s.attenuation_at_dominant:.3f} (1.0 = passes straight through)"
        )
    ledger = diagnosis.ledger
    if ledger is not None:
        print(
            f"prediction error: mean {ledger.mean_error:+.4f}, "
            f"|mean| {ledger.mean_abs_error:.4f}, "
            f"rms {ledger.rms_error:.4f} "
            f"({ledger.count} decisions, N={ledger.decay_n})"
        )
    print(f"deadline misses : {diagnosis.misses}")
    shown = diagnosis.miss_attributions[:10]
    for miss in shown:
        print(
            f"  {miss.kind} at {miss.time_us / 1e6:.3f} s, "
            f"late {miss.lateness_us / 1000:.1f} ms -> cause: {miss.cause} "
            f"(window mean {miss.mean_mhz:.1f} MHz, "
            f"{miss.up_changes} up / {miss.down_changes} down)"
        )
    if len(diagnosis.miss_attributions) > len(shown):
        print(f"  ... and {len(diagnosis.miss_attributions) - len(shown)} more")
    if args.output:
        path = Path(args.output)
        path.write_text(json.dumps(diagnosis.to_json(), sort_keys=True) + "\n")
        print(f"diagnosis JSON  : {path}")
    return 1 if diagnosis.misses else 0


def cmd_report(args) -> int:
    """Aggregate a run-log (plus optional diagnoses) into one document."""
    from repro.obs.diagnose import read_diagnoses
    from repro.obs.report import build_report, load_bench_records, render_report
    from repro.obs.runlog import read_run_log

    try:
        records = read_run_log(args.run_log)
        diagnoses = read_diagnoses(args.diagnoses) if args.diagnoses else []
        bench_records = load_bench_records(args.bench) if args.bench else []
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Tolerant readers skip damaged lines instead of failing; say so
    # (with file:line provenance) rather than silently under-reporting.
    for warning in getattr(records, "warnings", ()):
        print(f"warning: {warning}", file=sys.stderr)
    report = build_report(records, diagnoses, bench_records=bench_records)
    text = render_report(report, args.format)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(
            f"wrote {args.output} ({len(report.rows)} rows, "
            f"{len(diagnoses)} diagnoses, format {args.format})",
            file=sys.stderr,
        )
    else:
        print(text)
    return 0


def cmd_fuzz(args) -> int:
    """Differentially test execution backends on fuzzed workloads.

    Every generated scenario (and, with ``--corpus``, every stored trace)
    runs on the reference backend and the backend under test
    (``--backend``, default ``fastpath``); any recorded number differing,
    any exception-behaviour difference, or an energy decomposition that
    does not close fails the batch.  Failures are shrunk to minimal specs
    and (with ``--save-failures``) persisted as replayable corpus
    entries.
    """
    from repro.measure.differential import (
        check_fuzz_spec,
        compare_results,
        counterexample_entry,
        shrink_fuzz_spec,
    )
    from repro.traces.corpus import load_corpus, save_entry
    from repro.workloads.fuzz import fuzz_family

    machines = [MachineSpec.parse(m) for m in (args.machine or ["itsy", "itsy-reconf"])]
    policies = args.policy or ["best"]
    specs = fuzz_family(args.count, master_seed=args.seed, duration_s=args.duration)
    checked = 0
    failures = []
    for spec in specs:
        for mspec in machines:
            for policy in policies:
                outcome = check_fuzz_spec(
                    spec, policy, mspec, seed=args.seed, backend=args.backend
                )
                checked += 1
                if outcome.ok:
                    continue
                shrunk, outcome = shrink_fuzz_spec(
                    spec, policy, mspec, seed=args.seed, backend=args.backend
                )
                failures.append(outcome)
                print(f"FAIL {outcome.describe()}", file=sys.stderr)
                if shrunk != spec:
                    print(f"  shrunk to {shrunk}", file=sys.stderr)
                if args.save_failures:
                    entry = counterexample_entry(outcome)
                    if entry is not None:
                        path = save_entry(args.save_failures, entry)
                        print(f"  counterexample saved: {path}", file=sys.stderr)

    replayed = 0
    if args.corpus:
        for path, entry in load_corpus(args.corpus):
            for mspec in machines:
                for policy in policies:
                    factory = resolve_policy(policy, clock_table=mspec.clock_table())
                    results = []
                    for backend in ("reference", args.backend):
                        results.append(run_workload(
                            entry.workload(), factory, machine_factory=mspec,
                            seed=args.seed, use_daq=False, backend=backend,
                        ))
                    replayed += 1
                    mismatches = compare_results(*results)
                    if mismatches:
                        failures.append(entry)
                        print(
                            f"FAIL corpus {path.name} policy={policy} "
                            f"machine={mspec.label}: backends diverge on "
                            f"{', '.join(mismatches)}",
                            file=sys.stderr,
                        )
    label = ", ".join(m.label for m in machines)
    print(f"fuzz: {checked} generated runs ({len(specs)} specs x "
          f"{len(policies)} policies x {len(machines)} machines: {label})"
          + (f", {replayed} corpus replays" if args.corpus else ""))
    if failures:
        print(f"fuzz: {len(failures)} FAILURES", file=sys.stderr)
        return 1
    print(f"fuzz: all runs bitwise-identical across backends "
          f"(reference vs {args.backend}), energy decomposition closed")
    return 0


def cmd_fleet(args) -> int:
    """List, filter, render, plot and sentinel-check the fleet ledger."""
    from repro.obs.fleet import check_fleet, throughput_trend
    from repro.obs.report import build_report, load_bench_records, render_report

    path = Path(args.ledger)
    if not path.exists():
        print(
            f"error: no fleet ledger at {path} (engine-served sweeps "
            f"record themselves there; run one first, e.g. "
            f"`repro table2 --jobs 2`)",
            file=sys.stderr,
        )
        return 1
    history = read_fleet(path)
    for warning in history.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    records = list(history.records)
    if args.workload:
        records = [r for r in records if args.workload in r.workloads]
    if args.machine:
        records = [r for r in records if args.machine in r.machines]
    if args.backend:
        records = [r for r in records if args.backend in r.backend.split(",")]
    records.sort(key=lambda r: r.unix_time)
    if args.last:
        records = records[-args.last:]
    if not records:
        print("fleet: no recorded sweeps match the filters", file=sys.stderr)
        return 1

    try:
        bench_records = load_bench_records(args.bench) if args.bench else []
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if getattr(args, "plot", None):
        from repro.obs.plot import fleet_plot_svg

        out = Path(args.plot)
        out.write_text(fleet_plot_svg(records) + "\n")
        print(
            f"fleet plot: {out} ({len(records)} sweeps; throughput, "
            f"cache-hit rate and phase mix over commits)",
            file=sys.stderr,
        )

    if getattr(args, "check", False):
        report = check_fleet(
            records,
            window=args.window,
            max_drop_pct=args.max_drop,
            max_hit_rate_drop=args.max_hit_drop,
        )
        print(report.summary())
        return 0 if report.ok else 1

    if args.format:
        report = build_report(
            [], bench_records=bench_records, fleet_records=records
        )
        text = render_report(report, args.format)
        if args.output:
            Path(args.output).write_text(text + "\n")
            print(
                f"wrote {args.output} ({len(records)} sweeps, "
                f"format {args.format})",
                file=sys.stderr,
            )
        else:
            print(text)
        return 0

    import time as time_module

    print(
        f"{'sweep id':22s} {'when':17s} {'command':8s} {'cells':>6s} "
        f"{'cached':>6s} {'cells/s':>8s} {'norm/s':>8s} {'wall s':>7s} "
        f"{'backend':10s} {'jobs':>4s}"
    )
    for r in records:
        when = time_module.strftime(
            "%Y-%m-%d %H:%M", time_module.localtime(r.unix_time)
        )
        norm = r.normalized_cells_per_s
        norm_text = f"{norm:8.1f}" if norm is not None else f"{'-':>8s}"
        print(
            f"{r.sweep_id:22s} {when:17s} {(r.command or '-'):8s} "
            f"{r.cells_total:6d} {r.cells_cached:6d} {r.cells_per_s:8.1f} "
            f"{norm_text} "
            f"{r.wall_s:7.1f} {(r.backend or '-'):10s} {r.jobs:4d}"
        )
    print(throughput_trend(records))
    return 0


def cmd_calibrate(args) -> int:
    """Benchmark this host and cache its fleet-normalization score."""
    import os as os_module

    from repro.obs.calibrate import (
        DEFAULT_HOST_PATH,
        calibrate,
        load_calibration,
        save_calibration,
    )

    path = Path(
        args.output
        or os_module.environ.get("REPRO_HOST_CALIBRATION")
        or DEFAULT_HOST_PATH
    )
    existing = load_calibration(path)
    if existing is not None and not args.force:
        print(f"host already calibrated (score {existing.score:.2f}, "
              f"{existing.passes} passes at {existing.probe_wall_s * 1000:.1f} "
              f"ms/pass); --force to re-measure")
        print(f"calibration     : {path}")
        return 0
    cal = calibrate(budget_s=args.budget)
    save_calibration(cal, path)
    print(f"host score      : {cal.score:.2f} (1.0 = nominal reference host)")
    print(f"probe           : best of {cal.passes} passes, "
          f"{cal.probe_wall_s * 1000:.1f} ms/pass")
    print(f"host            : {cal.hostname} ({cal.machine}, "
          f"python {cal.python})")
    print(f"calibration     : {path}")
    return 0


def cmd_battery(_args) -> int:
    from repro.battery.lifetime import idle_lifetime_hours

    print(f"{'MHz':>6s} {'Idle lifetime (h)':>18s}")
    for step in SA1100_CLOCK_TABLE:
        print(f"{step.mhz:6.1f} {idle_lifetime_hours(step):18.1f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Policies for Dynamic Clock Scheduling'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    backend_opts = argparse.ArgumentParser(add_help=False)
    backend_opts.add_argument(
        "--backend", choices=backend_names(), default=None,
        help="execution backend (default: fastpath; every backend "
             "produces bitwise-equal results)",
    )
    backend_opts.add_argument(
        "--no-fastpath", dest="backend", action="store_const",
        const="reference",
        help="simulate on the reference kernel "
             "(shorthand for --backend reference)",
    )

    sweep_opts = argparse.ArgumentParser(add_help=False)
    sweep_opts.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan simulations out over N worker processes",
    )
    sweep_opts.add_argument(
        "--cache", default=None, metavar="DIR",
        help="memoize results on disk; unchanged runs are free on re-run",
    )
    sweep_opts.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache and re-simulate everything",
    )
    sweep_opts.add_argument(
        "--run-log", default=None, metavar="PATH", dest="run_log",
        help="append one structured JSONL audit record per sweep cell",
    )
    sweep_opts.add_argument(
        "--diagnoses", default=None, metavar="PATH",
        help="diagnose every executed cell in the workers and append "
             "JSONL diagnoses here (implies full recording)",
    )
    sweep_opts.add_argument(
        "--progress", action="store_true",
        help="live sweep progress on stderr (cells done/total, cells/s, "
             "ETA, cache-hit rate, worker utilization, stragglers); "
             "silently degrades to the summary line when not a TTY",
    )
    sweep_opts.add_argument(
        "--sweep-trace", default=None, metavar="PATH", dest="sweep_trace",
        help="export the sweep pipeline as Chrome trace-event JSON with "
             "one lane per pool worker (open in Perfetto)",
    )
    sweep_opts.add_argument(
        "--fleet", default=None, metavar="PATH",
        help=f"fleet ledger to append this sweep's record to "
             f"(default: {DEFAULT_FLEET_PATH})",
    )
    sweep_opts.add_argument(
        "--no-fleet", action="store_true", dest="no_fleet",
        help="do not record this sweep in the fleet ledger",
    )
    sweep_opts.add_argument(
        "--phases", action="store_true",
        help="print the phase-level wall-time breakdown (pool spin-up, "
             "kernel compute, observer reduction, result IPC, cache I/O, "
             "...) after the sweep summary",
    )

    machine_opts = argparse.ArgumentParser(add_help=False)
    machine_opts.add_argument(
        "--machine", default="itsy", metavar="NAME[@V]",
        help="machine preset, optionally with a boot voltage "
             "(itsy, itsy@1.23, itsy-stock, sa2, itsy-reconf, sa2-reconf; "
             "see list-machines)",
    )

    sub.add_parser("list-policies", help="list policy names").set_defaults(
        func=cmd_list_policies
    )
    sub.add_parser("list-machines", help="list machine presets").set_defaults(
        func=cmd_list_machines
    )

    run_parser = sub.add_parser(
        "run", help="run one workload under one policy",
        parents=[sweep_opts, backend_opts, machine_opts],
    )
    run_parser.add_argument("workload", choices=CLI_WORKLOADS)
    run_parser.add_argument("--policy", default="best")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--duration", type=float, default=None,
                            help="override trace length (seconds)")
    run_parser.add_argument("--no-daq", action="store_true",
                            help="use the exact integral instead of the DAQ")
    run_parser.set_defaults(func=cmd_run)

    t2 = sub.add_parser("table2", help="regenerate Table 2",
                        parents=[sweep_opts, backend_opts, machine_opts])
    t2.add_argument("--runs", type=int, default=3)
    t2.set_defaults(func=cmd_table2)

    f9 = sub.add_parser("fig9", help="regenerate Figure 9's sweep",
                        parents=[sweep_opts, backend_opts, machine_opts])
    f9.add_argument("--seed", type=int, default=1)
    f9.add_argument("--duration", type=float, default=None)
    f9.set_defaults(func=cmd_fig9)

    cmp_parser = sub.add_parser(
        "compare", help="compare two policies on one workload (Welch t-test)",
        parents=[machine_opts],
    )
    cmp_parser.add_argument("workload", choices=CLI_WORKLOADS)
    cmp_parser.add_argument("policy_a")
    cmp_parser.add_argument("policy_b")
    cmp_parser.add_argument("--runs", type=int, default=3)
    cmp_parser.add_argument("--duration", type=float, default=None)
    cmp_parser.set_defaults(func=cmd_compare)

    ideal_parser = sub.add_parser(
        "ideal", help="find the cheapest feasible constant clock step",
        parents=[sweep_opts, backend_opts, machine_opts],
    )
    ideal_parser.add_argument("workload", choices=CLI_WORKLOADS)
    ideal_parser.add_argument("--seed", type=int, default=0)
    ideal_parser.add_argument("--duration", type=float, default=None)
    ideal_parser.set_defaults(func=cmd_ideal)

    trace_parser = sub.add_parser(
        "trace",
        help="export one traced run as Chrome trace-event JSON (Perfetto)",
        parents=[backend_opts, machine_opts],
    )
    trace_parser.add_argument("workload", choices=CLI_WORKLOADS)
    trace_parser.add_argument("--policy", default="best")
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument("--duration", type=float, default=None,
                              help="override trace length (seconds)")
    trace_parser.add_argument("-o", "--output", default="trace.json",
                              metavar="PATH", help="output file (JSON)")
    trace_parser.set_defaults(func=cmd_trace)

    diag_parser = sub.add_parser(
        "diagnose",
        help="explain one run: settling, prediction error, miss causes, "
             "and the excess-energy decomposition",
        parents=[backend_opts, machine_opts],
    )
    diag_parser.add_argument("policy")
    diag_parser.add_argument("workload", choices=CLI_WORKLOADS)
    diag_parser.add_argument("--seed", type=int, default=0)
    diag_parser.add_argument("--duration", type=float, default=None,
                             help="override trace length (seconds)")
    diag_parser.add_argument("-o", "--output", default=None, metavar="PATH",
                             help="also write the diagnosis as JSON")
    diag_parser.set_defaults(func=cmd_diagnose)

    report_parser = sub.add_parser(
        "report",
        help="aggregate a sweep run-log (+ diagnoses) into md/html",
    )
    report_parser.add_argument("run_log", metavar="RUN_LOG",
                               help="JSONL run-log written by --run-log")
    report_parser.add_argument("--diagnoses", default=None, metavar="PATH",
                               help="join a JSONL diagnosis log into the report")
    report_parser.add_argument("--bench", nargs="+", default=None,
                               metavar="PATH",
                               help="render BENCH_*.json perf records as a "
                                    "Perf history section; accepts files, "
                                    "directories or globs, ordered by "
                                    "recorded timestamp (e.g. --bench .)")
    report_parser.add_argument("--format", choices=["md", "html"], default="md")
    report_parser.add_argument("-o", "--output", default=None, metavar="PATH",
                               help="write the report here instead of stdout")
    report_parser.set_defaults(func=cmd_report)

    fleet_parser = sub.add_parser(
        "fleet",
        help="list past sweeps from the fleet ledger and their "
             "throughput trend",
    )
    fleet_parser.add_argument(
        "--ledger", default=str(DEFAULT_FLEET_PATH), metavar="PATH",
        help=f"fleet ledger to read (default: {DEFAULT_FLEET_PATH})",
    )
    fleet_parser.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="only the N most recent sweeps",
    )
    fleet_parser.add_argument(
        "--workload", default=None, metavar="NAME",
        help="only sweeps whose grid included this workload",
    )
    fleet_parser.add_argument(
        "--machine", default=None, metavar="NAME",
        help="only sweeps whose grid included this machine label",
    )
    fleet_parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="only sweeps executed on this backend",
    )
    fleet_parser.add_argument(
        "--bench", nargs="+", default=None, metavar="PATH",
        help="fold BENCH_*.json perf records into the rendered report "
             "(files, directories or globs)",
    )
    fleet_parser.add_argument(
        "--format", choices=["md", "html"], default=None,
        help="render a markdown/HTML fleet report instead of the "
             "plain-text listing",
    )
    fleet_parser.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="write the rendered report here instead of stdout",
    )
    fleet_parser.add_argument(
        "--check", action="store_true",
        help="perf-regression sentinel: compare the latest executed "
             "sweep against the median of comparable predecessors "
             "(host-normalized); exit 1 naming the regressed phase on a "
             "throughput drop or cache-hit collapse",
    )
    fleet_parser.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="baseline window: median of the last N comparable sweeps "
             "(default: 5)",
    )
    fleet_parser.add_argument(
        "--max-drop", type=float, default=25.0, metavar="PCT",
        dest="max_drop",
        help="--check fails when normalized throughput drops more than "
             "PCT%% below the baseline median (default: 25)",
    )
    fleet_parser.add_argument(
        "--max-hit-drop", type=float, default=0.5, metavar="FRAC",
        dest="max_hit_drop",
        help="--check fails when the cache-hit rate falls more than "
             "FRAC below the baseline median (default: 0.5)",
    )
    fleet_parser.add_argument(
        "--plot", default=None, metavar="PATH",
        help="write the trend curves (cells/s, cache-hit rate, phase "
             "mix over commits) as a standalone SVG",
    )
    fleet_parser.set_defaults(func=cmd_fleet)

    cal_parser = sub.add_parser(
        "calibrate",
        help="benchmark this host once and cache the score that "
             "normalizes fleet throughput across machines",
    )
    cal_parser.add_argument(
        "--budget", type=float, default=2.0, metavar="SECONDS",
        help="wall-time budget for the probe loop (default: 2.0)",
    )
    cal_parser.add_argument(
        "--force", action="store_true",
        help="re-measure even when a valid calibration is cached",
    )
    cal_parser.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="calibration cache to write (default: "
             "$REPRO_HOST_CALIBRATION or .repro/host.json)",
    )
    cal_parser.set_defaults(func=cmd_calibrate)

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="differentially test execution backends on fuzzed workloads",
    )
    fuzz_parser.add_argument(
        "--backend", choices=backend_names(), default="fastpath",
        help="backend checked against the reference (default: fastpath)",
    )
    fuzz_parser.add_argument(
        "--count", type=int, default=25, metavar="N",
        help="generated scenarios per policy x machine combination",
    )
    fuzz_parser.add_argument(
        "--seed", type=int, default=0,
        help="master seed: the whole batch is a pure function of it",
    )
    fuzz_parser.add_argument(
        "--duration", type=float, default=1.0,
        help="seconds of simulated time per scenario",
    )
    fuzz_parser.add_argument(
        "--machine", action="append", default=None, metavar="NAME[@V]",
        help="machine preset to fuzz on; repeatable "
             "(default: itsy and itsy-reconf)",
    )
    fuzz_parser.add_argument(
        "--policy", action="append", default=None, metavar="NAME",
        help="catalog policy to fuzz under; repeatable (default: best)",
    )
    fuzz_parser.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="also replay every stored corpus entry through both backends",
    )
    fuzz_parser.add_argument(
        "--save-failures", default=None, metavar="DIR", dest="save_failures",
        help="persist shrunk counterexamples here as corpus entries",
    )
    fuzz_parser.set_defaults(func=cmd_fuzz)

    # battery is analytic (no simulation), but accepts the sweep flags so
    # scripts can pass a uniform option set to every subcommand.
    sub.add_parser(
        "battery", help="idle battery lifetimes", parents=[sweep_opts]
    ).set_defaults(func=cmd_battery)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, SweepCellError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
