"""Reproduction of *Policies for Dynamic Clock Scheduling* (OSDI 2000).

Grunwald, Levis, Morrey, Neufeld and Farkas evaluated interval-based
dynamic clock/voltage scaling policies on the Itsy pocket computer.  This
package rebuilds the complete experimental system in simulation:

- :mod:`repro.hw` -- the Itsy / StrongARM SA-1100 machine model (11 clock
  steps, Table 3 memory timings, calibrated power model, voltage rails);
- :mod:`repro.kernel` -- the modified Linux 2.0.30 kernel: 10 ms quanta,
  per-quantum utilization accounting, pluggable clock-scaling module;
- :mod:`repro.core` -- the policies: PAST / AVG_N predictors, one /
  double / peg speed setters, hysteresis thresholds, voltage scaling;
- :mod:`repro.workloads` -- MPEG, Web, Chess and TalkingEditor rebuilt as
  scripted processes, plus synthetic analysis signals;
- :mod:`repro.measure` -- the DAQ measurement model and the repeated-run
  experiment harness with 95 % confidence intervals;
- :mod:`repro.battery` -- rate-capacity and pulsed-discharge battery
  models (§2.1);
- :mod:`repro.analysis` -- the signal-processing stability analysis of
  AVG_N (§5.3): exponential smoothing as convolution, Fourier transform,
  oscillation metrics;
- :mod:`repro.traces` -- trace records and persistence.

Quick start::

    from repro.core.catalog import best_policy
    from repro.measure.runner import run_workload
    from repro.workloads import mpeg_workload

    result = run_workload(mpeg_workload(), best_policy)
    print(result.energy_j, result.missed)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
