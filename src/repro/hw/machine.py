"""The machine interface the kernel simulator drives.

:class:`Machine` is the contract between the discrete-event kernel and a
concrete hardware model: a CPU execution model (clock table, memory
timings, voltage rail, transition costs) plus a power model.  The kernel
never advances time inside the machine; transition methods *return* their
time cost for the kernel to account, and :meth:`power_w` reports the
instantaneous whole-system power for the current state.

Concrete machines (:class:`~repro.hw.itsy.ItsyMachine`,
:class:`~repro.hw.sa2.Sa2Machine`) subclass this and override
:meth:`auto_volts_for` to express their voltage-management convention:
the Itsy raises the rail to 1.5 V only when a requested frequency is
unsafe at the present voltage, while the SA-2 tracks a full per-step
voltage schedule in both directions.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.clocksteps import ClockStep, ClockTable
from repro.hw.cpu import CpuModel
from repro.hw.power import CoreState, PowerModel


class Machine:
    """A CPU model plus a power model, as the kernel simulator sees it."""

    def __init__(self, cpu: CpuModel, power: PowerModel):
        self.cpu = cpu
        self.power = power
        #: Extra whole-system power (W) drawn during clock-change stall
        #: windows, on top of the nap-state model power.  Zero on the
        #: measured machines; the ``*-reconf`` presets set it to model the
        #: PLL/regulator activity of a frequency change (Rottleuthner et
        #: al. measure ms-scale, non-free reconfigurations on IoT-class
        #: parts).  The kernel charges it in :meth:`Kernel.stall`.
        self.reconf_extra_w: float = 0.0

    # -- convenience pass-throughs -------------------------------------------------

    @property
    def clock_table(self) -> ClockTable:
        """The available clock steps."""
        return self.cpu.clock_table

    @property
    def step(self) -> ClockStep:
        """The current clock step."""
        return self.cpu.step

    @property
    def volts(self) -> float:
        """The current core voltage."""
        return self.cpu.volts

    def power_w(self, state: CoreState) -> float:
        """Instantaneous whole-system power in the given core state."""
        return self.power.total_w(self.cpu.step, self.cpu.volts, state)

    def set_step_index(self, index: int) -> float:
        """Change the clock step; returns the stall duration in us."""
        return self.cpu.set_step_index(index)

    def set_voltage(self, volts: float) -> float:
        """Change the core voltage; returns the settle duration in us."""
        return self.cpu.set_voltage(volts)

    # -- voltage management convention ---------------------------------------------

    def auto_volts_for(self, step: ClockStep) -> Optional[float]:
        """Voltage the kernel should set when a governor requests ``step``
        without an explicit voltage, or None to leave the rail alone.

        The default implements the Itsy convention: the rail is touched
        only when the requested frequency is unsafe at the present voltage,
        in which case it is raised to the nominal setting.  Machines with a
        per-step voltage schedule override this to track the schedule in
        both directions.
        """
        rail = self.cpu.rail
        if rail.allows(rail.volts, step):
            return None
        return rail.high_volts
